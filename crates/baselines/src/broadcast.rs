//! Broadcast operator: replicate one stream to several consumers.
//!
//! Used by the unshared baseline, where every per-query plan needs its own
//! copy of both input streams.

use std::any::Any;

use streamkit::operator::{OpContext, Operator, PortId};
use streamkit::queue::StreamItem;

/// Replicates every input item to `fanout` output ports.
#[derive(Debug)]
pub struct BroadcastOp {
    name: String,
    fanout: usize,
}

impl BroadcastOp {
    /// Build a broadcast with the given fan-out.
    pub fn new(name: impl Into<String>, fanout: usize) -> Self {
        BroadcastOp {
            name: name.into(),
            fanout: fanout.max(1),
        }
    }

    /// The number of output ports.
    pub fn fanout(&self) -> usize {
        self.fanout
    }
}

impl Operator for BroadcastOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_output_ports(&self) -> usize {
        self.fanout
    }

    fn process(&mut self, _port: PortId, item: StreamItem, ctx: &mut OpContext) {
        if !item.is_punctuation() {
            ctx.counters.tuples_processed += 1;
        }
        for port in 0..self.fanout {
            ctx.emit(port, item.clone());
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamkit::tuple::{StreamId, Tuple};
    use streamkit::Timestamp;

    #[test]
    fn replicates_to_every_port() {
        let mut op = BroadcastOp::new("bcast", 3);
        assert_eq!(op.fanout(), 3);
        assert_eq!(op.num_output_ports(), 3);
        let mut ctx = OpContext::new();
        let t = Tuple::of_ints(Timestamp::from_secs(1), StreamId::A, &[1]);
        op.process(0, t.into(), &mut ctx);
        let out = ctx.take_outputs();
        assert_eq!(out.len(), 3);
        assert_eq!(
            out.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn zero_fanout_clamps_to_one() {
        let op = BroadcastOp::new("bcast", 0);
        assert_eq!(op.fanout(), 1);
    }
}
