//! Baseline multi-query sharing strategies from the literature.
//!
//! The State-Slice paper (Section 3) compares its chain against the sharing
//! strategies used by earlier continuous-query systems:
//!
//! * [`pullup`] — **naive sharing with selection pull-up** (NiagaraCQ-style,
//!   Figure 3): one join with the largest window, a router dispatching every
//!   joined result to each registered query, and the selections applied after
//!   routing,
//! * [`partition_pushdown`] — **stream partition with selection push-down**
//!   (Figure 4): stream A is partitioned by the selection predicate, a small
//!   join serves the unfiltered queries, a large join serves the filtered
//!   ones, and a router + order-preserving union reassemble per-query
//!   results,
//! * [`unshared`] — no sharing at all: one independent plan per query, the
//!   reference point the paper's motivation example argues against.
//!
//! All builders consume the same [`QueryWorkload`](state_slice_core::QueryWorkload)
//! as the chain planner and produce plans with entry points `"A"` and `"B"`
//! and one sink per query, so the experiment harness can drive every strategy
//! identically.

pub mod broadcast;
pub mod partition_pushdown;
pub mod pullup;
pub mod unshared;

pub use broadcast::BroadcastOp;
pub use partition_pushdown::PushDownPlanBuilder;
pub use pullup::PullUpPlanBuilder;
pub use unshared::UnsharedPlanBuilder;

/// Name of the stream-A entry point of every baseline plan.
pub const ENTRY_A: &str = "A";
/// Name of the stream-B entry point of every baseline plan.
pub const ENTRY_B: &str = "B";

/// A built baseline plan: the operator DAG plus its per-query sink names.
#[derive(Debug)]
pub struct BaselinePlan {
    /// The operator DAG, ready for an [`Executor`](streamkit::Executor).
    pub plan: streamkit::Plan,
    /// Sink names (one per query, ascending window order).
    pub sink_names: Vec<String>,
}
