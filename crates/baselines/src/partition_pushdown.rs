//! Stream partition with selection push-down (Section 3.2, Figure 4).
//!
//! Stream A is partitioned by the shared selection predicate.  Tuples that
//! fail the selection can only contribute to the queries *without* a
//! selection, so they feed a join whose window is the largest window among
//! those queries; tuples that pass the selection may contribute to every
//! query and feed a join with the overall largest window.  A router splits
//! the large join's results per query window, and per-query order-preserving
//! unions merge the two branches for the unfiltered queries.
//!
//! The builder supports the workload shape used throughout the paper's
//! analysis and experiments: any number of queries, where the queries that do
//! carry a selection all share the same predicate.  Workloads with several
//! distinct selection predicates would need one partition per predicate
//! combination; they are rejected with an error.

use state_slice_core::QueryWorkload;
use streamkit::error::{Result, StreamError};
use streamkit::ops::{RouteTarget, RouterOp, SinkOp, SplitOp, UnionOp, WindowJoinOp};
use streamkit::{Plan, Predicate, WindowSpec};

use crate::{BaselinePlan, ENTRY_A, ENTRY_B};

/// Options for the push-down plan builder.
#[derive(Debug, Clone, Copy, Default)]
pub struct PushDownOptions {
    /// Build retaining sinks for result inspection in tests.
    pub retain_results: bool,
}

/// Builds the stream-partition / selection push-down shared plan.
#[derive(Debug, Default)]
pub struct PushDownPlanBuilder {
    options: PushDownOptions,
}

impl PushDownPlanBuilder {
    /// Builder with default options.
    pub fn new() -> Self {
        PushDownPlanBuilder::default()
    }

    /// Retain per-query results in the sinks.
    pub fn retaining_results(mut self) -> Self {
        self.options.retain_results = true;
        self
    }

    fn shared_filter(workload: &QueryWorkload) -> Result<Option<Predicate>> {
        let mut filter: Option<Predicate> = None;
        for q in workload.queries() {
            if q.has_filter() {
                match &filter {
                    None => filter = Some(q.filter_a.clone()),
                    Some(existing) if *existing == q.filter_a => {}
                    Some(_) => {
                        return Err(StreamError::InvalidConfig(
                            "the stream-partition baseline supports a single shared selection \
                             predicate; queries carry different predicates"
                                .to_string(),
                        ))
                    }
                }
            }
        }
        Ok(filter)
    }

    /// Build the shared plan for the given workload.
    pub fn build(&self, workload: &QueryWorkload) -> Result<BaselinePlan> {
        let filter = Self::shared_filter(workload)?;
        let Some(filter) = filter else {
            // Without selections stream partitioning degenerates to the
            // pull-up plan; build that instead of duplicating streams.
            return crate::PullUpPlanBuilder::new().build(workload);
        };

        let unfiltered: Vec<usize> = (0..workload.len())
            .filter(|&i| !workload.query(i).has_filter())
            .collect();
        let filtered: Vec<usize> = (0..workload.len())
            .filter(|&i| workload.query(i).has_filter())
            .collect();

        let mut b = Plan::builder();
        let condition = workload.join_condition().clone();

        // Partition stream A: port 0 = fails the filter, port 1 = passes it.
        let split = b.add_op(SplitOp::new(
            "split_A",
            vec![filter.clone().negate(), filter.clone()],
        ));
        b.entry(ENTRY_A, split, 0);

        // The join for filter-passing A tuples must serve every query (even
        // unfiltered ones need those pairs), so its window is the overall max.
        let big_window = WindowSpec::new(workload.max_window());
        let join_big = b.add_op(
            WindowJoinOp::symmetric("join_filtered", big_window, condition.clone())
                .with_punctuations(),
        );
        b.connect(split, 1, join_big, 0);

        // The join for filter-failing A tuples only serves unfiltered queries.
        let join_small = if unfiltered.is_empty() {
            None
        } else {
            let w = unfiltered
                .iter()
                .map(|&i| workload.query(i).window)
                .max()
                .expect("non-empty");
            let node = b.add_op(
                WindowJoinOp::symmetric("join_unfiltered", WindowSpec::new(w), condition.clone())
                    .with_punctuations(),
            );
            b.connect(split, 0, node, 0);
            Some(node)
        };

        // Stream B feeds both joins (states B1 / B2 cannot be shared, as the
        // paper notes — the sliding windows do not move in lockstep).
        match join_small {
            Some(small) => {
                let bcast = b.add_op(crate::BroadcastOp::new("broadcast_B", 2));
                b.entry(ENTRY_B, bcast, 0);
                b.connect(bcast, 0, join_big, 1);
                b.connect(bcast, 1, small, 1);
            }
            None => {
                b.entry(ENTRY_B, join_big, 1);
            }
        }

        // Router on the big join: one target per query (window constraint).
        let targets: Vec<RouteTarget> = workload
            .queries()
            .iter()
            .map(|q| RouteTarget::window_only(q.window))
            .collect();
        let router_big = b.add_op(RouterOp::new("router_filtered", targets));
        b.connect(join_big, 0, router_big, 0);

        // Router on the small join: targets for unfiltered queries only.
        let router_small = join_small.map(|small| {
            let targets: Vec<RouteTarget> = unfiltered
                .iter()
                .map(|&i| RouteTarget::window_only(workload.query(i).window))
                .collect();
            let node = b.add_op(RouterOp::new("router_unfiltered", targets));
            b.connect(small, 0, node, 0);
            node
        });

        // Per-query assembly.
        let mut sink_names = Vec::with_capacity(workload.len());
        for (idx, q) in workload.queries().iter().enumerate() {
            let sink = if self.options.retain_results {
                b.add_op(SinkOp::retaining(q.name.clone()))
            } else {
                b.add_op(SinkOp::new(q.name.clone()))
            };
            sink_names.push(q.name.clone());
            if filtered.contains(&idx) {
                // Filtered queries read the big join's routed results and
                // re-check nothing: their A tuples passed the filter at the
                // split already.
                b.connect(router_big, idx, sink, 0);
            } else {
                // Unfiltered queries merge both branches order-preservingly.
                let union = b.add_op(UnionOp::new(format!("union_{}", q.name), 2));
                b.connect(router_big, idx, union, 0);
                let router_small = router_small.expect("unfiltered queries imply a small join");
                let port = unfiltered
                    .iter()
                    .position(|&i| i == idx)
                    .expect("registered");
                b.connect(router_small, port, union, 1);
                b.connect(union, 0, sink, 0);
            }
        }

        Ok(BaselinePlan {
            plan: b.build()?,
            sink_names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use state_slice_core::JoinQuery;
    use streamkit::tuple::{StreamId, Tuple};
    use streamkit::{Executor, JoinCondition, TimeDelta, Timestamp};

    fn a(secs: u64, key: i64, value: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[key, value])
    }

    fn b(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::B, &[key, 0])
    }

    fn workload() -> QueryWorkload {
        QueryWorkload::new(
            vec![
                JoinQuery::new("Q1", TimeDelta::from_secs(2)),
                JoinQuery::with_filter("Q2", TimeDelta::from_secs(4), Predicate::gt(1, 10i64)),
            ],
            JoinCondition::equi(0),
        )
        .unwrap()
    }

    #[test]
    fn per_query_results_match_the_pullup_baseline() {
        let input_a = vec![a(1, 7, 50), a(2, 7, 5), a(3, 7, 50)];
        let input_b = vec![b(4, 7), b(5, 7)];

        let pushdown = PushDownPlanBuilder::new().build(&workload()).unwrap();
        let mut exec = Executor::new(pushdown.plan);
        exec.ingest_all(ENTRY_A, input_a.clone()).unwrap();
        exec.ingest_all(ENTRY_B, input_b.clone()).unwrap();
        let pd = exec.run().unwrap();

        let pullup = crate::PullUpPlanBuilder::new().build(&workload()).unwrap();
        let mut exec = Executor::new(pullup.plan);
        exec.ingest_all(ENTRY_A, input_a).unwrap();
        exec.ingest_all(ENTRY_B, input_b).unwrap();
        let pu = exec.run().unwrap();

        assert_eq!(pd.sink_count("Q1"), pu.sink_count("Q1"));
        assert_eq!(pd.sink_count("Q2"), pu.sink_count("Q2"));
        assert_eq!(pd.sink_count("Q1"), 1);
        assert_eq!(pd.sink_count("Q2"), 3);
    }

    #[test]
    fn push_down_probes_less_than_pull_up_when_filter_is_selective() {
        // Highly selective filter: most A tuples avoid the big join entirely.
        let w = workload();
        let input_a: Vec<Tuple> = (1..=60)
            .map(|s| a(s, 0, if s % 10 == 0 { 50 } else { 5 }))
            .collect();
        let input_b: Vec<Tuple> = (1..=60).map(|s| b(s, 0)).collect();

        let run = |plan: BaselinePlan| {
            let mut exec = Executor::new(plan.plan);
            exec.ingest_all(ENTRY_A, input_a.clone()).unwrap();
            exec.ingest_all(ENTRY_B, input_b.clone()).unwrap();
            exec.run().unwrap()
        };
        let pd = run(PushDownPlanBuilder::new().build(&w).unwrap());
        let pu = run(crate::PullUpPlanBuilder::new().build(&w).unwrap());
        assert_eq!(pd.sink_count("Q1"), pu.sink_count("Q1"));
        assert_eq!(pd.sink_count("Q2"), pu.sink_count("Q2"));
        assert!(pd.totals.probe_comparisons < pu.totals.probe_comparisons);
    }

    #[test]
    fn without_selections_the_plan_degenerates_to_pull_up() {
        let w = QueryWorkload::new(
            vec![
                JoinQuery::new("Q1", TimeDelta::from_secs(2)),
                JoinQuery::new("Q2", TimeDelta::from_secs(4)),
            ],
            JoinCondition::equi(0),
        )
        .unwrap();
        let built = PushDownPlanBuilder::new().build(&w).unwrap();
        // join + router + 2 sinks.
        assert_eq!(built.plan.num_nodes(), 4);
    }

    #[test]
    fn distinct_predicates_are_rejected() {
        let w = QueryWorkload::new(
            vec![
                JoinQuery::with_filter("Q1", TimeDelta::from_secs(2), Predicate::gt(1, 5i64)),
                JoinQuery::with_filter("Q2", TimeDelta::from_secs(4), Predicate::gt(1, 10i64)),
            ],
            JoinCondition::equi(0),
        )
        .unwrap();
        assert!(PushDownPlanBuilder::new().build(&w).is_err());
    }

    #[test]
    fn all_filtered_queries_need_no_small_join() {
        let w = QueryWorkload::new(
            vec![
                JoinQuery::with_filter("Q1", TimeDelta::from_secs(2), Predicate::gt(1, 10i64)),
                JoinQuery::with_filter("Q2", TimeDelta::from_secs(4), Predicate::gt(1, 10i64)),
            ],
            JoinCondition::equi(0),
        )
        .unwrap();
        let built = PushDownPlanBuilder::new().build(&w).unwrap();
        assert!(built
            .plan
            .nodes()
            .iter()
            .all(|n| n.operator.name() != "join_unfiltered"));
        let mut exec = Executor::new(built.plan);
        exec.ingest_all(ENTRY_A, vec![a(1, 7, 50)]).unwrap();
        exec.ingest_all(ENTRY_B, vec![b(2, 7)]).unwrap();
        let report = exec.run().unwrap();
        assert_eq!(report.sink_count("Q1"), 1);
        assert_eq!(report.sink_count("Q2"), 1);
    }
}
