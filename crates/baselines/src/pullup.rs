//! Naive sharing with selection pull-up (Section 3.1, Figure 3).
//!
//! All queries share one sliding-window join with the *largest* registered
//! window; a router dispatches each joined result to every query whose window
//! constraint `|Ta - Tb| < W_q` it satisfies, applying the query's (pulled-up)
//! selection on the routed results.

use state_slice_core::QueryWorkload;
use streamkit::error::Result;
use streamkit::ops::{RouteTarget, RouterOp, SinkOp, WindowJoinOp};
use streamkit::{Plan, WindowSpec};

use crate::{BaselinePlan, ENTRY_A, ENTRY_B};

/// Options for the pull-up plan builder.
#[derive(Debug, Clone, Copy, Default)]
pub struct PullUpOptions {
    /// Build retaining sinks for result inspection in tests.
    pub retain_results: bool,
    /// Probe the shared join by linear scan instead of through the equi-key
    /// hash index (A/B benchmarking aid).
    pub linear_scan: bool,
}

/// Builds the selection pull-up shared plan.
#[derive(Debug, Default)]
pub struct PullUpPlanBuilder {
    options: PullUpOptions,
}

impl PullUpPlanBuilder {
    /// Builder with default options.
    pub fn new() -> Self {
        PullUpPlanBuilder::default()
    }

    /// Retain per-query results in the sinks.
    pub fn retaining_results(mut self) -> Self {
        self.options.retain_results = true;
        self
    }

    /// Probe by linear scan (disable the equi-key hash index).
    pub fn without_index(mut self) -> Self {
        self.options.linear_scan = true;
        self
    }

    /// Build the shared plan for the given workload.
    pub fn build(&self, workload: &QueryWorkload) -> Result<BaselinePlan> {
        let mut b = Plan::builder();
        let max_window = WindowSpec::new(workload.max_window());
        let mut join_op =
            WindowJoinOp::symmetric("shared_join", max_window, workload.join_condition().clone())
                .with_punctuations();
        if self.options.linear_scan {
            join_op = join_op.without_index();
        }
        let join = b.add_op(join_op);
        b.entry(ENTRY_A, join, 0);
        b.entry(ENTRY_B, join, 1);

        // One router target per registered query: window check plus the
        // pulled-up selection.  The selection predicate refers to the A-side
        // columns of the joined tuple, which keep their original indexes
        // because joins concatenate A before B.
        let targets: Vec<RouteTarget> = workload
            .queries()
            .iter()
            .map(|q| {
                if q.has_filter() {
                    RouteTarget::with_filter(q.window, q.filter_a.clone())
                } else {
                    RouteTarget::window_only(q.window)
                }
            })
            .collect();
        let router = b.add_op(RouterOp::new("router", targets));
        b.connect(join, 0, router, 0);

        let mut sink_names = Vec::with_capacity(workload.len());
        for (idx, q) in workload.queries().iter().enumerate() {
            let sink = if self.options.retain_results {
                b.add_op(SinkOp::retaining(q.name.clone()))
            } else {
                b.add_op(SinkOp::new(q.name.clone()))
            };
            b.connect(router, idx, sink, 0);
            sink_names.push(q.name.clone());
        }
        Ok(BaselinePlan {
            plan: b.build()?,
            sink_names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use state_slice_core::JoinQuery;
    use streamkit::tuple::{StreamId, Tuple};
    use streamkit::{Executor, JoinCondition, Predicate, TimeDelta, Timestamp};

    fn a(secs: u64, key: i64, value: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[key, value])
    }

    fn b(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::B, &[key, 0])
    }

    fn workload() -> QueryWorkload {
        QueryWorkload::new(
            vec![
                JoinQuery::new("Q1", TimeDelta::from_secs(2)),
                JoinQuery::with_filter("Q2", TimeDelta::from_secs(4), Predicate::gt(1, 10i64)),
            ],
            JoinCondition::equi(0),
        )
        .unwrap()
    }

    #[test]
    fn plan_structure_is_join_router_sinks() {
        let built = PullUpPlanBuilder::new().build(&workload()).unwrap();
        assert_eq!(built.plan.num_nodes(), 4); // join + router + 2 sinks
        assert_eq!(built.sink_names, vec!["Q1", "Q2"]);
        let mut names: Vec<&str> = built.plan.entry_names();
        names.sort_unstable();
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    fn per_query_results_respect_window_and_filter() {
        let built = PullUpPlanBuilder::new().build(&workload()).unwrap();
        let mut exec = Executor::new(built.plan);
        exec.ingest_all(ENTRY_A, vec![a(1, 7, 50), a(2, 7, 5), a(3, 7, 50)])
            .unwrap();
        exec.ingest_all(ENTRY_B, vec![b(4, 7), b(5, 7)]).unwrap();
        let report = exec.run().unwrap();
        // Q1 (window 2, no filter): (a3,b4) span 1 => 1 result.
        assert_eq!(report.sink_count("Q1"), 1);
        // Q2 (window 4, value > 10): (a1,b4) span 3 val 50, (a3,b4) span 1,
        // (a3,b5) span 2 => 3 results.  (a2,*) fails the filter; (a1,b5) span 4.
        assert_eq!(report.sink_count("Q2"), 3);
        // The shared join state holds everything within the larger window,
        // with no early filtering — the motivation example's memory waste.
        assert!(report.memory.peak_state_tuples >= 4);
        assert!(report.totals.route_comparisons > 0);
    }
}
