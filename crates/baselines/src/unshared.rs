//! No sharing: one independent plan per query.
//!
//! This is the starting point of the paper's motivation (Figure 2): each
//! registered query runs its own selection and its own sliding-window join.
//! Both input streams are broadcast to every per-query pipeline, so state
//! memory and probing work grow linearly with the number of queries.

use state_slice_core::QueryWorkload;
use streamkit::error::Result;
use streamkit::ops::{SelectOp, SinkOp, WindowJoinOp};
use streamkit::{Plan, WindowSpec};

use crate::{BaselinePlan, BroadcastOp, ENTRY_A, ENTRY_B};

/// Options for the unshared plan builder.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnsharedOptions {
    /// Build retaining sinks for result inspection in tests.
    pub retain_results: bool,
}

/// Builds one independent plan per query, sharing nothing.
#[derive(Debug, Default)]
pub struct UnsharedPlanBuilder {
    options: UnsharedOptions,
}

impl UnsharedPlanBuilder {
    /// Builder with default options.
    pub fn new() -> Self {
        UnsharedPlanBuilder::default()
    }

    /// Retain per-query results in the sinks.
    pub fn retaining_results(mut self) -> Self {
        self.options.retain_results = true;
        self
    }

    /// Build the (non-)shared plan for the given workload.
    pub fn build(&self, workload: &QueryWorkload) -> Result<BaselinePlan> {
        let mut b = Plan::builder();
        let n = workload.len();
        let bcast_a = b.add_op(BroadcastOp::new("broadcast_A", n));
        let bcast_b = b.add_op(BroadcastOp::new("broadcast_B", n));
        b.entry(ENTRY_A, bcast_a, 0);
        b.entry(ENTRY_B, bcast_b, 0);

        let mut sink_names = Vec::with_capacity(n);
        for (idx, q) in workload.queries().iter().enumerate() {
            let join = b.add_op(WindowJoinOp::symmetric(
                format!("join_{}", q.name),
                WindowSpec::new(q.window),
                workload.join_condition().clone(),
            ));
            if q.has_filter() {
                let select = b.add_op(SelectOp::new(
                    format!("sigma_{}", q.name),
                    q.filter_a.clone(),
                ));
                b.connect(bcast_a, idx, select, 0);
                b.connect(select, 0, join, 0);
            } else {
                b.connect(bcast_a, idx, join, 0);
            }
            b.connect(bcast_b, idx, join, 1);
            let sink = if self.options.retain_results {
                b.add_op(SinkOp::retaining(q.name.clone()))
            } else {
                b.add_op(SinkOp::new(q.name.clone()))
            };
            b.connect(join, 0, sink, 0);
            sink_names.push(q.name.clone());
        }
        Ok(BaselinePlan {
            plan: b.build()?,
            sink_names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use state_slice_core::JoinQuery;
    use streamkit::tuple::{StreamId, Tuple};
    use streamkit::{Executor, JoinCondition, Predicate, TimeDelta, Timestamp};

    fn a(secs: u64, key: i64, value: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[key, value])
    }

    fn b(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::B, &[key, 0])
    }

    fn workload() -> QueryWorkload {
        QueryWorkload::new(
            vec![
                JoinQuery::new("Q1", TimeDelta::from_secs(2)),
                JoinQuery::with_filter("Q2", TimeDelta::from_secs(4), Predicate::gt(1, 10i64)),
            ],
            JoinCondition::equi(0),
        )
        .unwrap()
    }

    #[test]
    fn unshared_results_match_pull_up() {
        let input_a = vec![a(1, 7, 50), a(2, 7, 5), a(3, 7, 50)];
        let input_b = vec![b(4, 7), b(5, 7)];
        let unshared = UnsharedPlanBuilder::new().build(&workload()).unwrap();
        let mut exec = Executor::new(unshared.plan);
        exec.ingest_all(ENTRY_A, input_a.clone()).unwrap();
        exec.ingest_all(ENTRY_B, input_b.clone()).unwrap();
        let us = exec.run().unwrap();
        let pullup = crate::PullUpPlanBuilder::new().build(&workload()).unwrap();
        let mut exec = Executor::new(pullup.plan);
        exec.ingest_all(ENTRY_A, input_a).unwrap();
        exec.ingest_all(ENTRY_B, input_b).unwrap();
        let pu = exec.run().unwrap();
        assert_eq!(us.sink_count("Q1"), pu.sink_count("Q1"));
        assert_eq!(us.sink_count("Q2"), pu.sink_count("Q2"));
    }

    #[test]
    fn per_query_plans_duplicate_state() {
        // Identical windows aren't allowed, but overlapping state is evident:
        // the total state across the two independent joins exceeds the state
        // of a single largest-window join for the same input.
        let built = UnsharedPlanBuilder::new().build(&workload()).unwrap();
        let mut exec = Executor::new(built.plan);
        // All values pass the filter so both joins hold A tuples.
        exec.ingest_all(ENTRY_A, (1..=4).map(|s| a(s, 0, 50)).collect::<Vec<_>>())
            .unwrap();
        exec.ingest_all(ENTRY_B, (1..=4).map(|s| b(s, 0)).collect::<Vec<_>>())
            .unwrap();
        let report = exec.run().unwrap();
        // Q2's join alone would hold 8 tuples; the duplicated Q1 join adds more.
        assert!(report.memory.peak_state_tuples > 8);
        assert_eq!(built.sink_names.len(), 2);
    }
}
