//! Micro-benchmarks of the columnar kernels against their row-at-a-time
//! counterparts: predicate evaluation over a [`ColumnBatch`] vs per-tuple
//! [`Predicate::eval_counted`], canonical equi-key hashing of a whole key
//! column vs per-tuple hashing, and purging a prefix out of a segmented
//! [`TupleArena`] vs a `VecDeque<Tuple>`.

use std::collections::VecDeque;
use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use streamkit::arena::TupleArena;
use streamkit::columnar::{eval_predicate, ColumnBatch};
use streamkit::join_state::canonical_key_hash;
use streamkit::tuple::{StreamId, Tuple};
use streamkit::{Predicate, Timestamp};

fn tuples(n: usize, keys: i64) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::of_ints(
                Timestamp::from_millis(i as u64),
                StreamId::A,
                &[(i as i64) % keys, i as i64],
            )
        })
        .collect()
}

fn bench_predicate_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_predicate_eval");
    let pred = Predicate::gt(1, 100i64).and(Predicate::gt(0, 8i64));
    for n in [1024usize, 8192] {
        let rows = tuples(n, 17);
        let batch = ColumnBatch::from_tuples(&rows).unwrap();
        group.bench_with_input(BenchmarkId::new("row", n), &n, |bench, _| {
            bench.iter(|| {
                let mut comparisons = 0u64;
                let passed = rows
                    .iter()
                    .filter(|t| pred.eval_counted(t, &mut comparisons))
                    .count();
                black_box((passed, comparisons))
            })
        });
        group.bench_with_input(BenchmarkId::new("columnar", n), &n, |bench, _| {
            bench.iter(|| {
                let mut comparisons = 0u64;
                let passers = eval_predicate(&pred, &batch, &mut comparisons);
                black_box((passers.len(), comparisons))
            })
        });
    }
    group.finish();
}

fn bench_key_hashing(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_key_hash");
    for n in [1024usize, 8192] {
        let rows = tuples(n, 500);
        let batch = ColumnBatch::from_tuples(&rows).unwrap();
        group.bench_with_input(BenchmarkId::new("row", n), &n, |bench, _| {
            bench.iter(|| {
                let mut acc = 0u64;
                for t in &rows {
                    if let Some(h) = canonical_key_hash(t.value(0).unwrap()) {
                        acc ^= h;
                    }
                }
                black_box(acc)
            })
        });
        group.bench_with_input(BenchmarkId::new("columnar", n), &n, |bench, _| {
            bench.iter(|| {
                let mut hashed = batch.clone();
                hashed.hash_key_column(0);
                black_box(hashed.key_classes(0).map(|k| k.len()))
            })
        });
    }
    group.finish();
}

fn bench_purge(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_purge");
    for n in [1024usize, 16384] {
        let rows = tuples(n, 17);
        // Purge the older half of the state, the common steady-state shape.
        let cut = Timestamp::from_millis((n / 2) as u64);
        group.bench_with_input(BenchmarkId::new("vecdeque", n), &n, |bench, _| {
            bench.iter(|| {
                let mut state: VecDeque<Tuple> = rows.iter().cloned().collect();
                while state.front().is_some_and(|t| t.ts < cut) {
                    state.pop_front();
                }
                black_box(state.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("arena", n), &n, |bench, _| {
            bench.iter(|| {
                let mut state = TupleArena::new();
                for t in &rows {
                    state.push(t.clone());
                }
                while state.front().is_some_and(|t| t.ts < cut) {
                    state.pop_front();
                }
                black_box((state.len(), state.live_bytes()))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_predicate_eval,
    bench_key_hashing,
    bench_purge
);
criterion_main!(benches);
