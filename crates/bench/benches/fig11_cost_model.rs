//! Criterion benchmark for the Figure 11 analytical sweep: evaluating the
//! full saving surfaces (memory + CPU vs both alternatives) over a grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_bench::fig11_rows;

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_cost_model");
    for steps in [10usize, 20, 40] {
        group.bench_with_input(BenchmarkId::new("grid", steps), &steps, |b, &steps| {
            b.iter(|| {
                let rows = fig11_rows(steps);
                assert!(!rows.is_empty());
                rows.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
