//! Criterion benchmark behind Figure 17: run the three sharing strategies on
//! a scaled-down Section 7.2 scenario; the returned measurement is dominated
//! by join-state maintenance, the quantity Figure 17 plots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_bench::{run_strategy, Strategy};
use ss_workload::{Scenario, WindowDistribution};

fn scenario(rate: f64) -> Scenario {
    Scenario {
        rate,
        duration_secs: 6.0,
        num_queries: 3,
        distribution: WindowDistribution::Uniform,
        sel_filter: 0.5,
        sel_join: 0.1,
        seed: 7,
    }
}

fn bench_fig17(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_state_memory");
    group.sample_size(10);
    for rate in [20.0, 80.0] {
        for strategy in Strategy::FIGURE_17_18 {
            let id = BenchmarkId::new(strategy.label(), rate as u64);
            group.bench_with_input(id, &rate, |b, &rate| {
                b.iter(|| {
                    let metrics = run_strategy(&scenario(rate), strategy).expect("run");
                    metrics.avg_state_tuples
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig17);
criterion_main!(benches);
