//! Criterion benchmark behind Figure 18: time one full execution of each
//! sharing strategy on the Section 7.2 workload.  The wall time per run is
//! the inverse of the service rate the figure plots (fixed total input), so
//! a faster benchmark time is a higher service rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_bench::{run_strategy, Strategy};
use ss_workload::{Scenario, WindowDistribution};

fn scenario(rate: f64, sel_join: f64) -> Scenario {
    Scenario {
        rate,
        duration_secs: 6.0,
        num_queries: 3,
        distribution: WindowDistribution::Uniform,
        sel_filter: 0.8,
        sel_join,
        seed: 7,
    }
}

fn bench_fig18(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_service_rate");
    group.sample_size(10);
    for sel_join in [0.025, 0.1] {
        for strategy in Strategy::FIGURE_17_18 {
            let id = BenchmarkId::new(strategy.label(), format!("S1={sel_join}"));
            group.bench_with_input(id, &sel_join, |b, &sel_join| {
                b.iter(|| {
                    let metrics = run_strategy(&scenario(60.0, sel_join), strategy).expect("run");
                    metrics.total_outputs
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig18);
criterion_main!(benches);
