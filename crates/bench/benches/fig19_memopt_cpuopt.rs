//! Criterion benchmark behind Figure 19: Mem-Opt vs CPU-Opt chains on
//! many-query workloads with skewed window distributions (no selections,
//! S⋈ = 0.025).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ss_bench::{run_strategy, Strategy};
use ss_workload::{Scenario, WindowDistribution};

fn scenario(num_queries: usize, distribution: WindowDistribution) -> Scenario {
    Scenario {
        rate: 40.0,
        duration_secs: 5.0,
        num_queries,
        distribution,
        sel_filter: 1.0,
        sel_join: 0.025,
        seed: 7,
    }
}

fn bench_fig19(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig19_memopt_vs_cpuopt");
    group.sample_size(10);
    for (num_queries, dist) in [
        (12usize, WindowDistribution::Uniform),
        (12, WindowDistribution::SmallLarge),
        (24, WindowDistribution::SmallLarge),
    ] {
        for strategy in [Strategy::StateSliceMemOpt, Strategy::StateSliceCpuOpt] {
            let id = BenchmarkId::new(
                strategy.label(),
                format!("{}q-{}", num_queries, dist.name()),
            );
            group.bench_function(id, |b| {
                b.iter(|| {
                    let metrics =
                        run_strategy(&scenario(num_queries, dist), strategy).expect("run");
                    metrics.total_outputs
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig19);
criterion_main!(benches);
