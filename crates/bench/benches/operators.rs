//! Micro-benchmarks of the core operators: regular window join vs the sliced
//! chain, the chain optimizers and predicate evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use state_slice_core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
use state_slice_core::{ChainBuilder, CostConfig, JoinQuery, QueryWorkload, SharedChainPlan};
use streamkit::ops::{RouteTarget, RouterOp, SinkOp, WindowJoinOp};
use streamkit::tuple::{StreamId, Tuple};
use streamkit::{Executor, JoinCondition, Plan, Predicate, TimeDelta, Timestamp, WindowSpec};

fn streams(n: u64) -> (Vec<Tuple>, Vec<Tuple>) {
    let a = (0..n)
        .map(|i| {
            Tuple::of_ints(
                Timestamp::from_millis(i * 37),
                StreamId::A,
                &[(i % 17) as i64, i as i64],
            )
        })
        .collect();
    let b = (0..n)
        .map(|i| {
            Tuple::of_ints(
                Timestamp::from_millis(i * 41),
                StreamId::B,
                &[(i % 17) as i64, i as i64],
            )
        })
        .collect();
    (a, b)
}

fn workload(windows: &[u64]) -> QueryWorkload {
    QueryWorkload::new(
        windows
            .iter()
            .enumerate()
            .map(|(i, &w)| JoinQuery::new(format!("Q{}", i + 1), TimeDelta::from_secs(w)))
            .collect(),
        JoinCondition::equi(0),
    )
    .unwrap()
}

fn bench_regular_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("regular_window_join");
    group.sample_size(20);
    for n in [500u64, 2000] {
        group.bench_with_input(BenchmarkId::new("tuples", n), &n, |bench, &n| {
            let (a, b) = streams(n);
            bench.iter(|| {
                let mut builder = Plan::builder();
                let join = builder.add_op(WindowJoinOp::symmetric(
                    "join",
                    WindowSpec::from_secs(10),
                    JoinCondition::equi(0),
                ));
                let router = builder.add_op(RouterOp::new(
                    "router",
                    vec![RouteTarget::window_only(TimeDelta::from_secs(10))],
                ));
                let sink = builder.add_op(SinkOp::new("q"));
                builder.connect(join, 0, router, 0);
                builder.connect(router, 0, sink, 0);
                builder.entry("A", join, 0);
                builder.entry("B", join, 1);
                let mut exec = Executor::new(builder.build().unwrap());
                exec.ingest_all("A", a.clone()).unwrap();
                exec.ingest_all("B", b.clone()).unwrap();
                exec.run().unwrap().total_output()
            })
        });
    }
    group.finish();
}

fn bench_chain_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("sliced_chain_execution");
    group.sample_size(20);
    for num_queries in [3usize, 8] {
        let windows: Vec<u64> = (1..=num_queries as u64).map(|i| i * 3).collect();
        let w = workload(&windows);
        group.bench_with_input(
            BenchmarkId::new("queries", num_queries),
            &num_queries,
            |bench, _| {
                let (a, b) = streams(1500);
                let spec = ChainBuilder::new(w.clone()).memory_optimal();
                bench.iter(|| {
                    let shared =
                        SharedChainPlan::build(&w, &spec, &PlannerOptions::default()).unwrap();
                    let mut exec = Executor::new(shared.plan);
                    exec.ingest_all(CHAIN_ENTRY, merge_streams(a.clone(), b.clone()))
                        .unwrap();
                    exec.run().unwrap().total_output()
                })
            },
        );
    }
    group.finish();
}

fn bench_chain_optimizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_buildup");
    for n in [12usize, 36, 96] {
        let windows: Vec<u64> = (1..=n as u64).collect();
        let w = workload(&windows);
        let builder = ChainBuilder::new(w);
        let cfg = CostConfig::default();
        group.bench_with_input(BenchmarkId::new("cpu_opt_dijkstra", n), &n, |bench, _| {
            bench.iter(|| builder.cpu_optimal(&cfg).unwrap().spec.num_slices())
        });
    }
    group.finish();
}

fn bench_predicates(c: &mut Criterion) {
    let tuple = Tuple::of_ints(Timestamp::from_secs(1), StreamId::A, &[5, 100]);
    let pred = Predicate::gt(1, 50i64).and(Predicate::le(0, 10i64));
    c.bench_function("predicate_eval", |b| {
        b.iter(|| {
            let mut count = 0u64;
            for _ in 0..1000 {
                if pred.eval(&tuple) {
                    count += 1;
                }
            }
            count
        })
    });
}

criterion_group!(
    benches,
    bench_regular_join,
    bench_chain_execution,
    bench_chain_optimizers,
    bench_predicates
);
criterion_main!(benches);
