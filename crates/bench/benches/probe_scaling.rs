//! Probe-cost scaling: hash-indexed vs linear-scan join state.
//!
//! Sweeps resident state size × equi-key cardinality and times a pure
//! probe loop against a prefilled [`JoinState`], for the hash-indexed state
//! and the linear-scan fallback.  The indexed probe cost should be flat in
//! the state size (it scales with the bucket population, i.e. the matches),
//! while the scan cost grows linearly with the state.
//!
//! Run: `cargo bench -p ss_bench --bench probe_scaling`

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use streamkit::join_state::JoinState;
use streamkit::tuple::StreamId;
use streamkit::{JoinCondition, Timestamp, Tuple};

const NUM_PROBES: usize = 1_000;

fn tuple(i: usize, key: i64) -> Tuple {
    Tuple::of_ints(Timestamp::from_millis(i as u64 + 1), StreamId::A, &[key])
}

fn prefill(state: &mut JoinState, state_size: usize, keys: usize) {
    for i in 0..state_size {
        state.push(tuple(i, (i % keys) as i64));
    }
}

/// Evaluate the condition against every candidate of `NUM_PROBES` probes,
/// returning the match count (kept live via `black_box`).
fn probe_loop(state: &JoinState, keys: usize, condition: &JoinCondition) -> u64 {
    let mut matches = 0u64;
    let mut comparisons = 0u64;
    for p in 0..NUM_PROBES {
        let probe = tuple(1_000_000, (p % keys) as i64);
        for stored in state.probe_candidates(&probe) {
            if condition.eval_counted(stored, &probe, &mut comparisons) {
                matches += 1;
            }
        }
    }
    black_box(comparisons);
    matches
}

fn bench_probe_scaling(c: &mut Criterion) {
    let condition = JoinCondition::equi(0);
    let mut group = c.benchmark_group("probe_scaling");
    group.sample_size(10);
    for &state_size in &[1_000usize, 4_000, 16_000] {
        for &keys in &[16usize, 256, 4_096] {
            let mut indexed = JoinState::for_condition(&condition, true);
            prefill(&mut indexed, state_size, keys);
            group.bench_with_input(
                BenchmarkId::new(format!("indexed/keys={keys}"), state_size),
                &state_size,
                |b, _| b.iter(|| probe_loop(&indexed, keys, &condition)),
            );
            let mut scan = JoinState::linear();
            prefill(&mut scan, state_size, keys);
            group.bench_with_input(
                BenchmarkId::new(format!("scan/keys={keys}"), state_size),
                &state_size,
                |b, _| b.iter(|| probe_loop(&scan, keys, &condition)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_probe_scaling);
criterion_main!(benches);
