//! Adaptive re-optimization harness behind `bench_report -- --adaptive`.
//!
//! Drives a three-phase drifting workload (join selectivity collapses from
//! `SEL_HI` to `SEL_LO` a third of the way in, then recovers) through four
//! executors over the **same** input:
//!
//! * `static-mem-opt` — the Mem-Opt chain, which is also what CPU-Opt picks
//!   under the high-selectivity phases (routing results is expensive),
//! * `static-cpu-opt` — the chain CPU-Opt picks when costed with the
//!   low-selectivity phase's statistics (slices merged),
//! * `adaptive` — starts on the Mem-Opt chain with the phase-1 statistics
//!   declared, and lets a [`Supervisor`] re-cost and re-cut live as its
//!   drift detectors confirm each phase transition,
//! * a **stationary control** — the adaptive executor over a no-drift
//!   profile, whose adaptation log must stay empty.
//!
//! The oracle-best static is whichever static run serviced faster; the
//! adaptive run should track it (and beat the worse static) while all runs
//! deliver bit-identical per-query result counts (slicing never changes
//! what the union delivers).

use ss_workload::{DriftPhase, DriftProfile, KeyDistribution, WorkloadConfig, JOIN_KEY_FIELD};
use state_slice_core::adaptive::{
    AdaptationAction, AdaptationLog, AdaptationRecord, Supervisor, SupervisorConfig,
};
use state_slice_core::live::{LiveOptions, LiveReslicer, SliceStrategy};
use state_slice_core::planner::merge_streams;
use state_slice_core::{CostConfig, JoinQuery, QueryWorkload};
use streamkit::error::{Result, StreamError};
use streamkit::{JoinCondition, TimeDelta, Tuple};

use crate::report::{executor_config, RunPerf};

/// Join selectivity of the high-selectivity phases (1 and 3).
pub const SEL_HI: f64 = 0.1;
/// Join selectivity of the collapsed middle phase.
pub const SEL_LO: f64 = 0.002;
/// Supervisor observations per run (snapshot cadence = duration / this).
pub const OBSERVATIONS: usize = 12;

/// One executor variant's measured run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveRun {
    /// Variant name (`static-mem-opt`, `static-cpu-opt`, `adaptive`).
    pub name: String,
    /// Performance counters of the (best-of-reps) run.
    pub perf: RunPerf,
    /// Live re-plans applied (adaptive only).
    pub replans: usize,
    /// Total migration stall in milliseconds.
    pub total_pause_ms: f64,
    /// Per-query result counts, in query order.
    pub sink_counts: Vec<(String, u64)>,
}

/// The adaptive report written to `BENCH_adaptive.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveBenchReport {
    /// Stream duration in seconds.
    pub duration_secs: f64,
    /// Arrival rate per stream (tuples/second).
    pub rate: f64,
    /// Repetitions per variant (best service rate kept).
    pub reps: usize,
    /// Query windows in seconds.
    pub windows_secs: Vec<f64>,
    /// Phase schedule: `(start_secs, sel_join)`.
    pub phases: Vec<(f64, f64)>,
    /// The three measured runs.
    pub runs: Vec<AdaptiveRun>,
    /// The adaptive run's confirmed decisions.
    pub log: Vec<AdaptationRecord>,
    /// Decisions confirmed on the stationary control run (must be none).
    pub control_log_len: usize,
    /// `true` iff every run delivered identical per-query counts.
    pub results_match: bool,
}

impl AdaptiveBenchReport {
    fn run(&self, name: &str) -> &AdaptiveRun {
        self.runs
            .iter()
            .find(|r| r.name == name)
            .expect("all three variants always run")
    }

    /// Service rate of the better static run.
    pub fn oracle_service_rate(&self) -> f64 {
        self.run("static-mem-opt")
            .perf
            .service_rate
            .max(self.run("static-cpu-opt").perf.service_rate)
    }

    /// Service rate of the worse static run.
    pub fn worst_static_service_rate(&self) -> f64 {
        self.run("static-mem-opt")
            .perf
            .service_rate
            .min(self.run("static-cpu-opt").perf.service_rate)
    }

    /// Adaptive service rate relative to the oracle-best static.
    pub fn adaptive_vs_oracle(&self) -> f64 {
        let oracle = self.oracle_service_rate();
        if oracle <= 0.0 {
            return 0.0;
        }
        self.run("adaptive").perf.service_rate / oracle
    }

    /// Adaptive service rate relative to the worse static.
    pub fn adaptive_vs_worst(&self) -> f64 {
        let worst = self.worst_static_service_rate();
        if worst <= 0.0 {
            return 0.0;
        }
        self.run("adaptive").perf.service_rate / worst
    }

    /// Serialise to the `BENCH_adaptive.json` format (stable key order, no
    /// external JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"adaptive_reoptimization\",\n");
        out.push_str(&format!(
            "  \"command\": \"SS_DURATION_SECS={:.0} SS_BENCH_RATE={:.0} SS_BENCH_REPS={} cargo run --release -p ss_bench --bin bench_report -- --adaptive\",\n",
            self.duration_secs, self.rate, self.reps,
        ));
        out.push_str(&format!(
            "  \"workload\": {{\"style\": \"equi-drift\", \"duration_secs\": {:.1}, \"rate\": {:.1}, \"reps\": {}, \"windows_secs\": {:?}, \"phases\": [{}], \"observations\": {}}},\n",
            self.duration_secs,
            self.rate,
            self.reps,
            self.windows_secs,
            self.phases
                .iter()
                .map(|(at, sel)| format!("{{\"at_secs\": {at:.1}, \"sel_join\": {sel}}}"))
                .collect::<Vec<_>>()
                .join(", "),
            OBSERVATIONS,
        ));
        out.push_str(&format!(
            "  \"results_match\": {},\n  \"adaptive_vs_oracle\": {:.3},\n  \"adaptive_vs_worst\": {:.3},\n  \"control_log_len\": {},\n",
            self.results_match,
            self.adaptive_vs_oracle(),
            self.adaptive_vs_worst(),
            self.control_log_len,
        ));
        out.push_str("  \"runs\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            let sinks = run
                .sink_counts
                .iter()
                .map(|(name, count)| format!("\"{name}\": {count}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"service_rate\": {:.1}, \"elapsed_secs\": {:.4}, \"total_comparisons\": {}, \"total_outputs\": {}, \"peak_state_tuples\": {}, \"replans\": {}, \"total_pause_ms\": {:.3}, \"sink_counts\": {{{}}}}}{}\n",
                run.name,
                run.perf.service_rate,
                run.perf.elapsed_secs,
                run.perf.total_comparisons,
                run.perf.total_outputs,
                run.perf.peak_state_tuples,
                run.replans,
                run.total_pause_ms,
                sinks,
                if i + 1 < self.runs.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n  \"adaptation_log\": [\n");
        for (i, record) in self.log.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"seq\": {}, \"stream_secs\": {:.1}, \"trigger\": \"{}\", \"action\": {}, \"measured_sel\": {:.5}, \"modeled_win\": {:.0}, \"modeled_pause\": {:.0}}}{}\n",
                record.seq,
                record.stream_secs,
                record.trigger.name(),
                action_json(&record.action),
                record.measured.sel_join,
                record.modeled_win,
                record.modeled_pause,
                if i + 1 < self.log.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn action_json(action: &AdaptationAction) -> String {
    match action {
        AdaptationAction::KeepPlan => "{\"kind\": \"keep-plan\"}".to_string(),
        AdaptationAction::Replan {
            strategy,
            merges,
            splits,
            pause_secs,
        } => format!(
            "{{\"kind\": \"replan\", \"strategy\": \"{strategy}\", \"merges\": {merges}, \"splits\": {splits}, \"pause_ms\": {:.3}}}",
            1e3 * pause_secs
        ),
        AdaptationAction::Rescale {
            from,
            to,
            pause_secs,
        } => format!(
            "{{\"kind\": \"rescale\", \"from\": {from}, \"to\": {to}, \"pause_ms\": {:.3}}}",
            1e3 * pause_secs
        ),
        AdaptationAction::Vetoed { strategy } => {
            format!("{{\"kind\": \"vetoed\", \"strategy\": \"{strategy}\"}}")
        }
        AdaptationAction::Blocked { reason } => {
            format!("{{\"kind\": \"blocked\", \"reason\": \"{reason}\"}}")
        }
    }
}

/// Query windows scaled to the run duration so the supervisor's warm-up
/// (one largest window) fits even the CI smoke duration.
fn drift_windows(duration_secs: f64) -> Vec<f64> {
    vec![
        duration_secs / 12.0,
        duration_secs / 6.0,
        duration_secs / 4.0,
    ]
}

fn drift_workload(duration_secs: f64) -> Result<QueryWorkload> {
    let queries = drift_windows(duration_secs)
        .into_iter()
        .enumerate()
        .map(|(i, w)| JoinQuery::new(format!("Q{}", i + 1), TimeDelta::from_secs_f64(w)))
        .collect();
    QueryWorkload::new(queries, JoinCondition::equi(JOIN_KEY_FIELD))
}

fn base_config(duration_secs: f64, rate: f64) -> WorkloadConfig {
    WorkloadConfig {
        rate,
        duration_secs,
        sel_join: SEL_HI,
        sel_filter: 1.0,
        seed: 7,
        key_dist: KeyDistribution::Uniform,
    }
}

/// The drifting profile: high → collapsed → high join selectivity, in
/// equal thirds.
pub fn drift_profile(duration_secs: f64, rate: f64) -> DriftProfile {
    let base = base_config(duration_secs, rate);
    let phase = |at, sel| DriftPhase {
        at_secs: at,
        rate,
        sel_join: sel,
        key_dist: KeyDistribution::Uniform,
    };
    DriftProfile::new(
        base,
        vec![
            phase(0.0, SEL_HI),
            phase(duration_secs / 3.0, SEL_LO),
            phase(2.0 * duration_secs / 3.0, SEL_HI),
        ],
    )
    .expect("static schedule is well-formed")
}

fn declared_cost(rate: f64, sel_join: f64) -> CostConfig {
    // csys matches the calibration of `runner::cost_config`.
    CostConfig {
        lambda_a: rate,
        lambda_b: rate,
        sel_join,
        csys: 10.0,
    }
}

fn supervisor_config() -> SupervisorConfig {
    SupervisorConfig {
        rate_ratio: 1.8,
        sel_ratio: 3.0,
        // The snapshot cadence is coarse and the selectivity estimate is
        // EWMA-smoothed, so a single confirmed breach suffices.
        confirm: 1,
        ..SupervisorConfig::default()
    }
}

/// Cut the merged input at every observation boundary.
fn observation_cuts(input: &[Tuple], duration_secs: f64) -> Vec<usize> {
    let step = duration_secs / OBSERVATIONS as f64;
    let mut cuts = Vec::with_capacity(OBSERVATIONS);
    let mut idx = 0;
    for k in 1..OBSERVATIONS {
        let at = k as f64 * step;
        while idx < input.len() && input[idx].ts.as_secs_f64() < at {
            idx += 1;
        }
        cuts.push(idx);
    }
    cuts.push(input.len());
    cuts
}

/// Run one variant over the input, observing (adaptive) or just draining
/// (static) at every cut.  Returns the run's counters and, for the adaptive
/// variant, the supervisor's log.
fn run_variant(
    workload: &QueryWorkload,
    input: &[Tuple],
    cuts: &[usize],
    strategy: SliceStrategy,
    mut supervisor: Option<&mut Supervisor>,
) -> Result<AdaptiveRun> {
    let mut live = LiveReslicer::launch(
        workload.clone(),
        LiveOptions {
            executor: executor_config(),
            strategy,
            ..LiveOptions::default()
        },
    )?;
    let mut done = 0;
    for &cut in cuts {
        live.ingest_all(input[done..cut].to_vec())?;
        done = cut;
        match supervisor.as_deref_mut() {
            Some(sup) => {
                sup.observe(&mut live)?;
            }
            None => {
                live.drain()?;
            }
        }
    }
    let outcome = live.finish()?;
    let report = &outcome.report;
    let mut sink_counts: Vec<(String, u64)> = outcome
        .queries
        .iter()
        .map(|q| (q.name.clone(), q.count))
        .collect();
    sink_counts.sort();
    Ok(AdaptiveRun {
        name: String::new(),
        perf: RunPerf {
            service_rate: report.service_rate(),
            elapsed_secs: report.elapsed_secs,
            probe_comparisons: report.totals.probe_comparisons,
            total_comparisons: report.totals.total_comparisons(),
            total_outputs: report.total_output(),
            peak_state_tuples: report.memory.peak_state_tuples,
            peak_state_bytes: report.memory.peak_state_bytes,
            avg_state_bytes: report.memory.avg_state_bytes,
            peak_capacity_bytes: report.memory.peak_capacity_bytes,
        },
        replans: outcome.migrations.len(),
        // `.max(0.0)`: an empty migration list sums to f64's additive
        // identity -0.0, which would serialize as "-0.000".
        total_pause_ms: (1e3 * outcome.migrations.iter().map(|m| m.pause_secs).sum::<f64>())
            .max(0.0),
        sink_counts,
    })
}

/// Run the full comparison: two statics, the adaptive executor, and the
/// stationary control, `reps` times each (best service rate kept — the
/// workload is deterministic, only wall-clock noise varies).
pub fn run_adaptive_bench(
    duration_secs: f64,
    rate: f64,
    reps: usize,
) -> Result<(AdaptiveBenchReport, AdaptationLog)> {
    let workload = drift_workload(duration_secs)?;
    let profile = drift_profile(duration_secs, rate);
    let (a, b) = profile.generate_pair();
    let input = merge_streams(a, b);
    if input.is_empty() {
        return Err(StreamError::InvalidConfig(
            "adaptive bench needs a non-empty stream".to_string(),
        ));
    }
    let cuts = observation_cuts(&input, duration_secs);
    let declared_hi = declared_cost(rate, SEL_HI);
    let declared_lo = declared_cost(rate, SEL_LO);
    let variants: Vec<(&str, SliceStrategy, bool)> = vec![
        ("static-mem-opt", SliceStrategy::MemOpt, false),
        ("static-cpu-opt", SliceStrategy::CpuOpt(declared_lo), false),
        ("adaptive", SliceStrategy::MemOpt, true),
    ];
    let mut runs = Vec::with_capacity(variants.len());
    let mut log = AdaptationLog::default();
    for (name, strategy, adaptive) in variants {
        let mut best: Option<AdaptiveRun> = None;
        for _ in 0..reps.max(1) {
            let mut supervisor =
                adaptive.then(|| Supervisor::new(declared_hi, supervisor_config()));
            let mut run = run_variant(
                &workload,
                &input,
                &cuts,
                strategy.clone(),
                supervisor.as_mut(),
            )?;
            run.name = name.to_string();
            if let Some(sup) = supervisor {
                log = sup.into_log();
            }
            best = match best {
                Some(prev) if prev.perf.service_rate >= run.perf.service_rate => Some(prev),
                _ => Some(run),
            };
        }
        runs.push(best.expect("at least one rep"));
    }
    // Stationary control: same adaptive machinery, no drift — the log must
    // stay empty.
    let control_profile = DriftProfile::stationary(base_config(duration_secs, rate));
    let (ca, cb) = control_profile.generate_pair();
    let control_input = merge_streams(ca, cb);
    let control_cuts = observation_cuts(&control_input, duration_secs);
    let mut control_sup = Supervisor::new(declared_hi, supervisor_config());
    run_variant(
        &workload,
        &control_input,
        &control_cuts,
        SliceStrategy::MemOpt,
        Some(&mut control_sup),
    )?;
    let control_log_len = control_sup.log().len();
    let results_match = runs
        .windows(2)
        .all(|pair| pair[0].sink_counts == pair[1].sink_counts);
    let report = AdaptiveBenchReport {
        duration_secs,
        rate,
        reps: reps.max(1),
        windows_secs: drift_windows(duration_secs),
        phases: profile
            .phases()
            .iter()
            .map(|p| (p.at_secs, p.sel_join))
            .collect(),
        runs,
        log: log.records().to_vec(),
        control_log_len,
        results_match,
    };
    Ok((report, log))
}

#[cfg(test)]
mod tests {
    use super::*;
    use state_slice_core::adaptive::AdaptationAction;

    #[test]
    fn adaptive_tracks_the_drift_and_control_stays_silent() {
        let (report, log) = run_adaptive_bench(12.0, 40.0, 1).unwrap();
        assert!(report.results_match, "runs: {:#?}", report.runs);
        assert_eq!(report.control_log_len, 0, "control confirmed drift");
        assert!(!log.is_empty(), "no drift confirmed on the drifting run");
        assert!(
            log.records()
                .iter()
                .any(|r| matches!(r.action, AdaptationAction::Replan { .. })),
            "no re-plan applied: {:#?}",
            log.records()
        );
        let adaptive = report.run("adaptive");
        assert!(adaptive.replans > 0);
        assert!(adaptive.perf.total_outputs > 0);
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"adaptive_reoptimization\""));
        assert!(json.contains("\"results_match\": true"));
        assert!(json.contains("\"control_log_len\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
