//! Persistent perf harness: hash-indexed join probes, sharded scaling,
//! batch-at-a-time execution and live query churn.
//!
//! Four modes:
//!
//! * **default** — runs the equi-join-heavy fig18-style workload under the
//!   state-slice chain and the selection pull-up baseline (each with and
//!   without the `JoinState` hash index), plus an operator microbench over
//!   state size × key cardinality, and writes `BENCH_join.json`.
//! * **`--shards N`** — runs the same fig18-style workload on the sharded
//!   parallel chain for every power-of-two shard count up to `N` (so
//!   `--shards 8` sweeps 1/2/4/8; a comma list like `--shards 1,2,4,8`
//!   selects explicit counts) and writes `BENCH_shard.json` with the
//!   service-rate scaling curve.
//! * **`--batch N`** — runs the same fig18-style workload once on the
//!   item-at-a-time executor path and once per batch size on the vectorized
//!   path, sweeping the 1/16/64/256 ladder up to `N` (a comma list selects
//!   explicit sizes), and writes `BENCH_batch.json` with the service-rate
//!   curve vs batch size.
//! * **`--churn I`** — runs the same fig18-style workload on a live
//!   reslicing executor while queries enter/leave by a Poisson process with
//!   mean interval `I` seconds (a comma list sweeps explicit intervals,
//!   0 = no churn; a single value sweeps `0,I`), checks every query
//!   instance's results against a statically-planned oracle, and writes
//!   `BENCH_churn.json` with service rate and migration pause time vs churn
//!   rate.
//! * **`--skew E`** — runs the fig18-style workload with Zipf(`E`)-skewed
//!   join keys on one shard (the correctness oracle), on N shards with plain
//!   hash routing, and on N shards with skew-aware hot-key replication
//!   (`SS_SKEW_SHARDS`, default 4), and writes `BENCH_skew.json` with the
//!   busiest-shard load shares.
//! * **`--adaptive`** — runs an equi workload whose join selectivity
//!   collapses and recovers mid-stream under two statically-planned chains
//!   (Mem-Opt, and the chain CPU-Opt picks for the collapsed phase), under
//!   an adaptive supervisor that re-costs and re-cuts the chain live, and
//!   under a stationary control (whose adaptation log must stay empty), and
//!   writes `BENCH_adaptive.json` (`SS_BENCH_REPS` repetitions, default 3,
//!   best service rate kept per variant).
//! * **`--band W`** — runs a band-join workload (`|a.key − b.key| ≤ W`, no
//!   equi component, so no hash index applies) at three arrival rates, each
//!   point once with the value-ordered band index and once with linear-scan
//!   probes on identical input, checks per-sink results and drained final
//!   states for equality, and writes `BENCH_band.json` with the
//!   probe-comparison ratios.
//! * **`--recovery`** — runs the fig18-style equi workload (punctuated every
//!   stream second) under a crash-recovery supervisor twice: uninterrupted,
//!   and with a deterministic worker panic injected at a mid-stream
//!   punctuation epoch (recovered from the last punctuation-aligned
//!   checkpoint plus a replay of the ring), and writes
//!   `BENCH_recovery.json` with the recovery latency, the replayed-tuple
//!   volume and the result-equivalence check (`SS_RECOVERY_SHARDS`,
//!   default 4).
//!
//! Usage: `cargo run --release -p ss_bench --bin bench_report
//! [-- --shards 8 | --batch 256 | --churn 10,30 | --skew 1.2 | --adaptive |
//! --recovery]`.  Set
//! `SS_DURATION_SECS` to scale the stream length (default 30 s),
//! `SS_BENCH_RATE` to change the per-stream arrival rate (default 100 t/s)
//! and `SS_BENCH_OUT` to override the output path.

use ss_bench::adaptive::run_adaptive_bench;
use ss_bench::churn::run_churn_bench;
use ss_bench::default_duration_secs;
use ss_bench::recovery::run_recovery_bench;
use ss_bench::report::{
    run_band_bench, run_batch_bench, run_columnar_bench, run_join_bench, run_shard_bench,
    run_skew_bench,
};

/// Parse a `--shards` value: a comma list of counts, or a single maximum
/// swept in powers of two starting at 1.  Unparsable or zero values are an
/// error — silently substituting a default would overwrite the committed
/// report with a sweep the operator did not ask for.
fn shard_counts(arg: &str) -> Result<Vec<usize>, String> {
    let parse = |part: &str| {
        part.trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("invalid --shards value '{part}' (need a positive integer)"))
    };
    if arg.contains(',') {
        arg.split(',').map(parse).collect()
    } else {
        let max = parse(arg)?;
        let mut counts = Vec::new();
        let mut n = 1;
        while n <= max {
            counts.push(n);
            n *= 2;
        }
        Ok(counts)
    }
}

/// Parse a `--batch` value: a comma list of batch sizes, or a single maximum
/// swept over the 1/16/64/256 ladder (capped at the maximum, which is always
/// included).
fn batch_sizes(arg: &str) -> Result<Vec<usize>, String> {
    let parse = |part: &str| {
        part.trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("invalid --batch value '{part}' (need a positive integer)"))
    };
    if arg.contains(',') {
        arg.split(',').map(parse).collect()
    } else {
        let max = parse(arg)?;
        let mut sizes: Vec<usize> = [1usize, 16, 64, 256]
            .into_iter()
            .filter(|&n| n < max)
            .collect();
        sizes.push(max);
        Ok(sizes)
    }
}

/// Parse a `--churn` value: a comma list of mean churn-event intervals in
/// seconds (0 = no churn), or a single positive interval which is swept
/// against the no-churn baseline.
fn churn_intervals(arg: &str) -> Result<Vec<f64>, String> {
    let parse = |part: &str| {
        part.trim()
            .parse::<f64>()
            .ok()
            .filter(|n| n.is_finite() && *n >= 0.0)
            .ok_or_else(|| {
                format!("invalid --churn value '{part}' (need a non-negative interval in seconds)")
            })
    };
    if arg.contains(',') {
        arg.split(',').map(parse).collect()
    } else {
        let interval = parse(arg)?;
        if interval == 0.0 {
            Ok(vec![0.0])
        } else {
            Ok(vec![0.0, interval])
        }
    }
}

fn main() {
    let duration = default_duration_secs();
    let rate = std::env::var("SS_BENCH_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &f64| *v > 0.0)
        .unwrap_or(100.0);

    let args: Vec<String> = std::env::args().collect();
    // A flag with a missing value is an error, not a silent fall-through to
    // the default join bench (which would run for minutes and overwrite the
    // wrong report).
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("bench_report: {flag} requires a value");
                std::process::exit(2);
            })
        })
    };
    let shards_arg = flag_value("--shards");
    let batch_arg = flag_value("--batch");
    let churn_arg = flag_value("--churn");
    let skew_arg = flag_value("--skew");
    let band_arg = flag_value("--band");
    let columnar = args.iter().any(|a| a == "--columnar");
    let adaptive = args.iter().any(|a| a == "--adaptive");
    let recovery = args.iter().any(|a| a == "--recovery");

    if recovery {
        let shards = std::env::var("SS_RECOVERY_SHARDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n >= 1)
            .unwrap_or(4);
        let out_path =
            std::env::var("SS_BENCH_OUT").unwrap_or_else(|_| "BENCH_recovery.json".to_string());
        eprintln!(
            "# bench_report: crash recovery on the fig18-style equi workload ({duration} s, {rate} t/s, {shards} shard(s))"
        );
        let report = run_recovery_bench(duration, rate, shards).expect("recovery bench harness");
        for run in &report.runs {
            eprintln!(
                "{:<14} service rate {:>12.1} t/s, outputs {}, checkpoints {}, recoveries {}",
                run.name,
                run.perf.service_rate,
                run.perf.total_outputs,
                run.checkpoints,
                run.recoveries,
            );
        }
        for rec in report.log.recoveries() {
            eprintln!(
                "recovered from checkpoint #{} (epoch {}): replayed {} items, dropped {} in-flight, {:.2} ms total ({:.2} ms restore) [{}]",
                rec.checkpoint_seq,
                rec.checkpoint_epoch,
                rec.replayed,
                rec.dropped_inflight,
                1e3 * rec.recovery_secs,
                1e3 * rec.restore_secs,
                rec.trigger,
            );
        }
        assert!(
            report.results_match,
            "crash-recovered results diverged from the uninterrupted session"
        );
        assert_eq!(
            report.log.recoveries().len(),
            1,
            "the armed panic must fire exactly one recovery"
        );
        let json = report.to_json();
        std::fs::write(&out_path, &json).expect("write BENCH_recovery.json");
        eprintln!("# wrote {out_path}");
        print!("{json}");
        return;
    }

    if adaptive {
        let reps = std::env::var("SS_BENCH_REPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n >= 1)
            .unwrap_or(3);
        let out_path =
            std::env::var("SS_BENCH_OUT").unwrap_or_else(|_| "BENCH_adaptive.json".to_string());
        eprintln!(
            "# bench_report: adaptive re-optimization on a drifting equi workload ({duration} s, {rate} t/s, {reps} rep(s))"
        );
        let (report, log) =
            run_adaptive_bench(duration, rate, reps).expect("adaptive bench harness");
        for run in &report.runs {
            eprintln!(
                "{:<16} service rate {:>12.1} t/s, comparisons {}, outputs {}, replans {}, pause {:.2} ms",
                run.name,
                run.perf.service_rate,
                run.perf.total_comparisons,
                run.perf.total_outputs,
                run.replans,
                run.total_pause_ms,
            );
        }
        for record in log.records() {
            eprintln!(
                "t={:>6.1}s {:<12} S⋈={:.5} win {:>10.0} / pause {:>8.0} -> {:?}",
                record.stream_secs,
                record.trigger.name(),
                record.measured.sel_join,
                record.modeled_win,
                record.modeled_pause,
                record.action,
            );
        }
        eprintln!(
            "adaptive vs oracle-best static: {:.3}x; vs worse static: {:.3}x; control decisions: {}",
            report.adaptive_vs_oracle(),
            report.adaptive_vs_worst(),
            report.control_log_len,
        );
        assert!(
            report.results_match,
            "adaptive / static runs diverged in per-query results"
        );
        assert!(
            !log.is_empty(),
            "the drifting run confirmed no drift at all"
        );
        assert_eq!(
            report.control_log_len, 0,
            "the stationary control confirmed phantom drift"
        );
        let json = report.to_json();
        std::fs::write(&out_path, &json).expect("write BENCH_adaptive.json");
        eprintln!("# wrote {out_path}");
        print!("{json}");
        return;
    }

    if columnar {
        let out_path =
            std::env::var("SS_BENCH_OUT").unwrap_or_else(|_| "BENCH_columnar.json".to_string());
        eprintln!(
            "# bench_report: columnar fig18-style equi workload ({duration} s, {rate} t/s), row vs columnar result transport"
        );
        let report = run_columnar_bench(duration, rate).expect("columnar bench harness");
        for run in [
            &report.row,
            &report.columnar,
            &report.mem_opt,
            &report.cpu_opt,
        ] {
            eprintln!(
                "{:<18} service rate {:>12.1} t/s, probes {}, outputs {}, peak state {} tuples / {} live bytes (capacity {})",
                run.label,
                run.perf.service_rate,
                run.perf.probe_comparisons,
                run.perf.total_outputs,
                run.perf.peak_state_tuples,
                run.perf.peak_state_bytes,
                run.perf.peak_capacity_bytes,
            );
        }
        eprintln!(
            "columnar/row service-rate ratio: {:.2}x; Mem-Opt < CPU-Opt live bytes: {}",
            report.service_rate_ratio(),
            report.mem_opt_shrinks_state(),
        );
        assert!(
            report.results_match,
            "per-sink results diverged between columnar and row result transport"
        );
        assert!(
            report.probes_match,
            "probe comparisons diverged between columnar and row result transport"
        );
        let json = report.to_json();
        std::fs::write(&out_path, &json).expect("write BENCH_columnar.json");
        eprintln!("# wrote {out_path}");
        print!("{json}");
        return;
    }

    if let Some(arg) = band_arg {
        let width = arg
            .trim()
            .parse::<i64>()
            .ok()
            .filter(|w| *w >= 0)
            .unwrap_or_else(|| {
                eprintln!(
                    "bench_report: invalid --band value '{arg}' (need a non-negative half-width)"
                );
                std::process::exit(2);
            });
        let out_path =
            std::env::var("SS_BENCH_OUT").unwrap_or_else(|_| "BENCH_band.json".to_string());
        eprintln!(
            "# bench_report: band-join workload |a.key - b.key| <= {width} ({duration} s, up to {rate} t/s), band index vs linear scan"
        );
        let report = run_band_bench(duration, rate, width).expect("band bench harness");
        for row in &report.rows {
            eprintln!(
                "rate {:>6.1} t/s: probes {} indexed vs {} scan ({:.1}x fewer), service rate {:>12.1} vs {:>12.1} t/s, outputs {}, results_match={}, states_match={}",
                row.rate,
                row.indexed.probe_comparisons,
                row.scan.probe_comparisons,
                row.probe_comparison_ratio(),
                row.indexed.service_rate,
                row.scan.service_rate,
                row.indexed.total_outputs,
                row.results_match,
                row.states_match,
            );
        }
        assert!(
            report.results_match,
            "band-indexed results diverged from linear scans"
        );
        assert!(
            report.states_match,
            "band-indexed final states diverged from linear scans"
        );
        assert!(
            report.peak_probe_ratio() >= 5.0,
            "band probe-comparison ratio {:.2} below the 5x acceptance bar",
            report.peak_probe_ratio()
        );
        let json = report.to_json();
        std::fs::write(&out_path, &json).expect("write BENCH_band.json");
        eprintln!("# wrote {out_path}");
        print!("{json}");
        return;
    }

    if let Some(arg) = skew_arg {
        let exponent = arg
            .trim()
            .parse::<f64>()
            .ok()
            .filter(|e| e.is_finite() && *e > 0.0)
            .unwrap_or_else(|| {
                eprintln!("bench_report: invalid --skew value '{arg}' (need a positive exponent)");
                std::process::exit(2);
            });
        let shards = std::env::var("SS_SKEW_SHARDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n >= 2)
            .unwrap_or(4);
        let out_path =
            std::env::var("SS_BENCH_OUT").unwrap_or_else(|_| "BENCH_skew.json".to_string());
        eprintln!(
            "# bench_report: Zipf({exponent})-skewed fig18-style equi workload ({duration} s, {rate} t/s), {shards} shards"
        );
        let report = run_skew_bench(duration, rate, exponent, shards).expect("skew bench harness");
        for run in [&report.oracle, &report.hash_only, &report.skew_aware] {
            eprintln!(
                "{:<15} {} shard(s): busiest share {:.3}, hot keys {}, broadcast {}, service rate {:>12.1} t/s, probes {}, outputs {}",
                run.label,
                run.shards,
                run.busiest_share,
                run.hot_keys,
                run.hot_broadcast,
                run.perf.service_rate,
                run.perf.probe_comparisons,
                run.perf.total_outputs,
            );
        }
        assert!(
            report.results_match,
            "skew-routed results diverged from the 1-shard oracle"
        );
        assert!(
            report.skew_aware.busiest_share < report.hash_only.busiest_share,
            "hot-key replication did not reduce the busiest shard's load share"
        );
        let json = report.to_json();
        std::fs::write(&out_path, &json).expect("write BENCH_skew.json");
        eprintln!("# wrote {out_path}");
        print!("{json}");
        return;
    }

    if let Some(arg) = churn_arg {
        let intervals = churn_intervals(&arg).unwrap_or_else(|msg| {
            eprintln!("bench_report: {msg}");
            std::process::exit(2);
        });
        let out_path =
            std::env::var("SS_BENCH_OUT").unwrap_or_else(|_| "BENCH_churn.json".to_string());
        eprintln!(
            "# bench_report: live query churn on the fig18-style equi workload ({duration} s, {rate} t/s), mean churn intervals {intervals:?} s"
        );
        let report = run_churn_bench(duration, rate, &intervals).expect("churn bench harness");
        for row in &report.rows {
            eprintln!(
                "churn every {:>5.1}s: {:>2} events, service rate {:>12.1} t/s ({:.3}x), pause avg {:.2} ms / max {:.2} ms, moved {} tuples, results_match={}",
                row.mean_interval_secs,
                row.events,
                row.perf.service_rate,
                report.relative_service_rate(row),
                row.avg_pause_ms,
                row.max_pause_ms,
                row.tuples_moved,
                row.results_match,
            );
        }
        assert!(
            report.results_match,
            "live-migrated chains diverged from the statically-planned oracle"
        );
        let json = report.to_json();
        std::fs::write(&out_path, &json).expect("write BENCH_churn.json");
        eprintln!("# wrote {out_path}");
        print!("{json}");
        return;
    }

    if let Some(arg) = batch_arg {
        let sizes = batch_sizes(&arg).unwrap_or_else(|msg| {
            eprintln!("bench_report: {msg}");
            std::process::exit(2);
        });
        let out_path =
            std::env::var("SS_BENCH_OUT").unwrap_or_else(|_| "BENCH_batch.json".to_string());
        eprintln!(
            "# bench_report: batched fig18-style equi workload ({duration} s, {rate} t/s), batch sizes {sizes:?}"
        );
        let report = run_batch_bench(duration, rate, &sizes).expect("batch bench harness");
        eprintln!(
            "item-at-a-time: service rate {:>12.1} t/s, probes {}, outputs {}",
            report.item.perf.service_rate,
            report.item.perf.probe_comparisons,
            report.item.perf.total_outputs,
        );
        for row in &report.rows {
            eprintln!(
                "batch {:>4}: service rate {:>12.1} t/s ({:.2}x), probes {}, outputs {}",
                row.batch,
                row.perf.service_rate,
                report.speedup(row),
                row.perf.probe_comparisons,
                row.perf.total_outputs,
            );
        }
        assert!(
            report.results_match,
            "per-sink results diverged between batch sizes and the item-at-a-time path"
        );
        assert!(
            report.probes_match,
            "probe comparisons diverged between batch sizes and the item-at-a-time path"
        );
        let json = report.to_json();
        std::fs::write(&out_path, &json).expect("write BENCH_batch.json");
        eprintln!("# wrote {out_path}");
        print!("{json}");
        return;
    }

    if let Some(arg) = shards_arg {
        let counts = shard_counts(&arg).unwrap_or_else(|msg| {
            eprintln!("bench_report: {msg}");
            std::process::exit(2);
        });
        let out_path =
            std::env::var("SS_BENCH_OUT").unwrap_or_else(|_| "BENCH_shard.json".to_string());
        eprintln!(
            "# bench_report: sharded fig18-style equi workload ({duration} s, {rate} t/s), shard counts {counts:?}"
        );
        let report = run_shard_bench(duration, rate, &counts).expect("shard bench harness");
        for row in &report.rows {
            eprintln!(
                "{:>2} shard(s): service rate {:>12.1} t/s ({:.2}x), probes {}, outputs {}",
                row.shards,
                row.perf.service_rate,
                report.speedup(row),
                row.perf.probe_comparisons,
                row.perf.total_outputs,
            );
        }
        assert!(
            report.results_match,
            "per-sink results diverged across shard counts"
        );
        let json = report.to_json();
        std::fs::write(&out_path, &json).expect("write BENCH_shard.json");
        eprintln!("# wrote {out_path}");
        print!("{json}");
        return;
    }

    let out_path = std::env::var("SS_BENCH_OUT").unwrap_or_else(|_| "BENCH_join.json".to_string());
    eprintln!("# bench_report: fig18-style equi workload ({duration} s, {rate} t/s) + microbench");
    let report = run_join_bench(duration, rate).expect("bench harness");
    for s in &report.strategies {
        eprintln!(
            "{:<22} service rate {:>12.1} t/s indexed vs {:>12.1} t/s scan  ({:.2}x), probe comparisons {} vs {} ({:.1}x fewer)",
            s.strategy,
            s.indexed.service_rate,
            s.scan.service_rate,
            s.service_rate_speedup(),
            s.indexed.probe_comparisons,
            s.scan.probe_comparisons,
            s.probe_comparison_ratio(),
        );
    }
    let json = report.to_json();
    std::fs::write(&out_path, &json).expect("write BENCH_join.json");
    eprintln!("# wrote {out_path}");
    print!("{json}");
}
