//! Persistent perf harness: hash-indexed vs linear-scan join probes.
//!
//! Runs the equi-join-heavy fig18-style workload under the state-slice chain
//! and the selection pull-up baseline (each with and without the `JoinState`
//! hash index), plus an operator microbench over state size × key
//! cardinality, and writes the result to `BENCH_join.json` (or the path in
//! `SS_BENCH_OUT`).
//!
//! Usage: `cargo run --release -p ss_bench --bin bench_report`
//! Set `SS_DURATION_SECS` to scale the stream length (default 30 s) and
//! `SS_BENCH_RATE` to change the per-stream arrival rate (default 100 t/s).

use ss_bench::default_duration_secs;
use ss_bench::report::run_join_bench;

fn main() {
    let duration = default_duration_secs();
    let rate = std::env::var("SS_BENCH_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &f64| *v > 0.0)
        .unwrap_or(100.0);
    let out_path = std::env::var("SS_BENCH_OUT").unwrap_or_else(|_| "BENCH_join.json".to_string());

    eprintln!("# bench_report: fig18-style equi workload ({duration} s, {rate} t/s) + microbench");
    let report = run_join_bench(duration, rate).expect("bench harness");
    for s in &report.strategies {
        eprintln!(
            "{:<22} service rate {:>12.1} t/s indexed vs {:>12.1} t/s scan  ({:.2}x), probe comparisons {} vs {} ({:.1}x fewer)",
            s.strategy,
            s.indexed.service_rate,
            s.scan.service_rate,
            s.service_rate_speedup(),
            s.indexed.probe_comparisons,
            s.scan.probe_comparisons,
            s.probe_comparison_ratio(),
        );
    }
    let json = report.to_json();
    std::fs::write(&out_path, &json).expect("write BENCH_join.json");
    eprintln!("# wrote {out_path}");
    print!("{json}");
}
