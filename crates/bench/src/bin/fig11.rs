//! Reproduce Figure 11: analytical memory / CPU saving surfaces of
//! state-slicing over selection pull-up and selection push-down.
//!
//! Usage: `cargo run --release -p ss_bench --bin fig11 [grid_steps]`

use ss_bench::fig11_rows;

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let rows = fig11_rows(steps);

    println!("# Figure 11(a): memory saving (%) of State-Slice");
    println!(
        "{:<8} {:<8} {:>24} {:>26}",
        "rho", "Ssigma", "vs Selection-PullUp", "vs Selection-PushDown"
    );
    for row in rows.iter().filter(|r| r.sel_join == 0.1) {
        println!(
            "{:<8.2} {:<8.2} {:>24.1} {:>26.1}",
            row.point.rho,
            row.point.sel_filter,
            100.0 * row.point.mem_vs_pullup,
            100.0 * row.point.mem_vs_pushdown
        );
    }

    println!("\n# Figure 11(b): CPU saving (%) vs Selection-PullUp");
    println!(
        "{:<8} {:<8} {:>10} {:>10} {:>10}",
        "rho", "Ssigma", "S1=0.4", "S1=0.1", "S1=0.025"
    );
    print_cpu_surface(&rows, |p| p.cpu_vs_pullup);

    println!("\n# Figure 11(c): CPU saving (%) vs Selection-PushDown");
    println!(
        "{:<8} {:<8} {:>10} {:>10} {:>10}",
        "rho", "Ssigma", "S1=0.4", "S1=0.1", "S1=0.025"
    );
    print_cpu_surface(&rows, |p| p.cpu_vs_pushdown);
}

fn print_cpu_surface(
    rows: &[ss_bench::Fig11Row],
    value: impl Fn(&ss_cost_model::SavingsPoint) -> f64,
) {
    // Group by (rho, Ssigma) across the three join selectivities.
    let mut keys: Vec<(u64, u64)> = rows
        .iter()
        .map(|r| (to_key(r.point.rho), to_key(r.point.sel_filter)))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    for (rho_k, s_k) in keys {
        let mut cols = Vec::new();
        for sel_join in [0.4, 0.1, 0.025] {
            let v = rows
                .iter()
                .find(|r| {
                    r.sel_join == sel_join
                        && to_key(r.point.rho) == rho_k
                        && to_key(r.point.sel_filter) == s_k
                })
                .map(|r| 100.0 * value(&r.point))
                .unwrap_or(f64::NAN);
            cols.push(v);
        }
        println!(
            "{:<8.2} {:<8.2} {:>10.1} {:>10.1} {:>10.1}",
            rho_k as f64 / 1000.0,
            s_k as f64 / 1000.0,
            cols[0],
            cols[1],
            cols[2]
        );
    }
}

fn to_key(v: f64) -> u64 {
    (v * 1000.0).round() as u64
}
