//! Reproduce Figure 17: state-memory usage (tuples) of the three sharing
//! strategies across input rates, window distributions and selectivities.
//!
//! Usage: `cargo run --release -p ss_bench --bin fig17`
//! Set `SS_DURATION_SECS=90` to run the paper's full 90-second streams.

use ss_bench::{default_duration_secs, figure_17_18_panels, format_rows, measure_panels};
use ss_workload::Scenario;

fn main() {
    let duration = default_duration_secs();
    println!("# Figure 17: average state memory (tuples); stream duration {duration} s");
    let rows = measure_panels(&figure_17_18_panels(), &Scenario::PAPER_RATES, duration, 7)
        .expect("figure 17 sweep");
    print!(
        "{}",
        format_rows(&rows, |m| m.avg_state_tuples, "state(tuples)")
    );
}
