//! Reproduce Figure 18: service rate (tuples/second) of the three sharing
//! strategies across input rates, window distributions and selectivities.
//!
//! Usage: `cargo run --release -p ss_bench --bin fig18`
//! Set `SS_DURATION_SECS=90` to run the paper's full 90-second streams.

use ss_bench::{
    default_duration_secs, figure_17_18_panels, figure_18_extra_panels, format_rows, measure_panels,
};
use ss_workload::Scenario;

fn main() {
    let duration = default_duration_secs();
    println!("# Figure 18: service rate (tuples/s); stream duration {duration} s");
    let mut panels = figure_17_18_panels();
    panels.truncate(3); // 18(a)-(c): the window-distribution panels
    panels.extend(figure_18_extra_panels()); // 18(d)-(f): increasing S1 at Ssigma=0.8
    let rows =
        measure_panels(&panels, &Scenario::PAPER_RATES, duration, 7).expect("figure 18 sweep");
    print!("{}", format_rows(&rows, |m| m.service_rate, "service(t/s)"));
    println!("\n# Cross-check: comparison counts (lower is better)");
    print!(
        "{}",
        format_rows(&rows, |m| m.total_comparisons as f64, "comparisons")
    );
}
