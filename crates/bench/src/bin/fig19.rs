//! Reproduce Figure 19: service rate of the Mem-Opt chain vs the CPU-Opt
//! chain for 12 / 24 / 36 queries and skewed window distributions.
//!
//! Usage: `cargo run --release -p ss_bench --bin fig19`
//! Set `SS_DURATION_SECS=90` to run the paper's full 90-second streams.

use ss_bench::{default_duration_secs, figure_19_panels, format_rows, measure_fig19};
use ss_workload::Scenario;

fn main() {
    let duration = default_duration_secs();
    println!("# Figure 19: service rate (tuples/s), Mem-Opt vs CPU-Opt; duration {duration} s");
    let rows = measure_fig19(&figure_19_panels(), &Scenario::PAPER_RATES, duration, 7)
        .expect("figure 19 sweep");
    print!("{}", format_rows(&rows, |m| m.service_rate, "service(t/s)"));
    println!("\n# Cross-check: operators in each executed plan");
    print!(
        "{}",
        format_rows(&rows, |m| m.num_operators as f64, "operators")
    );
}
