//! Reproduce Table 2: the step-by-step execution trace of a chain of two
//! sliced one-way window joins.
//!
//! Usage: `cargo run -p ss_bench --bin table2`

use ss_bench::{format_table2, table2_trace};

fn main() {
    println!("# Table 2: execution of the chain J1 = A[0,2) x B, J2 = A[2,4) x B");
    println!("# (half-open slices per Definition 1; see EXPERIMENTS.md)");
    print!("{}", format_table2(&table2_trace()));
}
