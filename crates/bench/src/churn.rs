//! Live-query-churn harness behind `bench_report -- --churn`.
//!
//! Runs the fig18-style equi workload (Uniform 10/20/30 s windows, no
//! selections, probe-heavy) on a [`LiveReslicer`] while a Poisson churn
//! schedule adds and removes queries mid-stream, sweeping the mean
//! churn-event interval.  Every row measures the service rate (migration
//! stalls excluded by the executor's paused-time accounting) and the
//! per-migration pause time, and checks the per-query-instance result counts
//! against a **statically-planned oracle**: one chain planned up front for
//! the union of every query that ever exists, executed incrementally over
//! the same epoch boundaries, whose per-sink delivery deltas per epoch give
//! the exact counts each live query instance must have received over its
//! lifetime.

use ss_workload::{churn_schedule, ChurnAction, ChurnConfig, Scenario};
use state_slice_core::live::{LiveOptions, LiveReslicer, QueryResults};
use state_slice_core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
use state_slice_core::{ChainBuilder, JoinQuery, QueryWorkload, SharedChainPlan};
use streamkit::error::{Result, StreamError};
use streamkit::{Executor, TimeDelta, Tuple};

use crate::report::{equi_heavy_scenario, executor_config, RunPerf};

/// Pool of windows (whole seconds) churned queries draw from: pairwise
/// distinct, distinct from the base 10/20/30 s windows, and all below the
/// base maximum so churn never changes the chain's coverage.
pub const CHURN_WINDOW_POOL: [u64; 6] = [4, 7, 13, 17, 23, 27];

/// One query instance's lifetime check against the oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceCheck {
    /// Query name.
    pub name: String,
    /// Window in seconds.
    pub window_secs: f64,
    /// Epoch interval `[from, to)` the instance was active in (`to` is the
    /// epoch count when still active at the end).
    pub epochs: (usize, usize),
    /// Results the live chain delivered.
    pub live_count: u64,
    /// Results the statically-planned oracle delivered over the same epochs.
    pub oracle_count: u64,
}

/// One row of the churn sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnRun {
    /// Mean seconds between churn events (0 = no churn).
    pub mean_interval_secs: f64,
    /// Churn events applied (= migrations).
    pub events: usize,
    /// Performance counters of the cumulative live run.
    pub perf: RunPerf,
    /// Mean migration pause in milliseconds.
    pub avg_pause_ms: f64,
    /// Largest migration pause in milliseconds.
    pub max_pause_ms: f64,
    /// State tuples drained and reloaded across all migrations.
    pub tuples_moved: usize,
    /// Per-instance lifetime checks.
    pub instances: Vec<InstanceCheck>,
    /// `true` iff every instance's live count equals the oracle count.
    pub results_match: bool,
}

/// The churn report written to `BENCH_churn.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnBenchReport {
    /// Stream duration of the runs (seconds).
    pub duration_secs: f64,
    /// Arrival rate per stream (tuples/second).
    pub rate: f64,
    /// Join selectivity S⋈.
    pub sel_join: f64,
    /// One row per swept mean churn interval.
    pub rows: Vec<ChurnRun>,
    /// `true` iff every row matched its oracle.
    pub results_match: bool,
}

impl ChurnBenchReport {
    /// Service rate of a row relative to the no-churn baseline row.
    pub fn relative_service_rate(&self, row: &ChurnRun) -> f64 {
        let base = self
            .rows
            .iter()
            .find(|r| r.events == 0)
            .or_else(|| self.rows.first());
        match base {
            Some(base) if base.perf.service_rate > 0.0 => {
                row.perf.service_rate / base.perf.service_rate
            }
            _ => 0.0,
        }
    }

    /// Serialise to the `BENCH_churn.json` format (stable key order, no
    /// external JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"live_query_churn\",\n");
        out.push_str(&format!(
            "  \"command\": \"SS_DURATION_SECS={:.0} cargo run --release -p ss_bench --bin bench_report -- --churn {}\",\n",
            self.duration_secs,
            self.rows
                .iter()
                .map(|r| format!("{}", r.mean_interval_secs))
                .collect::<Vec<_>>()
                .join(","),
        ));
        out.push_str(&format!(
            "  \"workload\": {{\"style\": \"fig18-equi\", \"duration_secs\": {:.1}, \"rate\": {:.1}, \"sel_join\": {}, \"distribution\": \"Uniform\", \"num_queries\": 3, \"selections\": false, \"churn_window_pool\": {:?}}},\n",
            self.duration_secs, self.rate, self.sel_join, CHURN_WINDOW_POOL
        ));
        out.push_str(&format!(
            "  \"results_match\": {},\n  \"rows\": [\n",
            self.results_match
        ));
        for (i, row) in self.rows.iter().enumerate() {
            let instances = row
                .instances
                .iter()
                .map(|inst| {
                    format!(
                        "{{\"name\": \"{}\", \"window_secs\": {:.0}, \"epochs\": [{}, {}], \"live\": {}, \"oracle\": {}}}",
                        inst.name,
                        inst.window_secs,
                        inst.epochs.0,
                        inst.epochs.1,
                        inst.live_count,
                        inst.oracle_count,
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\n      \"mean_interval_secs\": {}, \n      \"events\": {},\n      \"service_rate\": {:.1},\n      \"relative_service_rate\": {:.3},\n      \"elapsed_secs\": {:.4},\n      \"avg_pause_ms\": {:.3},\n      \"max_pause_ms\": {:.3},\n      \"tuples_moved\": {},\n      \"total_outputs\": {},\n      \"results_match\": {},\n      \"instances\": [{}]\n    }}{}\n",
                row.mean_interval_secs,
                row.events,
                row.perf.service_rate,
                self.relative_service_rate(row),
                row.perf.elapsed_secs,
                row.avg_pause_ms,
                row.max_pause_ms,
                row.tuples_moved,
                row.perf.total_outputs,
                row.results_match,
                instances,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The epoch boundaries of a schedule as indexes into the merged input.
fn epoch_cuts(input: &[Tuple], events: &[ss_workload::ChurnEvent]) -> Vec<usize> {
    let mut cuts = Vec::with_capacity(events.len() + 1);
    let mut idx = 0;
    for event in events {
        while idx < input.len() && input[idx].ts < event.at {
            idx += 1;
        }
        cuts.push(idx);
    }
    cuts.push(input.len());
    cuts
}

/// Run the statically-planned oracle: one chain over **all** queries that
/// ever exist, executed incrementally over the same epoch boundaries,
/// returning per-sink cumulative counts *at* every boundary (index `e` =
/// after processing input up to cut `e`).
fn oracle_counts(
    scenario: &Scenario,
    input: &[Tuple],
    cuts: &[usize],
    all_queries: &[JoinQuery],
) -> Result<Vec<Vec<(String, u64)>>> {
    let workload = QueryWorkload::new(
        all_queries.to_vec(),
        crate::runner::build_workload(scenario)?
            .join_condition()
            .clone(),
    )?;
    let spec = ChainBuilder::new(workload.clone()).memory_optimal();
    let shared = SharedChainPlan::build(&workload, &spec, &PlannerOptions::default())?;
    let mut exec = Executor::with_config(shared.plan, executor_config());
    let mut snapshots = Vec::with_capacity(cuts.len());
    let mut done = 0;
    for &cut in cuts {
        exec.ingest_all(CHAIN_ENTRY, input[done..cut].to_vec())?;
        done = cut;
        let report = exec.run()?;
        snapshots.push(
            workload
                .queries()
                .iter()
                .map(|q| (q.name.clone(), report.sink_count(&q.name)))
                .collect(),
        );
    }
    Ok(snapshots)
}

fn count_at(snapshots: &[Vec<(String, u64)>], epoch: usize, name: &str) -> u64 {
    if epoch == 0 {
        return 0;
    }
    snapshots[epoch - 1]
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, c)| *c)
        .unwrap_or(0)
}

/// Run one churn row: live reslicing vs the statically-planned oracle.
pub fn run_churn_row(
    scenario: &Scenario,
    input: &[Tuple],
    mean_interval_secs: f64,
) -> Result<ChurnRun> {
    let base_workload = crate::runner::build_workload(scenario)?;
    let events = churn_schedule(&ChurnConfig {
        mean_interval_secs,
        duration_secs: scenario.duration_secs,
        window_pool_secs: CHURN_WINDOW_POOL.to_vec(),
        seed: scenario.seed,
    });
    let cuts = epoch_cuts(input, &events);

    // Live run: ingest each epoch's chunk, then apply the churn event.
    let mut live = LiveReslicer::launch(
        base_workload.clone(),
        LiveOptions {
            executor: executor_config(),
            ..LiveOptions::default()
        },
    )?;
    // Instance ledger: (name, window, first epoch, last epoch or None).
    let mut done = 0;
    for (event, &cut) in events.iter().zip(&cuts) {
        live.ingest_all(input[done..cut].to_vec())?;
        done = cut;
        match &event.action {
            ChurnAction::Add { name, window_secs } => {
                live.add_query(JoinQuery::new(name, TimeDelta::from_secs(*window_secs)))?;
            }
            ChurnAction::Remove { name } => {
                live.remove_query(name)?;
            }
        }
    }
    live.ingest_all(input[done..].to_vec())?;
    let outcome = live.finish()?;

    // Oracle: the statically-planned union of every query lifetime.
    let mut all_queries: Vec<JoinQuery> = base_workload.queries().to_vec();
    for &w in CHURN_WINDOW_POOL.iter() {
        if events
            .iter()
            .any(|e| matches!(&e.action, ChurnAction::Add { window_secs, .. } if *window_secs == w))
        {
            all_queries.push(JoinQuery::new(
                ChurnConfig::query_name(w),
                TimeDelta::from_secs(w),
            ));
        }
    }
    let snapshots = oracle_counts(scenario, input, &cuts, &all_queries)?;
    let final_epoch = cuts.len();

    let instance_check = |q: &QueryResults| -> InstanceCheck {
        let from = q.added_epoch as usize;
        let to = q.removed_epoch.map(|e| e as usize).unwrap_or(final_epoch);
        let oracle = count_at(&snapshots, to, &q.name) - count_at(&snapshots, from, &q.name);
        InstanceCheck {
            name: q.name.clone(),
            window_secs: q.window.as_secs_f64(),
            epochs: (from, to),
            live_count: q.count,
            oracle_count: oracle,
        }
    };
    let instances: Vec<InstanceCheck> = outcome.queries.iter().map(instance_check).collect();
    let results_match = instances.iter().all(|i| i.live_count == i.oracle_count);

    let pauses: Vec<f64> = outcome.migrations.iter().map(|m| m.pause_secs).collect();
    let avg_pause_ms = if pauses.is_empty() {
        0.0
    } else {
        1e3 * pauses.iter().sum::<f64>() / pauses.len() as f64
    };
    let max_pause_ms = 1e3 * pauses.iter().cloned().fold(0.0, f64::max);
    let report = &outcome.report;
    Ok(ChurnRun {
        mean_interval_secs,
        events: events.len(),
        perf: RunPerf {
            service_rate: report.service_rate(),
            elapsed_secs: report.elapsed_secs,
            probe_comparisons: report.totals.probe_comparisons,
            total_comparisons: report.totals.total_comparisons(),
            total_outputs: report.total_output(),
            peak_state_tuples: report.memory.peak_state_tuples,
            peak_state_bytes: report.memory.peak_state_bytes,
            avg_state_bytes: report.memory.avg_state_bytes,
            peak_capacity_bytes: report.memory.peak_capacity_bytes,
        },
        avg_pause_ms,
        max_pause_ms,
        tuples_moved: outcome.migrations.iter().map(|m| m.tuples_moved).sum(),
        instances,
        results_match,
    })
}

/// Run the churn sweep: the fig18-style equi workload once per requested
/// mean churn interval (0 = no churn baseline).
pub fn run_churn_bench(
    duration_secs: f64,
    rate: f64,
    intervals: &[f64],
) -> Result<ChurnBenchReport> {
    let scenario = equi_heavy_scenario(duration_secs, rate);
    let (a, b) = scenario.generator().generate_pair();
    let input = merge_streams(a, b);
    if input.is_empty() {
        return Err(StreamError::InvalidConfig(
            "churn bench needs a non-empty stream".to_string(),
        ));
    }
    let mut rows = Vec::with_capacity(intervals.len());
    for &interval in intervals {
        rows.push(run_churn_row(&scenario, &input, interval)?);
    }
    let results_match = rows.iter().all(|r| r.results_match);
    Ok(ChurnBenchReport {
        duration_secs,
        rate,
        sel_join: scenario.sel_join,
        rows,
        results_match,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_rows_match_the_static_oracle() {
        let report = run_churn_bench(10.0, 40.0, &[0.0, 2.0]).unwrap();
        assert!(report.results_match, "rows: {:#?}", report.rows);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].events, 0);
        assert!(report.rows[1].events > 0, "2s churn over 10s fires events");
        assert!(report.rows[1].instances.len() > 3);
        assert!(report.rows[0].perf.total_outputs > 0);
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"live_query_churn\""));
        assert!(json.contains("\"results_match\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
