//! Row generators for every table and figure of the paper's evaluation.
//!
//! Each generator returns plain data rows; the `fig11` / `fig17` / `fig18` /
//! `fig19` / `table2` binaries print them, and the criterion benches time
//! scaled-down versions of the same sweeps.  See `EXPERIMENTS.md` for the
//! mapping and the recorded paper-vs-measured comparison.

use ss_cost_model::{SavingsPoint, SystemParams};
use ss_workload::{Scenario, WindowDistribution};
use streamkit::error::Result;

use crate::runner::{run_strategies, RunMetrics, Strategy};

/// One grid point of the analytical saving surfaces of Figure 11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig11Row {
    /// Join selectivity of this surface (Figure 11(b)/(c) draw one surface
    /// per join selectivity).
    pub sel_join: f64,
    /// The evaluated saving point (ρ, Sσ and the four savings).
    pub point: SavingsPoint,
}

/// Figure 11: memory and CPU savings of state-slicing over the two
/// alternatives, over a (ρ, Sσ) grid and the paper's three join
/// selectivities.
pub fn fig11_rows(grid_steps: usize) -> Vec<Fig11Row> {
    let steps = grid_steps.max(2);
    let mut rows = Vec::new();
    for &sel_join in &[0.4, 0.1, 0.025] {
        for i in 1..steps {
            for j in 1..steps {
                let rho = i as f64 / steps as f64;
                let sel_filter = j as f64 / steps as f64;
                let w2 = 60.0;
                let params = SystemParams::symmetric(50.0, rho * w2, w2, sel_filter, sel_join);
                rows.push(Fig11Row {
                    sel_join,
                    point: SavingsPoint::evaluate(&params),
                });
            }
        }
    }
    rows
}

/// One measured point of Figures 17 / 18: a panel, an input rate, a strategy
/// and its metrics.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    /// Panel label, e.g. `"(a) Mostly-Small, S1=0.1, Ssigma=0.5"`.
    pub panel: String,
    /// Input rate in tuples/second (per stream).
    pub rate: f64,
    /// The sharing strategy.
    pub strategy: Strategy,
    /// The measured metrics.
    pub metrics: RunMetrics,
}

/// The six panels of Figure 17 (state memory) and Figure 18 (service rate):
/// window distribution, join selectivity `S⋈` and filter selectivity `Sσ`.
pub fn figure_17_18_panels() -> Vec<(String, WindowDistribution, f64, f64)> {
    vec![
        // Figure 17(a)-(c) / 18(a)-(c): vary the window distribution.
        ("(a)".into(), WindowDistribution::MostlySmall, 0.1, 0.5),
        ("(b)".into(), WindowDistribution::Uniform, 0.1, 0.5),
        ("(c)".into(), WindowDistribution::MostlyLarge, 0.1, 0.5),
        // Figure 17(d)-(f): vary Sσ at S⋈ = 0.025; Figure 18(d)-(f) varies
        // S⋈ at Sσ = 0.8 — both parameterisations are covered by the sweep
        // helpers below.
        ("(d)".into(), WindowDistribution::Uniform, 0.025, 0.2),
        ("(e)".into(), WindowDistribution::Uniform, 0.025, 0.5),
        ("(f)".into(), WindowDistribution::Uniform, 0.025, 0.8),
    ]
}

/// The three extra panels of Figure 18(d)-(f): Sσ = 0.8 with increasing S⋈.
pub fn figure_18_extra_panels() -> Vec<(String, WindowDistribution, f64, f64)> {
    vec![
        ("(d)".into(), WindowDistribution::Uniform, 0.025, 0.8),
        ("(e)".into(), WindowDistribution::Uniform, 0.1, 0.8),
        ("(f)".into(), WindowDistribution::Uniform, 0.4, 0.8),
    ]
}

/// Run the Figure 17 / 18 sweep: every panel, every input rate, the three
/// strategies of the paper.  `duration_secs` scales the stream length (the
/// paper uses 90 s); `rates` defaults to the paper's 20–80 sweep.
pub fn measure_panels(
    panels: &[(String, WindowDistribution, f64, f64)],
    rates: &[f64],
    duration_secs: f64,
    seed: u64,
) -> Result<Vec<MeasuredRow>> {
    let mut rows = Vec::new();
    for (label, dist, sel_join, sel_filter) in panels {
        for &rate in rates {
            let scenario = Scenario {
                rate,
                duration_secs,
                num_queries: 3,
                distribution: *dist,
                sel_filter: *sel_filter,
                sel_join: *sel_join,
                seed,
            };
            let panel = format!(
                "{label} {}, S1={sel_join}, Ssigma={sel_filter}",
                dist.name()
            );
            for (strategy, metrics) in run_strategies(&scenario, &Strategy::FIGURE_17_18)? {
                rows.push(MeasuredRow {
                    panel: panel.clone(),
                    rate,
                    strategy,
                    metrics,
                });
            }
        }
    }
    Ok(rows)
}

/// The five panels of Figure 19: query count and window distribution.
pub fn figure_19_panels() -> Vec<(String, usize, WindowDistribution)> {
    vec![
        (
            "(a) Uniform, 12 Queries".into(),
            12,
            WindowDistribution::Uniform,
        ),
        (
            "(b) Mostly-Small, 12 Queries".into(),
            12,
            WindowDistribution::MostlySmall,
        ),
        (
            "(c) Small-Large, 12 Queries".into(),
            12,
            WindowDistribution::SmallLarge,
        ),
        (
            "(d) Small-Large, 24 Queries".into(),
            24,
            WindowDistribution::SmallLarge,
        ),
        (
            "(e) Small-Large, 36 Queries".into(),
            36,
            WindowDistribution::SmallLarge,
        ),
    ]
}

/// Run the Figure 19 sweep: Mem-Opt vs CPU-Opt chains, no selections,
/// S⋈ = 0.025 (Section 7.3).
pub fn measure_fig19(
    panels: &[(String, usize, WindowDistribution)],
    rates: &[f64],
    duration_secs: f64,
    seed: u64,
) -> Result<Vec<MeasuredRow>> {
    let mut rows = Vec::new();
    for (label, num_queries, dist) in panels {
        for &rate in rates {
            let scenario = Scenario {
                rate,
                duration_secs,
                num_queries: *num_queries,
                distribution: *dist,
                sel_filter: 1.0,
                sel_join: 0.025,
                seed,
            };
            for (strategy, metrics) in run_strategies(
                &scenario,
                &[Strategy::StateSliceMemOpt, Strategy::StateSliceCpuOpt],
            )? {
                rows.push(MeasuredRow {
                    panel: label.clone(),
                    rate,
                    strategy,
                    metrics,
                });
            }
        }
    }
    Ok(rows)
}

/// Render measured rows as an aligned text table (one line per row).
pub fn format_rows(rows: &[MeasuredRow], value: impl Fn(&RunMetrics) -> f64, unit: &str) -> String {
    let mut out = String::new();
    let mut current_panel = String::new();
    for row in rows {
        if row.panel != current_panel {
            current_panel = row.panel.clone();
            out.push_str(&format!("\n## {current_panel}\n"));
            out.push_str(&format!(
                "{:<10} {:<22} {:>16}\n",
                "rate(t/s)", "strategy", unit
            ));
        }
        out.push_str(&format!(
            "{:<10} {:<22} {:>16.1}\n",
            row.rate,
            row.strategy.label(),
            value(&row.metrics)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_grid_covers_three_join_selectivities() {
        let rows = fig11_rows(5);
        assert_eq!(rows.len(), 3 * 4 * 4);
        assert!(rows.iter().any(|r| r.sel_join == 0.4));
        assert!(rows.iter().any(|r| r.sel_join == 0.025));
        // All memory savings are within [0, 0.5] as in Figure 11(a).
        assert!(rows
            .iter()
            .all(|r| (0.0..=0.5 + 1e-9).contains(&r.point.mem_vs_pullup)));
    }

    #[test]
    fn panel_definitions_match_the_paper() {
        assert_eq!(figure_17_18_panels().len(), 6);
        assert_eq!(figure_18_extra_panels().len(), 3);
        let f19 = figure_19_panels();
        assert_eq!(f19.len(), 5);
        assert_eq!(f19[4].1, 36);
    }

    #[test]
    fn measured_sweep_produces_rows_for_every_cell() {
        let panels = vec![("(test)".to_string(), WindowDistribution::Uniform, 0.1, 0.5)];
        let rows = measure_panels(&panels, &[20.0], 5.0, 1).unwrap();
        assert_eq!(rows.len(), 3);
        let text = format_rows(&rows, |m| m.avg_state_tuples, "state(tuples)");
        assert!(text.contains("State-Slice-Chain"));
        assert!(text.contains("Selection-PullUp"));
    }

    #[test]
    fn fig19_sweep_compares_memopt_and_cpuopt() {
        let panels = vec![(
            "(test) Small-Large, 6 Queries".to_string(),
            6usize,
            WindowDistribution::SmallLarge,
        )];
        let rows = measure_fig19(&panels, &[20.0], 4.0, 1).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .any(|r| r.strategy == Strategy::StateSliceCpuOpt));
    }
}
