//! Experiment harness for the State-Slice reproduction.
//!
//! * [`runner`] — run one scenario under one sharing strategy and collect
//!   the metrics the paper reports (state memory, service rate, comparisons),
//! * [`figures`] — the sweeps behind Figures 11, 17, 18 and 19,
//! * [`table2`] — the execution trace of Table 2,
//! * [`report`] — the persistent perf harness comparing hash-indexed vs
//!   linear-scan join probes (written to `BENCH_join.json`),
//! * [`churn`] — the live-query-churn harness: online add/remove of queries
//!   with in-executor chain re-slicing vs a statically-planned oracle
//!   (written to `BENCH_churn.json`),
//! * [`recovery`] — the crash-recovery harness: an injected worker panic
//!   mid-stream, recovered from a punctuation-aligned checkpoint plus
//!   replay, vs an uninterrupted session (written to
//!   `BENCH_recovery.json`).
//!
//! The binaries `fig11`, `fig17`, `fig18`, `fig19` and `table2` print the
//! corresponding rows and `bench_report` writes the perf trajectory; the
//! criterion benches under `benches/` time scaled-down versions of the same
//! sweeps plus the `probe_scaling` state-size × key-cardinality grid.
//! `EXPERIMENTS.md` records the paper-vs-measured comparison.

pub mod adaptive;
pub mod churn;
pub mod figures;
pub mod recovery;
pub mod report;
pub mod runner;
pub mod table2;

pub use adaptive::{drift_profile, run_adaptive_bench, AdaptiveBenchReport, AdaptiveRun};
pub use churn::{run_churn_bench, ChurnBenchReport, ChurnRun, InstanceCheck};
pub use figures::{
    fig11_rows, figure_17_18_panels, figure_18_extra_panels, figure_19_panels, format_rows,
    measure_fig19, measure_panels, Fig11Row, MeasuredRow,
};
pub use recovery::{run_recovery_bench, RecoveryBenchReport, RecoveryRun};
pub use report::{run_join_bench, JoinBenchReport, MicrobenchRow, RunPerf, StrategyComparison};
pub use runner::{build_workload, cost_config, run_strategies, run_strategy, RunMetrics, Strategy};
pub use table2::{format_table2, table2_trace, TraceRow};

/// Stream duration (seconds) used by the figure binaries unless overridden by
/// the `SS_DURATION_SECS` environment variable.  The paper runs 90-second
/// streams; 30 seconds keeps a full sweep tractable on a laptop while
/// preserving every qualitative trend.
pub fn default_duration_secs() -> f64 {
    std::env::var("SS_DURATION_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &f64| *v > 0.0)
        .unwrap_or(30.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_duration_is_positive() {
        assert!(super::default_duration_secs() > 0.0);
    }
}
