//! Crash-recovery harness behind `bench_report -- --recovery`.
//!
//! Drives the fig18-style equi-join-heavy workload — with a punctuation
//! closing every stream second, so checkpoints have boundaries to align to —
//! through two [`RecoverySupervisor`] sessions over the **same** input:
//!
//! * `uninterrupted` — no fault armed; its recovery log must stay clean
//!   (checkpoints only),
//! * `crash-recover` — a deterministic worker panic armed at a mid-stream
//!   punctuation epoch; the session restores the last checkpoint, replays
//!   the ring and finishes the stream.
//!
//! The report records the recovery latency (total, and the restore-only
//! stall), the replayed-tuple volume, the checkpoint cadence, and
//! `results_match`: both sessions must deliver identical per-query result
//! multisets (compared tuple-by-tuple, not just by count) — the recovery
//! protocol is invisible in the results.

use ss_workload::Scenario;
use state_slice_core::planner::PlannerOptions;
use state_slice_core::recovery::{RecoveryConfig, RecoveryLog, RecoverySupervisor};
use state_slice_core::{ChainBuilder, ChainPlanFactory, QueryWorkload};
use streamkit::error::{Result, StreamError};
use streamkit::fault::FaultPlan;
use streamkit::punctuation::Punctuation;
use streamkit::queue::StreamItem;
use streamkit::{Timestamp, Tuple};

use crate::report::{equi_heavy_scenario, executor_config, perf_of, RunPerf};
use crate::runner::build_workload;

/// Per-query collected results, sorted for order-insensitive comparison.
type SinkResults = Vec<(String, Vec<Tuple>)>;

/// One supervised session's measured run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRun {
    /// Variant name (`uninterrupted`, `crash-recover`).
    pub name: String,
    /// Performance counters of the run.
    pub perf: RunPerf,
    /// Per-query result counts, in query order.
    pub sink_counts: Vec<(String, u64)>,
    /// Checkpoints taken (including the launch checkpoint).
    pub checkpoints: usize,
    /// Recoveries performed.
    pub recoveries: usize,
}

/// The crash-recovery report written to `BENCH_recovery.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryBenchReport {
    /// Stream duration in seconds.
    pub duration_secs: f64,
    /// Arrival rate per stream (tuples/second).
    pub rate: f64,
    /// Shard count of both sessions.
    pub shards: usize,
    /// Checkpoint interval in punctuation epochs.
    pub checkpoint_every_epochs: u64,
    /// The punctuation epoch the fault is armed at.
    pub crash_epoch: u64,
    /// Both measured runs.
    pub runs: Vec<RecoveryRun>,
    /// The crashed run's recovery log.
    pub log: RecoveryLog,
    /// `true` iff both sessions delivered identical per-query result
    /// multisets.
    pub results_match: bool,
}

impl RecoveryBenchReport {
    fn run(&self, name: &str) -> &RecoveryRun {
        self.runs
            .iter()
            .find(|r| r.name == name)
            .expect("both variants always run")
    }

    /// Wall-clock seconds from failure detection to the recovered session
    /// being drained again.
    pub fn recovery_secs(&self) -> f64 {
        self.log
            .last_recovery()
            .map(|r| r.recovery_secs)
            .unwrap_or(0.0)
    }

    /// Items replayed from the ring after the restore.
    pub fn replayed(&self) -> u64 {
        self.log.last_recovery().map(|r| r.replayed).unwrap_or(0)
    }

    /// Recovered service rate relative to the uninterrupted run.
    pub fn recovered_vs_uninterrupted(&self) -> f64 {
        let base = self.run("uninterrupted").perf.service_rate;
        if base <= 0.0 {
            return 0.0;
        }
        self.run("crash-recover").perf.service_rate / base
    }

    /// Serialise to the `BENCH_recovery.json` format (stable key order, no
    /// external JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"crash_recovery\",\n");
        out.push_str(&format!(
            "  \"command\": \"SS_DURATION_SECS={:.0} SS_BENCH_RATE={:.0} cargo run --release -p ss_bench --bin bench_report -- --recovery\",\n",
            self.duration_secs, self.rate,
        ));
        out.push_str(&format!(
            "  \"workload\": {{\"style\": \"fig18-equi\", \"duration_secs\": {:.1}, \"rate\": {:.1}, \"shards\": {}, \"punctuation_every_secs\": 1.0, \"checkpoint_every_epochs\": {}, \"crash_epoch\": {}}},\n",
            self.duration_secs, self.rate, self.shards, self.checkpoint_every_epochs, self.crash_epoch,
        ));
        out.push_str(&format!(
            "  \"results_match\": {},\n  \"recovered_vs_uninterrupted\": {:.3},\n",
            self.results_match,
            self.recovered_vs_uninterrupted(),
        ));
        out.push_str("  \"runs\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            let sinks = run
                .sink_counts
                .iter()
                .map(|(name, count)| format!("\"{name}\": {count}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"service_rate\": {:.1}, \"elapsed_secs\": {:.4}, \"total_outputs\": {}, \"peak_state_tuples\": {}, \"checkpoints\": {}, \"recoveries\": {}, \"sink_counts\": {{{}}}}}{}\n",
                run.name,
                run.perf.service_rate,
                run.perf.elapsed_secs,
                run.perf.total_outputs,
                run.perf.peak_state_tuples,
                run.checkpoints,
                run.recoveries,
                sinks,
                if i + 1 < self.runs.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n  \"recoveries\": [\n");
        let recoveries = self.log.recoveries();
        for (i, rec) in recoveries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"checkpoint_seq\": {}, \"checkpoint_epoch\": {}, \"trigger\": \"{}\", \"replayed\": {}, \"dropped_inflight\": {}, \"recovery_secs\": {:.6}, \"restore_secs\": {:.6}}}{}\n",
                rec.checkpoint_seq,
                rec.checkpoint_epoch,
                rec.trigger.escape_default(),
                rec.replayed,
                rec.dropped_inflight,
                rec.recovery_secs,
                rec.restore_secs,
                if i + 1 < recoveries.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n  \"checkpoints\": [\n");
        let checkpoints = self.log.checkpoints();
        for (i, ckpt) in checkpoints.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"seq\": {}, \"epoch\": {}, \"watermark_secs\": {:.1}, \"state_tuples\": {}, \"ring_cleared\": {}, \"forced\": {}}}{}\n",
                ckpt.seq,
                ckpt.epoch,
                ckpt.watermark.as_secs_f64(),
                ckpt.state_tuples,
                ckpt.ring_cleared,
                ckpt.forced,
                if i + 1 < checkpoints.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Interleave a punctuation at every whole stream second into the merged
/// (time-ordered) input, closing each second's epoch, plus one final
/// punctuation at the tail.
fn punctuated(input: Vec<Tuple>) -> Vec<StreamItem> {
    let mut items = Vec::with_capacity(input.len() + 64);
    let mut next_sec = 1u64;
    let mut last_ts = Timestamp::ZERO;
    for t in input {
        while t.ts >= Timestamp::from_secs(next_sec) {
            items.push(Punctuation::new(Timestamp::from_secs(next_sec)).into());
            next_sec += 1;
        }
        last_ts = last_ts.max(t.ts);
        items.push(t.into());
    }
    items.push(Punctuation::new(last_ts).into());
    items
}

fn session_factory(workload: &QueryWorkload, shards: usize) -> ChainPlanFactory {
    let builder = ChainBuilder::new(workload.clone());
    builder.plan_factory(
        builder.memory_optimal(),
        PlannerOptions {
            retain_results: true,
            ..PlannerOptions::default().with_shards(shards)
        },
    )
}

/// Feed the punctuated input, draining at every punctuation (so checkpoints
/// land on the configured epoch interval), and return the finished run.
fn run_session(
    name: &str,
    workload: &QueryWorkload,
    items: &[StreamItem],
    shards: usize,
    recovery: RecoveryConfig,
    fault: Option<FaultPlan>,
) -> Result<(RecoveryRun, RecoveryLog, SinkResults)> {
    let mut sup = RecoverySupervisor::launch(
        session_factory(workload, shards),
        executor_config(),
        recovery,
    )?;
    if let Some(plan) = fault {
        sup.arm_fault(0, plan)?;
    }
    for item in items {
        sup.ingest(item.clone())?;
        if matches!(item, StreamItem::Punctuation(_)) {
            sup.run()?;
        }
    }
    let mut collected: Vec<(String, Vec<Tuple>)> = workload
        .queries()
        .iter()
        .map(|q| {
            let mut tuples = sup.sink_collected(&q.name);
            tuples.sort_by_key(|t| (t.ts, t.origin_span));
            (q.name.clone(), tuples)
        })
        .collect();
    collected.sort_by(|a, b| a.0.cmp(&b.0));
    let (report, log) = sup.finish()?;
    let sink_counts = collected
        .iter()
        .map(|(name, tuples)| (name.clone(), tuples.len() as u64))
        .collect();
    let run = RecoveryRun {
        name: name.to_string(),
        perf: perf_of(&report),
        sink_counts,
        checkpoints: log.checkpoints().len(),
        recoveries: log.recoveries().len(),
    };
    Ok((run, log, collected))
}

/// Run the full comparison: the uninterrupted session and the
/// crash-and-recover session over the same punctuated fig18-equi input.
pub fn run_recovery_bench(
    duration_secs: f64,
    rate: f64,
    shards: usize,
) -> Result<RecoveryBenchReport> {
    let scenario: Scenario = equi_heavy_scenario(duration_secs, rate);
    let workload = build_workload(&scenario)?;
    let (a, b) = scenario.generator().generate_pair();
    let items = punctuated(state_slice_core::planner::merge_streams(a, b));
    if items.is_empty() {
        return Err(StreamError::InvalidConfig(
            "recovery bench needs a non-empty stream".to_string(),
        ));
    }
    let recovery = RecoveryConfig::default();
    // Crash past the halfway mark so at least one interval checkpoint is
    // durable before the fault fires (epochs advance one per second).
    let crash_epoch = ((duration_secs * 0.6) as u64).max(2);

    let (clean, clean_log, clean_results) =
        run_session("uninterrupted", &workload, &items, shards, recovery, None)?;
    if !clean_log.is_clean() {
        return Err(StreamError::Execution(
            "the uninterrupted session recovered from a phantom fault".to_string(),
        ));
    }

    // The injected panic unwinds through the global hook before the worker
    // harness catches it; keep the report readable.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let crashed = run_session(
        "crash-recover",
        &workload,
        &items,
        shards,
        recovery,
        Some(FaultPlan::panic_at(crash_epoch)),
    );
    std::panic::set_hook(hook);
    let (crashed, crash_log, crashed_results) = crashed?;

    let results_match = clean_results == crashed_results;
    Ok(RecoveryBenchReport {
        duration_secs,
        rate,
        shards,
        checkpoint_every_epochs: recovery.checkpoint_every_epochs,
        crash_epoch,
        runs: vec![clean, crashed],
        log: crash_log,
        results_match,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_recover_matches_the_uninterrupted_session() {
        let report = run_recovery_bench(8.0, 40.0, 2).unwrap();
        assert!(report.results_match, "runs: {:#?}", report.runs);
        assert_eq!(report.run("crash-recover").recoveries, 1);
        assert_eq!(report.run("uninterrupted").recoveries, 0);
        assert!(report.replayed() > 0, "the ring must replay something");
        assert!(report.recovery_secs() > 0.0);
        assert!(report.run("uninterrupted").checkpoints > 1);
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"crash_recovery\""));
        assert!(json.contains("\"results_match\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
