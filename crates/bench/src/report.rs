//! Persistent perf harness behind the `bench_report` binary.
//!
//! Runs an equi-join-heavy fig18-style workload (window ≫ inter-arrival gap,
//! no selections, so join probing dominates) under the state-slice chain and
//! the selection pull-up baseline, each once with the hash-indexed
//! [`JoinState`](streamkit::JoinState) probes and once with the pre-index
//! linear scan, plus a raw operator microbench sweeping state size × key
//! cardinality.  The result serialises to `BENCH_join.json` so the repo
//! accumulates a perf trajectory across PRs: future changes land with a
//! fresh report to compare against the committed one.

use std::time::Instant;

use ss_baselines::{PullUpPlanBuilder, ENTRY_A, ENTRY_B};
use ss_workload::{
    band_condition, BandGenerator, KeyDistribution, Scenario, StreamGenerator, WindowDistribution,
    WorkloadConfig,
};
use state_slice_core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
use state_slice_core::{ChainBuilder, ChainPlanFactory, JoinQuery, QueryWorkload, SharedChainPlan};
use streamkit::checkpoint::ShardCheckpoint;
use streamkit::error::Result;
use streamkit::ops::WindowJoinOp;
use streamkit::tuple::StreamId;
use streamkit::{
    Executor, ExecutorConfig, JoinCondition, OpContext, Operator, Timestamp, Tuple, WindowSpec,
};

use crate::runner::build_workload;

/// Performance counters of one end-to-end run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunPerf {
    /// Service rate (tuples/second), the paper's Figure 18 metric.
    pub service_rate: f64,
    /// Wall-clock running time in seconds.
    pub elapsed_secs: f64,
    /// Join probe comparisons performed.
    pub probe_comparisons: u64,
    /// Total comparisons (the analytical CPU metric).
    pub total_comparisons: u64,
    /// Result tuples delivered to all query sinks.
    pub total_outputs: u64,
    /// Peak join-state size in tuples.
    pub peak_state_tuples: usize,
    /// Peak live join-state bytes (arena bookkeeping).
    pub peak_state_bytes: usize,
    /// Time-averaged live join-state bytes.
    pub avg_state_bytes: f64,
    /// Peak arena-capacity bytes (live bytes plus purged-but-unreleased and
    /// unfilled arena slots — what the allocator actually holds).
    pub peak_capacity_bytes: usize,
}

/// Indexed-vs-linear comparison of one strategy on the fig18-style workload.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyComparison {
    /// Strategy label (paper legend name).
    pub strategy: String,
    /// Run with hash-indexed join state.
    pub indexed: RunPerf,
    /// Run with linear-scan probes (pre-index behaviour).
    pub scan: RunPerf,
}

impl StrategyComparison {
    /// Service-rate improvement of indexed over scan probes.
    pub fn service_rate_speedup(&self) -> f64 {
        if self.scan.service_rate <= 0.0 {
            0.0
        } else {
            self.indexed.service_rate / self.scan.service_rate
        }
    }

    /// How many times fewer probe comparisons the index performs.
    pub fn probe_comparison_ratio(&self) -> f64 {
        if self.indexed.probe_comparisons == 0 {
            0.0
        } else {
            self.scan.probe_comparisons as f64 / self.indexed.probe_comparisons as f64
        }
    }
}

/// One operator-microbench cell: `state_size` resident tuples per side,
/// `key_cardinality` distinct equi keys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicrobenchRow {
    /// Steady-state tuples per join side.
    pub state_size: usize,
    /// Distinct equi-join keys.
    pub key_cardinality: usize,
    /// Probe throughput with the hash index (tuples/second).
    pub indexed_tps: f64,
    /// Probe throughput with linear scans (tuples/second).
    pub scan_tps: f64,
    /// Probe comparisons per processed tuple with the hash index.
    pub indexed_cmp_per_tuple: f64,
    /// Probe comparisons per processed tuple with linear scans.
    pub scan_cmp_per_tuple: f64,
}

/// The full report written to `BENCH_join.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinBenchReport {
    /// Stream duration of the fig18-style runs (seconds).
    pub duration_secs: f64,
    /// Arrival rate per stream (tuples/second).
    pub rate: f64,
    /// Join selectivity S⋈ (key domain = 1/S⋈).
    pub sel_join: f64,
    /// Per-strategy indexed-vs-scan comparisons.
    pub strategies: Vec<StrategyComparison>,
    /// Operator microbench grid.
    pub microbench: Vec<MicrobenchRow>,
}

pub(crate) fn perf_of(report: &streamkit::ExecutionReport) -> RunPerf {
    RunPerf {
        service_rate: report.service_rate(),
        elapsed_secs: report.elapsed_secs,
        probe_comparisons: report.totals.probe_comparisons,
        total_comparisons: report.totals.total_comparisons(),
        total_outputs: report.total_output(),
        peak_state_tuples: report.memory.peak_state_tuples,
        peak_state_bytes: report.memory.peak_state_bytes,
        avg_state_bytes: report.memory.avg_state_bytes,
        peak_capacity_bytes: report.memory.peak_capacity_bytes,
    }
}

/// The executor configuration shared by every measured run of this crate
/// (figures, join/shard/batch/churn benches), so the rows of different
/// reports stay comparable.
pub(crate) fn executor_config() -> ExecutorConfig {
    ExecutorConfig {
        batch_per_visit: 64,
        memory_sample_every: 64,
        ..ExecutorConfig::default()
    }
}

/// Run the Mem-Opt state-slice chain on `scenario`, with or without the
/// equi-key hash index.
pub fn run_chain(scenario: &Scenario, indexed: bool) -> Result<RunPerf> {
    let workload = build_workload(scenario)?;
    let spec = ChainBuilder::new(workload.clone()).memory_optimal();
    let options = PlannerOptions {
        index_join_state: indexed,
        ..PlannerOptions::default()
    };
    let shared = SharedChainPlan::build(&workload, &spec, &options)?;
    let (a, b) = scenario.generator().generate_pair();
    let mut exec = Executor::with_config(shared.plan, executor_config());
    exec.ingest_all(CHAIN_ENTRY, merge_streams(a, b))?;
    Ok(perf_of(&exec.run()?))
}

/// Run the selection pull-up baseline on `scenario`, with or without the
/// equi-key hash index.
pub fn run_pullup(scenario: &Scenario, indexed: bool) -> Result<RunPerf> {
    let workload = build_workload(scenario)?;
    let builder = if indexed {
        PullUpPlanBuilder::new()
    } else {
        PullUpPlanBuilder::new().without_index()
    };
    let built = builder.build(&workload)?;
    let (a, b) = scenario.generator().generate_pair();
    let mut exec = Executor::with_config(built.plan, executor_config());
    exec.ingest_all(ENTRY_A, a)?;
    exec.ingest_all(ENTRY_B, b)?;
    Ok(perf_of(&exec.run()?))
}

/// One measured run: performance counters plus per-sink result counts (in
/// ascending window order).
pub type MeasuredRun = (RunPerf, Vec<(String, u64)>);

/// Run the Mem-Opt state-slice chain on `scenario` under an explicit
/// executor configuration (the A/B lever of the batch bench: vectorized
/// batch-at-a-time vs item-at-a-time, and the per-visit batch size), and
/// report the per-sink result counts alongside the counters.
pub fn run_chain_config(scenario: &Scenario, config: ExecutorConfig) -> Result<MeasuredRun> {
    let workload = build_workload(scenario)?;
    let spec = ChainBuilder::new(workload.clone()).memory_optimal();
    let shared = SharedChainPlan::build(&workload, &spec, &PlannerOptions::default())?;
    let (a, b) = scenario.generator().generate_pair();
    let mut exec = Executor::with_config(shared.plan, config);
    exec.ingest_all(CHAIN_ENTRY, merge_streams(a, b))?;
    let report = exec.run()?;
    let sink_counts = workload
        .queries()
        .iter()
        .map(|q| (q.name.clone(), report.sink_count(&q.name)))
        .collect();
    Ok((perf_of(&report), sink_counts))
}

/// The equi-join-heavy fig18-style scenario: Uniform windows (10/20/30 s),
/// no selections, S⋈ = 0.002 (500-key domain), window ≫ inter-arrival gap.
///
/// The key domain is sparser than the paper's densest panels so that the
/// measured service rate isolates *probe* cost: the linear-scan probe cost
/// is independent of S⋈ while the result-handling overhead shrinks with it,
/// which is exactly the regime (many keys, selective equi joins) where an
/// index matters in practice.
pub fn equi_heavy_scenario(duration_secs: f64, rate: f64) -> Scenario {
    Scenario {
        rate,
        duration_secs,
        num_queries: 3,
        distribution: WindowDistribution::Uniform,
        sel_filter: 1.0,
        sel_join: 0.002,
        seed: 7,
    }
}

/// Drive one [`WindowJoinOp`] with `2 * n_tuples` alternating A/B equi-keyed
/// tuples whose window keeps ~`state_size` tuples per side resident, and
/// measure throughput and probe comparisons per tuple.
fn microbench_join(state_size: usize, key_cardinality: usize, indexed: bool) -> (f64, f64) {
    // One tuple per side per millisecond; window sized to hold `state_size`.
    let window = WindowSpec::new(streamkit::TimeDelta::from_millis(state_size as u64));
    let mut op = WindowJoinOp::symmetric("micro", window, JoinCondition::equi(0));
    if !indexed {
        op = op.without_index();
    }
    let n_tuples = (state_size * 4).max(2_000);
    let mut ctx = OpContext::new();
    let mut sink = Vec::new();
    let start = Instant::now();
    for i in 0..n_tuples {
        let ts = Timestamp::from_millis(i as u64 + 1);
        let key = (i % key_cardinality) as i64;
        op.process(0, Tuple::of_ints(ts, StreamId::A, &[key]).into(), &mut ctx);
        op.process(1, Tuple::of_ints(ts, StreamId::B, &[key]).into(), &mut ctx);
        ctx.swap_outputs(&mut sink);
        sink.clear();
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let processed = (2 * n_tuples) as f64;
    (
        processed / elapsed,
        ctx.counters.probe_comparisons as f64 / processed,
    )
}

/// One microbench grid cell, indexed vs scan.
pub fn microbench_row(state_size: usize, key_cardinality: usize) -> MicrobenchRow {
    let (indexed_tps, indexed_cmp_per_tuple) = microbench_join(state_size, key_cardinality, true);
    let (scan_tps, scan_cmp_per_tuple) = microbench_join(state_size, key_cardinality, false);
    MicrobenchRow {
        state_size,
        key_cardinality,
        indexed_tps,
        scan_tps,
        indexed_cmp_per_tuple,
        scan_cmp_per_tuple,
    }
}

/// Run the whole harness: fig18-style strategy comparisons plus the
/// microbench grid.
pub fn run_join_bench(duration_secs: f64, rate: f64) -> Result<JoinBenchReport> {
    let scenario = equi_heavy_scenario(duration_secs, rate);
    let strategies = vec![
        StrategyComparison {
            strategy: "State-Slice-Chain".to_string(),
            indexed: run_chain(&scenario, true)?,
            scan: run_chain(&scenario, false)?,
        },
        StrategyComparison {
            strategy: "Selection-PullUp".to_string(),
            indexed: run_pullup(&scenario, true)?,
            scan: run_pullup(&scenario, false)?,
        },
    ];
    let mut microbench = Vec::new();
    for &state_size in &[500usize, 2_000, 8_000] {
        for &keys in &[10usize, 100, 1_000] {
            microbench.push(microbench_row(state_size, keys));
        }
    }
    Ok(JoinBenchReport {
        duration_secs,
        rate,
        sel_join: scenario.sel_join,
        strategies,
        microbench,
    })
}

/// One row of the shard-scaling sweep: the fig18-style equi workload run on
/// `shards` hash-partitioned parallel chain instances.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRun {
    /// Number of parallel shards.
    pub shards: usize,
    /// Performance counters of the merged run.
    pub perf: RunPerf,
    /// Per-sink result counts (query name, tuples delivered), in ascending
    /// window order — must be identical for every shard count.
    pub sink_counts: Vec<(String, u64)>,
}

/// The shard-scaling report written to `BENCH_shard.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardBenchReport {
    /// Stream duration of the runs (seconds).
    pub duration_secs: f64,
    /// Arrival rate per stream (tuples/second).
    pub rate: f64,
    /// Join selectivity S⋈.
    pub sel_join: f64,
    /// Hardware threads available to the run (`std::thread::available_parallelism`).
    /// Shard counts beyond this are time-sliced, not parallel — the scaling
    /// curve flattens there by construction.
    pub hardware_threads: usize,
    /// One row per swept shard count (ascending).
    pub rows: Vec<ShardRun>,
    /// `true` iff every row delivered identical per-sink counts (the
    /// shard-invariance property; pinned exhaustively by the proptest in
    /// `tests/shard_equivalence.rs`).
    pub results_match: bool,
}

impl ShardBenchReport {
    /// Service-rate speedup of a row over the single-shard baseline (the
    /// row with `shards == 1`; if the sweep did not include one, the first
    /// row serves as the baseline).
    pub fn speedup(&self, row: &ShardRun) -> f64 {
        let base = self
            .rows
            .iter()
            .find(|r| r.shards == 1)
            .or_else(|| self.rows.first());
        match base {
            Some(base) if base.perf.service_rate > 0.0 => {
                row.perf.service_rate / base.perf.service_rate
            }
            _ => 0.0,
        }
    }
}

/// Run the Mem-Opt state-slice chain on `scenario` across `shards`
/// hash-partitioned parallel instances.
pub fn run_chain_sharded(scenario: &Scenario, shards: usize) -> Result<ShardRun> {
    let workload = build_workload(scenario)?;
    let spec = ChainBuilder::new(workload.clone()).memory_optimal();
    let factory = ChainPlanFactory::new(
        workload.clone(),
        spec,
        PlannerOptions::default().with_shards(shards),
    );
    let mut exec = factory.sharded_with_config(executor_config())?;
    let (a, b) = scenario.generator().generate_pair();
    exec.ingest_all(CHAIN_ENTRY, merge_streams(a, b))?;
    let report = exec.run()?;
    let sink_counts = workload
        .queries()
        .iter()
        .map(|q| (q.name.clone(), report.sink_count(&q.name)))
        .collect();
    Ok(ShardRun {
        shards,
        perf: perf_of(&report),
        sink_counts,
    })
}

/// Run the shard-scaling sweep: the fig18-style equi workload once per
/// requested shard count.
pub fn run_shard_bench(
    duration_secs: f64,
    rate: f64,
    shard_counts: &[usize],
) -> Result<ShardBenchReport> {
    let scenario = equi_heavy_scenario(duration_secs, rate);
    let mut rows = Vec::with_capacity(shard_counts.len());
    for &shards in shard_counts {
        rows.push(run_chain_sharded(&scenario, shards)?);
    }
    let results_match = rows
        .windows(2)
        .all(|pair| pair[0].sink_counts == pair[1].sink_counts);
    Ok(ShardBenchReport {
        duration_secs,
        rate,
        sel_join: scenario.sel_join,
        hardware_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        rows,
        results_match,
    })
}

impl ShardBenchReport {
    /// Serialise to the `BENCH_shard.json` format (stable key order, no
    /// external JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"sharded_chain\",\n");
        out.push_str(&format!(
            "  \"command\": \"SS_DURATION_SECS={:.0} cargo run --release -p ss_bench --bin bench_report -- --shards {}\",\n",
            self.duration_secs,
            self.rows.last().map(|r| r.shards).unwrap_or(1),
        ));
        out.push_str(&format!(
            "  \"workload\": {{\"style\": \"fig18-equi\", \"duration_secs\": {:.1}, \"rate\": {:.1}, \"sel_join\": {}, \"distribution\": \"Uniform\", \"num_queries\": 3, \"selections\": false}},\n",
            self.duration_secs, self.rate, self.sel_join
        ));
        out.push_str(&format!(
            "  \"hardware_threads\": {},\n  \"results_match\": {},\n",
            self.hardware_threads, self.results_match
        ));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let sinks = row
                .sink_counts
                .iter()
                .map(|(name, count)| format!("\"{name}\": {count}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\n      \"shards\": {},\n      \"service_rate\": {:.1},\n      \"speedup\": {:.2},\n      \"elapsed_secs\": {:.4},\n      \"probe_comparisons\": {},\n      \"total_comparisons\": {},\n      \"total_outputs\": {},\n      \"peak_state_tuples\": {},\n      \"sink_counts\": {{{}}}\n    }}{}\n",
                row.shards,
                row.perf.service_rate,
                self.speedup(row),
                row.perf.elapsed_secs,
                row.perf.probe_comparisons,
                row.perf.total_comparisons,
                row.perf.total_outputs,
                row.perf.peak_state_tuples,
                sinks,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// One measured run of the skew bench: the Zipf-keyed equi workload under
/// one routing policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewRun {
    /// Policy label: `1-shard-oracle`, `hash-only` or `skew-aware`.
    pub label: String,
    /// Number of parallel shards.
    pub shards: usize,
    /// Performance counters of the merged run.
    pub perf: RunPerf,
    /// The busiest shard's share of all routed tuples (`1/N` is perfectly
    /// balanced, `1.0` fully concentrated).
    pub busiest_share: f64,
    /// Keys resident in the hot set at the end of the run.
    pub hot_keys: usize,
    /// Keys promoted to replicate-to-all routing during the run.
    pub promotions: u64,
    /// Hot probe-side tuples broadcast to all shards (per source tuple).
    pub hot_broadcast: u64,
    /// Hot build-side tuples spread round-robin.
    pub hot_spread: u64,
    /// Times the router blocked on a full worker ring.
    pub router_stalls: u64,
    /// Per-sink result counts, in ascending window order.
    pub sink_counts: Vec<(String, u64)>,
}

/// The skew-routing report written to `BENCH_skew.json`: the fig18-equi
/// workload with Zipf-skewed keys, run on one shard (the correctness
/// oracle), on N shards with plain hash routing, and on N shards with
/// skew-aware hot-key replication.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewBenchReport {
    /// Stream duration of the runs (seconds).
    pub duration_secs: f64,
    /// Arrival rate per stream (tuples/second).
    pub rate: f64,
    /// Join selectivity S⋈ (sets the 500-key domain).
    pub sel_join: f64,
    /// Zipf skew exponent of the key distribution.
    pub zipf_exponent: f64,
    /// Shard count of the two multi-shard runs.
    pub shards: usize,
    /// Single-shard reference run.
    pub oracle: SkewRun,
    /// N shards, plain hash routing (the hot key pins one shard).
    pub hash_only: SkewRun,
    /// N shards, hot keys replicated to all shards.
    pub skew_aware: SkewRun,
    /// `true` iff all three runs delivered identical per-sink counts.
    pub results_match: bool,
    /// `true` iff all three runs performed identical probe comparisons
    /// (replication changes purge work, never probe work).
    pub probes_match: bool,
}

/// Run the Mem-Opt chain on `scenario` with Zipf(`exponent`)-skewed keys
/// across `shards` instances, with or without skew-aware routing.
pub fn run_chain_skewed(
    scenario: &Scenario,
    exponent: f64,
    shards: usize,
    skew_aware: bool,
) -> Result<SkewRun> {
    let workload = build_workload(scenario)?;
    let spec = ChainBuilder::new(workload.clone()).memory_optimal();
    let factory = ChainPlanFactory::new(
        workload.clone(),
        spec,
        PlannerOptions::default().with_shards(shards),
    );
    let mut exec = factory.sharded_with_config(executor_config())?;
    if skew_aware {
        exec.enable_skew(streamkit::SkewConfig::default())?;
    }
    let mut config = scenario.workload_config();
    config.key_dist = KeyDistribution::Zipf { exponent };
    config
        .validate()
        .map_err(streamkit::StreamError::InvalidConfig)?;
    let (a, b) = StreamGenerator::new(config).generate_pair();
    exec.ingest_all(CHAIN_ENTRY, merge_streams(a, b))?;
    let report = exec.run()?;
    let stats = exec.router_stats();
    let sink_counts = workload
        .queries()
        .iter()
        .map(|q| (q.name.clone(), report.sink_count(&q.name)))
        .collect();
    Ok(SkewRun {
        label: match (shards, skew_aware) {
            (1, _) => "1-shard-oracle",
            (_, false) => "hash-only",
            (_, true) => "skew-aware",
        }
        .to_string(),
        shards,
        perf: perf_of(&report),
        busiest_share: stats.busiest_share(),
        hot_keys: exec.hot_keys().len(),
        promotions: stats.promotions,
        hot_broadcast: stats.hot_broadcast,
        hot_spread: stats.hot_spread,
        router_stalls: stats.stalls,
        sink_counts,
    })
}

/// Run the skew bench: the Zipf-keyed equi workload once on one shard and
/// twice on `shards` shards (hash-only, then skew-aware).
pub fn run_skew_bench(
    duration_secs: f64,
    rate: f64,
    exponent: f64,
    shards: usize,
) -> Result<SkewBenchReport> {
    let scenario = equi_heavy_scenario(duration_secs, rate);
    let oracle = run_chain_skewed(&scenario, exponent, 1, false)?;
    let hash_only = run_chain_skewed(&scenario, exponent, shards, false)?;
    let skew_aware = run_chain_skewed(&scenario, exponent, shards, true)?;
    let results_match =
        oracle.sink_counts == hash_only.sink_counts && oracle.sink_counts == skew_aware.sink_counts;
    let probes_match = oracle.perf.probe_comparisons == hash_only.perf.probe_comparisons
        && oracle.perf.probe_comparisons == skew_aware.perf.probe_comparisons;
    Ok(SkewBenchReport {
        duration_secs,
        rate,
        sel_join: scenario.sel_join,
        zipf_exponent: exponent,
        shards,
        oracle,
        hash_only,
        skew_aware,
        results_match,
        probes_match,
    })
}

impl SkewBenchReport {
    /// Serialise to the `BENCH_skew.json` format (stable key order, no
    /// external JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"skew_routing\",\n");
        out.push_str(&format!(
            "  \"command\": \"SS_DURATION_SECS={:.0} cargo run --release -p ss_bench --bin bench_report -- --skew {}\",\n",
            self.duration_secs, self.zipf_exponent,
        ));
        out.push_str(&format!(
            "  \"workload\": {{\"style\": \"fig18-equi\", \"duration_secs\": {:.1}, \"rate\": {:.1}, \"sel_join\": {}, \"key_dist\": \"Zipf({})\", \"distribution\": \"Uniform\", \"num_queries\": 3, \"selections\": false}},\n",
            self.duration_secs, self.rate, self.sel_join, self.zipf_exponent
        ));
        out.push_str(&format!(
            "  \"shards\": {},\n  \"results_match\": {},\n  \"probes_match\": {},\n",
            self.shards, self.results_match, self.probes_match
        ));
        out.push_str("  \"runs\": [\n");
        let runs = [&self.oracle, &self.hash_only, &self.skew_aware];
        for (i, run) in runs.iter().enumerate() {
            let sinks = run
                .sink_counts
                .iter()
                .map(|(name, count)| format!("\"{name}\": {count}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\n      \"policy\": \"{}\",\n      \"shards\": {},\n      \"busiest_shard_share\": {:.4},\n      \"hot_keys\": {},\n      \"promotions\": {},\n      \"hot_broadcast\": {},\n      \"hot_spread\": {},\n      \"router_stalls\": {},\n      \"service_rate\": {:.1},\n      \"elapsed_secs\": {:.4},\n      \"probe_comparisons\": {},\n      \"total_comparisons\": {},\n      \"total_outputs\": {},\n      \"sink_counts\": {{{}}}\n    }}{}\n",
                run.label,
                run.shards,
                run.busiest_share,
                run.hot_keys,
                run.promotions,
                run.hot_broadcast,
                run.hot_spread,
                run.router_stalls,
                run.perf.service_rate,
                run.perf.elapsed_secs,
                run.perf.probe_comparisons,
                run.perf.total_comparisons,
                run.perf.total_outputs,
                sinks,
                if i + 1 < runs.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// One row of the batch-size sweep: the fig18-style equi workload on the
/// vectorized executor with the given per-visit batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRun {
    /// Per-visit batch (run) size.
    pub batch: usize,
    /// Performance counters of the run.
    pub perf: RunPerf,
    /// Per-sink result counts, in ascending window order.
    pub sink_counts: Vec<(String, u64)>,
}

/// The batch-execution report written to `BENCH_batch.json`: the
/// item-at-a-time toggle (`ExecutorConfig::vectorized = false`) as the
/// baseline, plus one vectorized row per swept batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchBenchReport {
    /// Stream duration of the runs (seconds).
    pub duration_secs: f64,
    /// Arrival rate per stream (tuples/second).
    pub rate: f64,
    /// Join selectivity S⋈.
    pub sel_join: f64,
    /// Best-of-N repetitions per configuration (interleaved; see
    /// [`bench_reps`]).
    pub reps: usize,
    /// The item-at-a-time baseline (batch toggle off, per-visit budget 64).
    pub item: BatchRun,
    /// One vectorized row per swept batch size (ascending).
    pub rows: Vec<BatchRun>,
    /// `true` iff every row (and the baseline) delivered identical per-sink
    /// counts — batch-at-a-time execution is result-invisible.
    pub results_match: bool,
    /// `true` iff every row performed exactly the baseline's probe
    /// comparisons — deferred batch purges never change probe work.
    pub probes_match: bool,
}

impl BatchBenchReport {
    /// Service-rate speedup of a vectorized row over the item-at-a-time
    /// baseline.
    pub fn speedup(&self, row: &BatchRun) -> f64 {
        if self.item.perf.service_rate <= 0.0 {
            0.0
        } else {
            row.perf.service_rate / self.item.perf.service_rate
        }
    }

    /// Serialise to the `BENCH_batch.json` format (stable key order, no
    /// external JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"batched_execution\",\n");
        out.push_str(&format!(
            "  \"command\": \"SS_DURATION_SECS={:.0} SS_BENCH_REPS={} cargo run --release -p ss_bench --bin bench_report -- --batch {}\",\n",
            self.duration_secs,
            self.reps,
            self.rows.last().map(|r| r.batch).unwrap_or(64),
        ));
        out.push_str(&format!(
            "  \"workload\": {{\"style\": \"fig18-equi\", \"duration_secs\": {:.1}, \"rate\": {:.1}, \"sel_join\": {}, \"distribution\": \"Uniform\", \"num_queries\": 3, \"selections\": false}},\n",
            self.duration_secs, self.rate, self.sel_join
        ));
        out.push_str(&format!(
            "  \"results_match\": {},\n  \"probes_match\": {},\n",
            self.results_match, self.probes_match
        ));
        out.push_str(&format!(
            "  \"item_at_a_time\": {},\n",
            Self::json_row(&self.item, None)
        ));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                Self::json_row(row, Some(self.speedup(row))),
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    fn json_row(row: &BatchRun, speedup: Option<f64>) -> String {
        let sinks = row
            .sink_counts
            .iter()
            .map(|(name, count)| format!("\"{name}\": {count}"))
            .collect::<Vec<_>>()
            .join(", ");
        let speedup = speedup
            .map(|s| format!("\"speedup\": {s:.2}, "))
            .unwrap_or_default();
        format!(
            "{{\"batch\": {}, {}\"service_rate\": {:.1}, \"elapsed_secs\": {:.4}, \"probe_comparisons\": {}, \"total_comparisons\": {}, \"total_outputs\": {}, \"sink_counts\": {{{}}}}}",
            row.batch,
            speedup,
            row.perf.service_rate,
            row.perf.elapsed_secs,
            row.perf.probe_comparisons,
            row.perf.total_comparisons,
            row.perf.total_outputs,
            sinks,
        )
    }
}

/// Repetitions per configuration for the batch bench (`SS_BENCH_REPS`,
/// default 3): each config keeps its fastest run (best-of-N,
/// criterion-style — the minimum wall clock is the least
/// scheduler-noise-contaminated estimate), and repetitions are interleaved
/// round-robin across the configurations so a noisy window on a shared box
/// hits every configuration equally instead of burying one of them.
fn bench_reps() -> usize {
    std::env::var("SS_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3)
}

/// Run the batch-size sweep: the fig18-style equi workload on the
/// item-at-a-time path and once per requested batch size on the vectorized
/// path (each configuration best-of-`SS_BENCH_REPS`, interleaved).
pub fn run_batch_bench(
    duration_secs: f64,
    rate: f64,
    batch_sizes: &[usize],
) -> Result<BatchBenchReport> {
    let scenario = equi_heavy_scenario(duration_secs, rate);
    let reps = bench_reps();
    // Both modes run under the library-default executor configuration (only
    // the vectorized toggle and the per-visit budget vary), so the A/B
    // difference is exactly the batch-at-a-time data path.
    let item_config = ExecutorConfig {
        vectorized: false,
        ..ExecutorConfig::default()
    };
    let mut configs: Vec<(usize, ExecutorConfig)> =
        vec![(item_config.batch_per_visit, item_config)];
    for &batch in batch_sizes {
        configs.push((
            batch,
            ExecutorConfig {
                batch_per_visit: batch,
                vectorized: true,
                ..ExecutorConfig::default()
            },
        ));
    }
    let mut best: Vec<Option<MeasuredRun>> = vec![None; configs.len()];
    for _ in 0..reps {
        for (slot, (_, config)) in best.iter_mut().zip(&configs) {
            let (perf, sinks) = run_chain_config(&scenario, config.clone())?;
            match slot {
                Some((best_perf, best_sinks)) => {
                    assert_eq!(best_sinks, &sinks, "deterministic runs diverged");
                    if perf.elapsed_secs < best_perf.elapsed_secs {
                        *slot = Some((perf, sinks));
                    }
                }
                None => *slot = Some((perf, sinks)),
            }
        }
    }
    let mut runs = best.into_iter().zip(&configs).map(|(slot, (batch, _))| {
        let (perf, sink_counts) = slot.expect("at least one repetition");
        BatchRun {
            batch: *batch,
            perf,
            sink_counts,
        }
    });
    let item = runs.next().expect("item baseline present");
    let rows: Vec<BatchRun> = runs.collect();
    let results_match = rows.iter().all(|r| r.sink_counts == item.sink_counts);
    let probes_match = rows
        .iter()
        .all(|r| r.perf.probe_comparisons == item.perf.probe_comparisons);
    Ok(BatchBenchReport {
        duration_secs,
        rate,
        sel_join: scenario.sel_join,
        reps,
        item,
        rows,
        results_match,
        probes_match,
    })
}

/// One measured configuration of the columnar A/B bench.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarRun {
    /// Configuration label (`row`, `columnar`, `columnar-cpu-opt`).
    pub label: String,
    /// Performance counters of the run (including the byte columns).
    pub perf: RunPerf,
    /// Per-sink result counts, in ascending window order.
    pub sink_counts: Vec<(String, u64)>,
}

/// The columnar-execution report written to `BENCH_columnar.json`: the
/// fig18-style equi workload on the Mem-Opt chain with the row-tuple result
/// path as the baseline and the same plan with columnar result batches
/// ([`PlannerOptions::columnar_results`]), plus a Mem-Opt vs CPU-Opt pair on
/// a *selective* variant of the workload (S_σ = 0.5) whose byte columns
/// exhibit the paper's Mem-Opt < CPU-Opt state-memory ordering (Figures
/// 17/19) in real bytes — without selections the slicing cannot change what
/// state is held, so the gap only opens once lineage gates can drop tuples
/// the merged slices must keep.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarBenchReport {
    /// Stream duration of the runs (seconds).
    pub duration_secs: f64,
    /// Arrival rate per stream (tuples/second).
    pub rate: f64,
    /// Join selectivity S⋈.
    pub sel_join: f64,
    /// Selection selectivity S_σ of the memory-comparison pair.
    pub sel_filter: f64,
    /// Best-of-N repetitions per configuration (interleaved).
    pub reps: usize,
    /// Mem-Opt chain, row-tuple result path (the baseline).
    pub row: ColumnarRun,
    /// Mem-Opt chain, columnar result batches.
    pub columnar: ColumnarRun,
    /// Mem-Opt chain on the selective workload, columnar results.
    pub mem_opt: ColumnarRun,
    /// CPU-Opt chain on the selective workload, columnar results.
    pub cpu_opt: ColumnarRun,
    /// `true` iff the columnar run matched the row run's per-sink counts
    /// and the CPU-Opt selective run matched the Mem-Opt selective run's —
    /// columnar transport and re-slicing are result-invisible.
    pub results_match: bool,
    /// `true` iff the columnar Mem-Opt run performed exactly the row run's
    /// probe comparisons — batching results never changes probe work.
    pub probes_match: bool,
}

impl ColumnarBenchReport {
    /// Service-rate ratio of the columnar Mem-Opt run over the row baseline.
    pub fn service_rate_ratio(&self) -> f64 {
        if self.row.perf.service_rate <= 0.0 {
            0.0
        } else {
            self.columnar.perf.service_rate / self.row.perf.service_rate
        }
    }

    /// `true` iff the Mem-Opt plan held strictly fewer peak live state bytes
    /// than the CPU-Opt plan on the selective workload (the paper's Figure
    /// 19 memory ordering).
    pub fn mem_opt_shrinks_state(&self) -> bool {
        self.mem_opt.perf.peak_state_bytes < self.cpu_opt.perf.peak_state_bytes
    }

    /// Serialise to the `BENCH_columnar.json` format (stable key order, no
    /// external JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"columnar_execution\",\n");
        out.push_str(&format!(
            "  \"command\": \"SS_DURATION_SECS={:.0} SS_BENCH_REPS={} cargo run --release -p ss_bench --bin bench_report -- --columnar\",\n",
            self.duration_secs, self.reps,
        ));
        out.push_str(&format!(
            "  \"workload\": {{\"style\": \"fig18-equi\", \"duration_secs\": {:.1}, \"rate\": {:.1}, \"sel_join\": {}, \"distribution\": \"Uniform\", \"num_queries\": 3, \"selections\": false}},\n",
            self.duration_secs, self.rate, self.sel_join
        ));
        out.push_str(&format!(
            "  \"memory_workload\": {{\"style\": \"fig19-selective\", \"sel_filter\": {}, \"selections\": true}},\n",
            self.sel_filter
        ));
        out.push_str(&format!(
            "  \"results_match\": {},\n  \"probes_match\": {},\n  \"service_rate_ratio\": {:.2},\n  \"mem_opt_shrinks_state\": {},\n",
            self.results_match,
            self.probes_match,
            self.service_rate_ratio(),
            self.mem_opt_shrinks_state(),
        ));
        out.push_str("  \"runs\": [\n");
        let runs = [&self.row, &self.columnar, &self.mem_opt, &self.cpu_opt];
        for (i, run) in runs.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                Self::json_row(run),
                if i + 1 < runs.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    fn json_row(run: &ColumnarRun) -> String {
        let sinks = run
            .sink_counts
            .iter()
            .map(|(name, count)| format!("\"{name}\": {count}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"label\": \"{}\", \"service_rate\": {:.1}, \"elapsed_secs\": {:.4}, \"probe_comparisons\": {}, \"total_comparisons\": {}, \"total_outputs\": {}, \"peak_state_tuples\": {}, \"peak_state_bytes\": {}, \"avg_state_bytes\": {:.0}, \"peak_capacity_bytes\": {}, \"sink_counts\": {{{}}}}}",
            run.label,
            run.perf.service_rate,
            run.perf.elapsed_secs,
            run.perf.probe_comparisons,
            run.perf.total_comparisons,
            run.perf.total_outputs,
            run.perf.peak_state_tuples,
            run.perf.peak_state_bytes,
            run.perf.avg_state_bytes,
            run.perf.peak_capacity_bytes,
            sinks,
        )
    }
}

/// Run the state-slice chain on `scenario` under an explicit slicing choice
/// (Mem-Opt, or CPU-Opt when `cpu_opt`), planner options and executor
/// configuration, reporting per-sink counts alongside the counters.
pub fn run_chain_planned(
    scenario: &Scenario,
    cpu_opt: bool,
    options: &PlannerOptions,
    config: ExecutorConfig,
) -> Result<MeasuredRun> {
    let workload = build_workload(scenario)?;
    let builder = ChainBuilder::new(workload.clone());
    let spec = if cpu_opt {
        builder
            .cpu_optimal(&crate::runner::cost_config(scenario))?
            .spec
    } else {
        builder.memory_optimal()
    };
    let shared = SharedChainPlan::build(&workload, &spec, options)?;
    let (a, b) = scenario.generator().generate_pair();
    let mut exec = Executor::with_config(shared.plan, config);
    exec.ingest_all(CHAIN_ENTRY, merge_streams(a, b))?;
    let report = exec.run()?;
    let sink_counts = workload
        .queries()
        .iter()
        .map(|q| (q.name.clone(), report.sink_count(&q.name)))
        .collect();
    Ok((perf_of(&report), sink_counts))
}

/// Run the columnar A/B bench: the fig18-style equi workload on the Mem-Opt
/// chain with row-tuple results vs columnar result batches, plus a Mem-Opt
/// vs CPU-Opt columnar pair on a selective workload variant for the byte
/// comparison (each configuration best-of-`SS_BENCH_REPS`, interleaved).
pub fn run_columnar_bench(duration_secs: f64, rate: f64) -> Result<ColumnarBenchReport> {
    let equi = equi_heavy_scenario(duration_secs, rate);
    // The memory pair needs per-query selections: without them every slicing
    // holds the same state, so the Mem-Opt vs CPU-Opt byte gap only exists
    // on a selective workload (lineage gates drop what merged slices keep).
    let selective = Scenario {
        sel_filter: 0.5,
        ..equi
    };
    let reps = bench_reps();
    let columnar_options = PlannerOptions::default().with_columnar_results();
    let configs: [(&str, &Scenario, bool, PlannerOptions); 4] = [
        ("row", &equi, false, PlannerOptions::default()),
        ("columnar", &equi, false, columnar_options),
        ("memopt-selective", &selective, false, columnar_options),
        ("cpuopt-selective", &selective, true, columnar_options),
    ];
    let mut best: Vec<Option<MeasuredRun>> = vec![None; configs.len()];
    for _ in 0..reps {
        for (slot, (_, scenario, cpu_opt, options)) in best.iter_mut().zip(&configs) {
            let (perf, sinks) = run_chain_planned(scenario, *cpu_opt, options, executor_config())?;
            match slot {
                Some((best_perf, best_sinks)) => {
                    assert_eq!(best_sinks, &sinks, "deterministic runs diverged");
                    if perf.elapsed_secs < best_perf.elapsed_secs {
                        *slot = Some((perf, sinks));
                    }
                }
                None => *slot = Some((perf, sinks)),
            }
        }
    }
    let mut runs = best.into_iter().zip(&configs).map(|(slot, (label, ..))| {
        let (perf, sink_counts) = slot.expect("at least one repetition");
        ColumnarRun {
            label: label.to_string(),
            perf,
            sink_counts,
        }
    });
    let row = runs.next().expect("row baseline present");
    let columnar = runs.next().expect("columnar run present");
    let mem_opt = runs.next().expect("mem-opt selective run present");
    let cpu_opt = runs.next().expect("cpu-opt selective run present");
    let results_match =
        columnar.sink_counts == row.sink_counts && cpu_opt.sink_counts == mem_opt.sink_counts;
    let probes_match = columnar.perf.probe_comparisons == row.perf.probe_comparisons;
    Ok(ColumnarBenchReport {
        duration_secs,
        rate,
        sel_join: equi.sel_join,
        sel_filter: selective.sel_filter,
        reps,
        row,
        columnar,
        mem_opt,
        cpu_opt,
        results_match,
        probes_match,
    })
}

/// One rate point of the band bench: the band-join workload run once with
/// the value-ordered band index and once with linear-scan probes, on
/// byte-identical input.
#[derive(Debug, Clone, PartialEq)]
pub struct BandRun {
    /// Arrival rate per stream (tuples/second) — the state-size lever, since
    /// the windows are fixed.
    pub rate: f64,
    /// Run with the band-indexed join state.
    pub indexed: RunPerf,
    /// Run with linear-scan probes.
    pub scan: RunPerf,
    /// Per-sink result counts (identical across both runs when
    /// `results_match`), in ascending window order.
    pub sink_counts: Vec<(String, u64)>,
    /// `true` iff both runs delivered identical per-sink counts.
    pub results_match: bool,
    /// `true` iff both runs ended in identical final operator states
    /// (captured as drained punctuation-aligned checkpoints — stored tuples,
    /// union watermarks, sink counters and ingest progress).
    pub states_match: bool,
}

impl BandRun {
    /// How many times fewer probe comparisons the band index performs.
    pub fn probe_comparison_ratio(&self) -> f64 {
        if self.indexed.probe_comparisons == 0 {
            0.0
        } else {
            self.scan.probe_comparisons as f64 / self.indexed.probe_comparisons as f64
        }
    }
}

/// The band-join report written to `BENCH_band.json`: a non-equi band
/// workload (`|a.key − b.key| ≤ W`, no hash index applies) swept over
/// arrival rates, each point run indexed and linear on the same input.
#[derive(Debug, Clone, PartialEq)]
pub struct BandBenchReport {
    /// Stream duration of the runs (seconds).
    pub duration_secs: f64,
    /// Largest swept arrival rate (tuples/second).
    pub rate: f64,
    /// Band half-width `W`.
    pub width: i64,
    /// Band selectivity (expected fraction of pairs within the band).
    pub sel_band: f64,
    /// One row per swept rate (ascending — state size grows with the rate).
    pub rows: Vec<BandRun>,
    /// `true` iff every row's indexed and scan runs delivered identical
    /// per-sink counts.
    pub results_match: bool,
    /// `true` iff every row's runs ended in identical final states.
    pub states_match: bool,
}

impl BandBenchReport {
    /// The probe-comparison ratio at the largest state point (the last,
    /// highest-rate row) — the PR's ≥5× acceptance metric.
    pub fn peak_probe_ratio(&self) -> f64 {
        self.rows
            .last()
            .map(BandRun::probe_comparison_ratio)
            .unwrap_or(0.0)
    }
}

/// Band selectivity of the bench workload (sets the key domain to
/// `(2W + 1) / 0.02`).
pub const BAND_SEL: f64 = 0.02;

/// The band-join workload: the fig18-style Uniform windows (10/20/30 s), no
/// selections, joined on [`band_condition`] instead of the equi key.
fn band_workload() -> Result<QueryWorkload> {
    let queries = WindowDistribution::Uniform
        .windows(3)
        .into_iter()
        .enumerate()
        .map(|(i, window)| JoinQuery::new(format!("Q{}", i + 1), window))
        .collect();
    QueryWorkload::new(queries, band_condition())
}

/// One band-chain run: perf, per-sink counts and the drained final state.
type BandChainOutcome = (RunPerf, Vec<(String, u64)>, ShardCheckpoint);

/// Run the Mem-Opt chain on the band workload with explicit input streams,
/// with or without the band index, and capture the drained final state.
fn run_band_chain(
    workload: &QueryWorkload,
    a: Vec<Tuple>,
    b: Vec<Tuple>,
    indexed: bool,
) -> Result<BandChainOutcome> {
    let spec = ChainBuilder::new(workload.clone()).memory_optimal();
    let options = PlannerOptions {
        index_join_state: indexed,
        ..PlannerOptions::default()
    };
    let shared = SharedChainPlan::build(workload, &spec, &options)?;
    let mut exec = Executor::with_config(shared.plan, executor_config());
    exec.ingest_all(CHAIN_ENTRY, merge_streams(a, b))?;
    let report = exec.run()?;
    let sink_counts = workload
        .queries()
        .iter()
        .map(|q| (q.name.clone(), report.sink_count(&q.name)))
        .collect();
    let state = ShardCheckpoint::capture(&mut exec)?;
    Ok((perf_of(&report), sink_counts, state))
}

/// Run one rate point of the band bench: indexed vs linear on the same
/// generated streams, with result and final-state equivalence checks.
pub fn run_band_point(duration_secs: f64, rate: f64, width: i64) -> Result<BandRun> {
    let workload = band_workload()?;
    let generator = BandGenerator::new(
        WorkloadConfig {
            rate,
            duration_secs,
            sel_join: BAND_SEL,
            sel_filter: 1.0,
            seed: 7,
            key_dist: KeyDistribution::Uniform,
        },
        width,
    );
    generator
        .validate()
        .map_err(streamkit::StreamError::InvalidConfig)?;
    let (a, b) = generator.generate_pair();
    let (indexed, indexed_sinks, indexed_state) =
        run_band_chain(&workload, a.clone(), b.clone(), true)?;
    let (scan, scan_sinks, scan_state) = run_band_chain(&workload, a, b, false)?;
    Ok(BandRun {
        rate,
        indexed,
        scan,
        results_match: indexed_sinks == scan_sinks,
        states_match: indexed_state == scan_state,
        sink_counts: indexed_sinks,
    })
}

/// Run the band bench: the band workload at `rate / 4`, `rate / 2` and
/// `rate`, each point indexed vs linear.
pub fn run_band_bench(duration_secs: f64, rate: f64, width: i64) -> Result<BandBenchReport> {
    let mut rows = Vec::new();
    for point in [rate / 4.0, rate / 2.0, rate] {
        rows.push(run_band_point(duration_secs, point, width)?);
    }
    Ok(BandBenchReport {
        duration_secs,
        rate,
        width,
        sel_band: BAND_SEL,
        results_match: rows.iter().all(|r| r.results_match),
        states_match: rows.iter().all(|r| r.states_match),
        rows,
    })
}

impl BandBenchReport {
    /// Serialise to the `BENCH_band.json` format (stable key order, no
    /// external JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"band_join\",\n");
        out.push_str(&format!(
            "  \"command\": \"SS_DURATION_SECS={:.0} cargo run --release -p ss_bench --bin bench_report -- --band {}\",\n",
            self.duration_secs, self.width,
        ));
        out.push_str(&format!(
            "  \"workload\": {{\"style\": \"band\", \"duration_secs\": {:.1}, \"rate\": {:.1}, \"width\": {}, \"sel_band\": {}, \"distribution\": \"Uniform\", \"num_queries\": 3, \"selections\": false}},\n",
            self.duration_secs, self.rate, self.width, self.sel_band
        ));
        out.push_str(&format!(
            "  \"results_match\": {},\n  \"states_match\": {},\n  \"peak_probe_ratio\": {:.2},\n",
            self.results_match,
            self.states_match,
            self.peak_probe_ratio()
        ));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let sinks = row
                .sink_counts
                .iter()
                .map(|(name, count)| format!("\"{name}\": {count}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\n      \"rate\": {:.1},\n      \"probe_comparison_ratio\": {:.2},\n      \"results_match\": {},\n      \"states_match\": {},\n      \"indexed\": {},\n      \"scan\": {},\n      \"sink_counts\": {{{}}}\n    }}{}\n",
                row.rate,
                row.probe_comparison_ratio(),
                row.results_match,
                row.states_match,
                json_run(&row.indexed, "      "),
                json_run(&row.scan, "      "),
                sinks,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_run(perf: &RunPerf, indent: &str) -> String {
    format!(
        "{{\n{indent}  \"service_rate\": {:.1},\n{indent}  \"elapsed_secs\": {:.4},\n{indent}  \"probe_comparisons\": {},\n{indent}  \"total_comparisons\": {},\n{indent}  \"total_outputs\": {},\n{indent}  \"peak_state_tuples\": {},\n{indent}  \"peak_state_bytes\": {},\n{indent}  \"avg_state_bytes\": {:.0},\n{indent}  \"peak_capacity_bytes\": {}\n{indent}}}",
        perf.service_rate,
        perf.elapsed_secs,
        perf.probe_comparisons,
        perf.total_comparisons,
        perf.total_outputs,
        perf.peak_state_tuples,
        perf.peak_state_bytes,
        perf.avg_state_bytes,
        perf.peak_capacity_bytes,
    )
}

impl JoinBenchReport {
    /// Serialise to the `BENCH_join.json` format (stable key order, no
    /// external JSON dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"join_state\",\n");
        out.push_str("  \"command\": \"cargo run --release -p ss_bench --bin bench_report\",\n");
        out.push_str(&format!(
            "  \"workload\": {{\"style\": \"fig18-equi\", \"duration_secs\": {:.1}, \"rate\": {:.1}, \"sel_join\": {}, \"distribution\": \"Uniform\", \"num_queries\": 3, \"selections\": false}},\n",
            self.duration_secs, self.rate, self.sel_join
        ));
        out.push_str("  \"strategies\": [\n");
        for (i, s) in self.strategies.iter().enumerate() {
            out.push_str(&format!(
                "    {{\n      \"strategy\": \"{}\",\n      \"service_rate_speedup\": {:.2},\n      \"probe_comparison_ratio\": {:.2},\n      \"indexed\": {},\n      \"scan\": {}\n    }}{}\n",
                s.strategy,
                s.service_rate_speedup(),
                s.probe_comparison_ratio(),
                json_run(&s.indexed, "      "),
                json_run(&s.scan, "      "),
                if i + 1 < self.strategies.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"microbench\": [\n");
        for (i, m) in self.microbench.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"state_size\": {}, \"key_cardinality\": {}, \"indexed_tps\": {:.0}, \"scan_tps\": {:.0}, \"indexed_cmp_per_tuple\": {:.2}, \"scan_cmp_per_tuple\": {:.2}}}{}\n",
                m.state_size,
                m.key_cardinality,
                m.indexed_tps,
                m.scan_tps,
                m.indexed_cmp_per_tuple,
                m.scan_cmp_per_tuple,
                if i + 1 < self.microbench.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_probe_comparisons_scale_with_matches_not_state() {
        // Acceptance check of the PR: on the equi workload with window ≫
        // inter-arrival gap, indexed probe comparisons track the output size
        // (each match costs ~1 comparison, plus bucket false positives from
        // out-of-window candidates), while scan probes track the state size.
        let scenario = equi_heavy_scenario(6.0, 40.0);
        let indexed = run_chain(&scenario, true).unwrap();
        let scan = run_chain(&scenario, false).unwrap();
        // Same results either way.
        assert_eq!(indexed.total_outputs, scan.total_outputs);
        assert_eq!(indexed.peak_state_tuples, scan.peak_state_tuples);
        // Indexed probes cost within a small constant of the matches...
        assert!(
            (indexed.probe_comparisons as f64) < 4.0 * indexed.total_outputs as f64,
            "indexed probes {} should scale with outputs {}",
            indexed.probe_comparisons,
            indexed.total_outputs
        );
        // ...while scans cost orders of magnitude more on this state size.
        assert!(scan.probe_comparisons > 10 * indexed.probe_comparisons);
    }

    #[test]
    fn microbench_rows_favour_the_index_on_large_sparse_states() {
        // Small grid cell so the test stays fast in debug builds; the full
        // grid runs in the release-mode `bench_report` binary.
        let row = microbench_row(1_000, 500);
        assert!(row.scan_cmp_per_tuple > 10.0 * row.indexed_cmp_per_tuple);
        assert!(row.indexed_tps > 0.0 && row.scan_tps > 0.0);
    }

    #[test]
    fn shard_counts_do_not_change_results() {
        let report = run_shard_bench(4.0, 40.0, &[1, 2, 4]).unwrap();
        assert!(report.results_match);
        assert_eq!(report.rows.len(), 3);
        assert!(report.rows[0].perf.total_outputs > 0);
        // Equi probes touch the same key buckets regardless of the layout.
        for row in &report.rows {
            assert_eq!(
                row.perf.probe_comparisons,
                report.rows[0].perf.probe_comparisons
            );
            assert_eq!(row.perf.total_outputs, report.rows[0].perf.total_outputs);
        }
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"sharded_chain\""));
        assert!(json.contains("\"results_match\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn skew_routing_matches_the_oracle_and_balances_load() {
        let report = run_skew_bench(6.0, 80.0, 1.2, 4).unwrap();
        assert!(report.results_match, "skewed runs diverged from the oracle");
        assert!(report.probes_match, "probe counts diverged from the oracle");
        assert!(report.oracle.perf.total_outputs > 0);
        // The Zipf(1.2) hot key pins one shard under plain hash routing;
        // replication must spread that load strictly better.
        assert!(
            report.hash_only.busiest_share > 0.3,
            "hash-only busiest share {} not skewed",
            report.hash_only.busiest_share
        );
        assert!(
            report.skew_aware.busiest_share < report.hash_only.busiest_share,
            "skew-aware share {} not below hash-only {}",
            report.skew_aware.busiest_share,
            report.hash_only.busiest_share
        );
        assert!(report.skew_aware.promotions > 0);
        assert!(report.skew_aware.hot_broadcast > 0);
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"skew_routing\""));
        assert!(json.contains("\"results_match\": true"));
        assert!(json.contains("\"policy\": \"skew-aware\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn batch_sizes_do_not_change_results() {
        let report = run_batch_bench(4.0, 40.0, &[1, 8, 64]).unwrap();
        assert!(report.results_match);
        assert!(report.probes_match);
        assert_eq!(report.rows.len(), 3);
        assert!(report.item.perf.total_outputs > 0);
        for row in &report.rows {
            assert_eq!(row.sink_counts, report.item.sink_counts);
            assert_eq!(
                row.perf.probe_comparisons,
                report.item.perf.probe_comparisons
            );
        }
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"batched_execution\""));
        assert!(json.contains("\"results_match\": true"));
        assert!(json.contains("\"probes_match\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn columnar_transport_is_result_invisible() {
        let report = run_columnar_bench(4.0, 40.0).unwrap();
        assert!(report.results_match);
        assert!(report.probes_match);
        assert!(report.row.perf.total_outputs > 0);
        assert_eq!(report.columnar.sink_counts, report.row.sink_counts);
        // The byte sampling must actually see state on every plan.
        assert!(report.columnar.perf.peak_state_bytes > 0);
        assert!(report.mem_opt.perf.peak_state_bytes > 0);
        assert!(report.cpu_opt.perf.peak_state_bytes > 0);
        assert!(report.columnar.perf.peak_capacity_bytes >= report.columnar.perf.peak_state_bytes);
        // The paper's Figure 19 memory ordering on the selective pair.
        assert!(
            report.mem_opt.perf.peak_state_bytes <= report.cpu_opt.perf.peak_state_bytes,
            "Mem-Opt peak {} exceeds CPU-Opt peak {}",
            report.mem_opt.perf.peak_state_bytes,
            report.cpu_opt.perf.peak_state_bytes
        );
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"columnar_execution\""));
        assert!(json.contains("\"results_match\": true"));
        assert!(json.contains("\"probes_match\": true"));
        assert!(json.contains("\"label\": \"cpuopt-selective\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn band_index_matches_linear_and_prunes_probes() {
        let report = run_band_bench(4.0, 40.0, 10).unwrap();
        assert!(report.results_match, "band runs diverged from linear scans");
        assert!(report.states_match, "band final states diverged");
        assert_eq!(report.rows.len(), 3);
        for row in &report.rows {
            assert!(row.indexed.total_outputs > 0);
            assert_eq!(row.indexed.total_outputs, row.scan.total_outputs);
            assert_eq!(row.indexed.peak_state_tuples, row.scan.peak_state_tuples);
        }
        // The acceptance metric: ≥5× fewer probe comparisons at the largest
        // state point (with full-length streams the ratio is far higher).
        assert!(
            report.peak_probe_ratio() >= 5.0,
            "peak probe ratio {} below 5x",
            report.peak_probe_ratio()
        );
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"band_join\""));
        assert!(json.contains("\"results_match\": true"));
        assert!(json.contains("\"states_match\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn report_serialises_to_wellformed_json() {
        let scenario = equi_heavy_scenario(2.0, 20.0);
        let report = JoinBenchReport {
            duration_secs: scenario.duration_secs,
            rate: scenario.rate,
            sel_join: scenario.sel_join,
            strategies: vec![StrategyComparison {
                strategy: "State-Slice-Chain".to_string(),
                indexed: run_chain(&scenario, true).unwrap(),
                scan: run_chain(&scenario, false).unwrap(),
            }],
            microbench: vec![microbench_row(200, 10)],
        };
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"join_state\""));
        assert!(json.contains("State-Slice-Chain"));
        // Cheap structural sanity: balanced braces/brackets.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
