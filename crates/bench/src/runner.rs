//! Experiment runner: execute one scenario under one sharing strategy and
//! report the metrics the paper's figures plot.

use ss_workload::{Scenario, JOIN_KEY_FIELD};
use state_slice_core::planner::CHAIN_ENTRY;
use state_slice_core::{
    ChainBuilder, ChainSpec, CostConfig, JoinQuery, PlannerOptions, QueryWorkload, SharedChainPlan,
};
use streamkit::error::Result;
use streamkit::{Executor, JoinCondition};

use crate::report::executor_config;

use ss_baselines::{PullUpPlanBuilder, PushDownPlanBuilder, UnsharedPlanBuilder, ENTRY_A, ENTRY_B};

/// The sharing strategies compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// State-slice chain built with the Mem-Opt algorithm (Section 5.1).
    StateSliceMemOpt,
    /// State-slice chain built with the CPU-Opt algorithm (Section 5.2).
    StateSliceCpuOpt,
    /// Naive sharing with selection pull-up (Section 3.1).
    SelectionPullUp,
    /// Stream partition with selection push-down (Section 3.2).
    SelectionPushDown,
    /// One independent plan per query (no sharing).
    Unshared,
}

impl Strategy {
    /// The three strategies compared in Figures 17 and 18.
    pub const FIGURE_17_18: [Strategy; 3] = [
        Strategy::SelectionPullUp,
        Strategy::StateSliceMemOpt,
        Strategy::SelectionPushDown,
    ];

    /// The label used in the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::StateSliceMemOpt => "State-Slice-Chain",
            Strategy::StateSliceCpuOpt => "State-Slice-CPU-Opt",
            Strategy::SelectionPullUp => "Selection-PullUp",
            Strategy::SelectionPushDown => "Selection-PushDown",
            Strategy::Unshared => "Unshared",
        }
    }
}

/// Metrics of one run, mirroring the paper's measurements (Section 7.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Average state-memory usage in tuples (Figures 17).
    pub avg_state_tuples: f64,
    /// Peak state-memory usage in tuples.
    pub peak_state_tuples: usize,
    /// Service rate = total throughput / running time (Figures 18–19).
    pub service_rate: f64,
    /// Total comparison count (the analytical CPU-cost metric).
    pub total_comparisons: u64,
    /// Total result tuples delivered to all query sinks.
    pub total_outputs: u64,
    /// Wall-clock running time in seconds.
    pub elapsed_secs: f64,
    /// Number of operators in the executed plan.
    pub num_operators: usize,
}

/// Build the query workload a scenario registers: windows from the scenario's
/// distribution, the shared equi-join on the key attribute, and (when the
/// scenario has a selection) the filter on every query except the smallest
/// one — exactly the Q1/Q2/Q3 shape of Section 7.2.
pub fn build_workload(scenario: &Scenario) -> Result<QueryWorkload> {
    let filter = scenario.filter_predicate();
    let queries = scenario
        .windows()
        .into_iter()
        .enumerate()
        .map(|(i, window)| {
            let name = format!("Q{}", i + 1);
            match (&filter, i) {
                (Some(pred), i) if i > 0 => JoinQuery::with_filter(name, window, pred.clone()),
                _ => JoinQuery::new(name, window),
            }
        })
        .collect();
    QueryWorkload::new(queries, JoinCondition::equi(JOIN_KEY_FIELD))
}

/// The optimizer statistics handed to the CPU-Opt chain builder for a
/// scenario.  `csys` is calibrated to this crate's executor: forwarding a
/// tuple through one extra operator costs roughly ten comparisons' worth of
/// queue and scheduling work.
pub fn cost_config(scenario: &Scenario) -> CostConfig {
    CostConfig {
        lambda_a: scenario.rate,
        lambda_b: scenario.rate,
        sel_join: scenario.sel_join,
        csys: 10.0,
    }
}

/// Run one scenario under one strategy and collect its metrics.
pub fn run_strategy(scenario: &Scenario, strategy: Strategy) -> Result<RunMetrics> {
    let workload = build_workload(scenario)?;
    let (stream_a, stream_b) = scenario.generator().generate_pair();
    let report;
    let num_operators;
    match strategy {
        Strategy::StateSliceMemOpt | Strategy::StateSliceCpuOpt => {
            let builder = ChainBuilder::new(workload.clone());
            let spec: ChainSpec = match strategy {
                Strategy::StateSliceMemOpt => builder.memory_optimal(),
                _ => builder.cpu_optimal(&cost_config(scenario))?.spec,
            };
            let shared = SharedChainPlan::build(&workload, &spec, &PlannerOptions::default())?;
            num_operators = shared.plan.num_nodes();
            let mut exec = Executor::with_config(shared.plan, executor_config());
            exec.ingest_all(
                CHAIN_ENTRY,
                state_slice_core::merge_streams(stream_a, stream_b),
            )?;
            report = exec.run()?;
        }
        Strategy::SelectionPullUp | Strategy::SelectionPushDown | Strategy::Unshared => {
            let built = match strategy {
                Strategy::SelectionPullUp => PullUpPlanBuilder::new().build(&workload)?,
                Strategy::SelectionPushDown => PushDownPlanBuilder::new().build(&workload)?,
                _ => UnsharedPlanBuilder::new().build(&workload)?,
            };
            num_operators = built.plan.num_nodes();
            let mut exec = Executor::with_config(built.plan, executor_config());
            exec.ingest_all(ENTRY_A, stream_a)?;
            exec.ingest_all(ENTRY_B, stream_b)?;
            report = exec.run()?;
        }
    }
    Ok(RunMetrics {
        avg_state_tuples: report.memory.avg_state_tuples,
        peak_state_tuples: report.memory.peak_state_tuples,
        service_rate: report.service_rate(),
        total_comparisons: report.totals.total_comparisons(),
        total_outputs: report.total_output(),
        elapsed_secs: report.elapsed_secs,
        num_operators,
    })
}

/// Run one scenario under every requested strategy.
pub fn run_strategies(
    scenario: &Scenario,
    strategies: &[Strategy],
) -> Result<Vec<(Strategy, RunMetrics)>> {
    strategies
        .iter()
        .map(|&s| run_strategy(scenario, s).map(|m| (s, m)))
        .collect()
}

/// Sanity check used by tests and the harnesses: every strategy must deliver
/// the same number of results to every query for the same scenario.
pub fn results_agree(scenario: &Scenario, strategies: &[Strategy]) -> Result<bool> {
    let workload = build_workload(scenario)?;
    let (stream_a, stream_b) = scenario.generator().generate_pair();
    let mut reference: Option<Vec<u64>> = None;
    for &strategy in strategies {
        let counts: Vec<u64> = match strategy {
            Strategy::StateSliceMemOpt | Strategy::StateSliceCpuOpt => {
                let builder = ChainBuilder::new(workload.clone());
                let spec = match strategy {
                    Strategy::StateSliceMemOpt => builder.memory_optimal(),
                    _ => builder.cpu_optimal(&cost_config(scenario))?.spec,
                };
                let shared = SharedChainPlan::build(&workload, &spec, &PlannerOptions::default())?;
                let mut exec = Executor::with_config(shared.plan, executor_config());
                exec.ingest_all(
                    CHAIN_ENTRY,
                    state_slice_core::merge_streams(stream_a.clone(), stream_b.clone()),
                )?;
                let report = exec.run()?;
                workload
                    .queries()
                    .iter()
                    .map(|q| report.sink_count(&q.name))
                    .collect()
            }
            _ => {
                let built = match strategy {
                    Strategy::SelectionPullUp => PullUpPlanBuilder::new().build(&workload)?,
                    Strategy::SelectionPushDown => PushDownPlanBuilder::new().build(&workload)?,
                    _ => UnsharedPlanBuilder::new().build(&workload)?,
                };
                let mut exec = Executor::with_config(built.plan, executor_config());
                exec.ingest_all(ENTRY_A, stream_a.clone())?;
                exec.ingest_all(ENTRY_B, stream_b.clone())?;
                let report = exec.run()?;
                workload
                    .queries()
                    .iter()
                    .map(|q| report.sink_count(&q.name))
                    .collect()
            }
        };
        match &reference {
            None => reference = Some(counts),
            Some(expected) if *expected != counts => return Ok(false),
            _ => {}
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_workload::WindowDistribution;

    fn quick_scenario() -> Scenario {
        Scenario {
            rate: 20.0,
            duration_secs: 8.0,
            num_queries: 3,
            distribution: WindowDistribution::Uniform,
            sel_filter: 0.5,
            sel_join: 0.1,
            seed: 3,
        }
    }

    #[test]
    fn workload_has_filter_on_all_but_the_smallest_query() {
        let w = build_workload(&quick_scenario()).unwrap();
        assert_eq!(w.len(), 3);
        assert!(!w.query(0).has_filter());
        assert!(w.query(1).has_filter());
        assert!(w.query(2).has_filter());
        let no_filter = build_workload(&Scenario {
            sel_filter: 1.0,
            ..quick_scenario()
        })
        .unwrap();
        assert!(!no_filter.has_selections());
    }

    #[test]
    fn all_strategies_produce_identical_per_query_counts() {
        let scenario = quick_scenario();
        assert!(results_agree(
            &scenario,
            &[
                Strategy::StateSliceMemOpt,
                Strategy::StateSliceCpuOpt,
                Strategy::SelectionPullUp,
                Strategy::SelectionPushDown,
                Strategy::Unshared,
            ],
        )
        .unwrap());
    }

    #[test]
    fn state_slice_uses_least_memory_for_selective_filters() {
        let scenario = Scenario {
            sel_filter: 0.2,
            duration_secs: 20.0,
            rate: 30.0,
            distribution: WindowDistribution::MostlySmall,
            ..quick_scenario()
        };
        let slice = run_strategy(&scenario, Strategy::StateSliceMemOpt).unwrap();
        let pullup = run_strategy(&scenario, Strategy::SelectionPullUp).unwrap();
        let pushdown = run_strategy(&scenario, Strategy::SelectionPushDown).unwrap();
        assert!(slice.avg_state_tuples <= pullup.avg_state_tuples);
        assert!(slice.avg_state_tuples <= pushdown.avg_state_tuples);
        assert!(slice.total_comparisons <= pullup.total_comparisons);
    }

    #[test]
    fn metrics_are_populated() {
        let m = run_strategy(&quick_scenario(), Strategy::StateSliceMemOpt).unwrap();
        assert!(m.service_rate > 0.0);
        assert!(m.avg_state_tuples > 0.0);
        assert!(m.peak_state_tuples > 0);
        assert!(m.total_outputs > 0);
        assert!(m.elapsed_secs > 0.0);
        assert!(m.num_operators >= 6);
        let labels: Vec<&str> = Strategy::FIGURE_17_18.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Selection-PullUp",
                "State-Slice-Chain",
                "Selection-PushDown"
            ]
        );
    }
}
