//! Reproduction of Table 2: the step-by-step execution trace of a two-slice
//! one-way chain (Section 4.1).

use state_slice_core::sliced_one_way::{SlicedOneWayJoinOp, PORT_NEXT_SLICE, PORT_RESULTS};
use streamkit::operator::{OpContext, Operator};
use streamkit::queue::StreamItem;
use streamkit::tuple::{StreamId, Tuple};
use streamkit::window::SliceWindow;
use streamkit::{JoinCondition, Timestamp};

/// One row of the reproduced Table 2: the system state after one scheduler
/// step.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRow {
    /// Simulated second at which the step happens.
    pub time: u64,
    /// Which tuple (if any) arrived at this step, e.g. `"a1"`.
    pub arrival: Option<String>,
    /// Which operator ran (`"J1"` or `"J2"`).
    pub operator: String,
    /// Timestamps (seconds) of tuples in J1's state, oldest first.
    pub j1_state: Vec<u64>,
    /// Timestamps (seconds) of tuples in the queue between J1 and J2.
    pub queue: Vec<u64>,
    /// Timestamps (seconds) of tuples in J2's state, oldest first.
    pub j2_state: Vec<u64>,
    /// Result pairs `(result ts, |Ta - Tb|)` produced at this step.
    pub outputs: Vec<(u64, u64)>,
}

fn secs(ts: Timestamp) -> u64 {
    ts.as_micros() / 1_000_000
}

/// Execute the Table 2 scenario (w1 = 2 s, w2 = 4 s, Cartesian semantics,
/// arrivals a1 a2 a3 b1 b2 at seconds 1–5, then the queue is drained) and
/// return the per-step trace.
pub fn table2_trace() -> Vec<TraceRow> {
    let mut j1 = SlicedOneWayJoinOp::new(
        "J1",
        SliceWindow::from_secs(0, 2),
        JoinCondition::Cross,
        StreamId::A,
    );
    let mut j2 = SlicedOneWayJoinOp::new(
        "J2",
        SliceWindow::from_secs(2, 4),
        JoinCondition::Cross,
        StreamId::A,
    )
    .last_in_chain();
    let mut queue: Vec<Tuple> = Vec::new();
    let mut rows = Vec::new();

    let arrivals = vec![
        (
            "a1",
            Tuple::of_ints(Timestamp::from_secs(1), StreamId::A, &[1]),
        ),
        (
            "a2",
            Tuple::of_ints(Timestamp::from_secs(2), StreamId::A, &[2]),
        ),
        (
            "a3",
            Tuple::of_ints(Timestamp::from_secs(3), StreamId::A, &[3]),
        ),
        (
            "b1",
            Tuple::of_ints(Timestamp::from_secs(4), StreamId::B, &[1]),
        ),
        (
            "b2",
            Tuple::of_ints(Timestamp::from_secs(5), StreamId::B, &[2]),
        ),
    ];

    let mut time = 0;
    for (name, tuple) in arrivals {
        time += 1;
        let mut ctx = OpContext::new();
        j1.process(0, tuple.into(), &mut ctx);
        let mut outputs = Vec::new();
        for (port, item) in ctx.take_outputs() {
            match (port, item) {
                (PORT_RESULTS, StreamItem::Tuple(t)) => {
                    outputs.push((secs(t.ts), t.origin_span.as_micros() / 1_000_000))
                }
                (PORT_NEXT_SLICE, StreamItem::Tuple(t)) => queue.push(t),
                _ => {}
            }
        }
        rows.push(TraceRow {
            time,
            arrival: Some(name.to_string()),
            operator: "J1".to_string(),
            j1_state: j1.state_timestamps().iter().map(|&t| secs(t)).collect(),
            queue: queue.iter().map(|t| secs(t.ts)).collect(),
            j2_state: j2.state_timestamps().iter().map(|&t| secs(t)).collect(),
            outputs,
        });
    }

    // Remaining steps: J2 drains the logical queue one item per step.
    while !queue.is_empty() {
        time += 1;
        let tuple = queue.remove(0);
        let mut ctx = OpContext::new();
        j2.process(0, tuple.into(), &mut ctx);
        let outputs = ctx
            .take_outputs()
            .into_iter()
            .filter(|(port, item)| *port == PORT_RESULTS && !item.is_punctuation())
            .filter_map(|(_, item)| item.into_tuple())
            .map(|t| (secs(t.ts), t.origin_span.as_micros() / 1_000_000))
            .collect();
        rows.push(TraceRow {
            time,
            arrival: None,
            operator: "J2".to_string(),
            j1_state: j1.state_timestamps().iter().map(|&t| secs(t)).collect(),
            queue: queue.iter().map(|t| secs(t.ts)).collect(),
            j2_state: j2.state_timestamps().iter().map(|&t| secs(t)).collect(),
            outputs,
        });
    }
    rows
}

/// Format the trace like the paper's Table 2.
pub fn format_table2(rows: &[TraceRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<4} {:<5} {:<4} {:<16} {:<22} {:<16} {}\n",
        "T", "Arr.", "OP", "A::[0,2)", "Queue", "A::[2,4)", "Output (ts,span)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<4} {:<5} {:<4} {:<16} {:<22} {:<16} {:?}\n",
            r.time,
            r.arrival.clone().unwrap_or_default(),
            r.operator,
            format!("{:?}", r.j1_state),
            format!("{:?}", r.queue),
            format!("{:?}", r.j2_state),
            r.outputs
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_arrival_steps_plus_queue_drain_steps() {
        let rows = table2_trace();
        // 5 arrivals + 5 queued items to drain.
        assert_eq!(rows.len(), 10);
        assert!(rows[..5].iter().all(|r| r.operator == "J1"));
        assert!(rows[5..].iter().all(|r| r.operator == "J2"));
    }

    #[test]
    fn union_of_both_slices_matches_the_regular_join() {
        let rows = table2_trace();
        let mut all: Vec<(u64, u64)> = rows.iter().flat_map(|r| r.outputs.clone()).collect();
        all.sort_unstable();
        // Regular one-way join A[4) ⋉ B over the same arrivals produces
        // (b1 with a1,a2,a3) and (b2 with a2,a3): 5 pairs.
        assert_eq!(all, vec![(4, 1), (4, 2), (4, 3), (5, 2), (5, 3)]);
    }

    #[test]
    fn queue_between_slices_follows_emission_order() {
        let rows = table2_trace();
        // After the b1 arrival (step 4) the queue holds a1, a2, then b1.
        assert_eq!(rows[3].queue, vec![1, 2, 4]);
        // After b2 (step 5) it additionally holds a3 and b2.
        assert_eq!(rows[4].queue, vec![1, 2, 4, 3, 5]);
    }

    #[test]
    fn formatting_contains_every_step() {
        let rows = table2_trace();
        let text = format_table2(&rows);
        assert_eq!(text.lines().count(), rows.len() + 1);
        assert!(text.contains("Queue"));
    }
}
