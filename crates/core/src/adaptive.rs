//! Adaptive re-optimization: feed runtime statistics back into the cost
//! model and trigger live re-plans when the workload drifts.
//!
//! The chain a [`crate::builder::ChainBuilder`] picks is only optimal for
//! the statistics it was costed with.  Long-running workloads drift —
//! arrival rates spike, join selectivities shift, key skew concentrates —
//! and the chain that was CPU-optimal at launch can be badly mis-cut an
//! hour later.  The [`Supervisor`] closes the loop:
//!
//! 1. it consumes windowed [`StatsSnapshot`]s from the running
//!    [`LiveReslicer`] (EWMA-smoothed stream-time arrival rates, measured
//!    join selectivity, live per-slice state),
//! 2. a set of **drift detectors** with consecutive-confirmation hysteresis
//!    compares them against the parameters the active plan was costed with
//!    (rate ratio, selectivity ratio, state-bytes slope, total-rate spike /
//!    busiest-shard share),
//! 3. on confirmed drift it **re-costs** Mem-Opt against CPU-Opt under the
//!    measured parameters (via [`ss_cost_model::MeasuredParams`] overlaid on
//!    the declared [`CostConfig`]) and re-derives the slice boundaries,
//! 4. and only when the modeled CPU win over the amortization horizon
//!    exceeds the modeled migration pause cost does it drive a
//!    [`LiveReslicer::set_strategy`] re-plan (or, for load signals,
//!    [`LiveReslicer::rescale_shards`]).
//!
//! Every confirmed decision — applied, vetoed by the win/pause gate, or
//! blocked by the runtime — is appended to an [`AdaptationLog`].  A
//! stationary workload confirms no detector and leaves the log empty.
//!
//! The join selectivity is measured through the inverse of the chain output
//! model rather than from operator counters: for the smallest-window query
//! (the fastest to warm up), a sliding-window equi-join over window `w`
//! delivers `2·λ_A·λ_B·S⋈·w` results per stream-time second, so
//! `S⋈ = out_rate / (2·λ_A·λ_B·w)` with all three factors measured.  This
//! stays correct for any slicing of the chain, because slicing never changes
//! what the union delivers (Theorems 1–2).

use streamkit::error::{Result, StreamError};
use streamkit::stats::DEFAULT_STATS_ALPHA;
use streamkit::StatsSnapshot;

use ss_cost_model::MeasuredParams;

use crate::builder::{ChainBuilder, CostConfig};
use crate::live::{ChainEditPlan, LiveReslicer, SliceStrategy};

/// Thresholds and gates of the adaptive supervisor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Re-plan trigger: measured / current arrival-rate ratio (either
    /// direction, either stream) at or beyond this confirms rate drift.
    pub rate_ratio: f64,
    /// Re-plan trigger: measured / current join-selectivity ratio (either
    /// direction) at or beyond this confirms selectivity drift.
    pub sel_ratio: f64,
    /// Rescale trigger: live state growing faster than this many bytes per
    /// stream-time second.  `f64::INFINITY` disables the detector.
    pub state_slope_bytes_per_sec: f64,
    /// Rescale trigger: measured total rate at or beyond this multiple of
    /// the baseline total rate.
    pub spike_ratio: f64,
    /// Rescale trigger: busiest-shard share of routed tuples at or beyond
    /// this (only meaningful with more than one shard).
    pub busy_share: f64,
    /// Consecutive breached snapshots required before a detector fires
    /// (hysteresis against transient noise).
    pub confirm: u32,
    /// The modeled win must be at least this multiple of the modeled
    /// migration pause cost for an action to be applied.
    pub min_win_ratio: f64,
    /// Modeled migration cost per live state tuple, in comparisons
    /// equivalent (drain, re-cut, reload).
    pub pause_cost_per_tuple: f64,
    /// Amortization horizon for modeled per-second wins, in stream-time
    /// seconds.  `0.0` = auto: ten times the largest query window.
    pub horizon_secs: f64,
    /// Ignore all detectors until this much cumulative stream time has
    /// passed (join states must fill before measurements mean anything).
    /// `0.0` = auto: the largest query window.
    pub warmup_secs: f64,
    /// Upper bound for load-triggered shard rescaling.  `0` disables
    /// rescaling (load decisions are then logged as blocked).
    pub max_shards: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            rate_ratio: 1.5,
            sel_ratio: 2.0,
            state_slope_bytes_per_sec: f64::INFINITY,
            spike_ratio: 2.0,
            busy_share: 0.85,
            confirm: 2,
            min_win_ratio: 1.0,
            pause_cost_per_tuple: 4.0,
            horizon_secs: 0.0,
            warmup_secs: 0.0,
            max_shards: 0,
        }
    }
}

/// Which drift detector confirmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// A stream's measured arrival rate drifted from the costed rate.
    RateDrift,
    /// The measured join selectivity drifted from the costed selectivity.
    SelectivityDrift,
    /// Live state bytes are growing beyond the configured slope.
    StateGrowth,
    /// Total arrival rate spiked, or one shard carries most of the traffic.
    LoadSpike,
}

impl DriftKind {
    /// Stable lower-case name (bench report keys).
    pub fn name(&self) -> &'static str {
        match self {
            DriftKind::RateDrift => "rate",
            DriftKind::SelectivityDrift => "selectivity",
            DriftKind::StateGrowth => "state-growth",
            DriftKind::LoadSpike => "load-spike",
        }
    }
}

/// What the supervisor did about a confirmed drift.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptationAction {
    /// Re-costing confirmed the running slice boundaries are still the
    /// right ones; only the costing baseline was updated.
    KeepPlan,
    /// The chain was re-cut live under the measured parameters.
    Replan {
        /// Strategy installed (`"mem-opt"` or `"cpu-opt"`).
        strategy: String,
        /// Merge primitives the migration applied.
        merges: usize,
        /// Split primitives the migration applied.
        splits: usize,
        /// Observed migration stall in wall-clock seconds.
        pause_secs: f64,
    },
    /// The executor was rescaled to a new shard count.
    Rescale {
        /// Shard count before.
        from: usize,
        /// Shard count after.
        to: usize,
        /// Observed migration stall in wall-clock seconds.
        pause_secs: f64,
    },
    /// The modeled win did not cover the modeled migration pause cost.
    Vetoed {
        /// Strategy that would have been installed.
        strategy: String,
    },
    /// The runtime refused the action (hot keys replicated, shard cap).
    Blocked {
        /// Why the action could not be applied.
        reason: String,
    },
}

/// One confirmed drift decision.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationRecord {
    /// Snapshot sequence number the decision was taken on.
    pub seq: u64,
    /// Cumulative stream time at the decision, in seconds.
    pub stream_secs: f64,
    /// The detector that confirmed.
    pub trigger: DriftKind,
    /// Measured parameters the decision was costed with.
    pub measured: CostConfig,
    /// Modeled win of the chosen plan over the amortization horizon
    /// (comparisons saved, or spread by rescaling).
    pub modeled_win: f64,
    /// Modeled migration pause cost (comparisons equivalent).
    pub modeled_pause: f64,
    /// What was done.
    pub action: AdaptationAction,
    /// Human-readable trigger description (measured vs. baseline).
    pub detail: String,
}

/// Append-only record of every confirmed adaptation decision.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdaptationLog {
    records: Vec<AdaptationRecord>,
}

impl AdaptationLog {
    /// All decisions in confirmation order.
    pub fn records(&self) -> &[AdaptationRecord] {
        &self.records
    }

    /// Number of decisions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no drift was ever confirmed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The latest decision.
    pub fn last(&self) -> Option<&AdaptationRecord> {
        self.records.last()
    }

    /// Number of applied live re-plans (strategy switches / re-cuts).
    pub fn replans(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.action, AdaptationAction::Replan { .. }))
            .count()
    }

    /// Number of applied shard rescalings.
    pub fn rescales(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.action, AdaptationAction::Rescale { .. }))
            .count()
    }
}

/// Detector indices into the streak array.
const DETECTORS: usize = 4;
const D_RATE: usize = 0;
const D_SEL: usize = 1;
const D_STATE: usize = 2;
const D_LOAD: usize = 3;

/// The feedback controller: consumes snapshots, confirms drift, re-costs,
/// and drives live re-plans.  See the module docs for the protocol.
#[derive(Debug, Clone)]
pub struct Supervisor {
    config: SupervisorConfig,
    /// Parameters the active plan was costed with (rebaselined after every
    /// confirmed decision).
    current: CostConfig,
    /// Total rate the load-spike detector compares against.
    baseline_total_rate: f64,
    /// Supervisor-side EWMA of the inverse-model selectivity estimate.
    sel_ewma: Option<f64>,
    /// Cumulative stream time over all snapshots, in seconds.
    stream_secs: f64,
    /// Last (cumulative stream secs, state bytes) pair for slope tracking.
    state_track: Option<(f64, usize)>,
    streaks: [u32; DETECTORS],
    log: AdaptationLog,
}

impl Supervisor {
    /// Start supervising against the parameters the launch plan was costed
    /// with (the declared workload statistics).
    pub fn new(declared: CostConfig, config: SupervisorConfig) -> Self {
        Supervisor {
            config,
            current: declared,
            baseline_total_rate: declared.lambda_a + declared.lambda_b,
            sel_ewma: None,
            stream_secs: 0.0,
            state_track: None,
            streaks: [0; DETECTORS],
            log: AdaptationLog::default(),
        }
    }

    /// Every confirmed decision so far.
    pub fn log(&self) -> &AdaptationLog {
        &self.log
    }

    /// Consume the log (bench reporting).
    pub fn into_log(self) -> AdaptationLog {
        self.log
    }

    /// The parameters the active plan is currently costed with.
    pub fn current_cost(&self) -> &CostConfig {
        &self.current
    }

    /// The supervisor's smoothed join-selectivity estimate, if any input has
    /// been observed yet.
    pub fn measured_sel(&self) -> Option<f64> {
        self.sel_ewma
    }

    /// Drain `live` to a punctuation boundary, sample its runtime
    /// statistics, and act on confirmed drift.  Returns the decision taken
    /// on this snapshot, if any.
    pub fn observe(&mut self, live: &mut LiveReslicer) -> Result<Option<AdaptationRecord>> {
        let snapshot = live.stats_snapshot()?;
        if snapshot.stream_secs <= 0.0 {
            return Ok(None);
        }
        self.stream_secs += snapshot.stream_secs;
        let measured = self.measure(live, &snapshot);
        let cost = self.current.with_measured(&measured);
        let slope = self.state_slope(&snapshot);
        if self.stream_secs < self.warmup_secs(live) {
            // Join states are still filling; rates and the inverse-model
            // selectivity both read low until one full window has passed.
            return Ok(None);
        }
        let Some((detector, detail)) = self.confirm_drift(live, &cost, slope, &snapshot) else {
            return Ok(None);
        };
        let record = match detector {
            D_RATE => self.replan(live, &snapshot, cost, DriftKind::RateDrift, detail)?,
            D_SEL => self.replan(live, &snapshot, cost, DriftKind::SelectivityDrift, detail)?,
            D_STATE => self.rescale(live, &snapshot, cost, DriftKind::StateGrowth, detail)?,
            _ => self.rescale(live, &snapshot, cost, DriftKind::LoadSpike, detail)?,
        };
        self.log.records.push(record.clone());
        Ok(Some(record))
    }

    fn warmup_secs(&self, live: &LiveReslicer) -> f64 {
        if self.config.warmup_secs > 0.0 {
            self.config.warmup_secs
        } else {
            live.workload().max_window().as_secs_f64()
        }
    }

    fn horizon_secs(&self, live: &LiveReslicer) -> f64 {
        if self.config.horizon_secs > 0.0 {
            self.config.horizon_secs
        } else {
            10.0 * live.workload().max_window().as_secs_f64()
        }
    }

    /// Convert one snapshot into cost-model measurement overlays.
    fn measure(&mut self, live: &LiveReslicer, snapshot: &StatsSnapshot) -> MeasuredParams {
        if let Some(inst) = estimate_sel(live, snapshot) {
            self.sel_ewma = Some(match self.sel_ewma {
                None => inst,
                Some(prev) => DEFAULT_STATS_ALPHA * inst + (1.0 - DEFAULT_STATS_ALPHA) * prev,
            });
        }
        // Stateful operators in plan order are exactly the sliced joins in
        // chain order; everything else in the chain plan is transient.
        let stateful: Vec<&streamkit::OperatorSnapshot> = snapshot
            .operators
            .iter()
            .filter(|o| o.state_tuples > 0 || o.state_bytes > 0)
            .collect();
        MeasuredParams {
            rate_a: (snapshot.rate_a > 0.0).then_some(snapshot.rate_a),
            rate_b: (snapshot.rate_b > 0.0).then_some(snapshot.rate_b),
            sel_join: self.sel_ewma,
            csys: None,
            slice_state_tuples: stateful.iter().map(|o| o.state_tuples).collect(),
            slice_state_bytes: stateful.iter().map(|o| o.state_bytes).collect(),
        }
    }

    /// Live state growth in bytes per stream-time second since the last
    /// snapshot.
    fn state_slope(&mut self, snapshot: &StatsSnapshot) -> f64 {
        let now = (self.stream_secs, snapshot.state_bytes);
        let slope = match self.state_track {
            Some((at, bytes)) if now.0 > at => (now.1 as f64 - bytes as f64) / (now.0 - at),
            _ => 0.0,
        };
        self.state_track = Some(now);
        slope
    }

    /// Update every detector's streak and return the first one that reached
    /// the confirmation count, resetting its streak.
    fn confirm_drift(
        &mut self,
        live: &LiveReslicer,
        cost: &CostConfig,
        slope: f64,
        snapshot: &StatsSnapshot,
    ) -> Option<(usize, String)> {
        let cfg = &self.config;
        let cur = &self.current;
        let rate_drift = ratio(cost.lambda_a, cur.lambda_a).max(ratio(cost.lambda_b, cur.lambda_b));
        let sel_drift = ratio(cost.sel_join, cur.sel_join);
        let total_rate = cost.lambda_a + cost.lambda_b;
        let spiked = total_rate >= cfg.spike_ratio * self.baseline_total_rate
            || (live.num_shards() > 1 && snapshot.busiest_shard_share >= cfg.busy_share);
        let breached = [
            rate_drift >= cfg.rate_ratio,
            sel_drift >= cfg.sel_ratio,
            slope >= cfg.state_slope_bytes_per_sec,
            spiked,
        ];
        let details = [
            format!(
                "rate drift ×{rate_drift:.2}: measured λ {:.2}/{:.2} vs costed {:.2}/{:.2}",
                cost.lambda_a, cost.lambda_b, cur.lambda_a, cur.lambda_b
            ),
            format!(
                "selectivity drift ×{sel_drift:.2}: measured S⋈ {:.5} vs costed {:.5}",
                cost.sel_join, cur.sel_join
            ),
            format!(
                "state growing at {slope:.0} bytes/s (live {} bytes)",
                snapshot.state_bytes
            ),
            format!(
                "load spike: total rate {total_rate:.1} vs baseline {:.1}, busiest shard {:.0}%",
                self.baseline_total_rate,
                100.0 * snapshot.busiest_shard_share
            ),
        ];
        let mut fired = None;
        for (i, &hit) in breached.iter().enumerate() {
            if hit {
                self.streaks[i] += 1;
                if fired.is_none() && self.streaks[i] >= cfg.confirm {
                    fired = Some(i);
                }
            } else {
                self.streaks[i] = 0;
            }
        }
        let i = fired?;
        self.streaks[i] = 0;
        Some((i, details[i].clone()))
    }

    /// Re-cost Mem-Opt vs. CPU-Opt under the measured parameters and re-cut
    /// the chain if the modeled win covers the modeled pause.
    fn replan(
        &mut self,
        live: &mut LiveReslicer,
        snapshot: &StatsSnapshot,
        cost: CostConfig,
        trigger: DriftKind,
        detail: String,
    ) -> Result<AdaptationRecord> {
        let builder = ChainBuilder::new(live.workload().clone());
        let mem_spec = builder.memory_optimal();
        let cpu = builder.cpu_optimal(&cost)?;
        // When CPU-Opt keeps every boundary, Mem-Opt is the same chain with
        // the stronger (memory-minimality) guarantee attached.
        let (target_spec, strategy, strategy_name) = if cpu.spec == mem_spec {
            (mem_spec, SliceStrategy::MemOpt, "mem-opt")
        } else {
            (cpu.spec.clone(), SliceStrategy::CpuOpt(cost), "cpu-opt")
        };
        let current_cpu = builder.estimate_cpu(live.spec(), &cost);
        let modeled_win = (current_cpu - cpu.estimated_cpu).max(0.0) * self.horizon_secs(live);
        // Conservative pause model: a re-cut drains at most every live state
        // tuple once.
        let modeled_pause = snapshot.state_tuples as f64 * self.config.pause_cost_per_tuple;
        let edits = ChainEditPlan::between(live.spec(), &target_spec);
        let reason = format!("adapt: {strategy_name} ({detail})");
        let action = if edits.is_empty() {
            // Same boundaries: install the measured strategy (a no-op
            // migration) so later churn re-plans cost against reality.
            live.set_strategy(strategy, reason)?;
            AdaptationAction::KeepPlan
        } else if modeled_win >= self.config.min_win_ratio * modeled_pause {
            live.set_strategy(strategy, reason)?;
            let migration = live.migrations().last().ok_or_else(|| {
                StreamError::Execution("re-plan applied without recording a migration".to_string())
            })?;
            AdaptationAction::Replan {
                strategy: strategy_name.to_string(),
                merges: migration.merges,
                splits: migration.splits,
                pause_secs: migration.pause_secs,
            }
        } else {
            AdaptationAction::Vetoed {
                strategy: strategy_name.to_string(),
            }
        };
        // Rebaseline: the decision (applied or not) was taken against the
        // measured parameters; only a further drift should re-fire.
        self.current = cost;
        self.streaks[D_RATE] = 0;
        self.streaks[D_SEL] = 0;
        Ok(AdaptationRecord {
            seq: snapshot.seq,
            stream_secs: self.stream_secs,
            trigger,
            measured: cost,
            modeled_win,
            modeled_pause,
            action,
            detail,
        })
    }

    /// Double the shard count (up to the cap) if the modeled per-shard CPU
    /// relief covers the modeled rehash pause.
    fn rescale(
        &mut self,
        live: &mut LiveReslicer,
        snapshot: &StatsSnapshot,
        cost: CostConfig,
        trigger: DriftKind,
        detail: String,
    ) -> Result<AdaptationRecord> {
        let from = live.num_shards();
        let to = (from * 2).min(self.config.max_shards);
        let builder = ChainBuilder::new(live.workload().clone());
        let chain_cpu = builder.estimate_cpu(live.spec(), &cost);
        let modeled_pause = snapshot.state_tuples as f64 * self.config.pause_cost_per_tuple;
        let (modeled_win, action) = if to <= from {
            (
                0.0,
                AdaptationAction::Blocked {
                    reason: format!(
                        "at shard cap ({from} shards, max {})",
                        self.config.max_shards
                    ),
                },
            )
        } else if live.executor().has_hot_keys() {
            (
                0.0,
                AdaptationAction::Blocked {
                    reason: "skew-replicated hot keys are active".to_string(),
                },
            )
        } else {
            // Spreading the chain over `to` shards relieves each shard of
            // `1 - from/to` of the per-shard work.
            let win = chain_cpu * self.horizon_secs(live) * (1.0 - from as f64 / to as f64);
            if win >= self.config.min_win_ratio * modeled_pause {
                live.rescale_shards(to)?;
                let migration = live.migrations().last().ok_or_else(|| {
                    StreamError::Execution(
                        "rescale applied without recording a migration".to_string(),
                    )
                })?;
                (
                    win,
                    AdaptationAction::Rescale {
                        from,
                        to,
                        pause_secs: migration.pause_secs,
                    },
                )
            } else {
                (
                    win,
                    AdaptationAction::Vetoed {
                        strategy: format!("rescale {from}->{to}"),
                    },
                )
            }
        };
        // Rebaseline the load detectors on what was just observed.
        self.baseline_total_rate = cost.lambda_a + cost.lambda_b;
        self.state_track = Some((self.stream_secs, snapshot.state_bytes));
        self.streaks[D_STATE] = 0;
        self.streaks[D_LOAD] = 0;
        Ok(AdaptationRecord {
            seq: snapshot.seq,
            stream_secs: self.stream_secs,
            trigger,
            measured: cost,
            modeled_win,
            modeled_pause,
            action,
            detail,
        })
    }
}

/// `max(a/b, b/a)` with zero-safe handling: equal values (including two
/// zeros) give 1.0; one zero against a non-zero gives infinity.
fn ratio(a: f64, b: f64) -> f64 {
    if a == b {
        return 1.0;
    }
    if a <= 0.0 || b <= 0.0 {
        return f64::INFINITY;
    }
    (a / b).max(b / a)
}

/// Inverse-model join-selectivity estimate from the smallest-window query's
/// output delta: `S⋈ = out_rate / (2·λ_A·λ_B·w)`.
fn estimate_sel(live: &LiveReslicer, snapshot: &StatsSnapshot) -> Option<f64> {
    let q = live.workload().queries().iter().min_by_key(|q| q.window)?;
    let w = q.window.as_secs_f64();
    let denom = 2.0 * snapshot.rate_a * snapshot.rate_b * w;
    if denom <= 0.0 || snapshot.stream_secs <= 0.0 {
        return None;
    }
    let (_, out_delta) = snapshot.sink_out.iter().find(|(name, _)| name == &q.name)?;
    let out_rate = *out_delta as f64 / snapshot.stream_secs;
    Some((out_rate / denom).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::LiveOptions;
    use crate::query::{JoinQuery, QueryWorkload};
    use streamkit::tuple::StreamId;
    use streamkit::{JoinCondition, TimeDelta, Timestamp, Tuple};

    fn workload(windows: &[u64]) -> QueryWorkload {
        let queries = windows
            .iter()
            .map(|&w| JoinQuery::new(format!("Q{w}"), TimeDelta::from_secs(w)))
            .collect();
        QueryWorkload::new(queries, JoinCondition::equi(0)).unwrap()
    }

    fn tuple(stream: StreamId, secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), stream, &[key])
    }

    /// One tuple per stream per second over `range`, with `key(t)` chosen by
    /// the caller to control the match rate.
    fn ingest_phase(
        live: &mut LiveReslicer,
        range: std::ops::Range<u64>,
        key_a: impl Fn(u64) -> i64,
        key_b: impl Fn(u64) -> i64,
    ) {
        for t in range {
            live.ingest(tuple(StreamId::A, t, key_a(t))).unwrap();
            live.ingest(tuple(StreamId::B, t, key_b(t))).unwrap();
        }
    }

    fn test_config() -> SupervisorConfig {
        SupervisorConfig {
            rate_ratio: 1e9,
            sel_ratio: 3.0,
            confirm: 1,
            warmup_secs: 8.0,
            horizon_secs: 200.0,
            pause_cost_per_tuple: 1.0,
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn stationary_workload_confirms_no_drift() {
        let mut live = LiveReslicer::launch(workload(&[4, 16]), LiveOptions::default()).unwrap();
        let declared = CostConfig {
            lambda_a: 1.0,
            lambda_b: 1.0,
            sel_join: 0.2,
            csys: 1.0,
        };
        let mut sup = Supervisor::new(declared, test_config());
        // Keys cycle over a domain of 5 on both streams: S⋈ ≈ 0.2 forever.
        for phase in 0..4 {
            let lo = phase * 20;
            ingest_phase(
                &mut live,
                lo..lo + 20,
                |t| (t % 5) as i64,
                |t| (t % 5) as i64,
            );
            sup.observe(&mut live).unwrap();
        }
        assert!(sup.log().is_empty(), "log: {:?}", sup.log());
        assert_eq!(live.epoch(), 0);
        let sel = sup.measured_sel().expect("sel was measured");
        assert!((0.05..0.6).contains(&sel), "sel estimate {sel}");
    }

    #[test]
    fn selectivity_collapse_triggers_a_live_merge() {
        let mut live = LiveReslicer::launch(workload(&[4, 16]), LiveOptions::default()).unwrap();
        assert_eq!(live.spec().num_slices(), 2);
        let declared = CostConfig {
            lambda_a: 1.0,
            lambda_b: 1.0,
            sel_join: 0.2,
            csys: 1.0,
        };
        let mut sup = Supervisor::new(declared, test_config());
        // Phase 1 matches the declaration; afterwards the streams stop
        // joining at all, so merging the chain becomes free of routing cost.
        ingest_phase(&mut live, 0..20, |t| (t % 5) as i64, |t| (t % 5) as i64);
        sup.observe(&mut live).unwrap();
        let mut fired = None;
        for phase in 1..6 {
            let lo = phase * 20;
            ingest_phase(
                &mut live,
                lo..lo + 20,
                |t| 1_000 + (t % 5) as i64,
                |t| 2_000 + (t % 5) as i64,
            );
            if let Some(record) = sup.observe(&mut live).unwrap() {
                fired = Some(record);
                break;
            }
        }
        let record = fired.expect("selectivity drift confirmed");
        assert_eq!(record.trigger, DriftKind::SelectivityDrift);
        assert!(
            matches!(&record.action, AdaptationAction::Replan { strategy, merges, .. }
                if strategy == "cpu-opt" && *merges == 1),
            "action: {:?}",
            record.action
        );
        assert_eq!(live.spec().num_slices(), 1);
        assert_eq!(sup.log().replans(), 1);
        assert!(matches!(live.strategy(), SliceStrategy::CpuOpt(_)));
        let migration = live.migrations().last().unwrap();
        assert!(migration.reason.starts_with("adapt: cpu-opt"));
    }

    #[test]
    fn supervisor_pauses_accumulate_outside_the_service_clock() {
        let mut live = LiveReslicer::launch(workload(&[4, 16]), LiveOptions::default()).unwrap();
        let declared = CostConfig {
            lambda_a: 1.0,
            lambda_b: 1.0,
            sel_join: 0.2,
            csys: 1.0,
        };
        let mut sup = Supervisor::new(declared, test_config());
        ingest_phase(&mut live, 0..20, |t| (t % 5) as i64, |t| (t % 5) as i64);
        sup.observe(&mut live).unwrap();
        // Collapse the selectivity until the supervisor merges the chain...
        let mut lo = 20;
        while sup.log().replans() < 1 {
            ingest_phase(
                &mut live,
                lo..lo + 20,
                |t| 1_000 + (t % 5) as i64,
                |t| 2_000 + (t % 5) as i64,
            );
            lo += 20;
            sup.observe(&mut live).unwrap();
            assert!(lo < 200, "collapse never confirmed");
        }
        // ...then recover it at a rate high enough that the extra probe work
        // of the merged slice outweighs routing, so CPU-Opt splits it back.
        while sup.log().replans() < 2 {
            for t in lo..lo + 20 {
                for rep in 0..8 {
                    let key = ((t * 8 + rep) % 5) as i64;
                    live.ingest(tuple(StreamId::A, t, key)).unwrap();
                    live.ingest(tuple(StreamId::B, t, key)).unwrap();
                }
            }
            lo += 20;
            sup.observe(&mut live).unwrap();
            assert!(lo < 400, "recovery never confirmed");
        }
        let outcome = live.finish().unwrap();
        assert_eq!(outcome.migrations.len(), 2);
        assert!(outcome
            .migrations
            .iter()
            .all(|m| m.reason.starts_with("adapt:")));
        let stall = outcome.total_pause_secs();
        let report = &outcome.report;
        // Both supervisor-triggered stalls landed in the pause bucket, which
        // accumulates across re-plan epochs...
        assert!(stall > 0.0);
        assert!(
            report.paused_secs > 0.0,
            "supervisor stalls missing from paused_secs"
        );
        // ...and the executor's pause window sits inside each migration's
        // stall window, so the accumulated figures must agree on the bound.
        assert!(
            report.paused_secs <= stall,
            "paused {} exceeds the migration stall {}",
            report.paused_secs,
            stall
        );
        // The service rate divides by running time only — the stall never
        // reaches the denominator.
        let expected = (report.total_output() + report.ingested) as f64 / report.elapsed_secs;
        assert!((report.service_rate() - expected).abs() < 1e-9);
    }

    #[test]
    fn win_gate_vetoes_marginal_replans() {
        let mut live = LiveReslicer::launch(workload(&[4, 16]), LiveOptions::default()).unwrap();
        let declared = CostConfig {
            lambda_a: 1.0,
            lambda_b: 1.0,
            sel_join: 0.2,
            csys: 1.0,
        };
        let config = SupervisorConfig {
            // A pause cost no realistic win can cover.
            pause_cost_per_tuple: 1e12,
            ..test_config()
        };
        let mut sup = Supervisor::new(declared, config);
        ingest_phase(&mut live, 0..20, |t| (t % 5) as i64, |t| (t % 5) as i64);
        sup.observe(&mut live).unwrap();
        let mut fired = None;
        for phase in 1..6 {
            let lo = phase * 20;
            ingest_phase(
                &mut live,
                lo..lo + 20,
                |t| 1_000 + (t % 5) as i64,
                |t| 2_000 + (t % 5) as i64,
            );
            if let Some(record) = sup.observe(&mut live).unwrap() {
                fired = Some(record);
                break;
            }
        }
        let record = fired.expect("drift still confirms");
        assert!(
            matches!(&record.action, AdaptationAction::Vetoed { .. }),
            "action: {:?}",
            record.action
        );
        // The chain was left alone.
        assert_eq!(live.spec().num_slices(), 2);
        assert_eq!(live.epoch(), 0);
        assert_eq!(sup.log().replans(), 0);
        assert_eq!(sup.log().len(), 1);
    }

    #[test]
    fn rate_spike_rescales_up_to_the_cap() {
        let mut live = LiveReslicer::launch(workload(&[4, 16]), LiveOptions::default()).unwrap();
        assert_eq!(live.num_shards(), 1);
        let declared = CostConfig {
            lambda_a: 1.0,
            lambda_b: 1.0,
            sel_join: 0.2,
            csys: 1.0,
        };
        let config = SupervisorConfig {
            sel_ratio: 1e9,
            spike_ratio: 2.0,
            max_shards: 2,
            ..test_config()
        };
        let mut sup = Supervisor::new(declared, config);
        ingest_phase(&mut live, 0..20, |t| (t % 5) as i64, |t| (t % 5) as i64);
        sup.observe(&mut live).unwrap();
        // Rate quadruples: four tuples per stream per second.
        for t in 20..40 {
            for rep in 0..4 {
                let key = ((t * 4 + rep) % 5) as i64;
                live.ingest(tuple(StreamId::A, t, key)).unwrap();
                live.ingest(tuple(StreamId::B, t, key)).unwrap();
            }
        }
        let record = sup
            .observe(&mut live)
            .unwrap()
            .expect("spike confirmed at confirm=1");
        assert_eq!(record.trigger, DriftKind::LoadSpike);
        assert!(
            matches!(
                record.action,
                AdaptationAction::Rescale { from: 1, to: 2, .. }
            ),
            "action: {:?}",
            record.action
        );
        assert_eq!(live.num_shards(), 2);
        assert_eq!(sup.log().rescales(), 1);
        // Further snapshots compare against the rebaselined rate.
        for t in 40..60 {
            for rep in 0..4 {
                let key = ((t * 4 + rep) % 5) as i64;
                live.ingest(tuple(StreamId::A, t, key)).unwrap();
                live.ingest(tuple(StreamId::B, t, key)).unwrap();
            }
        }
        sup.observe(&mut live).unwrap();
        assert_eq!(sup.log().len(), 1, "log: {:?}", sup.log());
    }
}
