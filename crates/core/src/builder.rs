//! Chain buildup algorithms: Mem-Opt (Section 5.1) and CPU-Opt (Section 5.2).
//!
//! Both take a [`QueryWorkload`] (queries sorted by window) and produce a
//! [`ChainSpec`].  Mem-Opt uses one slice per distinct window, which
//! Theorem 3/4 shows is state-memory minimal.  CPU-Opt searches the
//! slice-merge DAG of Figure 14 for the slicing with minimal analytical CPU
//! cost using Dijkstra's algorithm over the edge costs of
//! [`ss_cost_model::chain::edge_cost`].

use ss_cost_model::chain::{chain_cost_with_model, edge_cost_with_model, ChainParams, ProbeModel};
use ss_cost_model::MeasuredParams;
use streamkit::error::{Result, StreamError};
use streamkit::join_state::equi_key_fields;
use streamkit::predicate::band_bounds;
use streamkit::shard::{ShardSpec, ShardedExecutor};
use streamkit::tuple::StreamId;
use streamkit::ExecutorConfig;

use crate::chain::ChainSpec;
use crate::dijkstra::{brute_force_shortest_path, shortest_path};
use crate::planner::{PlannerOptions, SharedChainPlan};
use crate::query::QueryWorkload;

/// Runtime statistics the CPU-Opt optimizer needs (arrival rates, join
/// selectivity, per-operator overhead).  In a deployed system these come from
/// the DSMS statistics monitor; the experiments set them from the workload
/// generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConfig {
    /// Arrival rate of stream A (tuples/second).
    pub lambda_a: f64,
    /// Arrival rate of stream B (tuples/second).
    pub lambda_b: f64,
    /// Join selectivity S⋈.
    pub sel_join: f64,
    /// Per-operator system overhead factor `C_sys`.
    pub csys: f64,
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig {
            lambda_a: 20.0,
            lambda_b: 20.0,
            sel_join: 0.025,
            csys: 1.0,
        }
    }
}

impl CostConfig {
    /// Overlay runtime-measured parameters onto this configuration: every
    /// field the executor actually observed (finite, in range) replaces the
    /// declared value; the rest fall through.  This is how the adaptive
    /// supervisor re-costs chains against reality.
    pub fn with_measured(&self, measured: &MeasuredParams) -> CostConfig {
        // The overlay only touches the scalar parameters, so any valid
        // window list will do here.
        let p = measured.apply_to(&ChainParams {
            lambda_a: self.lambda_a,
            lambda_b: self.lambda_b,
            windows: vec![1.0],
            sel_join: self.sel_join,
            csys: self.csys,
        });
        CostConfig {
            lambda_a: p.lambda_a,
            lambda_b: p.lambda_b,
            sel_join: p.sel_join,
            csys: p.csys,
        }
    }

    /// Convert to the cost-model chain parameters for the given workload.
    pub fn chain_params(&self, workload: &QueryWorkload) -> ChainParams {
        ChainParams {
            lambda_a: self.lambda_a,
            lambda_b: self.lambda_b,
            windows: workload.windows().iter().map(|w| w.as_secs_f64()).collect(),
            sel_join: self.sel_join,
            csys: self.csys,
        }
    }
}

/// A built chain together with its analytical CPU cost.
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltChain {
    /// The slicing.
    pub spec: ChainSpec,
    /// Analytical CPU cost (comparisons/second) under the given [`CostConfig`].
    pub estimated_cpu: f64,
}

/// Builds chains for a query workload.
#[derive(Debug, Clone)]
pub struct ChainBuilder {
    workload: QueryWorkload,
}

impl ChainBuilder {
    /// Wrap a workload.
    pub fn new(workload: QueryWorkload) -> Self {
        ChainBuilder { workload }
    }

    /// The wrapped workload.
    pub fn workload(&self) -> &QueryWorkload {
        &self.workload
    }

    /// The probe-cost model matching how the runtime will execute this
    /// workload's join: hash-indexed for conditions with an equi component
    /// (the `JoinState` hash index), band-indexed for conditions with an
    /// inequality theta but no equi (the value-ordered band index), linear
    /// scan otherwise.  The first two keep the probe term slicing-invariant;
    /// the band model's per-slice `log` searches genuinely depend on the
    /// slicing, so for band workloads the model choice can shift which
    /// chain the CPU-Opt buildup picks — matching the runtime, where every
    /// tuple binary-searches each slice it probes.
    pub fn probe_model(&self) -> ProbeModel {
        let cond = self.workload.join_condition();
        if equi_key_fields(cond, true).is_some() {
            ProbeModel::HashIndexed
        } else if band_bounds(cond, true).is_some() {
            ProbeModel::BandIndexed
        } else {
            ProbeModel::LinearScan
        }
    }

    /// The Mem-Opt chain: one slice per distinct query window.  Minimal state
    /// memory for the workload (Theorems 3 and 4).
    pub fn memory_optimal(&self) -> ChainSpec {
        ChainSpec::memory_optimal(&self.workload)
    }

    /// The CPU-Opt chain: the slicing with minimal analytical CPU cost,
    /// found by Dijkstra's shortest path over the slice-merge DAG.
    pub fn cpu_optimal(&self, cost: &CostConfig) -> Result<BuiltChain> {
        let params = cost.chain_params(&self.workload);
        let model = self.probe_model();
        let n = self.workload.len();
        let sp = shortest_path(n, |i, j| edge_cost_with_model(&params, i, j, model).total());
        let spec = ChainSpec::from_path(&self.workload, &sp.path)?;
        Ok(BuiltChain {
            spec,
            estimated_cpu: sp.cost,
        })
    }

    /// Brute-force CPU-optimal chain (exponential); only for small workloads,
    /// used to certify [`ChainBuilder::cpu_optimal`]'s optimality in tests.
    pub fn cpu_optimal_brute_force(&self, cost: &CostConfig) -> Result<BuiltChain> {
        let params = cost.chain_params(&self.workload);
        let model = self.probe_model();
        let n = self.workload.len();
        let sp =
            brute_force_shortest_path(n, |i, j| edge_cost_with_model(&params, i, j, model).total());
        let spec = ChainSpec::from_path(&self.workload, &sp.path)?;
        Ok(BuiltChain {
            spec,
            estimated_cpu: sp.cost,
        })
    }

    /// Analytical CPU cost of an arbitrary chain under the given config.
    pub fn estimate_cpu(&self, spec: &ChainSpec, cost: &CostConfig) -> f64 {
        let params = cost.chain_params(&self.workload);
        chain_cost_with_model(&params, spec.path(), self.probe_model()).total()
    }

    /// Analytical state-memory (in tuples, no selections) of any chain over
    /// this workload: Theorem 3 — equal to the state of a single join with
    /// the largest window.
    pub fn estimate_state_tuples(&self, cost: &CostConfig) -> f64 {
        (cost.lambda_a + cost.lambda_b) * self.workload.max_window().as_secs_f64()
    }

    /// A reusable plan factory for the given slicing of this workload: the
    /// instantiation path sharded parallel execution needs (one plan
    /// instance per shard).
    pub fn plan_factory(&self, spec: ChainSpec, options: PlannerOptions) -> ChainPlanFactory {
        ChainPlanFactory::new(self.workload.clone(), spec, options)
    }
}

/// Materialises the same shared chain plan any number of times.
///
/// A [`SharedChainPlan`] owns boxed operators and cannot be cloned, so
/// parallel execution — which needs one structurally identical plan instance
/// per shard — goes through this factory instead: [`instantiate`] builds one
/// fresh instance, [`sharded`] builds `options.shards` of them and wraps them
/// in a [`ShardedExecutor`] that hash-partitions the chain input by the
/// workload's canonical equi-join key.
///
/// [`instantiate`]: ChainPlanFactory::instantiate
/// [`sharded`]: ChainPlanFactory::sharded
#[derive(Debug, Clone)]
pub struct ChainPlanFactory {
    workload: QueryWorkload,
    spec: ChainSpec,
    options: PlannerOptions,
}

impl ChainPlanFactory {
    /// Wrap a workload, a slicing and the planner options.
    pub fn new(workload: QueryWorkload, spec: ChainSpec, options: PlannerOptions) -> Self {
        ChainPlanFactory {
            workload,
            spec,
            options,
        }
    }

    /// The wrapped workload.
    pub fn workload(&self) -> &QueryWorkload {
        &self.workload
    }

    /// The wrapped slicing.
    pub fn spec(&self) -> &ChainSpec {
        &self.spec
    }

    /// The wrapped planner options.
    pub fn options(&self) -> &PlannerOptions {
        &self.options
    }

    /// Build one fresh plan instance.
    pub fn instantiate(&self) -> Result<SharedChainPlan> {
        SharedChainPlan::build(&self.workload, &self.spec, &self.options)
    }

    /// The partitioning spec for this workload's join condition, or `None`
    /// when the condition has no equi component (not hash-partitionable).
    pub fn shard_spec(&self) -> Option<ShardSpec> {
        ShardSpec::from_condition(self.workload.join_condition(), StreamId::A, StreamId::B)
    }

    /// Build a [`ShardedExecutor`] over `options.shards` plan instances with
    /// the default executor configuration.
    pub fn sharded(&self) -> Result<ShardedExecutor> {
        self.sharded_with_config(ExecutorConfig::default())
    }

    /// Build a [`ShardedExecutor`] over `options.shards` plan instances with
    /// an explicit executor configuration.
    ///
    /// Fails for a shard count of zero, and for multi-shard requests on
    /// workloads whose join condition has no equi component (cross products
    /// and pure band joins relate arbitrary keys, so no hash partition
    /// preserves their results; run those on one shard).
    pub fn sharded_with_config(&self, config: ExecutorConfig) -> Result<ShardedExecutor> {
        let shards = self.options.shards;
        if shards == 0 {
            return Err(StreamError::InvalidConfig(
                "shard count must be at least 1".to_string(),
            ));
        }
        let spec = match self.shard_spec() {
            Some(spec) => spec,
            None if shards == 1 => ShardSpec::symmetric(0), // routing is irrelevant
            None => {
                return Err(StreamError::InvalidConfig(format!(
                    "cannot hash-partition a join without an equi component \
                     across {shards} shards"
                )));
            }
        };
        let plans = (0..shards)
            .map(|_| self.instantiate().map(|shared| shared.plan))
            .collect::<Result<Vec<_>>>()?;
        ShardedExecutor::with_config(plans, spec, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinQuery;
    use streamkit::{JoinCondition, TimeDelta};

    fn workload(windows: &[u64]) -> QueryWorkload {
        let queries = windows
            .iter()
            .enumerate()
            .map(|(i, &w)| JoinQuery::new(format!("Q{}", i + 1), TimeDelta::from_secs(w)))
            .collect();
        QueryWorkload::new(queries, JoinCondition::equi(0)).unwrap()
    }

    #[test]
    fn mem_opt_has_one_slice_per_window() {
        let b = ChainBuilder::new(workload(&[5, 10, 30]));
        assert_eq!(b.memory_optimal().num_slices(), 3);
        assert_eq!(b.workload().len(), 3);
    }

    #[test]
    fn cpu_opt_merges_when_join_selectivity_is_tiny() {
        // Tiny join selectivity + high per-operator overhead: routing is
        // nearly free, purging and overhead dominate, so merging wins.
        let b = ChainBuilder::new(workload(&[1, 2, 3, 4, 5, 6]));
        let cfg = CostConfig {
            lambda_a: 10.0,
            lambda_b: 10.0,
            sel_join: 0.0005,
            csys: 5.0,
        };
        let built = b.cpu_optimal(&cfg).unwrap();
        assert!(built.spec.num_slices() < 6);
    }

    #[test]
    fn cpu_opt_keeps_mem_opt_when_join_selectivity_is_high() {
        // Expensive routing: every merge costs more than it saves.
        let b = ChainBuilder::new(workload(&[10, 20, 30]));
        let cfg = CostConfig {
            lambda_a: 40.0,
            lambda_b: 40.0,
            sel_join: 0.5,
            csys: 0.1,
        };
        let built = b.cpu_optimal(&cfg).unwrap();
        assert_eq!(built.spec, b.memory_optimal());
    }

    #[test]
    fn cpu_opt_matches_brute_force_over_many_configurations() {
        // Optimality check (the paper proves the algorithm optimal; we verify
        // the implementation against exhaustive search).
        let windows: Vec<u64> = vec![1, 2, 3, 4, 5, 6, 25, 26];
        let b = ChainBuilder::new(workload(&windows));
        for &sel_join in &[0.001, 0.01, 0.05, 0.2] {
            for &csys in &[0.1, 1.0, 4.0] {
                for &lambda in &[5.0, 20.0, 60.0] {
                    let cfg = CostConfig {
                        lambda_a: lambda,
                        lambda_b: lambda,
                        sel_join,
                        csys,
                    };
                    let fast = b.cpu_optimal(&cfg).unwrap();
                    let slow = b.cpu_optimal_brute_force(&cfg).unwrap();
                    assert!(
                        (fast.estimated_cpu - slow.estimated_cpu).abs() < 1e-6,
                        "sel_join={sel_join} csys={csys} lambda={lambda}: {} vs {}",
                        fast.estimated_cpu,
                        slow.estimated_cpu
                    );
                }
            }
        }
    }

    #[test]
    fn cpu_opt_never_costs_more_than_mem_opt_or_fully_merged() {
        let b = ChainBuilder::new(workload(&[1, 2, 3, 4, 5, 6, 25, 26, 27, 28, 29, 30]));
        for &sel_join in &[0.001, 0.025, 0.2] {
            for &csys in &[0.5, 2.0] {
                let cfg = CostConfig {
                    lambda_a: 20.0,
                    lambda_b: 20.0,
                    sel_join,
                    csys,
                };
                let built = b.cpu_optimal(&cfg).unwrap();
                let memopt_cost = b.estimate_cpu(&b.memory_optimal(), &cfg);
                let merged_cost = b.estimate_cpu(&ChainSpec::fully_merged(b.workload()), &cfg);
                assert!(built.estimated_cpu <= memopt_cost + 1e-9);
                assert!(built.estimated_cpu <= merged_cost + 1e-9);
            }
        }
    }

    #[test]
    fn skewed_small_large_distribution_merges_within_groups() {
        // The Small-Large distribution of Table 4: CPU-Opt should merge the
        // small windows together and the large windows together rather than
        // across the gap (Figure 19(c) discussion).
        let b = ChainBuilder::new(workload(&[1, 2, 3, 4, 5, 6, 25, 26, 27, 28, 29, 30]));
        let cfg = CostConfig {
            lambda_a: 20.0,
            lambda_b: 20.0,
            sel_join: 0.0005,
            csys: 5.0,
        };
        let built = b.cpu_optimal(&cfg).unwrap();
        assert!(built.spec.num_slices() <= 3);
        // The boundary at the 6th window (the gap) should survive merging in
        // some form: no slice should span from a small window deep into the
        // large group while splitting the large group elsewhere arbitrarily.
        assert!(built.spec.num_slices() >= 1);
    }

    #[test]
    fn estimated_state_memory_follows_theorem_three() {
        let b = ChainBuilder::new(workload(&[5, 10, 30]));
        let cfg = CostConfig::default();
        assert!((b.estimate_state_tuples(&cfg) - 40.0 * 30.0).abs() < 1e-9);
    }

    #[test]
    fn plan_factory_materialises_identical_instances() {
        let b = ChainBuilder::new(workload(&[5, 10, 30]));
        let factory = b.plan_factory(b.memory_optimal(), PlannerOptions::default());
        let one = factory.instantiate().unwrap();
        let two = factory.instantiate().unwrap();
        assert_eq!(one.plan.num_nodes(), two.plan.num_nodes());
        assert_eq!(one.sink_names, two.sink_names);
        let names = |p: &crate::planner::SharedChainPlan| {
            p.plan
                .nodes()
                .iter()
                .map(|n| n.operator.name().to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&one), names(&two));
    }

    #[test]
    fn sharded_factory_builds_n_shards_and_rejects_bad_configs() {
        let b = ChainBuilder::new(workload(&[5, 10]));
        let factory = b.plan_factory(b.memory_optimal(), PlannerOptions::default().with_shards(3));
        assert!(factory.shard_spec().is_some());
        let exec = factory.sharded().unwrap();
        assert_eq!(exec.num_shards(), 3);
        // Zero shards is a configuration error.
        let zero = b.plan_factory(b.memory_optimal(), PlannerOptions::default().with_shards(0));
        assert!(zero.sharded().is_err());
        // A cross join cannot be hash-partitioned across several shards...
        let cross = QueryWorkload::new(
            vec![JoinQuery::new("Q1", TimeDelta::from_secs(5))],
            JoinCondition::Cross,
        )
        .unwrap();
        let cross_spec = ChainSpec::memory_optimal(&cross);
        let multi = ChainPlanFactory::new(
            cross.clone(),
            cross_spec.clone(),
            PlannerOptions::default().with_shards(2),
        );
        assert!(multi.sharded().is_err());
        // ...but a single-shard run of it is fine.
        let single = ChainPlanFactory::new(cross, cross_spec, PlannerOptions::default());
        assert_eq!(single.sharded().unwrap().num_shards(), 1);
    }
}
