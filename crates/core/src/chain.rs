//! Chain specifications: how the window `[0, w_N)` is sliced.
//!
//! A [`ChainSpec`] is a partition of the largest query window into contiguous
//! slices.  The Mem-Opt chain has one slice per distinct query window
//! (Section 5.1); a CPU-Opt chain may merge adjacent slices (Section 5.2).
//! A chain configuration corresponds to a path through the slice-merge DAG of
//! Figure 14 and is represented here by the window-boundary indexes the path
//! visits.

use streamkit::error::{Result, StreamError};
use streamkit::window::SliceWindow;
use streamkit::TimeDelta;

use crate::query::QueryWorkload;

/// One slice of a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceSpec {
    /// The window slice `[start, end)` this join covers.
    pub window: SliceWindow,
    /// 0-based index of the first query whose window falls inside this slice
    /// (`start < w_q <= end`).
    pub query_lo: usize,
    /// 0-based index of the last query whose window falls inside this slice.
    pub query_hi: usize,
}

impl SliceSpec {
    /// Number of queries whose windows end inside this slice (the router
    /// fan-out needed when the slice is a merge of several Mem-Opt slices).
    pub fn queries_ending_here(&self) -> usize {
        self.query_hi - self.query_lo + 1
    }

    /// `true` if this slice is a merge of more than one Mem-Opt slice and
    /// therefore needs a router for its results.
    pub fn needs_router(&self) -> bool {
        self.queries_ending_here() > 1
    }
}

/// A complete slicing of the shared join window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSpec {
    slices: Vec<SliceSpec>,
    /// The boundary path through the slice-merge DAG (`0 = p_0 < ... < p_k = N`).
    path: Vec<usize>,
}

impl ChainSpec {
    /// Build a chain from a boundary path over the workload's windows.
    ///
    /// `path` lists indexes into the boundary vector `w_0 = 0, w_1, ..., w_N`;
    /// it must start at 0, end at `N` and be strictly increasing.
    pub fn from_path(workload: &QueryWorkload, path: &[usize]) -> Result<Self> {
        let n = workload.len();
        if path.len() < 2 || path[0] != 0 || *path.last().unwrap() != n {
            return Err(StreamError::InvalidConfig(format!(
                "boundary path must start at 0 and end at {n}, got {path:?}"
            )));
        }
        for w in path.windows(2) {
            if w[1] <= w[0] {
                return Err(StreamError::InvalidConfig(
                    "boundary path must be strictly increasing".to_string(),
                ));
            }
        }
        let boundaries = workload.boundaries();
        let slices = path
            .windows(2)
            .map(|w| SliceSpec {
                window: SliceWindow::new(boundaries[w[0]], boundaries[w[1]]),
                query_lo: w[0],
                query_hi: w[1] - 1,
            })
            .collect();
        Ok(ChainSpec {
            slices,
            path: path.to_vec(),
        })
    }

    /// The Mem-Opt chain: one slice per distinct query window (Section 5.1).
    pub fn memory_optimal(workload: &QueryWorkload) -> Self {
        let path: Vec<usize> = (0..=workload.len()).collect();
        ChainSpec::from_path(workload, &path).expect("full path is always valid")
    }

    /// The fully merged chain: a single join with the largest window, which
    /// is structurally the selection pull-up plan of Section 3.1.
    pub fn fully_merged(workload: &QueryWorkload) -> Self {
        ChainSpec::from_path(workload, &[0, workload.len()]).expect("merged path is always valid")
    }

    /// The slices, in chain order (smallest window range first).
    pub fn slices(&self) -> &[SliceSpec] {
        &self.slices
    }

    /// Number of slices in the chain.
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// The boundary path this chain corresponds to.
    pub fn path(&self) -> &[usize] {
        &self.path
    }

    /// Index of the slice whose results a query with the given 0-based index
    /// last needs (i.e. the slice its window ends in).
    pub fn last_slice_for_query(&self, query_idx: usize) -> usize {
        self.slices
            .iter()
            .position(|s| query_idx >= s.query_lo && query_idx <= s.query_hi)
            .expect("every query ends in some slice")
    }

    /// Total window range covered by the chain (must equal the workload's
    /// largest window).
    pub fn covered_range(&self) -> TimeDelta {
        self.slices
            .last()
            .map(|s| s.window.end)
            .unwrap_or(TimeDelta::ZERO)
    }

    /// Check structural invariants: slices are contiguous, start at zero and
    /// cover the workload's largest window, and query assignments are correct.
    pub fn validate(&self, workload: &QueryWorkload) -> Result<()> {
        if self.slices.is_empty() {
            return Err(StreamError::InvalidConfig(
                "chain has no slices".to_string(),
            ));
        }
        if !self.slices[0].window.start.is_zero() {
            return Err(StreamError::InvalidConfig(
                "the first slice must start at window offset 0".to_string(),
            ));
        }
        for pair in self.slices.windows(2) {
            if pair[0].window.end != pair[1].window.start {
                return Err(StreamError::InvalidConfig(format!(
                    "slices {} and {} are not contiguous",
                    pair[0].window, pair[1].window
                )));
            }
        }
        if self.covered_range() != workload.max_window() {
            return Err(StreamError::InvalidConfig(format!(
                "chain covers {} but the largest query window is {}",
                self.covered_range(),
                workload.max_window()
            )));
        }
        for (idx, q) in workload.queries().iter().enumerate() {
            let slice = &self.slices[self.last_slice_for_query(idx)];
            if !(q.window > slice.window.start && q.window <= slice.window.end) {
                return Err(StreamError::InvalidConfig(format!(
                    "query '{}' (window {}) is not assigned to the slice containing it",
                    q.name, q.window
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinQuery;
    use streamkit::JoinCondition;

    fn workload() -> QueryWorkload {
        QueryWorkload::new(
            vec![
                JoinQuery::new("Q1", TimeDelta::from_secs(5)),
                JoinQuery::new("Q2", TimeDelta::from_secs(10)),
                JoinQuery::new("Q3", TimeDelta::from_secs(30)),
            ],
            JoinCondition::equi(0),
        )
        .unwrap()
    }

    #[test]
    fn mem_opt_chain_has_one_slice_per_query() {
        let w = workload();
        let chain = ChainSpec::memory_optimal(&w);
        assert_eq!(chain.num_slices(), 3);
        assert_eq!(chain.slices()[0].window, SliceWindow::from_secs(0, 5));
        assert_eq!(chain.slices()[1].window, SliceWindow::from_secs(5, 10));
        assert_eq!(chain.slices()[2].window, SliceWindow::from_secs(10, 30));
        assert!(chain.slices().iter().all(|s| !s.needs_router()));
        assert_eq!(chain.path(), &[0, 1, 2, 3]);
        chain.validate(&w).unwrap();
        assert_eq!(chain.covered_range(), TimeDelta::from_secs(30));
    }

    #[test]
    fn fully_merged_chain_is_one_slice_serving_every_query() {
        let w = workload();
        let chain = ChainSpec::fully_merged(&w);
        assert_eq!(chain.num_slices(), 1);
        let s = chain.slices()[0];
        assert_eq!(s.window, SliceWindow::from_secs(0, 30));
        assert_eq!(s.queries_ending_here(), 3);
        assert!(s.needs_router());
        chain.validate(&w).unwrap();
    }

    #[test]
    fn partial_merge_assigns_query_ranges() {
        let w = workload();
        let chain = ChainSpec::from_path(&w, &[0, 2, 3]).unwrap();
        assert_eq!(chain.num_slices(), 2);
        assert_eq!(chain.slices()[0].window, SliceWindow::from_secs(0, 10));
        assert_eq!(chain.slices()[0].query_lo, 0);
        assert_eq!(chain.slices()[0].query_hi, 1);
        assert!(chain.slices()[0].needs_router());
        assert_eq!(chain.slices()[1].query_lo, 2);
        assert_eq!(chain.slices()[1].query_hi, 2);
        assert!(!chain.slices()[1].needs_router());
        assert_eq!(chain.last_slice_for_query(0), 0);
        assert_eq!(chain.last_slice_for_query(2), 1);
        chain.validate(&w).unwrap();
    }

    #[test]
    fn invalid_paths_are_rejected() {
        let w = workload();
        assert!(ChainSpec::from_path(&w, &[0, 1]).is_err()); // does not reach N
        assert!(ChainSpec::from_path(&w, &[1, 3]).is_err()); // does not start at 0
        assert!(ChainSpec::from_path(&w, &[0, 2, 2, 3]).is_err()); // not increasing
        assert!(ChainSpec::from_path(&w, &[0]).is_err()); // too short
    }

    #[test]
    fn validate_detects_coverage_mismatch() {
        let w = workload();
        let smaller = QueryWorkload::new(
            vec![
                JoinQuery::new("Q1", TimeDelta::from_secs(5)),
                JoinQuery::new("Q2", TimeDelta::from_secs(10)),
            ],
            JoinCondition::equi(0),
        )
        .unwrap();
        let chain = ChainSpec::memory_optimal(&smaller);
        assert!(chain.validate(&w).is_err());
    }
}
