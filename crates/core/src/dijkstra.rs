//! Single-source shortest path over the slice-merge DAG (Figure 14).
//!
//! The CPU-Opt chain buildup (Section 5.2) reduces the optimal slicing
//! problem to a shortest path from `v_0` to `v_N` in an acyclic directed
//! graph whose edge `(i, j)` is the CPU cost of the merged slice covering
//! `(w_i, w_j]`.  Lemma 2 (edge costs are independent) justifies the
//! principle of optimality; the paper then applies Dijkstra's algorithm,
//! which we implement here for arbitrary non-negative edge costs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry for Dijkstra: ordered by cost (min-heap via reversed compare).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the cheapest entry.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a shortest-path computation.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPath {
    /// Total cost of the best path.
    pub cost: f64,
    /// Visited nodes, starting at `0` and ending at `n`.
    pub path: Vec<usize>,
}

/// Shortest path from node `0` to node `n` in the complete forward DAG over
/// nodes `0..=n`, with `edge_cost(i, j)` giving the cost of edge `i -> j`
/// (`i < j`).  Costs must be non-negative.
///
/// Runs in `O(n^2 log n)` including the `n(n+1)/2` edge-cost evaluations,
/// matching the `O(N^2)` bound the paper states for the chain buildup.
pub fn shortest_path<F>(n: usize, mut edge_cost: F) -> ShortestPath
where
    F: FnMut(usize, usize) -> f64,
{
    if n == 0 {
        return ShortestPath {
            cost: 0.0,
            path: vec![0],
        };
    }
    let mut dist = vec![f64::INFINITY; n + 1];
    let mut prev = vec![usize::MAX; n + 1];
    let mut done = vec![false; n + 1];
    dist[0] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry { cost: 0.0, node: 0 });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if done[node] || cost > dist[node] {
            continue;
        }
        done[node] = true;
        if node == n {
            break;
        }
        for next in (node + 1)..=n {
            let c = edge_cost(node, next);
            debug_assert!(c >= 0.0, "edge costs must be non-negative");
            let candidate = cost + c;
            if candidate < dist[next] {
                dist[next] = candidate;
                prev[next] = node;
                heap.push(HeapEntry {
                    cost: candidate,
                    node: next,
                });
            }
        }
    }
    // Reconstruct the path.
    let mut path = vec![n];
    let mut cur = n;
    while cur != 0 {
        cur = prev[cur];
        path.push(cur);
    }
    path.reverse();
    ShortestPath {
        cost: dist[n],
        path,
    }
}

/// Exhaustively enumerate every path from `0` to `n` and return the cheapest.
/// Exponential; used in tests to certify [`shortest_path`]'s optimality.
pub fn brute_force_shortest_path<F>(n: usize, mut edge_cost: F) -> ShortestPath
where
    F: FnMut(usize, usize) -> f64,
{
    assert!(n <= 16, "brute force is only meant for small n");
    let mut best = ShortestPath {
        cost: f64::INFINITY,
        path: vec![],
    };
    // Each subset of intermediate boundaries {1..n-1} is one path.
    let intermediates = n.saturating_sub(1);
    for mask in 0..(1u32 << intermediates) {
        let mut path = vec![0];
        for b in 0..intermediates {
            if mask & (1 << b) != 0 {
                path.push(b + 1);
            }
        }
        path.push(n);
        let cost: f64 = path.windows(2).map(|w| edge_cost(w[0], w[1])).sum();
        if cost < best.cost {
            best = ShortestPath { cost, path };
        }
    }
    if n == 0 {
        best = ShortestPath {
            cost: 0.0,
            path: vec![0],
        };
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_graphs() {
        let sp = shortest_path(0, |_, _| 1.0);
        assert_eq!(sp.cost, 0.0);
        assert_eq!(sp.path, vec![0]);
        let sp = shortest_path(1, |_, _| 2.5);
        assert_eq!(sp.cost, 2.5);
        assert_eq!(sp.path, vec![0, 1]);
    }

    #[test]
    fn prefers_cheap_direct_edge() {
        // Direct edge 0->3 costs 1, everything else costs 10.
        let sp = shortest_path(3, |i, j| if i == 0 && j == 3 { 1.0 } else { 10.0 });
        assert_eq!(sp.path, vec![0, 3]);
        assert_eq!(sp.cost, 1.0);
    }

    #[test]
    fn prefers_many_small_edges_when_cheaper() {
        // Unit-step edges cost 1, longer edges cost 10.
        let sp = shortest_path(4, |i, j| if j - i == 1 { 1.0 } else { 10.0 });
        assert_eq!(sp.path, vec![0, 1, 2, 3, 4]);
        assert_eq!(sp.cost, 4.0);
    }

    #[test]
    fn mixed_costs_pick_the_true_optimum() {
        // Edge cost favours merging [1..3] but keeping boundaries 1 and 3.
        let cost = |i: usize, j: usize| -> f64 {
            match (i, j) {
                (0, 1) => 1.0,
                (1, 3) => 1.0,
                (3, 4) => 1.0,
                _ => 4.0,
            }
        };
        let sp = shortest_path(4, cost);
        assert_eq!(sp.path, vec![0, 1, 3, 4]);
        assert!((sp.cost - 3.0).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_random_like_costs() {
        // Deterministic pseudo-random cost matrix.
        let cost = |i: usize, j: usize| -> f64 {
            let x = (i * 31 + j * 17) % 13;
            1.0 + x as f64 + 0.5 * ((j - i) as f64)
        };
        for n in 1..=9 {
            let fast = shortest_path(n, cost);
            let slow = brute_force_shortest_path(n, cost);
            assert!(
                (fast.cost - slow.cost).abs() < 1e-9,
                "n={n}: {} vs {}",
                fast.cost,
                slow.cost
            );
        }
    }

    #[test]
    fn path_always_starts_at_zero_and_ends_at_n() {
        let sp = shortest_path(7, |i, j| ((i + j) % 3) as f64 + 0.25);
        assert_eq!(*sp.path.first().unwrap(), 0);
        assert_eq!(*sp.path.last().unwrap(), 7);
        assert!(sp.path.windows(2).all(|w| w[1] > w[0]));
    }
}
