//! State-sliced window joins — the core contribution of the State-Slice paper
//! (Wang, Rundensteiner, Ganguly, Bhatnagar — VLDB 2006).
//!
//! A regular sliding-window join shared by `N` continuous queries with
//! different window sizes is *sliced* into a chain of fine-grained sliced
//! window joins, one per window range, pipelined by forwarding each slice's
//! purged state tuples and propagated probe tuples to the next slice.  The
//! union of the slices' outputs is exactly the regular join (Theorems 1–2),
//! selections can be pushed between slices (Section 6), and the number of
//! operators stays linear in `N`.
//!
//! Crate layout:
//!
//! * [`sliced_one_way`] / [`sliced_binary`] — the sliced join operators
//!   (Definitions 1–3, Figures 5–9),
//! * [`query`] — registered queries and workloads,
//! * [`chain`] — chain specifications (how the window is sliced),
//! * [`builder`] — Mem-Opt (Section 5.1) and CPU-Opt (Section 5.2) chain
//!   buildup, the latter via [`dijkstra`] over the slice-merge DAG,
//! * [`lineage`] — selection push-down with tuple lineage (Section 6),
//! * [`planner`] — turning a chain spec into an executable
//!   [`streamkit`] plan with per-query unions, routers and sinks,
//! * [`migration`] — online merging / splitting of slices (Section 5.3),
//! * [`live`] — live query churn: online add/remove of queries against a
//!   running executor via chain re-slicing ([`live::LiveReslicer`]),
//! * [`adaptive`] — runtime-statistics feedback: drift detectors and the
//!   [`adaptive::Supervisor`] that re-costs and re-cuts the chain live,
//! * [`recovery`] — fault tolerance: punctuation-aligned checkpoints, a
//!   bounded replay ring and the [`recovery::RecoverySupervisor`] that
//!   restores crashed shards and replays lost input,
//! * [`verify`] — a brute-force equivalence oracle used by tests.
//!
//! # Example
//!
//! ```
//! use state_slice_core::{ChainBuilder, JoinQuery, QueryWorkload, SharedChainPlan};
//! use state_slice_core::planner::{merge_streams, PlannerOptions, CHAIN_ENTRY};
//! use streamkit::{Executor, JoinCondition, Predicate, TimeDelta, Timestamp, Tuple};
//! use streamkit::tuple::StreamId;
//!
//! // Q1: 1-minute window, no selection.  Q2: 60-minute window with a filter.
//! let workload = QueryWorkload::new(
//!     vec![
//!         JoinQuery::new("Q1", TimeDelta::from_secs(60)),
//!         JoinQuery::with_filter("Q2", TimeDelta::from_secs(3600), Predicate::gt(1, 100i64)),
//!     ],
//!     JoinCondition::equi(0),
//! )
//! .unwrap();
//!
//! // Build the memory-optimal chain and its executable plan.
//! let chain = ChainBuilder::new(workload.clone()).memory_optimal();
//! let shared = SharedChainPlan::build(&workload, &chain, &PlannerOptions::default()).unwrap();
//!
//! // Execute it over a tiny input batch.
//! let mut exec = Executor::new(shared.plan);
//! let a = vec![Tuple::of_ints(Timestamp::from_secs(1), StreamId::A, &[7, 120])];
//! let b = vec![Tuple::of_ints(Timestamp::from_secs(30), StreamId::B, &[7, 0])];
//! exec.ingest_all(CHAIN_ENTRY, merge_streams(a, b)).unwrap();
//! let report = exec.run().unwrap();
//! assert_eq!(report.sink_count("Q1"), 1);
//! assert_eq!(report.sink_count("Q2"), 1);
//! ```

pub mod adaptive;
pub mod builder;
pub mod chain;
pub mod dijkstra;
pub mod lineage;
pub mod live;
pub mod migration;
pub mod planner;
pub mod query;
pub mod recovery;
pub mod sliced_binary;
pub mod sliced_one_way;
pub mod verify;

pub use adaptive::{
    AdaptationAction, AdaptationLog, AdaptationRecord, DriftKind, Supervisor, SupervisorConfig,
};
pub use builder::{BuiltChain, ChainBuilder, ChainPlanFactory, CostConfig};
pub use chain::{ChainSpec, SliceSpec};
pub use dijkstra::{shortest_path, ShortestPath};
pub use lineage::{LineageAnnotatorOp, LineageGateOp};
pub use live::{
    ChainEdit, ChainEditPlan, ChurnOutcome, LiveOptions, LiveReslicer, MigrationMode,
    MigrationRecord, QueryResults, SliceStrategy,
};
pub use migration::{
    merge_slice_operators, merge_spec_slices, rehash_shard_states, split_slice_operator,
    split_slice_operator_eager, split_spec_slice, PurgeWatermarks,
};
pub use planner::{merge_streams, PlannerOptions, SharedChainPlan, CHAIN_ENTRY};
pub use query::{JoinQuery, QueryWorkload};
pub use recovery::{
    CheckpointRecord, OverflowPolicy, RecoveryConfig, RecoveryLog, RecoveryRecord,
    RecoverySupervisor,
};
pub use sliced_binary::SlicedBinaryJoinOp;
pub use sliced_one_way::SlicedOneWayJoinOp;
pub use verify::{collected_fingerprints, expected_fingerprints, expected_results};
