//! Selection push-down support: lineage annotation and lineage gates.
//!
//! Section 6.1 of the paper pushes the per-query selections `σ_1 .. σ_N` into
//! the slice chain as disjunctions `σ'_i = cond_i ∨ ... ∨ cond_N` and avoids
//! re-evaluating them by annotating each tuple with a *lineage* level: the
//! predicates are evaluated in decreasing order of `i`, and as soon as some
//! `cond_k` is satisfied the tuple is tagged with `k`, meaning it "can survive
//! until the k-th sliced join and no further".
//!
//! [`LineageAnnotatorOp`] performs that one-time evaluation on the filtered
//! stream (stream A in the paper's running example).  [`LineageGateOp`] sits
//! on the chain between slice `i-1` and slice `i` and drops tuples of the
//! filtered stream whose lineage is below `i` — a zero-comparison check, which
//! is exactly the saving the lineage trick buys.

use std::any::Any;

use streamkit::operator::{OpContext, Operator, PortId};
use streamkit::queue::StreamItem;
use streamkit::tuple::StreamId;
use streamkit::Predicate;

/// Annotates tuples of one stream with their selection-push-down lineage
/// level; tuples that satisfy no predicate are dropped.
#[derive(Debug)]
pub struct LineageAnnotatorOp {
    name: String,
    /// `predicates[k]` is the selection of query `Q_{k+1}` on the annotated
    /// stream (1-based query index `k+1` = lineage level `k+1`).
    predicates: Vec<Predicate>,
    /// Stream the predicates apply to; tuples of other streams pass through.
    stream: StreamId,
    dropped: u64,
    annotated: u64,
}

impl LineageAnnotatorOp {
    /// Build an annotator for the given per-query predicates (index 0 is the
    /// query with the smallest window).
    pub fn new(name: impl Into<String>, predicates: Vec<Predicate>, stream: StreamId) -> Self {
        LineageAnnotatorOp {
            name: name.into(),
            predicates,
            stream,
            dropped: 0,
            annotated: 0,
        }
    }

    /// Number of tuples dropped because they satisfied no predicate.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of tuples annotated (or passed through).
    pub fn annotated(&self) -> u64 {
        self.annotated
    }
}

impl Operator for LineageAnnotatorOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, _port: PortId, item: StreamItem, ctx: &mut OpContext) {
        match item {
            StreamItem::Tuple(t) => {
                ctx.counters.tuples_processed += 1;
                if t.stream != self.stream {
                    self.annotated += 1;
                    ctx.emit(0, t);
                    return;
                }
                // Evaluate cond_N, cond_{N-1}, ... and stop at the first hit.
                let mut level = 0u32;
                for (idx, pred) in self.predicates.iter().enumerate().rev() {
                    if pred.eval_counted(&t, &mut ctx.counters.filter_comparisons) {
                        level = (idx + 1) as u32;
                        break;
                    }
                }
                if level == 0 {
                    self.dropped += 1;
                } else {
                    self.annotated += 1;
                    ctx.emit(0, t.with_lineage(level));
                }
            }
            StreamItem::Batch(b) => {
                // Row fallback: annotation rewrites per-row lineage.
                for t in b.materialize() {
                    self.process(_port, StreamItem::Tuple(t), ctx);
                }
            }
            p @ StreamItem::Punctuation(_) => ctx.emit(0, p),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Drops tuples of the filtered stream whose lineage level is below
/// `min_level`; everything else passes through untouched.
#[derive(Debug)]
pub struct LineageGateOp {
    name: String,
    min_level: u32,
    stream: StreamId,
    dropped: u64,
}

impl LineageGateOp {
    /// Build a gate requiring lineage `>= min_level` for tuples of `stream`.
    pub fn new(name: impl Into<String>, min_level: u32, stream: StreamId) -> Self {
        LineageGateOp {
            name: name.into(),
            min_level,
            stream,
            dropped: 0,
        }
    }

    /// Number of tuples dropped by this gate.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The gate's minimum lineage level.
    pub fn min_level(&self) -> u32 {
        self.min_level
    }
}

impl Operator for LineageGateOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, _port: PortId, item: StreamItem, ctx: &mut OpContext) {
        match item {
            StreamItem::Tuple(t) => {
                ctx.counters.tuples_processed += 1;
                if t.stream == self.stream && t.lineage < self.min_level {
                    self.dropped += 1;
                } else {
                    ctx.emit(0, t);
                }
            }
            StreamItem::Batch(b) => {
                // Row fallback: gating inspects per-row lineage.
                for t in b.materialize() {
                    self.process(_port, StreamItem::Tuple(t), ctx);
                }
            }
            p @ StreamItem::Punctuation(_) => ctx.emit(0, p),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamkit::tuple::{Tuple, LINEAGE_ALL};
    use streamkit::Timestamp;

    fn a(v: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(1), StreamId::A, &[v])
    }

    fn b(v: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(1), StreamId::B, &[v])
    }

    fn out_lineages(ctx: &mut OpContext) -> Vec<u32> {
        ctx.take_outputs()
            .into_iter()
            .filter_map(|(_, i)| i.into_tuple())
            .map(|t| t.lineage)
            .collect()
    }

    #[test]
    fn annotates_with_highest_satisfied_query_index() {
        // Q1: value > 0 (everything), Q2: value > 10, Q3: value > 100.
        let mut op = LineageAnnotatorOp::new(
            "lineage",
            vec![
                Predicate::gt(0, 0i64),
                Predicate::gt(0, 10i64),
                Predicate::gt(0, 100i64),
            ],
            StreamId::A,
        );
        let mut ctx = OpContext::new();
        op.process(0, a(5).into(), &mut ctx);
        op.process(0, a(50).into(), &mut ctx);
        op.process(0, a(500).into(), &mut ctx);
        assert_eq!(out_lineages(&mut ctx), vec![1, 2, 3]);
        assert_eq!(op.annotated(), 3);
        assert_eq!(op.dropped(), 0);
    }

    #[test]
    fn evaluation_stops_at_the_first_hit_from_the_top() {
        let mut op = LineageAnnotatorOp::new(
            "lineage",
            vec![
                Predicate::gt(0, 0i64),
                Predicate::gt(0, 10i64),
                Predicate::gt(0, 100i64),
            ],
            StreamId::A,
        );
        let mut ctx = OpContext::new();
        // Satisfies cond_3 immediately: exactly one comparison.
        op.process(0, a(500).into(), &mut ctx);
        assert_eq!(ctx.counters.filter_comparisons, 1);
        // Satisfies only cond_1: three comparisons (3, then 2, then 1).
        let mut ctx = OpContext::new();
        op.process(0, a(5).into(), &mut ctx);
        assert_eq!(ctx.counters.filter_comparisons, 3);
    }

    #[test]
    fn tuples_matching_no_predicate_are_dropped() {
        let mut op = LineageAnnotatorOp::new(
            "lineage",
            vec![Predicate::gt(0, 10i64), Predicate::gt(0, 100i64)],
            StreamId::A,
        );
        let mut ctx = OpContext::new();
        op.process(0, a(1).into(), &mut ctx);
        assert!(out_lineages(&mut ctx).is_empty());
        assert_eq!(op.dropped(), 1);
    }

    #[test]
    fn other_streams_pass_through_untouched() {
        let mut op = LineageAnnotatorOp::new("lineage", vec![Predicate::gt(0, 10i64)], StreamId::A);
        let mut ctx = OpContext::new();
        op.process(0, b(1).into(), &mut ctx);
        assert_eq!(out_lineages(&mut ctx), vec![LINEAGE_ALL]);
        assert_eq!(ctx.counters.filter_comparisons, 0);
    }

    #[test]
    fn gate_drops_below_level_without_comparisons() {
        let mut gate = LineageGateOp::new("gate2", 2, StreamId::A);
        assert_eq!(gate.min_level(), 2);
        let mut ctx = OpContext::new();
        gate.process(0, a(5).with_lineage(1).into(), &mut ctx);
        gate.process(0, a(50).with_lineage(2).into(), &mut ctx);
        gate.process(0, a(500).with_lineage(3).into(), &mut ctx);
        gate.process(0, b(1).into(), &mut ctx);
        let out = ctx.take_outputs();
        assert_eq!(out.len(), 3);
        assert_eq!(gate.dropped(), 1);
        assert_eq!(ctx.counters.filter_comparisons, 0);
    }

    #[test]
    fn punctuations_pass_both_operators() {
        let mut ann = LineageAnnotatorOp::new("lineage", vec![Predicate::True], StreamId::A);
        let mut gate = LineageGateOp::new("gate", 1, StreamId::A);
        let mut ctx = OpContext::new();
        let p = streamkit::Punctuation::new(Timestamp::from_secs(3));
        ann.process(0, p.into(), &mut ctx);
        gate.process(0, p.into(), &mut ctx);
        assert_eq!(ctx.take_outputs().len(), 2);
    }
}
