//! Live query churn: online add/remove of registered queries against a
//! *running* executor, with in-executor chain re-slicing (Section 5.3 put to
//! work).
//!
//! [`crate::migration`] implements the paper's chain-maintenance primitives —
//! merging and splitting sliced joins — at the spec and operator level.  This
//! module drives them end to end: a [`LiveReslicer`] owns a running
//! [`Executor`]/[`ShardedExecutor`], accepts
//! [`add_query`](LiveReslicer::add_query) / [`remove_query`](LiveReslicer::remove_query)
//! at any punctuation boundary, re-plans the Mem-Opt or CPU-Opt chain for the
//! changed [`QueryWorkload`], diffs the old and new [`ChainSpec`]s into a
//! minimal sequence of merge/split primitives ([`ChainEditPlan::between`]),
//! and applies them through the paper's protocol:
//!
//! 1. **pause** ingestion and **drain** the in-flight queues (run the
//!    executor to quiescence — the queues between slices must be empty before
//!    states may be concatenated, Section 5.3),
//! 2. migrate each slice's state through
//!    [`drain_states`](crate::sliced_binary::SlicedBinaryJoinOp::drain_states) /
//!    [`load_states`](crate::sliced_binary::SlicedBinaryJoinOp::load_states):
//!    merges concatenate adjacent states
//!    ([`merge_slice_operators`]); splits either re-cut the state eagerly by
//!    tuple age ([`split_slice_operator_eager`], the default) or follow the
//!    paper's lazy split-purge protocol ([`split_slice_operator`]),
//! 3. re-wire the downstream union/router/sink graph for the added/removed
//!    query by materialising a fresh plan for the new workload and
//!    transplanting the migrated slice states into it,
//! 4. **resume**.
//!
//! When the executor is sharded, the chain edits are applied per shard (each
//! shard is an independent instance of the chain over its key partition, so
//! per-shard application is exactly the single-chain protocol N times), and
//! [`rescale_shards`](LiveReslicer::rescale_shards) redistributes every
//! slice's per-shard states across a new shard count via
//! [`rehash_shard_states`].
//!
//! The migration pause of every event is measured and reported
//! ([`MigrationRecord`]); the executor's paused-time accounting keeps those
//! stalls out of the service-rate denominator.
//!
//! ## Differential testing
//!
//! With the default eager mode, the states a live-migrated chain holds at a
//! quiescent point are *exactly* the states of a chain freshly planned for
//! the new workload (fed the same input from scratch), as long as no
//! migration ever extended the chain's coverage beyond history it had already
//! discarded.  `tests/live_reslice_equivalence.rs` pins that equivalence —
//! per-sink result multisets per query lifetime, and final per-slice states —
//! against freshly-planned reference chains.  When an added query *does*
//! extend the largest window, the chain cannot resurrect discarded state: the
//! new query ramps up like a freshly started join, and the only missing
//! results are pairs whose timestamp span exceeds the coverage at add time.

use std::collections::HashMap;
use std::time::Instant;

use streamkit::error::{Result, StreamError};
use streamkit::queue::StreamItem;
use streamkit::shard::ShardedExecutor;
use streamkit::tuple::Tuple;
use streamkit::{ExecutionReport, Executor, ExecutorConfig, Plan, TimeDelta, Timestamp};

use crate::builder::{ChainBuilder, ChainPlanFactory, CostConfig};
use crate::chain::ChainSpec;
use crate::migration::{
    merge_slice_operators, rehash_shard_states, split_slice_operator, split_slice_operator_eager,
    PurgeWatermarks,
};
use crate::planner::{PlannerOptions, CHAIN_ENTRY};
use crate::query::{JoinQuery, QueryWorkload};
use crate::sliced_binary::SlicedBinaryJoinOp;

/// How a split migrates the affected state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MigrationMode {
    /// Re-cut the split slice's state immediately by tuple age
    /// ([`split_slice_operator_eager`]); the migrated chain's states match a
    /// freshly planned chain exactly.
    #[default]
    Eager,
    /// The paper's lazy protocol ([`split_slice_operator`]): the left half
    /// keeps the whole state and subsequent cross-purging fills the right
    /// half up.  Results are identical; only the transient state placement
    /// differs.
    Lazy,
}

/// Which chain buildup re-planning uses after every workload change.
#[derive(Debug, Clone, PartialEq)]
pub enum SliceStrategy {
    /// One slice per distinct window (Section 5.1).
    MemOpt,
    /// Minimal analytical CPU cost under the given statistics (Section 5.2).
    CpuOpt(CostConfig),
}

impl SliceStrategy {
    /// The chain spec this strategy picks for a workload.
    pub fn spec_for(&self, workload: &QueryWorkload) -> Result<ChainSpec> {
        let builder = ChainBuilder::new(workload.clone());
        match self {
            SliceStrategy::MemOpt => Ok(builder.memory_optimal()),
            SliceStrategy::CpuOpt(cost) => Ok(builder.cpu_optimal(cost)?.spec),
        }
    }
}

/// One chain-maintenance primitive, expressed over window-offset *values*
/// (boundary indexes shift when queries enter or leave, offsets do not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainEdit {
    /// Remove the interior boundary at `boundary`: merge the two adjacent
    /// slices ([`merge_slice_operators`]).
    Merge {
        /// Window offset of the removed boundary.
        boundary: TimeDelta,
    },
    /// Add an interior boundary at `boundary`: split the slice containing it.
    Split {
        /// Window offset of the added boundary.
        boundary: TimeDelta,
    },
    /// Shrink the covered range from `from` to `to` (the largest query
    /// left): state older than `to` is dropped, exactly as a chain that
    /// never covered it would have dropped it.
    Truncate {
        /// Old covered range.
        from: TimeDelta,
        /// New covered range.
        to: TimeDelta,
    },
    /// Grow the covered range from `from` to `to` (a query with a new
    /// largest window arrived): the last slice widens; already-discarded
    /// history is *not* resurrected, so the widened range starts empty.
    Extend {
        /// Old covered range.
        from: TimeDelta,
        /// New covered range.
        to: TimeDelta,
    },
}

/// The minimal primitive sequence turning one [`ChainSpec`] into another.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChainEditPlan {
    /// Edits in application order: merges (ascending boundary), then the
    /// coverage change, then splits (ascending boundary).
    pub edits: Vec<ChainEdit>,
}

impl ChainEditPlan {
    /// Diff two chain specs into the minimal merge/split sequence: one merge
    /// per interior boundary the new chain drops, one split per interior
    /// boundary it adds, plus at most one coverage change.
    pub fn between(old: &ChainSpec, new: &ChainSpec) -> ChainEditPlan {
        let interior = |spec: &ChainSpec| -> Vec<TimeDelta> {
            let slices = spec.slices();
            slices[..slices.len() - 1]
                .iter()
                .map(|s| s.window.end)
                .collect()
        };
        let old_end = old.covered_range();
        let new_end = new.covered_range();
        let old_interior = interior(old);
        let new_interior = interior(new);
        let mut edits = Vec::new();
        // Boundaries at or beyond the new coverage disappear with Truncate.
        for &b in old_interior
            .iter()
            .filter(|&&b| b < new_end && !new_interior.contains(&b))
        {
            edits.push(ChainEdit::Merge { boundary: b });
        }
        if new_end < old_end {
            edits.push(ChainEdit::Truncate {
                from: old_end,
                to: new_end,
            });
        } else if new_end > old_end {
            edits.push(ChainEdit::Extend {
                from: old_end,
                to: new_end,
            });
        }
        for &b in new_interior.iter().filter(|&&b| !old_interior.contains(&b)) {
            edits.push(ChainEdit::Split { boundary: b });
        }
        ChainEditPlan { edits }
    }

    /// Number of merge edits.
    pub fn merges(&self) -> usize {
        self.edits
            .iter()
            .filter(|e| matches!(e, ChainEdit::Merge { .. }))
            .count()
    }

    /// Number of split edits.
    pub fn splits(&self) -> usize {
        self.edits
            .iter()
            .filter(|e| matches!(e, ChainEdit::Split { .. }))
            .count()
    }

    /// `true` if the two specs were identical.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }
}

/// Counters of one edit-plan application on one chain instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainEditStats {
    /// State tuples drained and reloaded by merges/splits/truncation.
    pub tuples_moved: usize,
    /// State tuples dropped by a coverage truncation.
    pub tuples_dropped: usize,
}

impl ChainEditStats {
    fn add(&mut self, other: &ChainEditStats) {
        self.tuples_moved += other.tuples_moved;
        self.tuples_dropped += other.tuples_dropped;
    }
}

/// Apply an edit plan to the (drained) slice operators of one chain
/// instance.  `watermarks` is the instance's purge progress (last male per
/// stream), used by eager splits and by truncation to re-cut state by age —
/// each side's age is measured against the opposite stream's last male,
/// because purging is cross-purging.
pub fn apply_chain_edits(
    mut ops: Vec<SlicedBinaryJoinOp>,
    plan: &ChainEditPlan,
    watermarks: PurgeWatermarks,
    mode: MigrationMode,
) -> Result<(Vec<SlicedBinaryJoinOp>, ChainEditStats)> {
    use streamkit::Operator as _;
    let mut stats = ChainEditStats::default();
    for edit in &plan.edits {
        match *edit {
            ChainEdit::Merge { boundary } => {
                let idx = ops
                    .iter()
                    .position(|o| o.window().end == boundary)
                    .ok_or_else(|| {
                        StreamError::InvalidConfig(format!(
                            "no slice ends at the merge boundary {boundary}"
                        ))
                    })?;
                if idx + 1 >= ops.len() {
                    return Err(StreamError::InvalidConfig(format!(
                        "merge boundary {boundary} has no right neighbour"
                    )));
                }
                let right = ops.remove(idx + 1);
                let left = ops.remove(idx);
                stats.tuples_moved += left.state_len() + right.state_len();
                let name = left.name().to_string();
                ops.insert(idx, merge_slice_operators(name, left, right)?);
            }
            ChainEdit::Split { boundary } => {
                let idx = ops
                    .iter()
                    .position(|o| o.window().start < boundary && boundary < o.window().end)
                    .ok_or_else(|| {
                        StreamError::InvalidConfig(format!(
                            "no slice strictly contains the split boundary {boundary}"
                        ))
                    })?;
                let op = ops.remove(idx);
                let name = op.name().to_string();
                let (left, right) = match mode {
                    MigrationMode::Eager => {
                        stats.tuples_moved += op.state_len();
                        split_slice_operator_eager(
                            op,
                            boundary,
                            watermarks,
                            name.clone(),
                            format!("{name}'"),
                        )?
                    }
                    MigrationMode::Lazy => {
                        split_slice_operator(op, boundary, name.clone(), format!("{name}'"))?
                    }
                };
                ops.insert(idx, right);
                ops.insert(idx, left);
            }
            ChainEdit::Truncate { from, to } => {
                let last = ops.last().map(|o| o.window().end);
                if last != Some(from) {
                    return Err(StreamError::InvalidConfig(format!(
                        "truncate expects the chain to end at {from}, found {last:?}"
                    )));
                }
                // Drop slices fully beyond the new coverage; split the
                // straddling slice (if any) and drop its old half.  A chain
                // that never covered `[to, from)` would have purged exactly
                // this state into oblivion at its last slice.
                while ops.last().is_some_and(|o| o.window().start >= to) {
                    let dropped = ops.pop().ok_or_else(|| {
                        StreamError::Execution("truncate lost the slice it just peeked".to_string())
                    })?;
                    stats.tuples_dropped += dropped.state_len();
                }
                if let Some(last) = ops.last() {
                    if last.window().end > to {
                        let op = ops.pop().ok_or_else(|| {
                            StreamError::Execution(
                                "truncate lost the slice it just peeked".to_string(),
                            )
                        })?;
                        let name = op.name().to_string();
                        stats.tuples_moved += op.state_len();
                        // Truncation is always eager: keeping over-aged state
                        // in the (now last) slice would leak out-of-window
                        // results into queries whose window equals the new
                        // coverage.
                        let (left, right) =
                            split_slice_operator_eager(op, to, watermarks, name, "dropped")?;
                        stats.tuples_dropped += right.state_len();
                        stats.tuples_moved -= right.state_len();
                        ops.push(left);
                    }
                }
                if ops.is_empty() {
                    return Err(StreamError::InvalidConfig(
                        "truncation removed every slice".to_string(),
                    ));
                }
            }
            ChainEdit::Extend { from, to } => {
                let Some(last) = ops.last_mut() else {
                    return Err(StreamError::InvalidConfig(
                        "cannot extend an empty chain".to_string(),
                    ));
                };
                if last.window().end != from {
                    return Err(StreamError::InvalidConfig(format!(
                        "extend expects the chain to end at {from}, found {}",
                        last.window().end
                    )));
                }
                let mut window = last.window();
                window.end = to;
                last.set_window(window);
            }
        }
    }
    Ok((ops, stats))
}

/// Reconstruct an owned copy of a sliced join (window, condition, flags,
/// index mode) holding the original's drained state.  Used to lift slice
/// operators out of a retired plan so the migration primitives — which take
/// operators by value — can be applied to them.
fn lift_slice_op(op: &mut SlicedBinaryJoinOp) -> SlicedBinaryJoinOp {
    use streamkit::Operator as _;
    let (stream_a, stream_b) = op.streams();
    let mut lifted = SlicedBinaryJoinOp::new(
        op.name().to_string(),
        op.window(),
        op.condition().clone(),
        stream_a,
        stream_b,
    );
    if !op.is_indexed() {
        lifted = lifted.without_index();
    }
    lifted.set_chain_head(op.is_chain_head());
    lifted.set_has_next(op.has_next());
    lifted.set_columnar_results(op.emits_columnar_results());
    let (a, b) = op.drain_states();
    lifted.load_states(a, b);
    lifted
}

/// Lift every sliced join out of a retired plan, in chain order.
fn lift_slice_ops(plan: &mut Plan) -> Vec<SlicedBinaryJoinOp> {
    let mut ops = Vec::new();
    for idx in 0..plan.num_nodes() {
        let Ok(node) = plan.node_mut(streamkit::NodeId(idx)) else {
            continue;
        };
        if let Some(op) = node
            .operator
            .as_any_mut()
            .downcast_mut::<SlicedBinaryJoinOp>()
        {
            ops.push(lift_slice_op(op));
        }
    }
    ops
}

/// Load migrated slice states into a freshly built plan, verifying the
/// migrated windows line up with the plan's slices.
fn load_slice_states(plan: &mut Plan, migrated: Vec<SlicedBinaryJoinOp>) -> Result<()> {
    let mut migrated = migrated.into_iter();
    for idx in 0..plan.num_nodes() {
        let node = plan.node_mut(streamkit::NodeId(idx))?;
        if let Some(op) = node
            .operator
            .as_any_mut()
            .downcast_mut::<SlicedBinaryJoinOp>()
        {
            let mut source = migrated.next().ok_or_else(|| {
                StreamError::Execution(
                    "migrated chain has fewer slices than the new plan".to_string(),
                )
            })?;
            if source.window() != op.window() {
                return Err(StreamError::Execution(format!(
                    "migrated slice {} does not match the planned slice {}",
                    source.window(),
                    op.window()
                )));
            }
            let (a, b) = source.drain_states();
            op.load_states(a, b);
        }
    }
    if migrated.next().is_some() {
        return Err(StreamError::Execution(
            "migrated chain has more slices than the new plan".to_string(),
        ));
    }
    Ok(())
}

/// What one migration event did and what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRecord {
    /// Epoch index after the migration (epoch 0 is the launch workload).
    pub epoch: u64,
    /// Human-readable cause, e.g. `add Q7` / `remove Q2` / `rescale 1->4`.
    pub reason: String,
    /// Merge primitives applied (per chain instance).
    pub merges: usize,
    /// Split primitives applied (per chain instance).
    pub splits: usize,
    /// State tuples drained and reloaded across all shards.
    pub tuples_moved: usize,
    /// State tuples dropped by coverage truncation across all shards.
    pub tuples_dropped: usize,
    /// Wall-clock seconds the executor was stalled by this migration
    /// (excluded from the service-rate denominator).
    pub pause_secs: f64,
}

/// The results one registered query (instance) received over its lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResults {
    /// Query name.
    pub name: String,
    /// Query window.
    pub window: TimeDelta,
    /// Epoch the query entered the system (0 = present at launch).
    pub added_epoch: u64,
    /// Epoch the query left the system (`None` = still active at finish).
    pub removed_epoch: Option<u64>,
    /// Result tuples delivered to the query's sink.
    pub count: u64,
    /// The delivered tuples (only populated under
    /// [`PlannerOptions::retain_results`]).
    pub collected: Vec<Tuple>,
}

/// Everything a finished churn session produced.
#[derive(Debug)]
pub struct ChurnOutcome {
    /// Cumulative execution report over the whole session (all epochs, all
    /// shards; migration stalls excluded from the running time).
    pub report: ExecutionReport,
    /// Per-query-instance results, in lifetime order (finished instances
    /// first, then the queries still active at finish).
    pub queries: Vec<QueryResults>,
    /// One record per migration event.
    pub migrations: Vec<MigrationRecord>,
}

impl ChurnOutcome {
    /// Results of a query instance by name (the last instance of that name).
    pub fn query(&self, name: &str) -> Option<&QueryResults> {
        self.queries.iter().rev().find(|q| q.name == name)
    }

    /// Total migration stall time in seconds.
    pub fn total_pause_secs(&self) -> f64 {
        self.migrations.iter().map(|m| m.pause_secs).sum()
    }
}

/// Tuning knobs of a live-reslicing session.
#[derive(Debug, Clone)]
pub struct LiveOptions {
    /// Plan generation options (index mode, retained sinks, shard count).
    pub planner: PlannerOptions,
    /// Executor configuration shared by every shard.
    pub executor: ExecutorConfig,
    /// Chain buildup strategy applied after every workload change.
    pub strategy: SliceStrategy,
    /// Split-state migration mode.
    pub mode: MigrationMode,
}

impl Default for LiveOptions {
    fn default() -> Self {
        LiveOptions {
            planner: PlannerOptions::default(),
            executor: ExecutorConfig::default(),
            strategy: SliceStrategy::MemOpt,
            mode: MigrationMode::Eager,
        }
    }
}

/// Online add/remove of queries against a running (possibly sharded) chain
/// executor.  See the module docs for the protocol.
#[derive(Debug)]
pub struct LiveReslicer {
    workload: QueryWorkload,
    spec: ChainSpec,
    options: LiveOptions,
    exec: ShardedExecutor,
    /// Per-shard purge progress: last male per stream routed to the shard.
    shard_hw: Vec<PurgeWatermarks>,
    active: HashMap<String, QueryResults>,
    finished: Vec<QueryResults>,
    migrations: Vec<MigrationRecord>,
    /// Cumulative reports of executors retired by shard-count rescaling.
    retired: Option<ExecutionReport>,
    epoch: u64,
}

impl LiveReslicer {
    /// Plan the chain for `workload` under `options` and launch a fresh
    /// executor for it (`options.planner.shards` instances).
    pub fn launch(workload: QueryWorkload, options: LiveOptions) -> Result<Self> {
        let spec = options.strategy.spec_for(&workload)?;
        let factory = ChainPlanFactory::new(workload.clone(), spec.clone(), options.planner);
        let exec = factory.sharded_with_config(options.executor.clone())?;
        Ok(Self::assemble(workload, spec, options, exec))
    }

    /// Take over an existing [`ShardedExecutor`] running `spec` over
    /// `workload`.  The executor must not have processed any input yet (the
    /// reslicer derives its progress watermarks from the tuples it routes).
    pub fn attach(
        exec: ShardedExecutor,
        workload: QueryWorkload,
        spec: ChainSpec,
        options: LiveOptions,
    ) -> Result<Self> {
        spec.validate(&workload)?;
        if !exec.is_drained() {
            return Err(StreamError::InvalidConfig(
                "attach the reslicer before ingesting input".to_string(),
            ));
        }
        Ok(Self::assemble(workload, spec, options, exec))
    }

    /// Take over a plain single-instance [`Executor`] (the unsharded case).
    pub fn attach_executor(
        exec: Executor,
        workload: QueryWorkload,
        spec: ChainSpec,
        options: LiveOptions,
    ) -> Result<Self> {
        let shard_spec = ChainPlanFactory::new(workload.clone(), spec.clone(), options.planner)
            .shard_spec()
            .unwrap_or_else(|| streamkit::ShardSpec::symmetric(0));
        let sharded = ShardedExecutor::from_executors(vec![exec], shard_spec)?;
        Self::attach(sharded, workload, spec, options)
    }

    fn assemble(
        workload: QueryWorkload,
        spec: ChainSpec,
        options: LiveOptions,
        exec: ShardedExecutor,
    ) -> Self {
        let shard_hw = vec![PurgeWatermarks::default(); exec.num_shards()];
        let active = workload
            .queries()
            .iter()
            .map(|q| (q.name.clone(), Self::fresh_results(q, 0)))
            .collect();
        LiveReslicer {
            workload,
            spec,
            options,
            exec,
            shard_hw,
            active,
            finished: Vec::new(),
            migrations: Vec::new(),
            retired: None,
            epoch: 0,
        }
    }

    fn fresh_results(query: &JoinQuery, epoch: u64) -> QueryResults {
        QueryResults {
            name: query.name.clone(),
            window: query.window,
            added_epoch: epoch,
            removed_epoch: None,
            count: 0,
            collected: Vec::new(),
        }
    }

    /// The current workload.
    pub fn workload(&self) -> &QueryWorkload {
        &self.workload
    }

    /// The current chain spec.
    pub fn spec(&self) -> &ChainSpec {
        &self.spec
    }

    /// The chain buildup strategy applied at the next workload change.
    pub fn strategy(&self) -> &SliceStrategy {
        &self.options.strategy
    }

    /// Switch the chain buildup strategy and immediately re-plan the current
    /// workload under it (the adaptive supervisor's entry point).  If the new
    /// strategy derives the same slice boundaries, this is a true no-op: no
    /// pause, no plan swap, no migration record.
    pub fn set_strategy(
        &mut self,
        strategy: SliceStrategy,
        reason: impl Into<String>,
    ) -> Result<()> {
        self.options.strategy = strategy;
        self.reslice(self.workload.clone(), reason.into())
    }

    /// Drain to a punctuation boundary and sample the windowed runtime
    /// statistics (arrival rates, operator selectivities, live state) merged
    /// across all shards.
    pub fn stats_snapshot(&mut self) -> Result<streamkit::StatsSnapshot> {
        self.exec.run()?;
        Ok(self.exec.stats_snapshot())
    }

    /// The running executor (state inspection in tests and tools).
    pub fn executor(&self) -> &ShardedExecutor {
        &self.exec
    }

    /// Current shard count.
    pub fn num_shards(&self) -> usize {
        self.exec.num_shards()
    }

    /// Epoch counter: number of migrations applied so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Migration records so far.
    pub fn migrations(&self) -> &[MigrationRecord] {
        &self.migrations
    }

    /// The chain's global progress watermark (max over shards and streams).
    pub fn high_watermark(&self) -> Timestamp {
        self.shard_hw
            .iter()
            .map(|wm| wm.max())
            .max()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Ingest one item into the chain entry (tuples are hash-routed to their
    /// shard, punctuations broadcast).
    pub fn ingest(&mut self, item: impl Into<StreamItem>) -> Result<()> {
        let item = item.into();
        let mark = match &item {
            StreamItem::Tuple(t) => Some((t.stream, t.ts)),
            // Ingest-side batches are not part of the chain protocol (the
            // sharded executor scatters their rows); they do not advance the
            // per-shard progress watermarks.
            StreamItem::Batch(_) | StreamItem::Punctuation(_) => None,
        };
        if let (Some(shard), Some((stream, ts))) =
            (self.exec.ingest_routed(CHAIN_ENTRY, item)?, mark)
        {
            self.shard_hw[shard].observe(stream, ts);
        }
        Ok(())
    }

    /// Ingest a batch of items (see [`LiveReslicer::ingest`]).
    pub fn ingest_all<I>(&mut self, items: I) -> Result<()>
    where
        I: IntoIterator,
        I::Item: Into<StreamItem>,
    {
        for item in items {
            self.ingest(item)?;
        }
        Ok(())
    }

    /// Run the executor to quiescence (a punctuation boundary), returning the
    /// cumulative report so far.
    pub fn drain(&mut self) -> Result<ExecutionReport> {
        let report = self.exec.run()?;
        Ok(self.with_retired(report))
    }

    /// Register a new query: drain, re-plan, migrate, resume.  Fails without
    /// side effects if the name or window collides with an active query.
    pub fn add_query(&mut self, query: JoinQuery) -> Result<()> {
        if self.active.contains_key(&query.name) {
            return Err(StreamError::InvalidConfig(format!(
                "query '{}' is already registered",
                query.name
            )));
        }
        let mut queries: Vec<JoinQuery> = self.workload.queries().to_vec();
        queries.push(query.clone());
        let new_workload = QueryWorkload::new(queries, self.workload.join_condition().clone())?;
        self.reslice(new_workload, format!("add {}", query.name))?;
        self.active
            .insert(query.name.clone(), Self::fresh_results(&query, self.epoch));
        Ok(())
    }

    /// Deregister a query: drain, harvest its results, re-plan, migrate,
    /// resume.  Returns everything the query received over its lifetime.
    pub fn remove_query(&mut self, name: &str) -> Result<QueryResults> {
        if !self.active.contains_key(name) {
            return Err(StreamError::InvalidConfig(format!(
                "query '{name}' is not registered"
            )));
        }
        if self.workload.len() == 1 {
            return Err(StreamError::InvalidConfig(
                "cannot remove the last registered query".to_string(),
            ));
        }
        let queries: Vec<JoinQuery> = self
            .workload
            .queries()
            .iter()
            .filter(|q| q.name != name)
            .cloned()
            .collect();
        let new_workload = QueryWorkload::new(queries, self.workload.join_condition().clone())?;
        self.reslice(new_workload, format!("remove {name}"))?;
        let mut done = self.active.remove(name).ok_or_else(|| {
            StreamError::Execution(format!(
                "query '{name}' vanished during its removal reslice"
            ))
        })?;
        done.removed_epoch = Some(self.epoch);
        self.finished.push(done.clone());
        Ok(done)
    }

    /// Redistribute every slice's per-shard states across `new_shards`
    /// hash partitions ([`rehash_shard_states`]) and relaunch the executor
    /// over that many chain instances.  Requires an equi-join workload (the
    /// same precondition as sharded execution itself).
    pub fn rescale_shards(&mut self, new_shards: usize) -> Result<()> {
        let old_shards = self.exec.num_shards();
        if new_shards == old_shards {
            return Ok(());
        }
        if self.exec.has_hot_keys() {
            // Replicated hot-key buckets live on every shard; re-hashing
            // would collapse the replicas into duplicate states.  Un-
            // replication is a separate (future) migration step.
            return Err(StreamError::Execution(
                "cannot rescale shards while skew-replicated hot keys are active".to_string(),
            ));
        }
        // Drain in-flight work (ordinary execution), then stall.  All the
        // fallible construction happens before the ledger harvest and the
        // executor replacement, so a failed rescale leaves the session
        // untouched.
        let report = self.exec.run()?;
        let pause_start = Instant::now();
        let planner = PlannerOptions {
            shards: new_shards,
            ..self.options.planner
        };
        let factory = ChainPlanFactory::new(self.workload.clone(), self.spec.clone(), planner);
        let shard_spec = factory.shard_spec().ok_or_else(|| {
            StreamError::InvalidConfig(
                "cannot rescale shards for a join without an equi component".to_string(),
            )
        })?;
        let fresh = factory.sharded_with_config(self.options.executor.clone())?;
        self.harvest_sinks()?;
        // Retire the old executor (its cumulative report was taken above)
        // and lift each shard's slice instances out of it.
        let old = std::mem::replace(&mut self.exec, fresh);
        let (mut old_executors, _) = old.into_parts();
        let per_shard_ops: Vec<Vec<SlicedBinaryJoinOp>> = old_executors
            .iter_mut()
            .map(|e| lift_slice_ops(e.plan_mut()))
            .collect();
        let num_slices = per_shard_ops.first().map(|ops| ops.len()).unwrap_or(0);
        // Transpose to per-slice columns of per-shard instances.
        let mut columns: Vec<Vec<SlicedBinaryJoinOp>> =
            (0..num_slices).map(|_| Vec::new()).collect();
        for shard_ops in per_shard_ops {
            if shard_ops.len() != num_slices {
                return Err(StreamError::Execution(
                    "shard chain instances have diverging slice counts".to_string(),
                ));
            }
            for (k, op) in shard_ops.into_iter().enumerate() {
                columns[k].push(op);
            }
        }
        // Re-hash every slice's states onto the new shard count and load
        // them into the fresh instances.
        let mut tuples_moved = 0;
        let mut per_new_shard: Vec<Vec<SlicedBinaryJoinOp>> =
            (0..new_shards).map(|_| Vec::new()).collect();
        for instances in columns {
            tuples_moved += instances.iter().map(|o| o.state_len()).sum::<usize>();
            let rehashed = rehash_shard_states(instances, new_shards, &shard_spec)?;
            for (i, op) in rehashed.into_iter().enumerate() {
                per_new_shard[i].push(op);
            }
        }
        for (i, ops) in per_new_shard.into_iter().enumerate() {
            load_slice_states(self.exec.shards_mut()[i].plan_mut(), ops)?;
        }
        // A new shard's per-stream last-male timestamps cannot be
        // reconstructed from the surviving state, so every shard
        // conservatively adopts the global per-stream maxima.  Future tuples
        // are at least this new, so eager re-cuts stay result-safe; only
        // per-slice placement parity with a freshly-planned sharded chain is
        // weakened until traffic catches up.
        let male_a = self.shard_hw.iter().map(|wm| wm.male_a).max();
        let male_b = self.shard_hw.iter().map(|wm| wm.male_b).max();
        self.shard_hw = vec![
            PurgeWatermarks {
                male_a: male_a.unwrap_or(Timestamp::ZERO),
                male_b: male_b.unwrap_or(Timestamp::ZERO),
            };
            new_shards
        ];
        self.retired = Some(self.with_retired(report));
        self.epoch += 1;
        self.migrations.push(MigrationRecord {
            epoch: self.epoch,
            reason: format!("rescale {old_shards}->{new_shards}"),
            merges: 0,
            splits: 0,
            tuples_moved,
            tuples_dropped: 0,
            pause_secs: pause_start.elapsed().as_secs_f64(),
        });
        Ok(())
    }

    fn with_retired(&self, report: ExecutionReport) -> ExecutionReport {
        match &self.retired {
            None => report,
            Some(base) => accumulate_sequential(base.clone(), report),
        }
    }

    /// Harvest every active query's sink deliveries of the current plan
    /// generation (read live off the executor; used at rescale and finish,
    /// where the plans are about to be consumed or dropped).
    fn harvest_sinks(&mut self) -> Result<()> {
        for shard_idx in 0..self.exec.num_shards() {
            let plan_sinks: Vec<(String, u64, Vec<Tuple>)> = {
                let plan = self.exec.shards()[shard_idx].plan();
                self.workload
                    .queries()
                    .iter()
                    .filter_map(|q| {
                        plan.sink(&q.name)
                            .map(|s| (q.name.clone(), s.count(), s.collected().to_vec()))
                    })
                    .collect()
            };
            for (name, count, collected) in plan_sinks {
                self.credit_instance(&name, count, collected)?;
            }
        }
        Ok(())
    }

    /// Harvest one *retired* plan's sink deliveries.  Retired plans are
    /// returned by `swap_plans` exactly once, so this cannot double-count
    /// even if a later migration step fails.
    fn harvest_retired_plan(&mut self, plan: &Plan) -> Result<()> {
        let names: Vec<String> = self
            .workload
            .queries()
            .iter()
            .map(|q| q.name.clone())
            .collect();
        for name in names {
            let Some(sink) = plan.sink(&name) else {
                continue;
            };
            let count = sink.count();
            let collected = sink.collected().to_vec();
            self.credit_instance(&name, count, collected)?;
        }
        Ok(())
    }

    fn credit_instance(&mut self, name: &str, count: u64, collected: Vec<Tuple>) -> Result<()> {
        let acc = self.active.get_mut(name).ok_or_else(|| {
            StreamError::Execution(format!("sink '{name}' has no active ledger entry"))
        })?;
        acc.count += count;
        acc.collected.extend(collected);
        Ok(())
    }

    /// The full migration protocol for a workload change.
    fn reslice(&mut self, new_workload: QueryWorkload, reason: String) -> Result<()> {
        // 1. Drain the in-flight queues to a punctuation boundary.  This is
        //    ordinary execution, not stall time.
        self.exec.run()?;
        // 2. Re-plan and diff, and materialise the new plan instances (fresh
        //    union/router/sink wiring for the changed query set).  All the
        //    user-input-fallible work happens here, *before* anything is
        //    mutated, so a failed add/remove leaves the session untouched.
        let new_spec = self.options.strategy.spec_for(&new_workload)?;
        let edits = ChainEditPlan::between(&self.spec, &new_spec);
        if edits.is_empty() && new_workload == self.workload {
            // Same queries, same boundaries: the running plans already *are*
            // the re-derived chain (a strategy switch that lands on the
            // current slicing).  Swapping plans would stall the executor and
            // discard warm state for nothing, so don't.
            debug_assert_eq!(new_spec, self.spec);
            return Ok(());
        }
        let planner = PlannerOptions {
            shards: self.exec.num_shards(),
            ..self.options.planner
        };
        let factory = ChainPlanFactory::new(new_workload.clone(), new_spec.clone(), planner);
        let plans = (0..self.exec.num_shards())
            .map(|_| factory.instantiate().map(|shared| shared.plan))
            .collect::<Result<Vec<Plan>>>()?;
        // 3. Pause: everything below is migration stall.
        let pause_start = Instant::now();
        self.exec.pause();
        // 4. Swap the plans in and migrate each retired shard plan's slice
        //    states through the edit sequence, closing the epoch's sink
        //    ledgers from the retired plans (each is harvested exactly once
        //    by construction).  Resume even on a failed migration so the
        //    pause accounting stays balanced.
        let migrate = |this: &mut Self, plans: Vec<Plan>| -> Result<ChainEditStats> {
            let old_plans = this.exec.swap_plans(plans)?;
            let mut stats = ChainEditStats::default();
            for (idx, mut old_plan) in old_plans.into_iter().enumerate() {
                this.harvest_retired_plan(&old_plan)?;
                let ops = lift_slice_ops(&mut old_plan);
                let (migrated, shard_stats) =
                    apply_chain_edits(ops, &edits, this.shard_hw[idx], this.options.mode)?;
                stats.add(&shard_stats);
                load_slice_states(this.exec.shards_mut()[idx].plan_mut(), migrated)?;
            }
            Ok(stats)
        };
        let result = migrate(self, plans);
        // 5. Resume.
        self.exec.resume();
        let stats = result?;
        self.epoch += 1;
        self.migrations.push(MigrationRecord {
            epoch: self.epoch,
            reason,
            merges: edits.merges(),
            splits: edits.splits(),
            tuples_moved: stats.tuples_moved,
            tuples_dropped: stats.tuples_dropped,
            pause_secs: pause_start.elapsed().as_secs_f64(),
        });
        self.workload = new_workload;
        self.spec = new_spec;
        Ok(())
    }

    /// Drain remaining work, close every ledger and return the session's
    /// outcome.
    pub fn finish(mut self) -> Result<ChurnOutcome> {
        let report = self.exec.run()?;
        let report = self.with_retired(report);
        self.harvest_sinks()?;
        let mut queries = self.finished;
        let mut still_active: Vec<QueryResults> = self.active.into_values().collect();
        still_active.sort_by(|a, b| (a.added_epoch, &a.name).cmp(&(b.added_epoch, &b.name)));
        queries.extend(still_active);
        Ok(ChurnOutcome {
            report,
            queries,
            migrations: self.migrations,
        })
    }
}

/// Accumulate two reports of *sequential* phases of one logical run (unlike
/// [`ExecutionReport::merge`], which combines *concurrent* partitions):
/// counters, deliveries and time add up; peaks take the maximum; the node
/// breakdown and averages are taken from the later phase.
fn accumulate_sequential(mut base: ExecutionReport, next: ExecutionReport) -> ExecutionReport {
    base.totals.add(&next.totals);
    for (name, count) in next.sink_counts {
        *base.sink_counts.entry(name).or_insert(0) += count;
    }
    base.ingested += next.ingested;
    base.elapsed_secs += next.elapsed_secs;
    base.paused_secs += next.paused_secs;
    base.rounds += next.rounds;
    base.memory.peak_state_tuples = base
        .memory
        .peak_state_tuples
        .max(next.memory.peak_state_tuples);
    base.memory.peak_queue_items = base
        .memory
        .peak_queue_items
        .max(next.memory.peak_queue_items);
    base.memory.final_state_tuples = next.memory.final_state_tuples;
    base.memory.avg_state_tuples = next.memory.avg_state_tuples;
    base.memory.samples += next.memory.samples;
    base.node_stats = next.node_stats;
    base
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamkit::tuple::StreamId;
    use streamkit::JoinCondition;

    fn workload(windows: &[u64]) -> QueryWorkload {
        let queries = windows
            .iter()
            .map(|&w| JoinQuery::new(format!("Q{w}"), TimeDelta::from_secs(w)))
            .collect();
        QueryWorkload::new(queries, JoinCondition::equi(0)).unwrap()
    }

    fn secs(s: u64) -> TimeDelta {
        TimeDelta::from_secs(s)
    }

    #[test]
    fn diff_emits_one_split_per_added_boundary_and_one_merge_per_dropped() {
        let old = ChainSpec::memory_optimal(&workload(&[10, 30]));
        let new = ChainSpec::memory_optimal(&workload(&[10, 20, 30]));
        let plan = ChainEditPlan::between(&old, &new);
        assert_eq!(plan.edits, vec![ChainEdit::Split { boundary: secs(20) }]);
        let back = ChainEditPlan::between(&new, &old);
        assert_eq!(back.edits, vec![ChainEdit::Merge { boundary: secs(20) }]);
        assert!(ChainEditPlan::between(&old, &old).is_empty());
    }

    #[test]
    fn diff_handles_coverage_changes() {
        // Adding a query with a larger window extends the chain.
        let old = ChainSpec::memory_optimal(&workload(&[10, 20]));
        let new = ChainSpec::memory_optimal(&workload(&[10, 20, 30]));
        let plan = ChainEditPlan::between(&old, &new);
        // The old coverage end (20) becomes an interior boundary of the new
        // chain: widen the last slice, then split it back at 20.
        assert_eq!(
            plan.edits,
            vec![
                ChainEdit::Extend {
                    from: secs(20),
                    to: secs(30)
                },
                ChainEdit::Split { boundary: secs(20) },
            ]
        );
        // Removing the largest query truncates; its boundary dies with the
        // truncation, not with a merge.
        let back = ChainEditPlan::between(&new, &old);
        assert_eq!(
            back.edits,
            vec![ChainEdit::Truncate {
                from: secs(30),
                to: secs(20)
            }]
        );
        // Mixed: drop the middle boundary and extend past the end.
        let merged = ChainSpec::from_path(&workload(&[10, 20, 40]), &[0, 1, 3]).unwrap();
        let plan = ChainEditPlan::between(&new, &merged);
        // 10 stays a boundary in both chains, so only 20 merges away.
        assert_eq!(
            plan.edits,
            vec![
                ChainEdit::Merge { boundary: secs(20) },
                ChainEdit::Extend {
                    from: secs(30),
                    to: secs(40)
                },
            ]
        );
    }

    fn keyed(secs: u64, stream: StreamId, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), stream, &[key])
    }

    #[test]
    fn strategy_switch_onto_the_same_boundaries_is_a_free_no_op() {
        let wl = workload(&[4, 16]);
        // High selectivity keeps routing a merged slice expensive, so CPU-Opt
        // picks the same all-boundaries chain Mem-Opt starts with.
        let cost = CostConfig {
            lambda_a: 20.0,
            lambda_b: 20.0,
            sel_join: 0.1,
            csys: 1.0,
        };
        let cpu_opt = SliceStrategy::CpuOpt(cost);
        let mut live = LiveReslicer::launch(wl.clone(), LiveOptions::default()).unwrap();
        let spec_before = live.spec().clone();
        assert_eq!(
            cpu_opt.spec_for(&wl).unwrap(),
            spec_before,
            "precondition: both strategies must cut the same boundaries"
        );
        // Warm some state up so a plan swap would be observable.
        for t in 0..10 {
            live.ingest(keyed(t, StreamId::A, 1)).unwrap();
            live.ingest(keyed(t, StreamId::B, 1)).unwrap();
        }
        live.drain().unwrap();
        live.set_strategy(cpu_opt, "cost refresh").unwrap();
        // The strategy changed but the slicing did not: the diff is empty and
        // the reslice must short-circuit with no stall, no epoch, no record.
        assert!(matches!(live.strategy(), SliceStrategy::CpuOpt(_)));
        assert_eq!(live.spec(), &spec_before);
        assert_eq!(live.epoch(), 0);
        assert!(live.migrations().is_empty());
        // Warm state survived: later arrivals still join earlier ones.
        live.ingest(keyed(10, StreamId::A, 1)).unwrap();
        live.ingest(keyed(10, StreamId::B, 1)).unwrap();
        let outcome = live.finish().unwrap();
        assert_eq!(outcome.report.paused_secs, 0.0, "no-op reslice paused");
        assert_eq!(outcome.total_pause_secs(), 0.0);
        let q16 = outcome.query("Q16").unwrap();
        assert!(q16.count > 20, "warm state was dropped: {}", q16.count);
    }

    fn chain_ops(windows: &[(u64, u64)]) -> Vec<SlicedBinaryJoinOp> {
        use streamkit::window::SliceWindow;
        let last = windows.len() - 1;
        windows
            .iter()
            .enumerate()
            .map(|(k, &(s, e))| {
                let mut op = SlicedBinaryJoinOp::for_ab(
                    format!("slice_{k}"),
                    SliceWindow::from_secs(s, e),
                    JoinCondition::equi(0),
                );
                if k == 0 {
                    op = op.chain_head();
                }
                if k == last {
                    op = op.last_in_chain();
                }
                op
            })
            .collect()
    }

    #[test]
    fn apply_edits_recuts_truncates_and_extends_states() {
        // Chain [0,10),[10,30) with females aged (vs watermark 100s) 5, 15, 25.
        let mut ops = chain_ops(&[(0, 10), (10, 30)]);
        ops[0].load_states(vec![keyed(95, StreamId::A, 1)], vec![]);
        ops[1].load_states(
            vec![keyed(75, StreamId::A, 1), keyed(85, StreamId::A, 1)],
            vec![],
        );
        // Re-slice to [0,20),[20,25): boundary 10 merges away, coverage
        // truncates to 25 (dropping the age-25 female), boundary 20 splits.
        let target = ChainSpec::memory_optimal(&workload(&[20, 25]));
        let source = ChainSpec::memory_optimal(&workload(&[10, 30]));
        let plan = ChainEditPlan::between(&source, &target);
        assert_eq!(plan.merges(), 1);
        assert_eq!(plan.splits(), 1);
        let (migrated, stats) = apply_chain_edits(
            ops,
            &plan,
            PurgeWatermarks::uniform(Timestamp::from_secs(100)),
            MigrationMode::Eager,
        )
        .unwrap();
        assert_eq!(migrated.len(), 2);
        assert_eq!(
            migrated[0].window(),
            streamkit::window::SliceWindow::from_secs(0, 20)
        );
        assert_eq!(
            migrated[1].window(),
            streamkit::window::SliceWindow::from_secs(20, 25)
        );
        // age 5 → [0,20); age 15 → [0,20); age 25 → dropped.
        assert_eq!(migrated[0].state_a_len(), 2);
        assert_eq!(migrated[1].state_a_len(), 0);
        assert_eq!(stats.tuples_dropped, 1);
        assert!(stats.tuples_moved >= 2);
    }

    fn test_options() -> LiveOptions {
        LiveOptions {
            planner: PlannerOptions {
                retain_results: true,
                ..PlannerOptions::default()
            },
            ..LiveOptions::default()
        }
    }

    fn input(n: u64) -> Vec<Tuple> {
        // One A and one B tuple per second, three keys.
        let mut out = Vec::new();
        for s in 1..=n {
            out.push(keyed(s, StreamId::A, (s % 3) as i64));
            out.push(keyed(s, StreamId::B, ((s + 1) % 3) as i64));
        }
        out
    }

    #[test]
    fn add_and_remove_queries_mid_stream() {
        let mut live = LiveReslicer::launch(workload(&[5, 20]), test_options()).unwrap();
        live.ingest_all(input(30)).unwrap();
        live.add_query(JoinQuery::new("Q10", secs(10))).unwrap();
        assert_eq!(live.epoch(), 1);
        assert_eq!(live.workload().len(), 3);
        assert_eq!(live.spec().num_slices(), 3);
        let more: Vec<Tuple> = input(60).into_iter().skip(60).collect();
        live.ingest_all(more).unwrap();
        let removed = live.remove_query("Q5").unwrap();
        assert_eq!(removed.added_epoch, 0);
        assert_eq!(removed.removed_epoch, Some(2));
        // Q5 only saw the first 30 seconds.
        assert!(removed.count > 0);
        assert_eq!(removed.collected.len() as u64, removed.count);
        let rest: Vec<Tuple> = input(90).into_iter().skip(120).collect();
        live.ingest_all(rest).unwrap();
        let outcome = live.finish().unwrap();
        assert_eq!(outcome.queries.len(), 3);
        assert_eq!(outcome.migrations.len(), 2);
        assert!(outcome.total_pause_secs() >= 0.0);
        // The long-lived query saw the whole stream.
        let q20 = outcome.query("Q20").unwrap();
        assert!(q20.count > removed.count);
        assert_eq!(outcome.report.sink_count("Q20"), q20.count);
        // Q10's ledger only covers its lifetime (epoch 1 → finish).
        let q10 = outcome.query("Q10").unwrap();
        assert_eq!(q10.added_epoch, 1);
        assert_eq!(q10.removed_epoch, None);
        assert!(q10.count > 0);
    }

    #[test]
    fn invalid_churn_requests_fail_without_side_effects() {
        let mut live = LiveReslicer::launch(workload(&[5, 20]), test_options()).unwrap();
        live.ingest_all(input(10)).unwrap();
        assert!(live.add_query(JoinQuery::new("Q5", secs(7))).is_err());
        assert!(live.add_query(JoinQuery::new("Qdup", secs(20))).is_err());
        assert!(live.remove_query("nope").is_err());
        assert_eq!(live.epoch(), 0);
        live.remove_query("Q5").unwrap();
        assert!(live.remove_query("Q20").is_err(), "last query must stay");
        let outcome = live.finish().unwrap();
        assert_eq!(outcome.queries.len(), 2);
    }

    #[test]
    fn rescale_preserves_results_and_uses_rehash() {
        let mut a = LiveReslicer::launch(workload(&[5, 20]), test_options()).unwrap();
        let mut b = LiveReslicer::launch(workload(&[5, 20]), test_options()).unwrap();
        a.ingest_all(input(40)).unwrap();
        b.ingest_all(input(40)).unwrap();
        b.rescale_shards(4).unwrap();
        assert_eq!(b.num_shards(), 4);
        let tail: Vec<Tuple> = input(80).into_iter().skip(80).collect();
        a.ingest_all(tail.clone()).unwrap();
        b.ingest_all(tail).unwrap();
        let oa = a.finish().unwrap();
        let ob = b.finish().unwrap();
        for name in ["Q5", "Q20"] {
            let fa = crate::verify::collected_fingerprints(&oa.query(name).unwrap().collected);
            let fb = crate::verify::collected_fingerprints(&ob.query(name).unwrap().collected);
            assert_eq!(fa, fb, "rescale changed {name}'s results");
            assert!(!fa.is_empty());
        }
        assert_eq!(ob.migrations.len(), 1);
        assert_eq!(ob.migrations[0].reason, "rescale 1->4");
        assert!(ob.migrations[0].tuples_moved > 0);
        // Top-line stats survive the executor replacement.
        assert_eq!(oa.report.ingested, ob.report.ingested);
        assert_eq!(oa.report.sink_counts, ob.report.sink_counts);
    }
}
