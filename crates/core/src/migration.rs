//! Online migration of the state-slicing chain (Section 5.3).
//!
//! The chain needs maintenance when queries enter or leave the system, when
//! window constraints change, or when runtime statistics suggest a different
//! slicing (e.g. migrating from the Mem-Opt towards the CPU-Opt chain).  The
//! paper defines two primitive operations, both implemented here:
//!
//! * **merging** two adjacent sliced joins — requires the queue between them
//!   to be drained, then concatenates their states and widens the window,
//! * **splitting** one sliced join — shrinks its end window and inserts a new
//!   empty sliced join to its right; subsequent purging migrates the affected
//!   state lazily ("the execution of Ji will purge tuples, due to its new
//!   smaller window, into the queue ... and eventually fill up the states of
//!   J'_i correctly").
//!
//! Both primitives are exposed at two levels: on [`ChainSpec`]s (planning
//! level) and on [`SlicedBinaryJoinOp`] operators (runtime level).
//!
//! A third runtime primitive serves **sharded parallel execution**
//! ([`streamkit::shard`]): [`rehash_shard_states`] redistributes the window
//! states of the per-shard instances of one sliced join across a new shard
//! count by draining every instance ([`SlicedBinaryJoinOp::drain_states`]),
//! re-hashing each tuple's canonical join key, and loading the merged
//! timestamp-ordered runs into fresh instances
//! ([`SlicedBinaryJoinOp::load_states`]).  Scale-up (split a shard's state)
//! and scale-down (merge shards) are the same operation with different
//! target counts.

use streamkit::error::{Result, StreamError};
use streamkit::operator::Operator;
use streamkit::shard::ShardSpec;
use streamkit::tuple::Tuple;
use streamkit::{TimeDelta, Timestamp};

use crate::chain::ChainSpec;
use crate::query::QueryWorkload;
use crate::sliced_binary::SlicedBinaryJoinOp;

/// Merge slices `slice_idx` and `slice_idx + 1` of a chain spec.
pub fn merge_spec_slices(
    workload: &QueryWorkload,
    spec: &ChainSpec,
    slice_idx: usize,
) -> Result<ChainSpec> {
    if slice_idx + 1 >= spec.num_slices() {
        return Err(StreamError::InvalidConfig(format!(
            "cannot merge slice {slice_idx}: the chain has only {} slices",
            spec.num_slices()
        )));
    }
    // Drop the boundary between the two slices from the path.
    let mut path = spec.path().to_vec();
    path.remove(slice_idx + 1);
    ChainSpec::from_path(workload, &path)
}

/// Split slice `slice_idx` of a chain spec at the workload boundary with
/// index `boundary_idx` (which must fall strictly inside the slice).
pub fn split_spec_slice(
    workload: &QueryWorkload,
    spec: &ChainSpec,
    slice_idx: usize,
    boundary_idx: usize,
) -> Result<ChainSpec> {
    if slice_idx >= spec.num_slices() {
        return Err(StreamError::InvalidConfig(format!(
            "slice {slice_idx} does not exist"
        )));
    }
    let mut path = spec.path().to_vec();
    let lo = path[slice_idx];
    let hi = path[slice_idx + 1];
    if boundary_idx <= lo || boundary_idx >= hi {
        return Err(StreamError::InvalidConfig(format!(
            "boundary index {boundary_idx} does not fall strictly inside slice {slice_idx} ({lo}..{hi})"
        )));
    }
    path.insert(slice_idx + 1, boundary_idx);
    ChainSpec::from_path(workload, &path)
}

/// Merge two adjacent sliced join operators into one (runtime primitive).
///
/// `left` is the slice closer to the head of the chain (smaller window
/// offsets, younger tuples); `right` is the next slice (older tuples).  The
/// queue between them must have been drained by the scheduler before calling
/// this, which the caller asserts by passing both operators by value.
pub fn merge_slice_operators(
    name: impl Into<String>,
    mut left: SlicedBinaryJoinOp,
    mut right: SlicedBinaryJoinOp,
) -> Result<SlicedBinaryJoinOp> {
    if left.window().end != right.window().start {
        return Err(StreamError::InvalidConfig(format!(
            "slices {} and {} are not adjacent",
            left.window(),
            right.window()
        )));
    }
    if left.condition() != right.condition() || left.streams() != right.streams() {
        return Err(StreamError::InvalidConfig(
            "cannot merge sliced joins with different conditions or streams".to_string(),
        ));
    }
    if left.is_indexed() != right.is_indexed() || left.is_band_indexed() != right.is_band_indexed()
    {
        return Err(StreamError::InvalidConfig(
            "cannot merge sliced joins with different index modes".to_string(),
        ));
    }
    let merged_window = left.window().merge(&right.window());
    let (left_a, left_b) = left.drain_states();
    let (right_a, right_b) = right.drain_states();
    let (stream_a, stream_b) = left.streams();
    let mut merged = SlicedBinaryJoinOp::new(
        name,
        merged_window,
        left.condition().clone(),
        stream_a,
        stream_b,
    );
    if !left.is_indexed() && !left.is_band_indexed() {
        // Preserve forced linear-scan mode (A/B reference runs) across
        // migration.  A fresh op re-derives its natural mode — hash- or
        // band-indexed — from the shared condition, so only the explicit
        // `without_index` override needs carrying over.
        merged = merged.without_index();
    }
    merged.set_chain_head(left.is_chain_head());
    merged.set_has_next(right.has_next());
    merged.set_columnar_results(left.emits_columnar_results());
    // Oldest tuples first: the right (older) slice's state precedes the left's.
    let mut state_a = right_a;
    state_a.extend(left_a);
    let mut state_b = right_b;
    state_b.extend(left_b);
    merged.load_states(state_a, state_b);
    Ok(merged)
}

/// Split one sliced join operator at window offset `at` (runtime primitive).
///
/// Follows the paper's lazy protocol: the left half keeps the entire state
/// and simply shrinks its end window; the right half starts empty and is
/// filled by subsequent cross-purging.  Returns `(left, right)`.
pub fn split_slice_operator(
    op: SlicedBinaryJoinOp,
    at: TimeDelta,
    left_name: impl Into<String>,
    right_name: impl Into<String>,
) -> Result<(SlicedBinaryJoinOp, SlicedBinaryJoinOp)> {
    let window = op.window();
    let Some((left_window, right_window)) = window.split_at(at) else {
        return Err(StreamError::InvalidConfig(format!(
            "split point {at} is not strictly inside {window}"
        )));
    };
    let mut left = op;
    let (stream_a, stream_b) = left.streams();
    let mut right = SlicedBinaryJoinOp::new(
        right_name,
        right_window,
        left.condition().clone(),
        stream_a,
        stream_b,
    );
    if !left.is_indexed() && !left.is_band_indexed() {
        // Preserve forced linear-scan mode (A/B reference runs) across
        // migration; indexed modes re-derive from the shared condition.
        right = right.without_index();
    }
    right.set_has_next(left.has_next());
    right.set_chain_head(false);
    right.set_columnar_results(left.emits_columnar_results());
    left.set_window(left_window);
    left.set_has_next(true);
    let _ = left_name; // the left operator keeps its identity (and state)
    Ok((left, right))
}

/// A chain instance's purge progress: the timestamp of the last *male* tuple
/// seen from each stream.  Purging is **cross**-purging (Fig. 9): a male from
/// stream B purges the A-side state and vice versa, so each side's "age" is
/// measured against the *opposite* stream's last male, not a single global
/// watermark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PurgeWatermarks {
    /// Timestamp of the last male from stream A (drives B-side purges).
    pub male_a: Timestamp,
    /// Timestamp of the last male from stream B (drives A-side purges).
    pub male_b: Timestamp,
}

impl PurgeWatermarks {
    /// Fold one processed tuple (every arrival's male copy is a purge
    /// driver) into the watermarks.
    pub fn observe(&mut self, stream: streamkit::tuple::StreamId, ts: Timestamp) {
        if stream == streamkit::tuple::StreamId::B {
            if ts > self.male_b {
                self.male_b = ts;
            }
        } else if ts > self.male_a {
            self.male_a = ts;
        }
    }

    /// The later of the two watermarks.
    pub fn max(&self) -> Timestamp {
        self.male_a.max(self.male_b)
    }

    /// Both sides pinned to the same timestamp.
    pub fn uniform(ts: Timestamp) -> PurgeWatermarks {
        PurgeWatermarks {
            male_a: ts,
            male_b: ts,
        }
    }
}

/// Split one sliced join operator at window offset `at`, **eagerly** moving
/// the state that already belongs to the right half (runtime primitive).
///
/// The lazy protocol of [`split_slice_operator`] leaves the whole state in
/// the left half and lets subsequent cross-purging fill the right half up.
/// The eager variant re-cuts the state immediately using the chain's purge
/// watermarks: a stored tuple whose age — measured against the opposite
/// stream's last male, the tuple that would next purge it — has reached `at`
/// would already have been purged out of the shrunk left window, so it
/// starts out in the right half.  The resulting pair of states is exactly
/// what a chain *freshly built* with this boundary would hold at the same
/// quiescent point, which is what makes differential
/// (live-migrated ≡ freshly-planned) testing exact.
pub fn split_slice_operator_eager(
    op: SlicedBinaryJoinOp,
    at: TimeDelta,
    watermarks: PurgeWatermarks,
    left_name: impl Into<String>,
    right_name: impl Into<String>,
) -> Result<(SlicedBinaryJoinOp, SlicedBinaryJoinOp)> {
    let (mut left, mut right) = split_slice_operator(op, at, left_name, right_name)?;
    // States drain oldest-first, and "expired out of [start, at)" is monotone
    // in the timestamp, so each side's state splits at one cut point: the
    // old prefix belongs to the right (older) slice, the rest stays left.
    let (state_a, state_b) = left.drain_states();
    let cut = |mut state: Vec<Tuple>, purger: Timestamp| {
        let cut = state.partition_point(|t: &Tuple| purger.saturating_sub(t.ts) >= at);
        let keep = state.split_off(cut);
        (keep, state)
    };
    let (left_a, right_a) = cut(state_a, watermarks.male_b);
    let (left_b, right_b) = cut(state_b, watermarks.male_a);
    left.load_states(left_a, left_b);
    right.load_states(right_a, right_b);
    Ok((left, right))
}

/// Merge per-old-shard timestamp-ordered runs into one ordered vector.
/// The sort is stable over the concatenation, so equal timestamps keep the
/// lower shard index first and the result is deterministic.
fn merge_ordered_runs(runs: Vec<Vec<Tuple>>) -> Vec<Tuple> {
    let mut merged: Vec<Tuple> = runs.into_iter().flatten().collect();
    merged.sort_by_key(|t| t.ts);
    merged
}

/// Redistribute the states of the per-shard instances of **one** sliced join
/// across `new_shards` shards (runtime primitive for shard scale-up/down).
///
/// `shards` holds the current instances — structurally identical operators
/// (same window, condition, streams, chain flags and index mode) whose
/// states partition the slice's window by join key.  All instances are
/// drained, every tuple is routed to `spec.shard_of(tuple, new_shards)`, and
/// each new instance is loaded with its tuples in timestamp order.  The
/// union of the states is preserved exactly; only the partition changes.
///
/// Scale-down to one shard (`new_shards == 1`) is the "merge" direction;
/// scale-up from one shard is the "split by re-hashing keys" direction.
pub fn rehash_shard_states(
    mut shards: Vec<SlicedBinaryJoinOp>,
    new_shards: usize,
    spec: &ShardSpec,
) -> Result<Vec<SlicedBinaryJoinOp>> {
    let Some(template) = shards.first() else {
        return Err(StreamError::InvalidConfig(
            "rehash needs at least one current shard instance".to_string(),
        ));
    };
    if new_shards == 0 {
        return Err(StreamError::InvalidConfig(
            "cannot rescale to zero shards".to_string(),
        ));
    }
    let window = template.window();
    let condition = template.condition().clone();
    let (stream_a, stream_b) = template.streams();
    let chain_head = template.is_chain_head();
    let has_next = template.has_next();
    let indexed = template.is_indexed();
    let band_indexed = template.is_band_indexed();
    let columnar = template.emits_columnar_results();
    let name = template.name().to_string();
    for op in &shards {
        if op.window() != window
            || op.condition() != &condition
            || op.streams() != (stream_a, stream_b)
            || op.is_chain_head() != chain_head
            || op.has_next() != has_next
            || op.is_indexed() != indexed
            || op.is_band_indexed() != band_indexed
        {
            return Err(StreamError::InvalidConfig(
                "cannot rehash shard instances of different sliced joins".to_string(),
            ));
        }
    }
    // Drain every instance, then re-partition each side by the new hash.
    let mut runs_a: Vec<Vec<Tuple>> = Vec::with_capacity(shards.len());
    let mut runs_b: Vec<Vec<Tuple>> = Vec::with_capacity(shards.len());
    for op in &mut shards {
        let (a, b) = op.drain_states();
        runs_a.push(a);
        runs_b.push(b);
    }
    let mut new_a: Vec<Vec<Tuple>> = vec![Vec::new(); new_shards];
    let mut new_b: Vec<Vec<Tuple>> = vec![Vec::new(); new_shards];
    for tuple in merge_ordered_runs(runs_a) {
        new_a[spec.shard_of(&tuple, new_shards)].push(tuple);
    }
    for tuple in merge_ordered_runs(runs_b) {
        new_b[spec.shard_of(&tuple, new_shards)].push(tuple);
    }
    let mut out = Vec::with_capacity(new_shards);
    for (state_a, state_b) in new_a.into_iter().zip(new_b) {
        let mut op =
            SlicedBinaryJoinOp::new(name.clone(), window, condition.clone(), stream_a, stream_b);
        if !indexed && !band_indexed {
            op = op.without_index();
        }
        op.set_chain_head(chain_head);
        op.set_has_next(has_next);
        op.set_columnar_results(columnar);
        op.load_states(state_a, state_b);
        out.push(op);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinQuery;
    use crate::sliced_binary::{PORT_NEXT_SLICE, PORT_RESULTS};
    use streamkit::operator::{OpContext, Operator};
    use streamkit::tuple::{StreamId, Tuple, TupleRole};
    use streamkit::window::SliceWindow;
    use streamkit::{JoinCondition, Timestamp};

    fn workload() -> QueryWorkload {
        QueryWorkload::new(
            vec![
                JoinQuery::new("Q1", TimeDelta::from_secs(5)),
                JoinQuery::new("Q2", TimeDelta::from_secs(10)),
                JoinQuery::new("Q3", TimeDelta::from_secs(30)),
            ],
            JoinCondition::equi(0),
        )
        .unwrap()
    }

    fn a(secs: u64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[0])
    }

    fn b(secs: u64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::B, &[0])
    }

    #[test]
    fn spec_merge_and_split_round_trip() {
        let w = workload();
        let memopt = ChainSpec::memory_optimal(&w);
        let merged = merge_spec_slices(&w, &memopt, 1).unwrap();
        assert_eq!(merged.num_slices(), 2);
        assert_eq!(merged.path(), &[0, 1, 3]);
        let back = split_spec_slice(&w, &merged, 1, 2).unwrap();
        assert_eq!(back, memopt);
    }

    #[test]
    fn spec_merge_rejects_out_of_range() {
        let w = workload();
        let memopt = ChainSpec::memory_optimal(&w);
        assert!(merge_spec_slices(&w, &memopt, 2).is_err());
        assert!(split_spec_slice(&w, &memopt, 0, 2).is_err());
        assert!(split_spec_slice(&w, &memopt, 9, 1).is_err());
    }

    #[test]
    fn operator_merge_concatenates_states_oldest_first() {
        let cond = JoinCondition::Cross;
        let mut left = SlicedBinaryJoinOp::for_ab("J1", SliceWindow::from_secs(0, 5), cond.clone());
        let mut right =
            SlicedBinaryJoinOp::for_ab("J2", SliceWindow::from_secs(5, 10), cond.clone());
        // Young female in the left slice, old female in the right slice.
        left.load_states(vec![a(8)], vec![]);
        right.load_states(vec![a(2)], vec![b(3)]);
        let merged = merge_slice_operators("J12", left, right).unwrap();
        assert_eq!(merged.window(), SliceWindow::from_secs(0, 10));
        assert_eq!(merged.state_a_len(), 2);
        assert_eq!(merged.state_b_len(), 1);
        assert_eq!(merged.state_len(), 3);
    }

    #[test]
    fn merge_and_split_preserve_the_index_mode() {
        let cond = JoinCondition::equi(0);
        // Indexed chain stays indexed through a merge…
        let left = SlicedBinaryJoinOp::for_ab("J1", SliceWindow::from_secs(0, 5), cond.clone());
        let right = SlicedBinaryJoinOp::for_ab("J2", SliceWindow::from_secs(5, 10), cond.clone());
        assert!(merge_slice_operators("J12", left, right)
            .unwrap()
            .is_indexed());
        // …and a linear-scan A/B reference chain stays linear through both
        // merge and split.
        let left = SlicedBinaryJoinOp::for_ab("J1", SliceWindow::from_secs(0, 5), cond.clone())
            .without_index();
        let right = SlicedBinaryJoinOp::for_ab("J2", SliceWindow::from_secs(5, 10), cond.clone())
            .without_index();
        let merged = merge_slice_operators("J12", left, right).unwrap();
        assert!(!merged.is_indexed());
        let (split_left, split_right) =
            split_slice_operator(merged, TimeDelta::from_secs(5), "l", "r").unwrap();
        assert!(!split_left.is_indexed());
        assert!(!split_right.is_indexed());
        // Mixed-mode merges are rejected rather than silently coerced.
        let indexed = SlicedBinaryJoinOp::for_ab("J1", SliceWindow::from_secs(0, 5), cond.clone());
        let linear =
            SlicedBinaryJoinOp::for_ab("J2", SliceWindow::from_secs(5, 10), cond).without_index();
        assert!(merge_slice_operators("bad", indexed, linear).is_err());
    }

    #[test]
    fn merge_split_and_rehash_preserve_the_band_index_mode() {
        use streamkit::predicate::CmpOp;
        // A band condition (no equi): states are band-indexed, and every
        // migration primitive must keep them that way instead of coercing
        // to linear (is_indexed() is false for band mode, so a hash-only
        // check would force-linearize).
        let cond = JoinCondition::And(
            Box::new(JoinCondition::Theta {
                left_field: 0,
                op: CmpOp::Ge,
                right_field: 1,
            }),
            Box::new(JoinCondition::Theta {
                left_field: 0,
                op: CmpOp::Le,
                right_field: 2,
            }),
        );
        let left = SlicedBinaryJoinOp::for_ab("J1", SliceWindow::from_secs(0, 5), cond.clone());
        let right = SlicedBinaryJoinOp::for_ab("J2", SliceWindow::from_secs(5, 10), cond.clone());
        assert!(left.is_band_indexed() && !left.is_indexed());
        let merged = merge_slice_operators("J12", left, right).unwrap();
        assert!(merged.is_band_indexed(), "merge dropped the band index");
        let (split_left, split_right) =
            split_slice_operator(merged, TimeDelta::from_secs(5), "l", "r").unwrap();
        assert!(split_left.is_band_indexed());
        assert!(
            split_right.is_band_indexed(),
            "split dropped the band index"
        );
        // Rehash across one shard (band joins run single-shard, but the
        // primitive must still round-trip the mode).
        let spec = ShardSpec::symmetric(0);
        let rehashed = rehash_shard_states(vec![split_left], 1, &spec).unwrap();
        assert!(
            rehashed[0].is_band_indexed(),
            "rehash dropped the band index"
        );
        // Forced-linear band chains stay linear.
        let linear_left =
            SlicedBinaryJoinOp::for_ab("J1", SliceWindow::from_secs(0, 5), cond.clone())
                .without_index();
        let linear_right =
            SlicedBinaryJoinOp::for_ab("J2", SliceWindow::from_secs(5, 10), cond.clone())
                .without_index();
        let merged = merge_slice_operators("J12", linear_left, linear_right).unwrap();
        assert!(!merged.is_band_indexed() && !merged.is_indexed());
        // Mixed band/linear merges are rejected.
        let banded = SlicedBinaryJoinOp::for_ab("J1", SliceWindow::from_secs(0, 5), cond.clone());
        let linear =
            SlicedBinaryJoinOp::for_ab("J2", SliceWindow::from_secs(5, 10), cond).without_index();
        assert!(merge_slice_operators("bad", banded, linear).is_err());
    }

    #[test]
    fn operator_merge_rejects_non_adjacent_slices() {
        let cond = JoinCondition::Cross;
        let left = SlicedBinaryJoinOp::for_ab("J1", SliceWindow::from_secs(0, 5), cond.clone());
        let right = SlicedBinaryJoinOp::for_ab("J3", SliceWindow::from_secs(10, 20), cond);
        assert!(merge_slice_operators("bad", left, right).is_err());
    }

    #[test]
    fn operator_merge_preserves_results() {
        // Results after merging equal the results the two slices would have
        // produced together: probe a merged join and compare counts.
        let cond = JoinCondition::Cross;
        let mut left = SlicedBinaryJoinOp::for_ab("J1", SliceWindow::from_secs(0, 5), cond.clone())
            .chain_head();
        let mut right =
            SlicedBinaryJoinOp::for_ab("J2", SliceWindow::from_secs(5, 10), cond).last_in_chain();
        // Prime the two-slice chain with A females at ts 1 and 7.
        let mut ctx = OpContext::new();
        left.process(0, a(1).into(), &mut ctx);
        left.process(0, a(7).into(), &mut ctx);
        // Push a male B at ts 8: purges a@1 (age 7 >= 5) to the right slice.
        left.process(0, b(8).into(), &mut ctx);
        for (port, item) in ctx.take_outputs() {
            if port == PORT_NEXT_SLICE {
                right.process(0, item, &mut ctx);
            }
        }
        let _ = ctx.take_outputs();
        let produced_before = left.results() + right.results();
        assert!(produced_before > 0);
        // Queue between them is drained; merge.
        let mut merged = merge_slice_operators("J12", left, right).unwrap();
        merged.set_has_next(false);
        // A later male B joins against both stored females through the merged state.
        let mut ctx = OpContext::new();
        merged.process(0, b(9).with_role(TupleRole::Male).into(), &mut ctx);
        let results: Vec<_> = ctx
            .take_outputs()
            .into_iter()
            .filter(|(p, item)| *p == PORT_RESULTS && !item.is_punctuation())
            .collect();
        // a@1 (age 8) and a@7 (age 2) are both inside [0, 10).
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn operator_split_is_lazy_and_correct() {
        let cond = JoinCondition::Cross;
        let mut op = SlicedBinaryJoinOp::for_ab("J", SliceWindow::from_secs(0, 10), cond)
            .chain_head()
            .last_in_chain();
        let mut ctx = OpContext::new();
        op.process(0, a(1).into(), &mut ctx);
        op.process(0, a(6).into(), &mut ctx);
        let _ = ctx.take_outputs();
        // Split at offset 5: left keeps all state (lazy), right starts empty.
        let (mut left, mut right) =
            split_slice_operator(op, TimeDelta::from_secs(5), "J_left", "J_right").unwrap();
        assert_eq!(left.window(), SliceWindow::from_secs(0, 5));
        assert_eq!(right.window(), SliceWindow::from_secs(5, 10));
        assert_eq!(left.state_len(), 2);
        assert_eq!(right.state_len(), 0);
        assert!(left.has_next());
        assert!(!right.has_next());
        // A male B at ts 8 purges a@1 (age 7 >= 5) into the queue towards the
        // right slice, probes a@6 in the left slice, and then probes the right
        // slice after the purged tuple arrived — exactly one result per slice.
        let mut ctx = OpContext::new();
        left.process(0, b(8).into(), &mut ctx);
        let mut left_results = 0;
        let mut forwarded = Vec::new();
        for (port, item) in ctx.take_outputs() {
            match port {
                PORT_RESULTS if !item.is_punctuation() => left_results += 1,
                PORT_NEXT_SLICE => forwarded.push(item),
                _ => {}
            }
        }
        assert_eq!(left_results, 1);
        let mut right_results = 0;
        let mut ctx = OpContext::new();
        for item in forwarded {
            right.process(0, item, &mut ctx);
        }
        for (port, item) in ctx.take_outputs() {
            if port == PORT_RESULTS && !item.is_punctuation() {
                right_results += 1;
            }
        }
        assert_eq!(right_results, 1);
        // Together: both pairs, as the unsplit join would have produced.
    }

    #[test]
    fn eager_split_recuts_state_by_age_against_the_watermark() {
        let cond = JoinCondition::Cross;
        let mut op = SlicedBinaryJoinOp::for_ab("J", SliceWindow::from_secs(0, 10), cond)
            .chain_head()
            .last_in_chain();
        // A-side ages are measured against the last B male (20s): a@16 → 4
        // (left of 5), a@15 → 5 (exactly the boundary: expired, right),
        // a@12 → 8 (right).  B-side ages use the last A male (23s):
        // b@13 → 10 (right), b@18 → 5 (right, exactly at the boundary).
        op.load_states(vec![a(12), a(15), a(16)], vec![b(13), b(18)]);
        let (left, right) = split_slice_operator_eager(
            op,
            TimeDelta::from_secs(5),
            PurgeWatermarks {
                male_a: Timestamp::from_secs(23),
                male_b: Timestamp::from_secs(20),
            },
            "l",
            "r",
        )
        .unwrap();
        assert_eq!(left.window(), SliceWindow::from_secs(0, 5));
        assert_eq!(right.window(), SliceWindow::from_secs(5, 10));
        let (la, lb) = left.state_timestamps();
        let (ra, rb) = right.state_timestamps();
        let secs = |v: Vec<Timestamp>| -> Vec<u64> {
            v.into_iter().map(|t| t.as_micros() / 1_000_000).collect()
        };
        assert_eq!(secs(la), vec![16]);
        assert_eq!(secs(ra), vec![12, 15]);
        assert_eq!(secs(lb), Vec::<u64>::new());
        assert_eq!(secs(rb), vec![13, 18]);
        assert!(left.has_next());
        assert!(!right.has_next());
    }

    #[test]
    fn operator_split_rejects_out_of_range_points() {
        let op =
            SlicedBinaryJoinOp::for_ab("J", SliceWindow::from_secs(0, 10), JoinCondition::Cross);
        assert!(split_slice_operator(op, TimeDelta::from_secs(10), "l", "r").is_err());
    }

    fn keyed(secs: u64, stream: StreamId, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), stream, &[key])
    }

    #[test]
    fn rehash_round_trips_state_through_scale_up_and_down() {
        let cond = JoinCondition::equi(0);
        let spec = ShardSpec::from_condition(&cond, StreamId::A, StreamId::B).unwrap();
        let mut op = SlicedBinaryJoinOp::for_ab("J", SliceWindow::from_secs(0, 50), cond.clone())
            .chain_head();
        let state_a: Vec<Tuple> = (1..=20)
            .map(|s| keyed(s, StreamId::A, (s % 6) as i64))
            .collect();
        let state_b: Vec<Tuple> = (1..=15)
            .map(|s| keyed(s, StreamId::B, (s % 6) as i64))
            .collect();
        op.load_states(state_a.clone(), state_b.clone());
        // Scale up 1 -> 4: states split by re-hashed key, time order kept.
        let shards = rehash_shard_states(vec![op], 4, &spec).unwrap();
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(|s| s.state_len()).sum();
        assert_eq!(total, state_a.len() + state_b.len());
        for shard in &shards {
            assert!(shard.is_chain_head());
            assert!(shard.has_next());
            assert!(shard.is_indexed());
            let (ts_a, ts_b) = shard.state_timestamps();
            assert!(ts_a.windows(2).all(|w| w[0] <= w[1]), "A side time-ordered");
            assert!(ts_b.windows(2).all(|w| w[0] <= w[1]), "B side time-ordered");
        }
        // Every tuple sits exactly on the shard its key hashes to.
        for (i, shard) in shards.iter().enumerate() {
            let (tuples_a, tuples_b) = shard.state_tuples();
            for tuple in tuples_a.iter().chain(&tuples_b) {
                assert_eq!(spec.shard_of(tuple, 4), i, "tuple on wrong shard");
            }
        }
        // Scale down 4 -> 1 restores the exact original states.
        let merged = rehash_shard_states(shards, 1, &spec).unwrap();
        assert_eq!(merged.len(), 1);
        let (ts_a, ts_b) = merged[0].state_timestamps();
        assert_eq!(ts_a, state_a.iter().map(|t| t.ts).collect::<Vec<_>>());
        assert_eq!(ts_b, state_b.iter().map(|t| t.ts).collect::<Vec<_>>());
    }

    #[test]
    fn rehash_rejects_mismatched_or_empty_instances() {
        let cond = JoinCondition::equi(0);
        let spec = ShardSpec::from_condition(&cond, StreamId::A, StreamId::B).unwrap();
        assert!(rehash_shard_states(Vec::new(), 2, &spec).is_err());
        let one = SlicedBinaryJoinOp::for_ab("J", SliceWindow::from_secs(0, 5), cond.clone());
        assert!(rehash_shard_states(vec![one], 0, &spec).is_err());
        // Instances of different slices cannot be rehashed together.
        let left = SlicedBinaryJoinOp::for_ab("J", SliceWindow::from_secs(0, 5), cond.clone());
        let other = SlicedBinaryJoinOp::for_ab("J", SliceWindow::from_secs(5, 10), cond);
        assert!(rehash_shard_states(vec![left, other], 2, &spec).is_err());
    }

    #[test]
    fn migrating_memopt_to_cpuopt_path_is_a_sequence_of_merges() {
        // A CPU-Opt chain is always reachable from the Mem-Opt chain by
        // merging (never splitting), because its boundary set is a subset.
        let w = workload();
        let memopt = ChainSpec::memory_optimal(&w);
        let target = ChainSpec::from_path(&w, &[0, 1, 3]).unwrap();
        let mut current = memopt;
        let mut merges = 0;
        while current != target && merges < 10 {
            // Find a boundary present in `current` but not in `target`.
            let extra = current
                .path()
                .iter()
                .find(|b| !target.path().contains(b))
                .copied();
            match extra {
                Some(boundary) => {
                    let idx = current
                        .path()
                        .iter()
                        .position(|&b| b == boundary)
                        .expect("boundary in path");
                    current = merge_spec_slices(&w, &current, idx - 1).unwrap();
                    merges += 1;
                }
                None => break,
            }
        }
        assert_eq!(current, target);
        assert_eq!(merges, 1);
    }
}
