//! Turn a [`ChainSpec`] into an executable shared query plan.
//!
//! The generated plan follows Figures 10, 12, 13 and 15 of the paper:
//!
//! ```text
//!  A+B ─► [lineage annotator] ─► slice_0 ─► [gate_1] ─► slice_1 ─► ... ─► slice_k
//!                                   │                      │                 │
//!                                   ▼ results              ▼ results         ▼
//!                              (router if merged)     (router if merged)    ...
//!                                   │                      │
//!                   ┌───────────────┴───────┬──────────────┘
//!                   ▼                       ▼
//!               union_Q1 ─► σ_Q1? ─► Q1  union_Q2 ─► σ_Q2? ─► Q2   ...
//! ```
//!
//! * The single entry point [`CHAIN_ENTRY`] carries both streams merged in
//!   timestamp order (the paper's logical queue); use [`merge_streams`] to
//!   interleave two per-stream tuple vectors.
//! * The lineage annotator and the per-slice lineage gates implement the
//!   selection push-down of Section 6 and appear only when some query has a
//!   selection.
//! * A router appears after a slice only when that slice is a merge of
//!   several Mem-Opt slices (CPU-Opt chains, Figure 13(b)).
//! * Each query gets an order-preserving union over the slices it needs, an
//!   optional residual selection, and a sink named after the query.

use streamkit::error::Result;
use streamkit::ops::{RouteTarget, RouterOp, SelectOp, SinkOp, UnionOp};
use streamkit::plan::{NodeId, Plan};
use streamkit::tuple::{StreamId, Tuple};
use streamkit::PortId;

use crate::chain::ChainSpec;
use crate::lineage::{LineageAnnotatorOp, LineageGateOp};
use crate::query::QueryWorkload;
use crate::sliced_binary::{SlicedBinaryJoinOp, PORT_NEXT_SLICE, PORT_RESULTS};

/// Name of the single external entry point of a chain plan (the merged
/// timestamp-ordered A+B stream).
pub const CHAIN_ENTRY: &str = "AB";

/// Options controlling plan generation.
#[derive(Debug, Clone, Copy)]
pub struct PlannerOptions {
    /// Build retaining sinks so tests can inspect full result sets.
    pub retain_results: bool,
    /// Hash-index the sliced joins' state on the equi-join key (default).
    /// Disable to get the pre-index linear-scan probes, for A/B
    /// benchmarking and equivalence testing.
    pub index_join_state: bool,
    /// Number of hash-partitioned parallel shards the chain should run on
    /// (default 1 = the classic single-threaded executor).  Consumed by
    /// [`ChainPlanFactory::sharded`](crate::builder::ChainPlanFactory) —
    /// plan *generation* is identical for every shard; only execution
    /// parallelism changes.
    pub shards: usize,
    /// Emit joined results as columnar run batches
    /// ([`streamkit::ColumnBatch`]) from every sliced join, carried through
    /// the per-query unions to the sinks without materializing row tuples.
    /// Off by default (row-tuple results); result rows, order and all
    /// output-scaling counters are identical either way.
    pub columnar_results: bool,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            retain_results: false,
            index_join_state: true,
            shards: 1,
            columnar_results: false,
        }
    }
}

impl PlannerOptions {
    /// A copy with the given shard count (builder-style convenience).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// A copy with columnar result transport enabled (builder-style).
    pub fn with_columnar_results(mut self) -> Self {
        self.columnar_results = true;
        self
    }
}

/// An executable shared chain plan.
#[derive(Debug)]
pub struct SharedChainPlan {
    /// The operator DAG, ready to be wrapped in an
    /// [`Executor`](streamkit::Executor).
    pub plan: Plan,
    /// The per-query sink names, in ascending window order.
    pub sink_names: Vec<String>,
    /// Number of sliced joins in the chain.
    pub num_slices: usize,
}

impl SharedChainPlan {
    /// Build the executable plan for `workload` under the slicing `spec`.
    pub fn build(
        workload: &QueryWorkload,
        spec: &ChainSpec,
        options: &PlannerOptions,
    ) -> Result<SharedChainPlan> {
        spec.validate(workload)?;
        let has_selections = workload.has_selections();
        let mut b = Plan::builder();

        // 1. Optional lineage annotator in front of the chain.
        let annotator = if has_selections {
            let node = b.add_op(LineageAnnotatorOp::new(
                "lineage",
                workload.filters(),
                StreamId::A,
            ));
            b.entry(CHAIN_ENTRY, node, 0);
            Some(node)
        } else {
            None
        };

        // 2. The chain of sliced binary joins with optional lineage gates.
        let last = spec.num_slices() - 1;
        let mut slice_nodes: Vec<NodeId> = Vec::with_capacity(spec.num_slices());
        for (k, slice) in spec.slices().iter().enumerate() {
            let mut op = SlicedBinaryJoinOp::for_ab(
                format!("slice_{k}"),
                slice.window,
                workload.join_condition().clone(),
            );
            if k == 0 {
                op = op.chain_head();
            }
            if k == last {
                op = op.last_in_chain();
            }
            if !options.index_join_state {
                op = op.without_index();
            }
            if options.columnar_results {
                op = op.columnar_results();
            }
            let node = b.add_op(op);
            if k == 0 {
                match annotator {
                    Some(a) => b.connect(a, 0, node, 0),
                    None => b.entry(CHAIN_ENTRY, node, 0),
                }
            } else {
                let prev = slice_nodes[k - 1];
                if has_selections {
                    // σ'_k = cond_k ∨ ... ∨ cond_N, realised as a lineage gate.
                    let gate = b.add_op(LineageGateOp::new(
                        format!("gate_{k}"),
                        (slice.query_lo + 1) as u32,
                        StreamId::A,
                    ));
                    b.connect(prev, PORT_NEXT_SLICE, gate, 0);
                    b.connect(gate, 0, node, 0);
                } else {
                    b.connect(prev, PORT_NEXT_SLICE, node, 0);
                }
            }
            slice_nodes.push(node);
        }

        // 3. Routers for merged slices (CPU-Opt chains).
        //    routed[(slice, query)] = (router node, router output port).
        type RoutedSlice = Option<(NodeId, Vec<(usize, PortId)>)>;
        let mut routed: Vec<RoutedSlice> = vec![None; spec.num_slices()];
        for (k, slice) in spec.slices().iter().enumerate() {
            let partial_queries: Vec<usize> = (slice.query_lo..=slice.query_hi)
                .filter(|&q| workload.query(q).window < slice.window.end)
                .collect();
            if partial_queries.is_empty() {
                continue;
            }
            let targets: Vec<RouteTarget> = partial_queries
                .iter()
                .map(|&q| RouteTarget::window_only(workload.query(q).window))
                .collect();
            let router = b.add_op(RouterOp::new(format!("router_{k}"), targets));
            b.connect(slice_nodes[k], PORT_RESULTS, router, 0);
            let ports = partial_queries
                .iter()
                .enumerate()
                .map(|(port, &q)| (q, port))
                .collect();
            routed[k] = Some((router, ports));
        }

        // 4. Per-query unions, residual selections and sinks.
        //
        //    A result produced by slice `k` already involves an A tuple that
        //    passed slice `k`'s lineage gate, i.e. it satisfies the
        //    disjunction cond'_{lo(k)+1..N}.  A query's residual selection is
        //    therefore only needed on branches from slices whose gate does
        //    not already imply the query's own predicate — in the paper's
        //    running example, σ'_A filters only the first slice's results for
        //    Q2 (Figure 10).
        let mut sink_names = Vec::with_capacity(workload.len());
        for (q_idx, query) in workload.queries().iter().enumerate() {
            let last_slice = spec.last_slice_for_query(q_idx);
            let feeding = last_slice + 1;
            let union = b.add_op(UnionOp::new(format!("union_{}", query.name), feeding));
            for (port, k) in (0..=last_slice).enumerate() {
                let slice = &spec.slices()[k];
                // Source of this branch: the slice's results, or its router
                // port when the query only needs part of the slice's range.
                let (src, src_port) = if query.window >= slice.window.end {
                    (slice_nodes[k], PORT_RESULTS)
                } else {
                    let (router, ports) = routed[k]
                        .as_ref()
                        .expect("a slice with partial queries has a router");
                    let (_, router_port) = ports
                        .iter()
                        .find(|(q, _)| *q == q_idx)
                        .expect("partial query registered with the router");
                    (*router, *router_port)
                };
                let gate_implies_filter = workload
                    .queries()
                    .iter()
                    .skip(slice.query_lo)
                    .all(|other| other.filter_a == query.filter_a);
                if query.has_filter() && !gate_implies_filter {
                    let select = b.add_op(SelectOp::new(
                        format!("sigma_{}_{k}", query.name),
                        query.filter_a.clone(),
                    ));
                    b.connect(src, src_port, select, 0);
                    b.connect(select, 0, union, port);
                } else {
                    b.connect(src, src_port, union, port);
                }
            }
            let sink = if options.retain_results {
                b.add_op(SinkOp::retaining(query.name.clone()))
            } else {
                b.add_op(SinkOp::new(query.name.clone()))
            };
            b.connect(union, 0, sink, 0);
            sink_names.push(query.name.clone());
        }

        Ok(SharedChainPlan {
            plan: b.build()?,
            sink_names,
            num_slices: spec.num_slices(),
        })
    }
}

/// Merge two per-stream tuple vectors (each already in timestamp order) into
/// the single timestamp-ordered input stream a chain plan expects.  Stable:
/// for equal timestamps the A tuple comes first.
pub fn merge_streams(a: Vec<Tuple>, b: Vec<Tuple>) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ia = a.into_iter().peekable();
    let mut ib = b.into_iter().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => {
                if x.ts <= y.ts {
                    out.push(ia.next().expect("peeked"));
                } else {
                    out.push(ib.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(ia.next().expect("peeked")),
            (None, Some(_)) => out.push(ib.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinQuery;
    use streamkit::{Executor, JoinCondition, Predicate, TimeDelta, Timestamp};

    fn a(secs: u64, key: i64, value: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[key, value])
    }

    fn b(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::B, &[key, 0])
    }

    fn workload_plain() -> QueryWorkload {
        QueryWorkload::new(
            vec![
                JoinQuery::new("Q1", TimeDelta::from_secs(2)),
                JoinQuery::new("Q2", TimeDelta::from_secs(4)),
            ],
            JoinCondition::equi(0),
        )
        .unwrap()
    }

    #[test]
    fn merge_streams_interleaves_by_timestamp() {
        let merged = merge_streams(
            vec![a(1, 0, 0), a(3, 0, 0), a(5, 0, 0)],
            vec![b(2, 0), b(3, 0), b(6, 0)],
        );
        let ts: Vec<u64> = merged
            .iter()
            .map(|t| t.ts.as_micros() / 1_000_000)
            .collect();
        assert_eq!(ts, vec![1, 2, 3, 3, 5, 6]);
        // Stable: at ts 3 the A tuple comes first.
        assert_eq!(merged[2].stream, StreamId::A);
        assert_eq!(merged[3].stream, StreamId::B);
    }

    #[test]
    fn mem_opt_plan_structure() {
        let w = workload_plain();
        let spec = ChainSpec::memory_optimal(&w);
        let shared = SharedChainPlan::build(&w, &spec, &PlannerOptions::default()).unwrap();
        assert_eq!(shared.num_slices, 2);
        assert_eq!(shared.sink_names, vec!["Q1", "Q2"]);
        // 2 slices + 2 unions + 2 sinks, no selections, no routers.
        assert_eq!(shared.plan.num_nodes(), 6);
        assert_eq!(shared.plan.entry_names(), vec![CHAIN_ENTRY]);
    }

    #[test]
    fn chain_plan_produces_correct_per_query_results() {
        let w = workload_plain();
        let spec = ChainSpec::memory_optimal(&w);
        let shared = SharedChainPlan::build(
            &w,
            &spec,
            &PlannerOptions {
                retain_results: true,
                ..PlannerOptions::default()
            },
        )
        .unwrap();
        let mut exec = Executor::new(shared.plan);
        // Cartesian-like input: single key so everything joins.
        let input = merge_streams(
            vec![a(1, 7, 0), a(2, 7, 0), a(3, 7, 0)],
            vec![b(4, 7), b(5, 7)],
        );
        exec.ingest_all(CHAIN_ENTRY, input).unwrap();
        let report = exec.run().unwrap();
        // Q2 (window 4): pairs with |Ta-Tb| < 4 -> (a1,b1)? 3<4 yes, (a2,b1) 2,
        // (a3,b1) 1, (a1,b2) 4 no, (a2,b2) 3, (a3,b2) 2 => 5 results.
        assert_eq!(report.sink_count("Q2"), 5);
        // Q1 (window 2): spans < 2 -> (a3,b1)=1 => 1 result.
        assert_eq!(report.sink_count("Q1"), 1);
    }

    #[test]
    fn merged_chain_with_router_matches_mem_opt_results() {
        let w = QueryWorkload::new(
            vec![
                JoinQuery::new("Q1", TimeDelta::from_secs(2)),
                JoinQuery::new("Q2", TimeDelta::from_secs(4)),
                JoinQuery::new("Q3", TimeDelta::from_secs(8)),
            ],
            JoinCondition::equi(0),
        )
        .unwrap();
        let inputs = || {
            merge_streams(
                (1..=12).map(|s| a(s, (s % 3) as i64, 0)).collect(),
                (1..=12).map(|s| b(s, (s % 3) as i64)).collect(),
            )
        };
        let mut counts = Vec::new();
        for spec in [
            ChainSpec::memory_optimal(&w),
            ChainSpec::fully_merged(&w),
            ChainSpec::from_path(&w, &[0, 2, 3]).unwrap(),
        ] {
            let shared = SharedChainPlan::build(&w, &spec, &PlannerOptions::default()).unwrap();
            let mut exec = Executor::new(shared.plan);
            exec.ingest_all(CHAIN_ENTRY, inputs()).unwrap();
            let report = exec.run().unwrap();
            counts.push((
                report.sink_count("Q1"),
                report.sink_count("Q2"),
                report.sink_count("Q3"),
            ));
        }
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[0], counts[2]);
        assert!(counts[0].0 > 0);
        assert!(counts[0].2 >= counts[0].1);
    }

    #[test]
    fn selections_are_pushed_down_and_results_filtered() {
        // Q1 has no filter, Q2 keeps only A.value > 10.
        let w = QueryWorkload::new(
            vec![
                JoinQuery::new("Q1", TimeDelta::from_secs(2)),
                JoinQuery::with_filter("Q2", TimeDelta::from_secs(4), Predicate::gt(1, 10i64)),
            ],
            JoinCondition::equi(0),
        )
        .unwrap();
        let spec = ChainSpec::memory_optimal(&w);
        let shared = SharedChainPlan::build(&w, &spec, &PlannerOptions::default()).unwrap();
        // The plan contains the lineage annotator and one gate.
        assert!(shared
            .plan
            .nodes()
            .iter()
            .any(|n| n.operator.name() == "lineage"));
        assert!(shared
            .plan
            .nodes()
            .iter()
            .any(|n| n.operator.name() == "gate_1"));
        let mut exec = Executor::new(shared.plan);
        let input = merge_streams(
            vec![a(1, 7, 5), a(2, 7, 50), a(3, 7, 5)],
            vec![b(4, 7), b(5, 7)],
        );
        exec.ingest_all(CHAIN_ENTRY, input).unwrap();
        let report = exec.run().unwrap();
        // Q1 (window 2, no filter): only (a3,b1) has span < 2 => 1 result.
        assert_eq!(report.sink_count("Q1"), 1);
        // Q2 (window 4, filter value > 10): pairs with span < 4 and A.value=50:
        // (a2,b1) span 2, (a2,b2) span 3 => 2 results.
        assert_eq!(report.sink_count("Q2"), 2);
    }

    #[test]
    fn no_result_is_delivered_out_of_order() {
        let w = workload_plain();
        let spec = ChainSpec::memory_optimal(&w);
        let shared = SharedChainPlan::build(
            &w,
            &spec,
            &PlannerOptions {
                retain_results: true,
                ..PlannerOptions::default()
            },
        )
        .unwrap();
        let mut exec = Executor::new(shared.plan);
        let input = merge_streams(
            (1..=30).map(|s| a(s, (s % 2) as i64, 0)).collect(),
            (1..=30).map(|s| b(s, (s % 2) as i64)).collect(),
        );
        exec.ingest_all(CHAIN_ENTRY, input).unwrap();
        let _report = exec.run().unwrap();
        for name in ["Q1", "Q2"] {
            let sink = exec.plan().sink(name).expect("sink exists");
            assert_eq!(sink.out_of_order(), 0, "query {name} results out of order");
        }
    }
}
