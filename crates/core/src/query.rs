//! Registered continuous queries and query workloads.
//!
//! Each query is a sliding-window equi-join `σ(A[w]) ⋈ B[w]` with its own
//! window size and an optional selection on stream A, as in the paper's
//! running example (Section 1) and experimental workloads (Section 7).

use streamkit::error::{Result, StreamError};
use streamkit::{JoinCondition, Predicate, TimeDelta};

/// One registered continuous window-join query.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinQuery {
    /// Query name; also used as the sink / result-receiver name.
    pub name: String,
    /// Sliding-window size (same on both streams, as in the paper).
    pub window: TimeDelta,
    /// Selection on stream A (`Predicate::True` when the query has none).
    pub filter_a: Predicate,
}

impl JoinQuery {
    /// A query without a selection.
    pub fn new(name: impl Into<String>, window: TimeDelta) -> Self {
        JoinQuery {
            name: name.into(),
            window,
            filter_a: Predicate::True,
        }
    }

    /// A query with a selection on stream A.
    pub fn with_filter(name: impl Into<String>, window: TimeDelta, filter_a: Predicate) -> Self {
        JoinQuery {
            name: name.into(),
            window,
            filter_a,
        }
    }

    /// `true` if this query carries a non-trivial selection.
    pub fn has_filter(&self) -> bool {
        !self.filter_a.is_true()
    }
}

/// A set of continuous queries sharing the same join over streams A and B.
///
/// Queries are kept sorted by ascending window size, the order the chain is
/// built in (Section 5).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryWorkload {
    queries: Vec<JoinQuery>,
    join_condition: JoinCondition,
}

impl QueryWorkload {
    /// Build a workload.  Windows must be positive and pairwise distinct
    /// (queries with identical windows should be grouped before registration,
    /// as in the similar-query grouping of NiagaraCQ that the paper cites).
    pub fn new(mut queries: Vec<JoinQuery>, join_condition: JoinCondition) -> Result<Self> {
        if queries.is_empty() {
            return Err(StreamError::InvalidConfig(
                "a query workload needs at least one query".to_string(),
            ));
        }
        queries.sort_by_key(|q| q.window);
        for pair in queries.windows(2) {
            if pair[0].window == pair[1].window {
                return Err(StreamError::InvalidConfig(format!(
                    "queries '{}' and '{}' have identical windows; group them into one query",
                    pair[0].name, pair[1].name
                )));
            }
        }
        if queries[0].window.is_zero() {
            return Err(StreamError::InvalidConfig(
                "query windows must be positive".to_string(),
            ));
        }
        Ok(QueryWorkload {
            queries,
            join_condition,
        })
    }

    /// The queries, sorted by ascending window.
    pub fn queries(&self) -> &[JoinQuery] {
        &self.queries
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` if the workload has no queries (never true for a constructed
    /// workload; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The shared join condition.
    pub fn join_condition(&self) -> &JoinCondition {
        &self.join_condition
    }

    /// Query by 0-based index (ascending window order).
    pub fn query(&self, idx: usize) -> &JoinQuery {
        &self.queries[idx]
    }

    /// The window sizes in ascending order.
    pub fn windows(&self) -> Vec<TimeDelta> {
        self.queries.iter().map(|q| q.window).collect()
    }

    /// Window boundaries `w_0 = 0, w_1, ..., w_N`.
    pub fn boundaries(&self) -> Vec<TimeDelta> {
        let mut b = Vec::with_capacity(self.queries.len() + 1);
        b.push(TimeDelta::ZERO);
        b.extend(self.queries.iter().map(|q| q.window));
        b
    }

    /// The largest window in the workload.
    pub fn max_window(&self) -> TimeDelta {
        self.queries
            .last()
            .map(|q| q.window)
            .unwrap_or(TimeDelta::ZERO)
    }

    /// `true` if any query carries a non-trivial selection.
    pub fn has_selections(&self) -> bool {
        self.queries.iter().any(|q| q.has_filter())
    }

    /// The per-query selections, in ascending window order (used by the
    /// lineage annotator).
    pub fn filters(&self) -> Vec<Predicate> {
        self.queries.iter().map(|q| q.filter_a.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(name: &str, secs: u64) -> JoinQuery {
        JoinQuery::new(name, TimeDelta::from_secs(secs))
    }

    #[test]
    fn workload_sorts_queries_by_window() {
        let w = QueryWorkload::new(
            vec![q("Q3", 30), q("Q1", 5), q("Q2", 10)],
            JoinCondition::equi(0),
        )
        .unwrap();
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        assert_eq!(w.query(0).name, "Q1");
        assert_eq!(w.query(2).name, "Q3");
        assert_eq!(
            w.windows(),
            vec![
                TimeDelta::from_secs(5),
                TimeDelta::from_secs(10),
                TimeDelta::from_secs(30)
            ]
        );
        assert_eq!(w.boundaries().len(), 4);
        assert_eq!(w.boundaries()[0], TimeDelta::ZERO);
        assert_eq!(w.max_window(), TimeDelta::from_secs(30));
        assert!(!w.has_selections());
        assert_eq!(w.join_condition(), &JoinCondition::equi(0));
    }

    #[test]
    fn duplicate_windows_are_rejected() {
        let err = QueryWorkload::new(vec![q("Q1", 10), q("Q2", 10)], JoinCondition::equi(0));
        assert!(err.is_err());
    }

    #[test]
    fn empty_and_zero_window_workloads_are_rejected() {
        assert!(QueryWorkload::new(vec![], JoinCondition::equi(0)).is_err());
        assert!(QueryWorkload::new(vec![q("Q1", 0)], JoinCondition::equi(0)).is_err());
    }

    #[test]
    fn selections_are_detected() {
        let w = QueryWorkload::new(
            vec![
                JoinQuery::new("Q1", TimeDelta::from_secs(1)),
                JoinQuery::with_filter("Q2", TimeDelta::from_secs(60), Predicate::gt(1, 10i64)),
            ],
            JoinCondition::equi(0),
        )
        .unwrap();
        assert!(w.has_selections());
        assert!(!w.query(0).has_filter());
        assert!(w.query(1).has_filter());
        assert_eq!(w.filters().len(), 2);
    }
}
