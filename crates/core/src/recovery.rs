//! Shard crash recovery: punctuation-aligned checkpoints plus a bounded
//! source-side replay ring.
//!
//! The sharded runtime survives a worker panic structurally — the worker
//! loop catches the unwind, the shard parks with a typed
//! [`StreamError::WorkerFailed`], and the executor is handed back — but the
//! crashed shard's *state* is suspect: the panic may have interrupted
//! processing mid-tuple.  This module makes the failure recoverable without
//! losing or duplicating results, using the same consistency anchor the
//! whole chain architecture rests on: a drained punctuation boundary is a
//! consistent cut ([`streamkit::checkpoint`]).
//!
//! [`RecoverySupervisor`] wraps a [`ShardedExecutor`] built from a
//! [`ChainPlanFactory`] and runs this protocol:
//!
//! 1. every item ingested since the last checkpoint is also appended to a
//!    bounded **replay ring** (clones of the source items, in arrival
//!    order),
//! 2. after every successful drain, once the punctuation epoch has advanced
//!    by [`RecoveryConfig::checkpoint_every_epochs`], a [`Checkpoint`] is
//!    captured and the replay ring is cleared — everything at or before the
//!    checkpoint is durable, everything after it is in the ring,
//! 3. when a run fails with `WorkerFailed`, the supervisor **pauses** the
//!    session, rebuilds every shard's plan fresh from the factory
//!    ([`ShardedExecutor::recover_reset`], dropping the crash's partial
//!    work), restores the last checkpoint, **resumes**, replays the ring in
//!    order through the ordinary routing path, and re-drains — on the same
//!    worker pool, no threads are respawned.
//!
//! Because the checkpoint restores sink counts and ingest counters
//! *absolutely* and the ring holds *exactly* the post-checkpoint input, the
//! recovered session's results are equal — as multisets, per sink — to an
//! uninterrupted run's (`tests/recovery_equivalence.rs` pins this property
//! under arbitrary fault epochs).
//!
//! When the ring fills up, [`OverflowPolicy`] decides: `Block` forces an
//! early checkpoint (trimming the ring to empty), `Shed` drops the oldest
//! item and counts it (recovery is then best-effort: a crash would lose the
//! shed items), `Error` refuses the ingest.  Every checkpoint and recovery
//! is appended to a [`RecoveryLog`], mirroring the adaptive supervisor's
//! [`crate::AdaptationLog`].

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use streamkit::checkpoint::Checkpoint;
use streamkit::error::{Result, StreamError};
use streamkit::fault::FaultPlan;
use streamkit::queue::StreamItem;
use streamkit::shard::ShardedExecutor;
use streamkit::tuple::Tuple;
use streamkit::{ExecutionReport, ExecutorConfig, Plan, Timestamp};

use crate::builder::ChainPlanFactory;
use crate::planner::CHAIN_ENTRY;

/// What to do when the replay ring is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Force a checkpoint now (drain + capture), which empties the ring.
    /// Bounds memory at the cost of a checkpoint stall; never loses
    /// recoverability.
    #[default]
    Block,
    /// Drop the oldest ring item and count it in
    /// [`RecoveryLog::items_shed`].  Ingest never stalls, but a crash now
    /// replays an incomplete tail: recovery becomes best-effort.
    Shed,
    /// Refuse the ingest with an error.
    Error,
}

/// Tuning knobs of the recovery supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Capture a checkpoint once the maximum punctuation epoch across shards
    /// has advanced by this many epochs since the last checkpoint
    /// (minimum 1).
    pub checkpoint_every_epochs: u64,
    /// Replay ring capacity in items.
    pub replay_capacity: usize,
    /// What to do when the ring is full.
    pub overflow: OverflowPolicy,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_every_epochs: 4,
            replay_capacity: 1 << 16,
            overflow: OverflowPolicy::Block,
        }
    }
}

/// One captured checkpoint (log entry).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRecord {
    /// Checkpoint sequence number.
    pub seq: u64,
    /// Punctuation epoch the checkpoint is aligned to.
    pub epoch: u64,
    /// Input watermark covered by the checkpoint.
    pub watermark: Timestamp,
    /// Tuples held in window states across all shards.
    pub state_tuples: u64,
    /// Replay-ring items the checkpoint made obsolete (cleared).
    pub ring_cleared: usize,
    /// `true` when the checkpoint was forced by a full replay ring
    /// ([`OverflowPolicy::Block`]) rather than the epoch interval.
    pub forced: bool,
}

/// One completed crash recovery (log entry).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRecord {
    /// Sequence number of the checkpoint that was restored.
    pub checkpoint_seq: u64,
    /// Punctuation epoch of the restored checkpoint.
    pub checkpoint_epoch: u64,
    /// The failure that triggered recovery (the `WorkerFailed` message).
    pub trigger: String,
    /// Items replayed from the ring after the restore.
    pub replayed: u64,
    /// The crash's partial work dropped by the reset (router-buffered plus
    /// in-executor queued items) — all of it is re-delivered by the replay.
    pub dropped_inflight: u64,
    /// Wall-clock seconds from failure detection to the recovered session
    /// being drained again (restore + replay + re-run).
    pub recovery_secs: f64,
    /// The restore-only portion of the stall (session paused, plans rebuilt,
    /// checkpoint loaded) — excluded from the service-rate denominator via
    /// the executor's pause accounting.
    pub restore_secs: f64,
}

/// Append-only record of every checkpoint and recovery, mirroring the
/// adaptive supervisor's [`crate::AdaptationLog`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryLog {
    checkpoints: Vec<CheckpointRecord>,
    recoveries: Vec<RecoveryRecord>,
    items_shed: u64,
}

impl RecoveryLog {
    /// Every captured checkpoint, in capture order.
    pub fn checkpoints(&self) -> &[CheckpointRecord] {
        &self.checkpoints
    }

    /// Every completed recovery, in completion order.
    pub fn recoveries(&self) -> &[RecoveryRecord] {
        &self.recoveries
    }

    /// Replay-ring items dropped under [`OverflowPolicy::Shed`]
    /// (monotonically non-decreasing).
    pub fn items_shed(&self) -> u64 {
        self.items_shed
    }

    /// Checkpoints forced by ring overflow ([`OverflowPolicy::Block`]).
    pub fn forced_checkpoints(&self) -> usize {
        self.checkpoints.iter().filter(|c| c.forced).count()
    }

    /// `true` when nothing ever crashed.
    pub fn is_clean(&self) -> bool {
        self.recoveries.is_empty()
    }

    /// The latest recovery.
    pub fn last_recovery(&self) -> Option<&RecoveryRecord> {
        self.recoveries.last()
    }
}

/// Fault-tolerant wrapper around a sharded chain session: checkpoints on
/// punctuation epochs, recovers `WorkerFailed` runs from the last checkpoint
/// plus the replay ring.  See the module docs for the protocol.
#[derive(Debug)]
pub struct RecoverySupervisor {
    factory: ChainPlanFactory,
    executor_config: ExecutorConfig,
    exec: ShardedExecutor,
    config: RecoveryConfig,
    /// Source items since the last checkpoint, in arrival order.
    ring: VecDeque<StreamItem>,
    /// The durable cut; always `Some` after launch (seq 0 is the empty
    /// launch checkpoint, so a crash before the first interval checkpoint
    /// recovers to empty state + full replay).
    last_checkpoint: Option<Checkpoint>,
    next_seq: u64,
    /// Largest tuple/punctuation timestamp ingested so far.
    watermark: Timestamp,
    log: RecoveryLog,
}

impl RecoverySupervisor {
    /// Build the sharded session from the factory and take the (empty)
    /// launch checkpoint.
    pub fn launch(
        factory: ChainPlanFactory,
        executor_config: ExecutorConfig,
        config: RecoveryConfig,
    ) -> Result<Self> {
        if config.checkpoint_every_epochs == 0 {
            return Err(StreamError::InvalidConfig(
                "checkpoint_every_epochs must be at least 1".to_string(),
            ));
        }
        if config.replay_capacity == 0 {
            return Err(StreamError::InvalidConfig(
                "replay_capacity must be at least 1".to_string(),
            ));
        }
        let exec = factory.sharded_with_config(executor_config.clone())?;
        let mut sup = RecoverySupervisor {
            factory,
            executor_config,
            exec,
            config,
            ring: VecDeque::new(),
            last_checkpoint: None,
            next_seq: 0,
            watermark: Timestamp::ZERO,
            log: RecoveryLog::default(),
        };
        sup.take_checkpoint(false)?;
        Ok(sup)
    }

    /// The recovery configuration.
    pub fn config(&self) -> RecoveryConfig {
        self.config
    }

    /// The executor configuration every rebuilt shard inherits.
    pub fn executor_config(&self) -> &ExecutorConfig {
        &self.executor_config
    }

    /// Every checkpoint and recovery so far.
    pub fn log(&self) -> &RecoveryLog {
        &self.log
    }

    /// Consume the log (bench reporting).
    pub fn into_log(self) -> RecoveryLog {
        self.log
    }

    /// The wrapped executor (state inspection between runs).
    pub fn executor(&self) -> &ShardedExecutor {
        &self.exec
    }

    /// Mutable access to the wrapped executor (tests arm faults through
    /// this; see [`ShardedExecutor::arm_fault`]).
    pub fn executor_mut(&mut self) -> &mut ShardedExecutor {
        &mut self.exec
    }

    /// Arm a deterministic fault on one shard (see [`streamkit::fault`]).
    pub fn arm_fault(&mut self, shard: usize, plan: FaultPlan) -> Result<()> {
        self.exec.arm_fault(shard, plan)
    }

    /// Current replay-ring occupancy.
    pub fn replay_ring_len(&self) -> usize {
        self.ring.len()
    }

    /// The last durable checkpoint.
    pub fn last_checkpoint(&self) -> Option<&Checkpoint> {
        self.last_checkpoint.as_ref()
    }

    /// All tuples the named retaining sink collected, across shards.
    pub fn sink_collected(&self, name: &str) -> Vec<Tuple> {
        self.exec.sink_collected(name)
    }

    /// Ingest one item at the chain entry, recording it in the replay ring
    /// first.  A single-shard session executes inline, so an injected fault
    /// can surface right here; it is recovered transparently like a failed
    /// run (the failing item is already in the ring, so the replay
    /// re-delivers it).
    pub fn ingest(&mut self, item: impl Into<StreamItem>) -> Result<()> {
        let item = item.into();
        self.reserve_ring_slot()?;
        self.watermark = self.watermark.max(item.timestamp());
        self.ring.push_back(item.clone());
        match caught(AssertUnwindSafe(|| self.exec.ingest(CHAIN_ENTRY, item))) {
            Ok(()) => Ok(()),
            Err(StreamError::WorkerFailed(trigger)) => self.recover(trigger),
            Err(other) => Err(other),
        }
    }

    /// Ingest a batch of items (see [`RecoverySupervisor::ingest`]).
    pub fn ingest_all<I>(&mut self, items: I) -> Result<()>
    where
        I: IntoIterator,
        I::Item: Into<StreamItem>,
    {
        for item in items {
            self.ingest(item)?;
        }
        Ok(())
    }

    /// Drain to a punctuation boundary, recovering from a worker failure if
    /// one surfaces, then checkpoint if the epoch interval has elapsed.
    /// Returns the merged cumulative report.
    pub fn run(&mut self) -> Result<ExecutionReport> {
        let report = match caught(AssertUnwindSafe(|| self.exec.run())) {
            Ok(report) => report,
            Err(StreamError::WorkerFailed(trigger)) => {
                self.recover(trigger)?;
                self.exec.run()?
            }
            Err(other) => return Err(other),
        };
        if self.epoch_now() >= self.checkpoint_epoch() + self.config.checkpoint_every_epochs {
            self.take_checkpoint(false)?;
        }
        Ok(report)
    }

    /// Force a checkpoint now (drains first).
    pub fn checkpoint_now(&mut self) -> Result<()> {
        self.exec.run()?;
        self.take_checkpoint(false)
    }

    /// Largest punctuation epoch across shards (only valid while parked).
    fn epoch_now(&self) -> u64 {
        self.exec
            .shards()
            .iter()
            .map(|e| e.punctuation_epochs())
            .max()
            .unwrap_or(0)
    }

    fn checkpoint_epoch(&self) -> u64 {
        self.last_checkpoint.as_ref().map(|c| c.epoch).unwrap_or(0)
    }

    /// Capture the current (drained) session and clear the replay ring.
    fn take_checkpoint(&mut self, forced: bool) -> Result<()> {
        let seq = self.next_seq;
        let ckpt = Checkpoint::capture(&mut self.exec, seq, self.watermark)?;
        self.next_seq += 1;
        self.log.checkpoints.push(CheckpointRecord {
            seq,
            epoch: ckpt.epoch,
            watermark: ckpt.watermark,
            state_tuples: ckpt.state_tuples(),
            ring_cleared: self.ring.len(),
            forced,
        });
        self.ring.clear();
        self.last_checkpoint = Some(ckpt);
        Ok(())
    }

    /// Make room for one more ring item, applying the overflow policy.
    fn reserve_ring_slot(&mut self) -> Result<()> {
        if self.ring.len() < self.config.replay_capacity {
            return Ok(());
        }
        match self.config.overflow {
            OverflowPolicy::Block => {
                // Drain and checkpoint: the ring empties because everything
                // buffered so far becomes part of the durable cut.  The
                // drain itself can crash — recover first, then checkpoint.
                self.run_for_checkpoint()?;
                self.take_checkpoint(true)
            }
            OverflowPolicy::Shed => {
                self.ring.pop_front();
                self.log.items_shed += 1;
                Ok(())
            }
            OverflowPolicy::Error => Err(StreamError::Execution(format!(
                "replay ring full ({} items) and the overflow policy is Error",
                self.ring.len()
            ))),
        }
    }

    /// Drain for a forced checkpoint, recovering a failure without
    /// re-entering the interval-checkpoint logic.
    fn run_for_checkpoint(&mut self) -> Result<()> {
        match caught(AssertUnwindSafe(|| self.exec.run())) {
            Ok(_) => Ok(()),
            Err(StreamError::WorkerFailed(trigger)) => {
                self.recover(trigger)?;
                self.exec.run().map(|_| ())
            }
            Err(other) => Err(other),
        }
    }

    /// The recovery protocol: pause, rebuild fresh plans, restore the last
    /// checkpoint, resume, replay the ring, re-drain.
    fn recover(&mut self, trigger: String) -> Result<()> {
        let started = Instant::now();
        if !self.exec.is_parked() {
            // The park barrier itself failed: a worker died without handing
            // its executor back, so there is no session left to restore
            // into.  (The catch_unwind harness in the worker loop makes this
            // unreachable for ordinary panics.)
            return Err(StreamError::WorkerFailed(format!(
                "unrecoverable: {trigger} (shard executors were not returned)"
            )));
        }
        let checkpoint = self
            .last_checkpoint
            .clone()
            .ok_or_else(|| StreamError::Checkpoint("no checkpoint to restore".to_string()))?;
        // Restore stall: everything until resume() is excluded from the
        // service-rate denominator, like a migration pause.
        self.exec.pause();
        let restore = (|| -> Result<u64> {
            let plans = (0..self.exec.num_shards())
                .map(|_| self.factory.instantiate().map(|shared| shared.plan))
                .collect::<Result<Vec<Plan>>>()?;
            let dropped = self.exec.recover_reset(plans)?;
            checkpoint.restore(&mut self.exec)?;
            Ok(dropped)
        })();
        self.exec.resume();
        let dropped = restore?;
        let restore_secs = started.elapsed().as_secs_f64();
        // Replay is ordinary (re-)execution through the ordinary routing
        // path; the ring stays intact so a second crash before the next
        // checkpoint can replay again.  A fault's fired flag survives the
        // reset, so the replay cannot re-trigger it.
        let replayed = self.ring.len() as u64;
        for item in self.ring.iter().cloned().collect::<Vec<_>>() {
            self.exec.ingest(CHAIN_ENTRY, item)?;
        }
        self.exec.run()?;
        self.log.recoveries.push(RecoveryRecord {
            checkpoint_seq: checkpoint.seq,
            checkpoint_epoch: checkpoint.epoch,
            trigger,
            replayed,
            dropped_inflight: dropped,
            recovery_secs: started.elapsed().as_secs_f64(),
            restore_secs,
        });
        Ok(())
    }

    /// Drain remaining work and return the final cumulative report and the
    /// recovery log.
    pub fn finish(mut self) -> Result<(ExecutionReport, RecoveryLog)> {
        let report = self.run()?;
        Ok((report, self.log))
    }
}

/// Run an executor step, converting an escaped panic (the single-shard
/// inline path has no worker-loop harness) into a typed
/// [`StreamError::WorkerFailed`].
fn caught<T>(step: AssertUnwindSafe<impl FnOnce() -> Result<T>>) -> Result<T> {
    match catch_unwind(step) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(StreamError::WorkerFailed(format!(
                "inline execution panicked: {msg}"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChainBuilder;
    use crate::planner::PlannerOptions;
    use crate::query::{JoinQuery, QueryWorkload};
    use streamkit::fault::FaultPlan;
    use streamkit::punctuation::Punctuation;
    use streamkit::tuple::StreamId;
    use streamkit::{JoinCondition, TimeDelta};

    fn workload(windows: &[u64]) -> QueryWorkload {
        let queries = windows
            .iter()
            .map(|&w| JoinQuery::new(format!("Q{w}"), TimeDelta::from_secs(w)))
            .collect();
        QueryWorkload::new(queries, JoinCondition::equi(0)).unwrap()
    }

    fn factory(windows: &[u64], shards: usize) -> ChainPlanFactory {
        let wl = workload(windows);
        let builder = ChainBuilder::new(wl);
        let options = PlannerOptions {
            retain_results: true,
            ..PlannerOptions::default().with_shards(shards)
        };
        builder.plan_factory(builder.memory_optimal(), options)
    }

    fn tuple(stream: StreamId, secs: u64, key: i64) -> streamkit::Tuple {
        streamkit::Tuple::of_ints(Timestamp::from_secs(secs), stream, &[key])
    }

    fn supervisor(shards: usize, config: RecoveryConfig) -> RecoverySupervisor {
        RecoverySupervisor::launch(factory(&[4, 16], shards), ExecutorConfig::default(), config)
            .unwrap()
    }

    /// Feed one tuple per stream per second plus a punctuation per second.
    fn feed(sup: &mut RecoverySupervisor, range: std::ops::Range<u64>) {
        for t in range {
            sup.ingest(tuple(StreamId::A, t, (t % 5) as i64)).unwrap();
            sup.ingest(tuple(StreamId::B, t, (t % 5) as i64)).unwrap();
            sup.ingest(Punctuation::new(Timestamp::from_secs(t)))
                .unwrap();
        }
    }

    fn fingerprints(mut tuples: Vec<streamkit::Tuple>) -> Vec<(Timestamp, streamkit::TimeDelta)> {
        let key = |t: &streamkit::Tuple| (t.ts, t.origin_span);
        tuples.sort_by_key(key);
        tuples.iter().map(key).collect()
    }

    fn quiet<R>(f: impl FnOnce() -> R) -> R {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    /// The oracle: the same feed with no fault armed.
    fn uninterrupted(shards: usize) -> Vec<(Timestamp, streamkit::TimeDelta)> {
        let mut sup = supervisor(shards, RecoveryConfig::default());
        feed(&mut sup, 0..12);
        sup.run().unwrap();
        feed(&mut sup, 12..24);
        sup.run().unwrap();
        fingerprints(sup.sink_collected("Q16"))
    }

    #[test]
    fn checkpoints_follow_the_epoch_interval_and_clear_the_ring() {
        let mut sup = supervisor(
            2,
            RecoveryConfig {
                checkpoint_every_epochs: 3,
                ..RecoveryConfig::default()
            },
        );
        assert_eq!(sup.log().checkpoints().len(), 1, "launch checkpoint");
        feed(&mut sup, 0..6);
        assert!(sup.replay_ring_len() > 0);
        sup.run().unwrap();
        // 6 punctuation epochs >= 0 + 3: checkpointed, ring cleared.
        assert!(sup.log().checkpoints().len() >= 2);
        assert_eq!(sup.replay_ring_len(), 0);
        let last = sup.log().checkpoints().last().unwrap();
        assert!(last.epoch >= 3);
        assert!(!last.forced);
        assert!(sup.log().is_clean());
    }

    #[test]
    fn worker_panic_recovers_to_the_oracle_results() {
        for shards in [1, 3] {
            let expected = uninterrupted(shards);
            let mut sup = supervisor(shards, RecoveryConfig::default());
            sup.arm_fault(0, FaultPlan::panic_at(9)).unwrap();
            quiet(|| {
                feed(&mut sup, 0..12);
                sup.run().unwrap();
                feed(&mut sup, 12..24);
                sup.run().unwrap();
            });
            assert_eq!(
                sup.log().recoveries().len(),
                1,
                "{shards} shard(s): exactly one recovery, log: {:?}",
                sup.log().recoveries()
            );
            let rec = sup.log().last_recovery().unwrap();
            assert!(rec.trigger.contains("panic"), "trigger: {}", rec.trigger);
            assert!(rec.recovery_secs >= rec.restore_secs);
            assert_eq!(
                fingerprints(sup.sink_collected("Q16")),
                expected,
                "{shards} shard(s): recovered results must match the oracle"
            );
        }
    }

    #[test]
    fn mid_run_poison_fault_recovers_too() {
        let expected = uninterrupted(2);
        let mut sup = supervisor(2, RecoveryConfig::default());
        sup.arm_fault(1, FaultPlan::poison_at(5)).unwrap();
        quiet(|| {
            feed(&mut sup, 0..12);
            sup.run().unwrap();
            feed(&mut sup, 12..24);
            sup.run().unwrap();
        });
        assert_eq!(sup.log().recoveries().len(), 1);
        assert_eq!(fingerprints(sup.sink_collected("Q16")), expected);
    }

    #[test]
    fn stall_fault_slows_but_never_fails() {
        let expected = uninterrupted(2);
        let mut sup = supervisor(2, RecoveryConfig::default());
        sup.arm_fault(0, FaultPlan::stall_at(4, 30)).unwrap();
        feed(&mut sup, 0..12);
        sup.run().unwrap();
        feed(&mut sup, 12..24);
        sup.run().unwrap();
        assert!(sup.log().is_clean());
        assert_eq!(fingerprints(sup.sink_collected("Q16")), expected);
    }

    #[test]
    fn shed_policy_drops_oldest_and_counts() {
        let mut sup = supervisor(
            1,
            RecoveryConfig {
                // Never checkpoint on the interval; tiny ring.
                checkpoint_every_epochs: u64::MAX,
                replay_capacity: 8,
                overflow: OverflowPolicy::Shed,
            },
        );
        feed(&mut sup, 0..10); // 30 items through a ring of 8
        assert_eq!(sup.replay_ring_len(), 8);
        assert_eq!(sup.log().items_shed(), 22);
        sup.run().unwrap();
        // Monotone: more input only grows the counter.
        let before = sup.log().items_shed();
        feed(&mut sup, 10..12);
        assert!(sup.log().items_shed() >= before);
    }

    #[test]
    fn block_policy_forces_a_checkpoint_and_error_policy_refuses() {
        let mut sup = supervisor(
            1,
            RecoveryConfig {
                checkpoint_every_epochs: u64::MAX,
                replay_capacity: 8,
                overflow: OverflowPolicy::Block,
            },
        );
        feed(&mut sup, 0..10);
        assert!(sup.log().forced_checkpoints() > 0);
        assert!(sup.replay_ring_len() < 8);
        assert_eq!(sup.log().items_shed(), 0);

        let mut sup = supervisor(
            1,
            RecoveryConfig {
                checkpoint_every_epochs: u64::MAX,
                replay_capacity: 4,
                overflow: OverflowPolicy::Error,
            },
        );
        let mut err = None;
        for t in 0..10 {
            if let Err(e) = sup.ingest(tuple(StreamId::A, t, 0)) {
                err = Some(e);
                break;
            }
        }
        assert!(matches!(err, Some(StreamError::Execution(_))), "{err:?}");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let f = factory(&[4], 1);
        assert!(RecoverySupervisor::launch(
            f.clone(),
            ExecutorConfig::default(),
            RecoveryConfig {
                checkpoint_every_epochs: 0,
                ..RecoveryConfig::default()
            },
        )
        .is_err());
        assert!(RecoverySupervisor::launch(
            f,
            ExecutorConfig::default(),
            RecoveryConfig {
                replay_capacity: 0,
                ..RecoveryConfig::default()
            },
        )
        .is_err());
    }

    #[test]
    fn finish_returns_report_and_log() {
        let mut sup = supervisor(2, RecoveryConfig::default());
        sup.arm_fault(0, FaultPlan::panic_at(3)).unwrap();
        let (report, log) = quiet(|| {
            feed(&mut sup, 0..10);
            sup.finish().unwrap()
        });
        assert!(report.sink_count("Q4") > 0);
        assert_eq!(log.recoveries().len(), 1);
        assert!(log.last_recovery().unwrap().replayed > 0);
    }
}
