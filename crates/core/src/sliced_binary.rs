//! State-sliced binary window join (Definition 3, Figures 8–9).
//!
//! `A[W_start, W_end] ⋈ˢ B[W_start, W_end]` keeps one sliced state per
//! stream.  Execution uses the paper's reference-copy scheme: every arriving
//! tuple is split (by the head of the chain) into a *male* copy — which
//! cross-purges and probes the opposite state and is then propagated to the
//! next slice — and a *female* copy — which is inserted into this slice's
//! state and travels to the next slice only when purged.  The two copies
//! share their payload (`Arc`), so no payload is duplicated.
//!
//! The operator has a single input port carrying the chain's logical queue
//! (both streams, both roles, in emission order) and three output ports:
//!
//! * [`PORT_RESULTS`] — joined results plus one punctuation per male tuple
//!   processed (the paper's Section 4.3 observation that male tuples act as
//!   punctuations for the order-preserving union),
//! * [`PORT_NEXT_SLICE`] — the logical queue feeding the next slice,
//! * the operator is usually built via
//!   [`SharedChainPlan`](crate::planner::SharedChainPlan), which wires these
//!   ports up for a whole chain.

use std::any::Any;

use streamkit::columnar::ColumnBatch;
use streamkit::join_state::{equi_key_fields, memoize_key, JoinState};
use streamkit::operator::{OpContext, Operator, PortId};
use streamkit::punctuation::Punctuation;
use streamkit::queue::StreamItem;
use streamkit::tuple::{StreamId, Tuple, TupleRole};
use streamkit::window::SliceWindow;
use streamkit::JoinCondition;

/// Output port carrying joined results and punctuations.
pub const PORT_RESULTS: PortId = 0;
/// Output port carrying the logical queue towards the next slice.
pub const PORT_NEXT_SLICE: PortId = 1;

/// Stream id of joined result tuples produced by sliced binary joins.
pub const SLICED_JOIN_OUTPUT: StreamId = StreamId(101);

/// One state-sliced binary window join.
#[derive(Debug)]
pub struct SlicedBinaryJoinOp {
    name: String,
    window: SliceWindow,
    condition: JoinCondition,
    stream_a: StreamId,
    stream_b: StreamId,
    state_a: JoinState,
    state_b: JoinState,
    peak_state: usize,
    results: u64,
    /// First join of a chain: splits regular tuples into male/female copies.
    chain_head: bool,
    /// Last join of a chain: discards instead of forwarding to a next slice.
    has_next: bool,
    /// Emit joined results as [`ColumnBatch`] runs (one per input run)
    /// instead of one row [`Tuple`] per match.
    columnar_results: bool,
}

impl SlicedBinaryJoinOp {
    /// Build a sliced binary join over the window slice `window` for streams
    /// `stream_a` / `stream_b` under the given join condition.
    pub fn new(
        name: impl Into<String>,
        window: SliceWindow,
        condition: JoinCondition,
        stream_a: StreamId,
        stream_b: StreamId,
    ) -> Self {
        // State A stores the left side of condition evaluations, state B the
        // right side; both are hash-indexed for equi conditions.
        let state_a = JoinState::for_condition(&condition, true);
        let state_b = JoinState::for_condition(&condition, false);
        SlicedBinaryJoinOp {
            name: name.into(),
            window,
            condition,
            stream_a,
            stream_b,
            state_a,
            state_b,
            peak_state: 0,
            results: 0,
            chain_head: false,
            has_next: true,
            columnar_results: false,
        }
    }

    /// Convenience constructor for the conventional `A`/`B` streams.
    pub fn for_ab(name: impl Into<String>, window: SliceWindow, condition: JoinCondition) -> Self {
        SlicedBinaryJoinOp::new(name, window, condition, StreamId::A, StreamId::B)
    }

    /// Mark this as the head of its chain: incoming `Regular` tuples are
    /// split into male and female reference copies here.
    pub fn chain_head(mut self) -> Self {
        self.chain_head = true;
        self
    }

    /// Mark this as the last slice: nothing is forwarded to a next slice.
    pub fn last_in_chain(mut self) -> Self {
        self.has_next = false;
        self
    }

    /// Emit joined results as columnar run batches: each input run's matches
    /// are transposed into one [`ColumnBatch`] on [`PORT_RESULTS`] (built
    /// with [`ColumnBatch::push_join`], no per-match payload allocation),
    /// flushed before the run's coalesced punctuation.  The result rows,
    /// their order, and every probe/purge counter are identical to row
    /// emission; only the transport representation changes.
    pub fn columnar_results(mut self) -> Self {
        self.columnar_results = true;
        self
    }

    /// `true` if joined results leave as columnar run batches.
    pub fn emits_columnar_results(&self) -> bool {
        self.columnar_results
    }

    /// Change the result transport (used by migration/re-slicing when
    /// rebuilding operators from an existing chain).
    pub fn set_columnar_results(&mut self, columnar: bool) {
        self.columnar_results = columnar;
    }

    /// Disable the equi-join hash index and probe by linear scan, the
    /// pre-index behaviour.  Benchmark/testing aid; call before processing
    /// any tuples.
    pub fn without_index(mut self) -> Self {
        debug_assert!(self.state_a.is_empty() && self.state_b.is_empty());
        self.state_a = JoinState::linear();
        self.state_b = JoinState::linear();
        self
    }

    /// The window slice `[W_start, W_end)` of this join.
    pub fn window(&self) -> SliceWindow {
        self.window
    }

    /// Replace the window slice (used by online chain migration).
    pub fn set_window(&mut self, window: SliceWindow) {
        self.window = window;
    }

    /// The join condition.
    pub fn condition(&self) -> &JoinCondition {
        &self.condition
    }

    /// The `(A, B)` stream identifiers this join operates on.
    pub fn streams(&self) -> (StreamId, StreamId) {
        (self.stream_a, self.stream_b)
    }

    /// `true` if this join forwards purged / propagated tuples to a next slice.
    pub fn has_next(&self) -> bool {
        self.has_next
    }

    /// Change whether this join forwards to a next slice (used by migration
    /// when a slice stops or starts being the last one of its chain).
    pub fn set_has_next(&mut self, has_next: bool) {
        self.has_next = has_next;
    }

    /// `true` if this join splits regular tuples into reference copies.
    pub fn is_chain_head(&self) -> bool {
        self.chain_head
    }

    /// `true` if this join's state is hash-indexed on the equi-join key
    /// (`false` in [`SlicedBinaryJoinOp::without_index`] mode or for
    /// conditions with no equi component).
    pub fn is_indexed(&self) -> bool {
        self.state_a.is_indexed()
    }

    /// `true` if this join's state is band-indexed (value-ordered order
    /// index; conditions with an inequality theta but no equi component).
    pub fn is_band_indexed(&self) -> bool {
        self.state_a.is_band_indexed() || self.state_b.is_band_indexed()
    }

    /// Change whether this join is the head of its chain.
    pub fn set_chain_head(&mut self, chain_head: bool) {
        self.chain_head = chain_head;
    }

    /// Number of joined results produced so far.
    pub fn results(&self) -> u64 {
        self.results
    }

    /// Current state size (both streams), in tuples.
    pub fn state_len(&self) -> usize {
        self.state_a.len() + self.state_b.len()
    }

    /// Current state size of the A side.
    pub fn state_a_len(&self) -> usize {
        self.state_a.len()
    }

    /// Current state size of the B side.
    pub fn state_b_len(&self) -> usize {
        self.state_b.len()
    }

    /// Peak combined state size.
    pub fn peak_state(&self) -> usize {
        self.peak_state
    }

    /// Drain both states (oldest first), used by online migration to move
    /// state into a merged join.
    pub fn drain_states(&mut self) -> (Vec<Tuple>, Vec<Tuple>) {
        (self.state_a.drain_ordered(), self.state_b.drain_ordered())
    }

    /// Load state tuples (assumed timestamp-ordered), used by online
    /// migration when merging or splitting slices.  Rebuilds the hash index.
    pub fn load_states(&mut self, state_a: Vec<Tuple>, state_b: Vec<Tuple>) {
        self.state_a.load_ordered(state_a);
        self.state_b.load_ordered(state_b);
        self.peak_state = self.peak_state.max(self.state_len());
    }

    /// Timestamps currently held in the two states (oldest first); test and
    /// verification aid.
    pub fn state_timestamps(&self) -> (Vec<streamkit::Timestamp>, Vec<streamkit::Timestamp>) {
        (
            self.state_a.iter().map(|t| t.ts).collect(),
            self.state_b.iter().map(|t| t.ts).collect(),
        )
    }

    /// Copies of the tuples currently held in the two states (oldest first);
    /// verification aid for migration and shard-rescaling tooling.
    pub fn state_tuples(&self) -> (Vec<Tuple>, Vec<Tuple>) {
        (
            self.state_a.iter().cloned().collect(),
            self.state_b.iter().cloned().collect(),
        )
    }

    fn track_peak(&mut self) {
        let total = self.state_a.len() + self.state_b.len();
        if total > self.peak_state {
            self.peak_state = total;
        }
    }

    /// Cross-purge the given state with the male tuple's timestamp, forwarding
    /// expired females to the next slice.
    fn purge_state(
        state: &mut JoinState,
        window: SliceWindow,
        male_ts: streamkit::Timestamp,
        has_next: bool,
        ctx: &mut OpContext,
    ) {
        let comparisons = state.purge_expired(
            |front| window.expired(male_ts, front.ts),
            |expired| {
                if has_next {
                    ctx.emit(PORT_NEXT_SLICE, expired);
                }
            },
        );
        ctx.counters.purge_comparisons += comparisons;
    }

    /// Emit one joined result: a row [`Tuple::join`] in row mode, or an
    /// append into the run's pending [`ColumnBatch`] in columnar mode (no
    /// per-match payload allocation).
    fn emit_result(
        columnar: bool,
        pending: &mut Option<ColumnBatch>,
        left: &Tuple,
        right: &Tuple,
        ctx: &mut OpContext,
    ) {
        if !columnar {
            ctx.emit(PORT_RESULTS, Tuple::join(left, right, SLICED_JOIN_OUTPUT));
            return;
        }
        let batch = pending.get_or_insert_with(ColumnBatch::new);
        if !batch.push_join(left, right, SLICED_JOIN_OUTPUT) {
            // Result arity changed mid-run: flush and start a fresh batch.
            let full = pending.take().expect("just inserted");
            if !full.is_empty() {
                ctx.emit(PORT_RESULTS, full);
            }
            let batch = pending.get_or_insert_with(ColumnBatch::new);
            let ok = batch.push_join(left, right, SLICED_JOIN_OUTPUT);
            debug_assert!(ok, "a fresh batch accepts any arity");
        }
    }

    /// Flush the run's pending columnar results, if any.
    fn flush_results(pending: &mut Option<ColumnBatch>, ctx: &mut OpContext) {
        if let Some(batch) = pending.take() {
            if !batch.is_empty() {
                ctx.emit(PORT_RESULTS, batch);
            }
        }
    }

    /// Process a male tuple: purge + probe the opposite state, emit results,
    /// then propagate the male to the next slice.  Equi probes touch only the
    /// male's key bucket of the opposite state (O(1 + matches)).  When
    /// `punctuate` is false the caller takes over punctuation emission (the
    /// batch path coalesces them to one per run).
    fn process_male(
        &mut self,
        male: Tuple,
        punctuate: bool,
        pending: &mut Option<ColumnBatch>,
        ctx: &mut OpContext,
    ) {
        let male_is_a = male.stream == self.stream_a;
        let opposite = if male_is_a {
            &mut self.state_b
        } else {
            &mut self.state_a
        };
        Self::purge_state(opposite, self.window, male.ts, self.has_next, ctx);
        let columnar = self.columnar_results;
        for stored in opposite.probe_candidates(&male) {
            let matched = if male_is_a {
                self.condition
                    .eval_counted(&male, stored, &mut ctx.counters.probe_comparisons)
            } else {
                self.condition
                    .eval_counted(stored, &male, &mut ctx.counters.probe_comparisons)
            };
            if matched {
                self.results += 1;
                if male_is_a {
                    Self::emit_result(columnar, pending, &male, stored, ctx);
                } else {
                    Self::emit_result(columnar, pending, stored, &male, ctx);
                }
            }
        }
        // The male tuple acts as a punctuation for the union (Section 4.3).
        if punctuate {
            Self::flush_results(pending, ctx);
            ctx.emit(PORT_RESULTS, Punctuation::from_stream(male.ts, male.stream));
        }
        if self.has_next {
            ctx.emit(PORT_NEXT_SLICE, male);
        }
    }

    /// Process a female tuple: insert into this slice's state.
    fn process_female(&mut self, female: Tuple) {
        if female.stream == self.stream_a {
            self.state_a.push(female);
        } else {
            self.state_b.push(female);
        }
        self.track_peak();
    }

    /// The equi-key field of a tuple from `stream` (its probe key against the
    /// opposite state and its stored key in its own state are the same side
    /// of the condition), or `None` for non-equi conditions.
    fn key_field_of(&self, stream: StreamId) -> Option<usize> {
        let (left, right) = equi_key_fields(&self.condition, true)?;
        if stream == self.stream_a {
            Some(left)
        } else if stream == self.stream_b {
            Some(right)
        } else {
            None
        }
    }

    /// Process one item of a run (shared by `process` and `process_batch`).
    ///
    /// `memoize` is true at the chain head, where each arrival's canonical
    /// equi-key hash is computed once; the male/female reference copies share
    /// the memo, so every downstream slice's probe and insert — and the
    /// shard router before the chain — reuse it instead of rehashing.
    ///
    /// `punctuate` controls per-male punctuation emission; when false (the
    /// batch path) the last processed male is recorded in `last_male` and the
    /// caller emits one coalesced punctuation for the whole run.
    fn process_item(
        &mut self,
        item: StreamItem,
        memoize: bool,
        punctuate: bool,
        last_male: &mut Option<(streamkit::Timestamp, StreamId)>,
        pending: &mut Option<ColumnBatch>,
        ctx: &mut OpContext,
    ) {
        match item {
            StreamItem::Tuple(mut t) => {
                ctx.counters.tuples_processed += 1;
                match t.role {
                    TupleRole::Regular => {
                        // Split into reference copies: the male purges and
                        // probes first, then the female fills the state —
                        // this matches Fig. 9, where an arriving tuple never
                        // joins with itself.  At the chain head this is the
                        // paper's split; mid-chain slices should only ever
                        // see tagged copies, but treating a stray untagged
                        // tuple the same way keeps standalone use working.
                        if memoize {
                            if let Some(field) = self.key_field_of(t.stream) {
                                memoize_key(&mut t, field);
                            }
                        }
                        *last_male = Some((t.ts, t.stream));
                        let male = t.with_role(TupleRole::Male);
                        t.role = TupleRole::Female;
                        self.process_male(male, punctuate, pending, ctx);
                        self.process_female(t);
                    }
                    TupleRole::Male => {
                        *last_male = Some((t.ts, t.stream));
                        self.process_male(t, punctuate, pending, ctx);
                    }
                    TupleRole::Female => self.process_female(t),
                }
            }
            StreamItem::Batch(b) => {
                // Input batches are not part of the chain's logical-queue
                // protocol (roles travel per row); process rows individually.
                for t in b.materialize() {
                    self.process_item(
                        StreamItem::Tuple(t),
                        memoize,
                        punctuate,
                        last_male,
                        pending,
                        ctx,
                    );
                }
            }
            StreamItem::Punctuation(p) => {
                // Keep result rows ordered relative to the progress marker.
                Self::flush_results(pending, ctx);
                ctx.emit(PORT_RESULTS, p);
                if self.has_next {
                    ctx.emit(PORT_NEXT_SLICE, p);
                }
            }
        }
    }
}

impl Operator for SlicedBinaryJoinOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_input_ports(&self) -> usize {
        1
    }

    fn num_output_ports(&self) -> usize {
        2
    }

    fn process(&mut self, _port: PortId, item: StreamItem, ctx: &mut OpContext) {
        let mut last_male = None;
        let mut pending = None;
        if self.columnar_results {
            // Mirror the batch path: results first (as one batch), then the
            // punctuation for this single-item run.
            self.process_item(
                item,
                self.chain_head,
                false,
                &mut last_male,
                &mut pending,
                ctx,
            );
            Self::flush_results(&mut pending, ctx);
            if let Some((ts, stream)) = last_male {
                ctx.emit(PORT_RESULTS, Punctuation::from_stream(ts, stream));
            }
        } else {
            self.process_item(
                item,
                self.chain_head,
                true,
                &mut last_male,
                &mut pending,
                ctx,
            );
        }
    }

    /// Batch path: a statically dispatched tight loop over the run, with the
    /// chain head memoising each arrival's canonical equi-key hash once for
    /// the whole chain, and the per-male union punctuations coalesced into
    /// **one punctuation per run** (a punctuation is a monotone progress
    /// promise, so the run's last male promises everything the per-male
    /// punctuations did — the same coarsening the order-preserving union's
    /// own forwarding mode applies).
    ///
    /// Unlike the terminal window joins, the cross-purge stays interleaved
    /// per male rather than running once at the run-maximum timestamp: a
    /// purged female must enter the next slice's logical queue *before* the
    /// male whose arrival expired it (Fig. 9's emission order), otherwise
    /// results shift between slices and per-query slice attribution — which
    /// query unions tap which slices — changes.  The purge is already O(1)
    /// per male when nothing expires, so the batch win here is dispatch,
    /// hashing and punctuation traffic, not purge arithmetic; equality of
    /// results and final states between the two paths is pinned by
    /// `tests/batch_equivalence.rs`.
    fn process_batch(&mut self, _port: PortId, items: &mut Vec<StreamItem>, ctx: &mut OpContext) {
        let memoize = self.chain_head;
        let mut last_male = None;
        let mut pending = None;
        for item in items.drain(..) {
            self.process_item(item, memoize, false, &mut last_male, &mut pending, ctx);
        }
        Self::flush_results(&mut pending, ctx);
        if let Some((ts, stream)) = last_male {
            ctx.emit(PORT_RESULTS, Punctuation::from_stream(ts, stream));
        }
    }

    fn state_size(&self) -> usize {
        self.state_len()
    }

    fn state_bytes(&self) -> usize {
        self.state_a.live_bytes() + self.state_b.live_bytes()
    }

    fn state_capacity_bytes(&self) -> usize {
        self.state_a.capacity_bytes() + self.state_b.capacity_bytes()
    }

    fn drain_window_states(&mut self) -> Option<(Vec<Tuple>, Vec<Tuple>)> {
        Some(self.drain_states())
    }

    fn load_window_states(&mut self, side_a: Vec<Tuple>, side_b: Vec<Tuple>) {
        self.load_states(side_a, side_b);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamkit::Timestamp;

    fn a(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[key])
    }

    fn b(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::B, &[key])
    }

    fn results_of(ctx: &mut OpContext) -> Vec<(u64, u64)> {
        ctx.take_outputs()
            .into_iter()
            .filter(|(port, item)| *port == PORT_RESULTS && !item.is_punctuation())
            .filter_map(|(_, item)| item.into_tuple())
            .map(|t| {
                (
                    t.ts.as_micros() / 1_000_000,
                    t.origin_span.as_micros() / 1_000_000,
                )
            })
            .collect()
    }

    #[test]
    fn head_slice_splits_into_reference_copies_and_joins_both_directions() {
        let mut op =
            SlicedBinaryJoinOp::for_ab("J1", SliceWindow::from_secs(0, 10), JoinCondition::equi(0))
                .chain_head()
                .last_in_chain();
        let mut ctx = OpContext::new();
        op.process(0, a(1, 7).into(), &mut ctx);
        assert!(results_of(&mut ctx).is_empty());
        assert_eq!(op.state_a_len(), 1);
        // A B tuple with the same key joins against the stored A female.
        op.process(0, b(2, 7).into(), &mut ctx);
        assert_eq!(results_of(&mut ctx), vec![(2, 1)]);
        // A later A tuple joins against the stored B female (other direction).
        op.process(0, a(3, 7).into(), &mut ctx);
        assert_eq!(results_of(&mut ctx), vec![(3, 1)]);
        assert_eq!(op.results(), 2);
        assert_eq!(op.state_len(), 3);
        assert!(op.peak_state() >= 3);
    }

    #[test]
    fn an_arrival_never_joins_with_itself() {
        let mut op =
            SlicedBinaryJoinOp::for_ab("J1", SliceWindow::from_secs(0, 10), JoinCondition::Cross)
                .chain_head()
                .last_in_chain();
        let mut ctx = OpContext::new();
        op.process(0, a(1, 1).into(), &mut ctx);
        // Only one tuple has arrived; the male copy must not see its own
        // female copy in the state.
        assert!(results_of(&mut ctx).is_empty());
    }

    #[test]
    fn purged_females_and_propagated_males_feed_the_next_slice() {
        let mut op =
            SlicedBinaryJoinOp::for_ab("J1", SliceWindow::from_secs(0, 2), JoinCondition::Cross)
                .chain_head();
        let mut ctx = OpContext::new();
        op.process(0, a(1, 0).into(), &mut ctx);
        let forwarded: Vec<(TupleRole, u64)> = ctx
            .take_outputs()
            .into_iter()
            .filter(|(port, _)| *port == PORT_NEXT_SLICE)
            .filter_map(|(_, item)| item.into_tuple())
            .map(|t| (t.role, t.ts.as_micros() / 1_000_000))
            .collect();
        // The male copy is propagated immediately.
        assert_eq!(forwarded, vec![(TupleRole::Male, 1)]);
        // A much later B tuple purges the A female into the next slice.
        op.process(0, b(10, 0).into(), &mut ctx);
        let forwarded: Vec<(TupleRole, u64, StreamId)> = ctx
            .take_outputs()
            .into_iter()
            .filter(|(port, _)| *port == PORT_NEXT_SLICE)
            .filter_map(|(_, item)| item.into_tuple())
            .map(|t| (t.role, t.ts.as_micros() / 1_000_000, t.stream))
            .collect();
        assert_eq!(
            forwarded,
            vec![
                (TupleRole::Female, 1, StreamId::A),
                (TupleRole::Male, 10, StreamId::B),
            ]
        );
        assert_eq!(op.state_a_len(), 0);
        assert_eq!(op.state_b_len(), 1);
    }

    #[test]
    fn male_tuples_emit_punctuations_for_the_union() {
        let mut op =
            SlicedBinaryJoinOp::for_ab("J1", SliceWindow::from_secs(0, 5), JoinCondition::Cross)
                .chain_head()
                .last_in_chain();
        let mut ctx = OpContext::new();
        op.process(0, a(3, 0).into(), &mut ctx);
        let puncts: Vec<Punctuation> = ctx
            .take_outputs()
            .into_iter()
            .filter(|(port, _)| *port == PORT_RESULTS)
            .filter_map(|(_, item)| match item {
                StreamItem::Punctuation(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts.len(), 1);
        assert_eq!(puncts[0].watermark, Timestamp::from_secs(3));
        assert_eq!(puncts[0].stream, Some(StreamId::A));
    }

    #[test]
    fn only_females_occupy_state_memory() {
        // Fig. 9 note (2): the state of the binary sliced window join only
        // holds the female tuples.
        let mut op =
            SlicedBinaryJoinOp::for_ab("J1", SliceWindow::from_secs(0, 100), JoinCondition::Cross)
                .chain_head()
                .last_in_chain();
        let mut ctx = OpContext::new();
        for s in 1..=10 {
            op.process(0, a(s, 0).into(), &mut ctx);
            op.process(0, b(s, 0).into(), &mut ctx);
        }
        // 10 A females + 10 B females, no male is ever stored.
        assert_eq!(op.state_len(), 20);
    }

    #[test]
    fn migration_helpers_round_trip_state() {
        let mut op =
            SlicedBinaryJoinOp::for_ab("J1", SliceWindow::from_secs(0, 100), JoinCondition::Cross)
                .chain_head()
                .last_in_chain();
        let mut ctx = OpContext::new();
        op.process(0, a(1, 0).into(), &mut ctx);
        op.process(0, b(2, 0).into(), &mut ctx);
        let (sa, sb) = op.drain_states();
        assert_eq!(sa.len(), 1);
        assert_eq!(sb.len(), 1);
        assert_eq!(op.state_len(), 0);
        op.load_states(sa, sb);
        assert_eq!(op.state_len(), 2);
        op.set_window(SliceWindow::from_secs(0, 50));
        assert_eq!(op.window(), SliceWindow::from_secs(0, 50));
    }

    #[test]
    fn mid_chain_slices_respect_roles() {
        let mut op =
            SlicedBinaryJoinOp::for_ab("J2", SliceWindow::from_secs(2, 4), JoinCondition::Cross)
                .last_in_chain();
        let mut ctx = OpContext::new();
        // A purged female from the previous slice fills the state…
        op.process(0, a(1, 0).with_role(TupleRole::Female).into(), &mut ctx);
        assert_eq!(op.state_a_len(), 1);
        // …and a propagated male from the previous slice probes it.
        op.process(0, b(4, 0).with_role(TupleRole::Male).into(), &mut ctx);
        assert_eq!(results_of(&mut ctx), vec![(4, 3)]);
    }

    #[test]
    fn punctuations_flow_through_both_ports() {
        let mut op =
            SlicedBinaryJoinOp::for_ab("J1", SliceWindow::from_secs(0, 2), JoinCondition::Cross);
        let mut ctx = OpContext::new();
        op.process(
            0,
            Punctuation::new(Timestamp::from_secs(7)).into(),
            &mut ctx,
        );
        let ports: Vec<PortId> = ctx.take_outputs().into_iter().map(|(p, _)| p).collect();
        assert_eq!(ports, vec![PORT_RESULTS, PORT_NEXT_SLICE]);
    }
}
