//! State-sliced one-way window join (Definition 1, Figures 5–6).
//!
//! `A[W_start, W_end] ⋉ˢ B` keeps a state only for stream A, restricted to
//! tuples whose age relative to the probing B tuple lies in
//! `[W_start, W_end)`.  A chain of such joins (Definition 2) pipelines the
//! purged A tuples and the propagated B tuples from one slice to the next;
//! the union of all slices' outputs equals the regular one-way window join
//! `A[W_N] ⋉ B` (Theorem 1).
//!
//! The operator has a single input port carrying the *logical queue* of the
//! paper (both streams, in the order the previous slice emitted them) and
//! distinguishes A from B tuples by their [`StreamId`].

use std::any::Any;

use streamkit::columnar::ColumnBatch;
use streamkit::join_state::{equi_key_fields, memoize_key, JoinState};
use streamkit::operator::{OpContext, Operator, PortId};
use streamkit::punctuation::Punctuation;
use streamkit::queue::StreamItem;
use streamkit::tuple::{StreamId, Tuple};
use streamkit::window::SliceWindow;
use streamkit::JoinCondition;

/// Output port carrying joined results (and per-probe punctuations).
pub const PORT_RESULTS: PortId = 0;
/// Output port carrying the purged A tuples and propagated B tuples that form
/// the input logical queue of the next slice in the chain.
pub const PORT_NEXT_SLICE: PortId = 1;

/// One state-sliced one-way window join.
#[derive(Debug)]
pub struct SlicedOneWayJoinOp {
    name: String,
    window: SliceWindow,
    condition: JoinCondition,
    /// Stream whose tuples are kept in the sliced state (the "A" side).
    state_stream: StreamId,
    state: JoinState,
    peak_state: usize,
    results: u64,
    /// Whether purged/propagated tuples are forwarded to a next slice.
    has_next: bool,
    /// Emit a punctuation on the result port after each probe.
    emit_punctuations: bool,
    /// Emit joined results as [`ColumnBatch`] runs instead of row tuples.
    columnar_results: bool,
}

impl SlicedOneWayJoinOp {
    /// Build a sliced one-way join keeping state for `state_stream` (the
    /// paper's stream A) over the window slice `window`.
    pub fn new(
        name: impl Into<String>,
        window: SliceWindow,
        condition: JoinCondition,
        state_stream: StreamId,
    ) -> Self {
        // Stored A tuples are the left side of every condition evaluation;
        // the state is hash-indexed for equi conditions.
        let state = JoinState::for_condition(&condition, true);
        SlicedOneWayJoinOp {
            name: name.into(),
            window,
            condition,
            state_stream,
            state,
            peak_state: 0,
            results: 0,
            has_next: true,
            emit_punctuations: false,
            columnar_results: false,
        }
    }

    /// Mark this as the last slice of its chain: purged tuples and propagated
    /// probe tuples are discarded instead of forwarded.
    pub fn last_in_chain(mut self) -> Self {
        self.has_next = false;
        self
    }

    /// Emit punctuations (the probing tuple's timestamp) on the result port.
    pub fn with_punctuations(mut self) -> Self {
        self.emit_punctuations = true;
        self
    }

    /// Emit joined results as columnar run batches (one [`ColumnBatch`] per
    /// probe run on [`PORT_RESULTS`], built with [`ColumnBatch::push_join`]).
    /// Result rows, order and counters are identical to row emission.
    pub fn columnar_results(mut self) -> Self {
        self.columnar_results = true;
        self
    }

    /// `true` if joined results leave as columnar run batches.
    pub fn emits_columnar_results(&self) -> bool {
        self.columnar_results
    }

    /// Disable the equi-join hash index (linear-scan probes); benchmark and
    /// testing aid, call before processing any tuples.
    pub fn without_index(mut self) -> Self {
        debug_assert!(self.state.is_empty());
        self.state = JoinState::linear();
        self
    }

    /// The window slice `[W_start, W_end)` of this join.
    pub fn window(&self) -> SliceWindow {
        self.window
    }

    /// Number of joined results produced so far.
    pub fn results(&self) -> u64 {
        self.results
    }

    /// Current state size in tuples.
    pub fn state_len(&self) -> usize {
        self.state.len()
    }

    /// Peak state size in tuples.
    pub fn peak_state(&self) -> usize {
        self.peak_state
    }

    /// Timestamps currently held in the state (oldest first); used by tests
    /// to reproduce the execution trace of Table 2.
    pub fn state_timestamps(&self) -> Vec<streamkit::Timestamp> {
        self.state.iter().map(|t| t.ts).collect()
    }

    fn process_state_tuple(&mut self, tuple: Tuple) {
        // Fig. 6, arrival on stream A: Insert.
        self.state.push(tuple);
        self.peak_state = self.peak_state.max(self.state.len());
    }

    /// Flush the run's pending columnar results, if any.
    fn flush_results(pending: &mut Option<ColumnBatch>, ctx: &mut OpContext) {
        if let Some(batch) = pending.take() {
            if !batch.is_empty() {
                ctx.emit(PORT_RESULTS, batch);
            }
        }
    }

    fn process_probe_tuple(
        &mut self,
        tuple: Tuple,
        pending: &mut Option<ColumnBatch>,
        ctx: &mut OpContext,
    ) {
        // Fig. 6, arrival on stream B.
        // 1. Cross-purge: move expired A tuples to the next slice (or drop).
        let window = self.window;
        let has_next = self.has_next;
        let comparisons = self.state.purge_expired(
            |front| window.expired(tuple.ts, front.ts),
            |expired| {
                if has_next {
                    ctx.emit(PORT_NEXT_SLICE, expired);
                }
            },
        );
        ctx.counters.purge_comparisons += comparisons;
        // 2. Probe: emit result pairs.  The upper window bound needs no check
        //    (purging enforced it); the lower bound is enforced by the chain
        //    pipeline (Lemma 1), so probing is a pure value comparison — and
        //    for equi conditions only the probe key's bucket is touched.
        let columnar = self.columnar_results;
        for stored in self.state.probe_candidates(&tuple) {
            if self
                .condition
                .eval_counted(stored, &tuple, &mut ctx.counters.probe_comparisons)
            {
                self.results += 1;
                if columnar {
                    let batch = pending.get_or_insert_with(ColumnBatch::new);
                    if !batch.push_join(stored, &tuple, StreamId(100)) {
                        let full = pending.take().expect("just inserted");
                        if !full.is_empty() {
                            ctx.emit(PORT_RESULTS, full);
                        }
                        let batch = pending.get_or_insert_with(ColumnBatch::new);
                        let ok = batch.push_join(stored, &tuple, StreamId(100));
                        debug_assert!(ok, "a fresh batch accepts any arity");
                    }
                } else {
                    ctx.emit(PORT_RESULTS, Tuple::join(stored, &tuple, StreamId(100)));
                }
            }
        }
        if self.emit_punctuations {
            Self::flush_results(pending, ctx);
            ctx.emit(
                PORT_RESULTS,
                Punctuation::from_stream(tuple.ts, tuple.stream),
            );
        }
        // 3. Propagate: forward the probe tuple to the next slice (or drop).
        if self.has_next {
            ctx.emit(PORT_NEXT_SLICE, tuple);
        }
    }
}

impl Operator for SlicedOneWayJoinOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_input_ports(&self) -> usize {
        1
    }

    fn num_output_ports(&self) -> usize {
        2
    }

    fn process(&mut self, _port: PortId, item: StreamItem, ctx: &mut OpContext) {
        match item {
            StreamItem::Tuple(t) => {
                ctx.counters.tuples_processed += 1;
                if t.stream == self.state_stream {
                    self.process_state_tuple(t);
                } else {
                    let mut pending = None;
                    self.process_probe_tuple(t, &mut pending, ctx);
                    Self::flush_results(&mut pending, ctx);
                }
            }
            StreamItem::Batch(b) => {
                // Row fallback: the chain's logical queue travels as rows.
                for t in b.materialize() {
                    self.process(0, StreamItem::Tuple(t), ctx);
                }
            }
            StreamItem::Punctuation(p) => {
                ctx.emit(PORT_RESULTS, p);
                if self.has_next {
                    ctx.emit(PORT_NEXT_SLICE, p);
                }
            }
        }
    }

    /// Batch path: a statically dispatched tight loop that memoises each
    /// tuple's canonical equi-key hash once (stored key for A tuples, probe
    /// key for B tuples) so every downstream slice reuses it.  The
    /// cross-purge stays interleaved per probe tuple: the sliced probe has no
    /// window check (purge exactness stands in for it, see
    /// [`SlicedOneWayJoinOp::process_probe_tuple`]) and purged tuples must
    /// reach the next slice's queue ahead of the probe that expired them, so
    /// a single run-maximum purge would shift results between slices.
    fn process_batch(&mut self, port: PortId, items: &mut Vec<StreamItem>, ctx: &mut OpContext) {
        let key_fields = equi_key_fields(&self.condition, true);
        let mut pending = None;
        for item in items.drain(..) {
            match item {
                StreamItem::Tuple(mut t) => {
                    ctx.counters.tuples_processed += 1;
                    if t.stream == self.state_stream {
                        if let Some((stored_field, _)) = key_fields {
                            memoize_key(&mut t, stored_field);
                        }
                        self.process_state_tuple(t);
                    } else {
                        if let Some((_, probe_field)) = key_fields {
                            memoize_key(&mut t, probe_field);
                        }
                        self.process_probe_tuple(t, &mut pending, ctx);
                    }
                }
                StreamItem::Batch(b) => {
                    // Keep result rows ordered relative to the fallback rows.
                    Self::flush_results(&mut pending, ctx);
                    for t in b.materialize() {
                        self.process(port, StreamItem::Tuple(t), ctx);
                    }
                }
                StreamItem::Punctuation(p) => {
                    Self::flush_results(&mut pending, ctx);
                    ctx.emit(PORT_RESULTS, p);
                    if self.has_next {
                        ctx.emit(PORT_NEXT_SLICE, p);
                    }
                }
            }
        }
        Self::flush_results(&mut pending, ctx);
    }

    fn state_size(&self) -> usize {
        self.state.len()
    }

    fn state_bytes(&self) -> usize {
        self.state.live_bytes()
    }

    fn state_capacity_bytes(&self) -> usize {
        self.state.capacity_bytes()
    }

    fn drain_window_states(&mut self) -> Option<(Vec<Tuple>, Vec<Tuple>)> {
        // One-sided state: the probe stream keeps nothing in this operator.
        Some((self.state.drain_ordered(), Vec::new()))
    }

    fn load_window_states(&mut self, side_a: Vec<Tuple>, side_b: Vec<Tuple>) {
        debug_assert!(
            side_b.is_empty(),
            "a one-way sliced join stores only its state stream"
        );
        self.state.load_ordered(side_a);
        self.peak_state = self.peak_state.max(self.state.len());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamkit::Timestamp;

    fn a(secs: u64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[0])
    }

    fn b(secs: u64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::B, &[0])
    }

    fn new_slice(start: u64, end: u64) -> SlicedOneWayJoinOp {
        SlicedOneWayJoinOp::new(
            format!("A[{start},{end}]xB"),
            SliceWindow::from_secs(start, end),
            JoinCondition::Cross,
            StreamId::A,
        )
    }

    fn results_of(ctx: &mut OpContext) -> Vec<(u64, u64)> {
        ctx.take_outputs()
            .into_iter()
            .filter(|(port, item)| *port == PORT_RESULTS && !item.is_punctuation())
            .filter_map(|(_, item)| item.into_tuple())
            .map(|t| {
                (
                    t.ts.as_micros() / 1_000_000,
                    t.origin_span.as_micros() / 1_000_000,
                )
            })
            .collect()
    }

    #[test]
    fn inserts_a_and_probes_with_b() {
        let mut op = new_slice(0, 2);
        let mut ctx = OpContext::new();
        op.process(0, a(1).into(), &mut ctx);
        op.process(0, a(2).into(), &mut ctx);
        op.process(0, a(3).into(), &mut ctx);
        assert_eq!(op.state_len(), 3);
        op.process(0, b(4).into(), &mut ctx);
        // a@1, a@2 expire (diff >= 2) and go to the next slice; a@3 joins.
        let out = results_of(&mut ctx);
        assert_eq!(out, vec![(4, 1)]);
        assert_eq!(op.state_len(), 1);
        assert_eq!(op.results(), 1);
        assert_eq!(op.peak_state(), 3);
    }

    #[test]
    fn purged_and_propagated_tuples_go_to_next_slice_in_emission_order() {
        let mut op = new_slice(0, 2);
        let mut ctx = OpContext::new();
        op.process(0, a(1).into(), &mut ctx);
        let _ = ctx.take_outputs();
        op.process(0, b(4).into(), &mut ctx);
        let forwarded: Vec<(PortId, u64)> = ctx
            .take_outputs()
            .into_iter()
            .filter(|(port, _)| *port == PORT_NEXT_SLICE)
            .map(|(p, item)| (p, item.timestamp().as_micros() / 1_000_000))
            .collect();
        // Purged a@1 first, then propagated b@4 — the paper's logical queue.
        assert_eq!(forwarded, vec![(PORT_NEXT_SLICE, 1), (PORT_NEXT_SLICE, 4)]);
    }

    #[test]
    fn last_slice_discards_purged_and_propagated_tuples() {
        let mut op = new_slice(0, 2).last_in_chain();
        let mut ctx = OpContext::new();
        op.process(0, a(1).into(), &mut ctx);
        op.process(0, b(10).into(), &mut ctx);
        assert!(ctx
            .take_outputs()
            .iter()
            .all(|(port, _)| *port == PORT_RESULTS));
    }

    #[test]
    fn punctuation_mode_marks_progress() {
        let mut op = new_slice(0, 2).with_punctuations();
        let mut ctx = OpContext::new();
        op.process(0, b(3).into(), &mut ctx);
        let out = ctx.take_outputs();
        assert!(out
            .iter()
            .any(|(port, item)| *port == PORT_RESULTS && item.is_punctuation()));
    }

    #[test]
    fn join_condition_is_respected() {
        let mut op = SlicedOneWayJoinOp::new(
            "slice",
            SliceWindow::from_secs(0, 10),
            JoinCondition::equi(0),
            StreamId::A,
        );
        let mut ctx = OpContext::new();
        op.process(
            0,
            Tuple::of_ints(Timestamp::from_secs(1), StreamId::A, &[7]).into(),
            &mut ctx,
        );
        op.process(
            0,
            Tuple::of_ints(Timestamp::from_secs(2), StreamId::A, &[8]).into(),
            &mut ctx,
        );
        op.process(
            0,
            Tuple::of_ints(Timestamp::from_secs(3), StreamId::B, &[7]).into(),
            &mut ctx,
        );
        assert_eq!(results_of(&mut ctx).len(), 1);
        // The hash index narrows the probe to the key-7 bucket: one
        // comparison instead of one per stored tuple.
        assert_eq!(ctx.counters.probe_comparisons, 1);
    }

    #[test]
    fn table_2_execution_trace() {
        // Reproduces the scenario of Table 2 of the paper: w1 = 2 s, w2 = 4 s,
        // Cartesian-product semantics, one tuple per second, arrivals
        // a1 a2 a3 b1 b2.  J1 = A[0,2) ⋉ˢ B, J2 = A[2,4) ⋉ˢ B.
        //
        // We use half-open slices exactly as in Definition 1 (W_start <=
        // Tb - Ta < W_end); the paper's printed trace keeps boundary tuples
        // (Tb - Ta == W_end) one slice earlier, but the union over the chain
        // is the same either way and must equal the regular one-way join.
        let mut j1 = new_slice(0, 2);
        let mut j2 = new_slice(2, 4).last_in_chain();
        let mut queue: std::collections::VecDeque<Tuple> = std::collections::VecDeque::new();
        let mut j1_results: Vec<(u64, u64)> = Vec::new();

        let arrivals = [a(1), a(2), a(3), b(4), b(5)];
        for t in arrivals {
            let mut ctx = OpContext::new();
            j1.process(0, t.into(), &mut ctx);
            for (port, item) in ctx.take_outputs() {
                match (port, item) {
                    (PORT_RESULTS, StreamItem::Tuple(t)) => j1_results.push((
                        t.ts.as_micros() / 1_000_000,
                        t.origin_span.as_micros() / 1_000_000,
                    )),
                    (PORT_NEXT_SLICE, StreamItem::Tuple(t)) => queue.push_back(t),
                    _ => {}
                }
            }
        }
        // J1 keeps only tuples younger than 2 s: b2@5 purged even a3@3.
        assert!(j1.state_timestamps().is_empty());
        // The logical queue holds, in emission order, the purged a tuples and
        // the propagated b tuples: a1, a2, b1, a3, b2.
        let queue_ts: Vec<u64> = queue.iter().map(|t| t.ts.as_micros() / 1_000_000).collect();
        assert_eq!(queue_ts, vec![1, 2, 4, 3, 5]);
        // J1's only in-slice pair is (a3, b1).
        assert_eq!(j1_results, vec![(4, 1)]);

        // J2 consumes the logical queue.
        let mut j2_results = Vec::new();
        while let Some(t) = queue.pop_front() {
            let mut ctx = OpContext::new();
            j2.process(0, t.into(), &mut ctx);
            for (port, item) in ctx.take_outputs() {
                if port == PORT_RESULTS {
                    if let StreamItem::Tuple(t) = item {
                        j2_results.push((
                            t.ts.as_micros() / 1_000_000,
                            t.origin_span.as_micros() / 1_000_000,
                        ));
                    }
                }
            }
        }
        assert_eq!(j2_results, vec![(4, 3), (4, 2), (5, 3), (5, 2)]);

        // Union of J1 and J2 results equals the regular one-way join A[4) ⋉ B.
        let mut reference = streamkit::ops::OneWayWindowJoinOp::new(
            "ref",
            streamkit::WindowSpec::from_secs(4),
            JoinCondition::Cross,
        );
        let mut ref_results = Vec::new();
        for t in [a(1), a(2), a(3)] {
            let mut ctx = OpContext::new();
            reference.process(0, t.into(), &mut ctx);
        }
        for t in [b(4), b(5)] {
            let mut ctx = OpContext::new();
            reference.process(1, t.into(), &mut ctx);
            for (_, item) in ctx.take_outputs() {
                if let StreamItem::Tuple(t) = item {
                    ref_results.push((
                        t.ts.as_micros() / 1_000_000,
                        t.origin_span.as_micros() / 1_000_000,
                    ));
                }
            }
        }
        let mut chain_all: Vec<(u64, u64)> = j1_results
            .iter()
            .chain(j2_results.iter())
            .copied()
            .collect();
        chain_all.sort_unstable();
        ref_results.sort_unstable();
        assert_eq!(chain_all, ref_results);
    }
}
