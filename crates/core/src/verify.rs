//! Equivalence oracle for shared plans (Theorems 1–2).
//!
//! [`expected_results`] computes, independently of any operator machinery,
//! the exact result set each registered query must receive for a given input:
//! for every A/B pair it checks the join condition, the query's window
//! constraint and the query's selection.  Tests and property tests compare
//! executed plans (chains, baselines) against this oracle.

use std::collections::HashMap;

use streamkit::tuple::{StreamId, Tuple};
use streamkit::{TimeDelta, Timestamp};

use crate::query::QueryWorkload;

/// A canonical, order-independent fingerprint of one joined result:
/// `(result timestamp, |Ta - Tb|, A timestamp)`.
pub type ResultKey = (Timestamp, TimeDelta, Timestamp);

/// Compute the expected result multiset of every query for the given input
/// tuples (both streams, any order).  Keys are query names; each value is
/// sorted so it can be compared directly.
pub fn expected_results(
    workload: &QueryWorkload,
    input: &[Tuple],
) -> HashMap<String, Vec<ResultKey>> {
    let a_tuples: Vec<&Tuple> = input.iter().filter(|t| t.stream == StreamId::A).collect();
    let b_tuples: Vec<&Tuple> = input.iter().filter(|t| t.stream == StreamId::B).collect();
    let mut out: HashMap<String, Vec<ResultKey>> = workload
        .queries()
        .iter()
        .map(|q| (q.name.clone(), Vec::new()))
        .collect();
    for a in &a_tuples {
        for b in &b_tuples {
            if !workload.join_condition().eval(a, b) {
                continue;
            }
            let span = a.ts.abs_diff(b.ts);
            let ts = a.ts.max(b.ts);
            for q in workload.queries() {
                if span < q.window && q.filter_a.eval(a) {
                    out.get_mut(&q.name)
                        .expect("query registered")
                        .push((ts, span, a.ts));
                }
            }
        }
    }
    for results in out.values_mut() {
        results.sort_unstable();
    }
    out
}

/// Canonical fingerprints of the tuples a retaining sink collected, for
/// comparison against [`expected_results`].
///
/// Joined tuples carry `ts = max(Ta, Tb)` and `origin_span = |Ta - Tb|`; the
/// A-side timestamp is reconstructed from those two plus the knowledge of
/// which side is older (which the span alone cannot provide), so the
/// fingerprint uses `min(Ta, Tb)` via `ts - span` when the A side is the
/// older one.  To stay order-independent and side-agnostic we fingerprint
/// with the pair `(ts, span)` plus the smaller timestamp.
pub fn collected_fingerprints(tuples: &[Tuple]) -> Vec<(Timestamp, TimeDelta, Timestamp)> {
    let mut keys: Vec<(Timestamp, TimeDelta, Timestamp)> = tuples
        .iter()
        .map(|t| (t.ts, t.origin_span, t.ts - t.origin_span))
        .collect();
    keys.sort_unstable();
    keys
}

/// Reduce an [`expected_results`] entry to the same side-agnostic fingerprint
/// as [`collected_fingerprints`].
pub fn expected_fingerprints(expected: &[ResultKey]) -> Vec<(Timestamp, TimeDelta, Timestamp)> {
    let mut keys: Vec<(Timestamp, TimeDelta, Timestamp)> = expected
        .iter()
        .map(|(ts, span, _a_ts)| (*ts, *span, *ts - *span))
        .collect();
    keys.sort_unstable();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinQuery;
    use streamkit::{JoinCondition, Predicate};

    fn a(secs: u64, key: i64, value: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[key, value])
    }

    fn b(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::B, &[key, 0])
    }

    fn workload() -> QueryWorkload {
        QueryWorkload::new(
            vec![
                JoinQuery::new("Q1", TimeDelta::from_secs(2)),
                JoinQuery::with_filter("Q2", TimeDelta::from_secs(10), Predicate::gt(1, 10i64)),
            ],
            JoinCondition::equi(0),
        )
        .unwrap()
    }

    #[test]
    fn oracle_applies_window_filter_and_condition() {
        let input = vec![a(1, 7, 50), a(2, 8, 50), a(3, 7, 5), b(4, 7), b(20, 7)];
        let expected = expected_results(&workload(), &input);
        // Q1 (window 2, no filter): only (a3, b4) has span 1 < 2 and key match.
        assert_eq!(expected["Q1"].len(), 1);
        // Q2 (window 10, filter value > 10): (a1, b4) span 3, value 50; a3
        // fails the filter; b20 is too far from everything.
        assert_eq!(expected["Q2"].len(), 1);
        assert_eq!(expected["Q2"][0].0, Timestamp::from_secs(4));
        assert_eq!(expected["Q2"][0].1, TimeDelta::from_secs(3));
    }

    #[test]
    fn fingerprints_are_order_independent() {
        let j1 = Tuple::join(&a(1, 7, 0), &b(4, 7), StreamId(100));
        let j2 = Tuple::join(&a(3, 7, 0), &b(4, 7), StreamId(100));
        let fp_a = collected_fingerprints(&[j1.clone(), j2.clone()]);
        let fp_b = collected_fingerprints(&[j2, j1]);
        assert_eq!(fp_a, fp_b);
        assert_eq!(fp_a.len(), 2);
    }

    #[test]
    fn expected_and_collected_fingerprints_line_up() {
        let input = vec![a(1, 7, 50), b(4, 7)];
        let expected = expected_results(&workload(), &input);
        let joined = Tuple::join(&a(1, 7, 50), &b(4, 7), StreamId(100));
        assert_eq!(
            expected_fingerprints(&expected["Q2"]),
            collected_fingerprints(&[joined])
        );
    }
}
