//! Cost of arbitrary N-query slice chains (Sections 5.1–5.2).
//!
//! For `N` registered queries with windows `w_1 < w_2 < ... < w_N`, a chain
//! configuration is a path through the slice-merge DAG of Figure 14: nodes
//! `v_0 .. v_N` represent the window boundaries (with `w_0 = 0`), and an edge
//! `v_i -> v_j` represents one sliced join with window range `(w_i, w_j]`
//! that serves queries `Q_{i+1} .. Q_j` through a router.
//!
//! [`edge_cost`] is the CPU cost of one such (possibly merged) sliced join.
//! Summed along a path it gives the CPU cost of the whole chain; the Mem-Opt
//! chain is the path using every node, and the CPU-Opt chain is the shortest
//! path (found with Dijkstra's algorithm in the `state_slice_core` crate).

/// Parameters for chain cost estimation over `N` queries.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainParams {
    /// Arrival rate of stream A (tuples/second).
    pub lambda_a: f64,
    /// Arrival rate of stream B (tuples/second).
    pub lambda_b: f64,
    /// Query windows in seconds, strictly increasing.
    pub windows: Vec<f64>,
    /// Join selectivity S⋈.
    pub sel_join: f64,
    /// Per-operator system overhead factor `C_sys` (comparisons-equivalent
    /// cost per input tuple per operator: queue moves, scheduling).
    pub csys: f64,
}

impl ChainParams {
    /// Convenience constructor with symmetric arrival rates.
    pub fn symmetric(lambda: f64, windows: Vec<f64>, sel_join: f64, csys: f64) -> Self {
        ChainParams {
            lambda_a: lambda,
            lambda_b: lambda,
            windows,
            sel_join,
            csys,
        }
    }

    /// Number of registered queries (= number of distinct windows).
    pub fn num_queries(&self) -> usize {
        self.windows.len()
    }

    /// Combined arrival rate `λ_A + λ_B`.
    pub fn total_rate(&self) -> f64 {
        self.lambda_a + self.lambda_b
    }

    /// Window boundary `w_i` with `w_0 = 0`.
    pub fn boundary(&self, i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            self.windows[i - 1]
        }
    }

    /// Validate monotonicity of the window list.
    pub fn validate(&self) -> Result<(), String> {
        if self.windows.is_empty() {
            return Err("at least one query window is required".to_string());
        }
        let mut prev = 0.0;
        for (i, &w) in self.windows.iter().enumerate() {
            if w <= prev {
                return Err(format!(
                    "windows must be strictly increasing and positive; window {i} = {w} after {prev}"
                ));
            }
            prev = w;
        }
        Ok(())
    }
}

/// How the runtime probes join state, which determines the probe-cost term
/// of [`edge_cost_with_model`].
///
/// With a hash index on the equi-join key (the `streamkit::JoinState`
/// subsystem) a probe touches only its key bucket, so the expected
/// comparisons per probe drop from the full window population to the
/// expected *match* count — a factor of `S⋈`.  With a value-ordered band
/// index a probe binary-searches to its range and walks the matches —
/// `O(log n + matches)` per probe.
///
/// `LinearScan` and `HashIndexed` probe totals are identical for every
/// slicing of the same overall window (both are linear in the summed slice
/// ranges), so under those models the probe term never changes which chain
/// the CPU-Opt buildup picks.  `BandIndexed` is the exception: every tuple
/// pays one `log`-search *per slice* it probes, so a finer slicing costs
/// more probe-side — the honest trade-off the adaptive supervisor should
/// see when it re-costs band chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProbeModel {
    /// Probe by scanning the whole opposite state (the paper's Equations
    /// 1–3, and the runtime behaviour for conditions with no usable
    /// component).
    #[default]
    LinearScan,
    /// Probe through a hash index on the equi-join key: expected comparisons
    /// per probe scale with `S⋈ ·` window population.
    HashIndexed,
    /// Probe through a value-ordered band index: `log₂(state) + matches`
    /// comparisons per probe (binary search plus the contiguous walk).
    BandIndexed,
}

impl ProbeModel {
    /// Expected probe comparisons per second for the sliced join of edge
    /// `v_i -> v_j` (window range `w_j - w_i`).
    pub fn probe_cost(self, params: &ChainParams, i: usize, j: usize) -> f64 {
        let range = params.boundary(j) - params.boundary(i);
        let full_scan_rate = 2.0 * params.lambda_a * params.lambda_b * range;
        match self {
            ProbeModel::LinearScan => full_scan_rate,
            ProbeModel::HashIndexed => full_scan_rate * params.sel_join,
            ProbeModel::BandIndexed => {
                // Each A-arrival (rate λ_A, twice: male probe of both
                // reference copies is folded into the factor-2 convention of
                // the full-scan rate) binary-searches the B state of this
                // slice (population λ_B · range) and walks its matches; and
                // symmetrically for B-arrivals.  The match walk sums to the
                // result rate, exactly the hash-indexed probe total.
                let search = params.lambda_a * (1.0 + params.lambda_b * range).log2()
                    + params.lambda_b * (1.0 + params.lambda_a * range).log2();
                search + full_scan_rate * params.sel_join
            }
        }
    }
}

/// Per-component CPU cost of a chain configuration (comparisons / second).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChainCostBreakdown {
    /// Join probing cost (identical for every slicing of the same `w_N`).
    pub probe: f64,
    /// Cross-purge cost (one pass per input tuple per sliced join).
    pub purge: f64,
    /// Routing cost of merged joins serving more than one query.
    pub routing: f64,
    /// System overhead for the operators in the chain.
    pub system: f64,
    /// Union merge cost (one comparison per joined result delivered).
    pub union: f64,
}

impl ChainCostBreakdown {
    /// Total CPU cost.
    pub fn total(&self) -> f64 {
        self.probe + self.purge + self.routing + self.system + self.union
    }

    /// Element-wise sum.
    pub fn add(&self, other: &ChainCostBreakdown) -> ChainCostBreakdown {
        ChainCostBreakdown {
            probe: self.probe + other.probe,
            purge: self.purge + other.purge,
            routing: self.routing + other.routing,
            system: self.system + other.system,
            union: self.union + other.union,
        }
    }
}

/// CPU cost of the sliced join represented by edge `v_i -> v_j` of the
/// slice-merge DAG (`0 <= i < j <= N`).
///
/// The edge covers window range `(w_i, w_j]` and serves `m = j - i` queries:
///
/// * probing: `2 λ_A λ_B (w_j - w_i)` — constant across slicings (it always
///   sums to the probing cost of the full window `w_N`),
/// * purging: `λ_A + λ_B` — one pass per input tuple for this join,
/// * routing: `2 λ_A λ_B (w_j - w_i) S⋈ (m - 1)` — a merged join must route
///   its results among the `m` queries it serves (no router when `m = 1`),
/// * system overhead: `C_sys (λ_A + λ_B)` per sliced join (queue moves and
///   scheduling), so merging saves the overhead of the merged-away joins,
/// * union: `2 λ_A λ_B (w_j - w_i) S⋈` — each result is merged once by the
///   per-query unions (constant across slicings).
pub fn edge_cost(params: &ChainParams, i: usize, j: usize) -> ChainCostBreakdown {
    edge_cost_with_model(params, i, j, ProbeModel::LinearScan)
}

/// [`edge_cost`] under an explicit [`ProbeModel`]: `HashIndexed` scales the
/// probe term by `S⋈` (the expected bucket population), matching the
/// hash-indexed runtime join state for equi conditions; `BandIndexed`
/// charges `log₂(slice state) + matches` per probe, matching the
/// value-ordered band index for inequality conditions.
pub fn edge_cost_with_model(
    params: &ChainParams,
    i: usize,
    j: usize,
    model: ProbeModel,
) -> ChainCostBreakdown {
    assert!(
        i < j && j <= params.num_queries(),
        "invalid edge ({i}, {j})"
    );
    let range = params.boundary(j) - params.boundary(i);
    let m = (j - i) as f64;
    let rate_product = 2.0 * params.lambda_a * params.lambda_b;
    let total_rate = params.total_rate();
    let probe = model.probe_cost(params, i, j);
    let purge = total_rate;
    let result_rate = rate_product * range * params.sel_join;
    let routing = result_rate * (m - 1.0);
    // One schedulable operator per sliced join; the router of a merged join
    // is folded into its output handling (Fig. 13(b)), so merging m slices
    // saves (m - 1) operators' worth of per-tuple system overhead.
    let system = params.csys * total_rate;
    let union = result_rate;
    ChainCostBreakdown {
        probe,
        purge,
        routing,
        system,
        union,
    }
}

/// CPU cost of an arbitrary chain configuration given as a path of window
/// boundary indexes `0 = p_0 < p_1 < ... < p_k = N`.
pub fn chain_cost(params: &ChainParams, path: &[usize]) -> ChainCostBreakdown {
    chain_cost_with_model(params, path, ProbeModel::LinearScan)
}

/// [`chain_cost`] under an explicit [`ProbeModel`].
pub fn chain_cost_with_model(
    params: &ChainParams,
    path: &[usize],
    model: ProbeModel,
) -> ChainCostBreakdown {
    assert!(
        path.len() >= 2 && path[0] == 0 && *path.last().unwrap() == params.num_queries(),
        "path must start at 0 and end at N"
    );
    let mut total = ChainCostBreakdown::default();
    for w in path.windows(2) {
        total = total.add(&edge_cost_with_model(params, w[0], w[1], model));
    }
    total
}

/// CPU cost of the Mem-Opt chain (one slice per distinct query window).
pub fn mem_opt_cost(params: &ChainParams) -> ChainCostBreakdown {
    let path: Vec<usize> = (0..=params.num_queries()).collect();
    chain_cost(params, &path)
}

/// State memory (in tuples) of any chain over windows up to `w_N`: the slices
/// partition `[0, w_N)`, so the total equals the single-join state for `w_N`
/// (Theorem 3).  Only meaningful when no selections are pushed into the chain.
pub fn chain_state_tuples(params: &ChainParams) -> f64 {
    params.total_rate() * params.windows.last().copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ChainParams {
        ChainParams::symmetric(10.0, vec![5.0, 10.0, 30.0], 0.1, 0.5)
    }

    #[test]
    fn validation_accepts_increasing_and_rejects_others() {
        assert!(params().validate().is_ok());
        let bad = ChainParams::symmetric(10.0, vec![5.0, 5.0], 0.1, 0.5);
        assert!(bad.validate().is_err());
        let bad = ChainParams::symmetric(10.0, vec![], 0.1, 0.5);
        assert!(bad.validate().is_err());
        let bad = ChainParams::symmetric(10.0, vec![3.0, 2.0], 0.1, 0.5);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn boundaries_include_zero() {
        let p = params();
        assert_eq!(p.boundary(0), 0.0);
        assert_eq!(p.boundary(1), 5.0);
        assert_eq!(p.boundary(3), 30.0);
        assert_eq!(p.num_queries(), 3);
        assert_eq!(p.total_rate(), 20.0);
    }

    #[test]
    fn probe_and_union_costs_are_constant_across_slicings() {
        let p = params();
        let memopt = mem_opt_cost(&p);
        let merged_all = chain_cost(&p, &[0, 3]);
        let partial = chain_cost(&p, &[0, 2, 3]);
        assert!((memopt.probe - merged_all.probe).abs() < 1e-9);
        assert!((memopt.probe - partial.probe).abs() < 1e-9);
        assert!((memopt.union - merged_all.union).abs() < 1e-9);
        assert!((memopt.union - partial.union).abs() < 1e-9);
    }

    #[test]
    fn merging_trades_routing_for_purge_and_overhead() {
        let p = params();
        let memopt = mem_opt_cost(&p);
        let merged = chain_cost(&p, &[0, 3]);
        // The fully merged plan purges once per tuple instead of three times.
        assert!(merged.purge < memopt.purge);
        // But it pays routing cost proportional to the result rate and fanout.
        assert!(merged.routing > memopt.routing);
        assert_eq!(memopt.routing, 0.0);
    }

    #[test]
    fn low_join_selectivity_favours_merging() {
        // With a tiny join selectivity the routing cost is negligible, so the
        // merged chain (selection pull-up shape) has lower total CPU cost —
        // exactly the scenario where Mem-Opt is not CPU-optimal (Section 5.1).
        let p = ChainParams::symmetric(10.0, vec![1.0, 2.0, 3.0, 4.0], 0.001, 2.0);
        assert!(chain_cost(&p, &[0, 4]).total() < mem_opt_cost(&p).total());
        // With a large join selectivity the routing dominates and Mem-Opt wins.
        let p = ChainParams::symmetric(10.0, vec![1.0, 2.0, 3.0, 4.0], 0.5, 0.1);
        assert!(mem_opt_cost(&p).total() < chain_cost(&p, &[0, 4]).total());
    }

    #[test]
    fn hash_indexed_probe_model_scales_probe_by_join_selectivity() {
        let p = params();
        let scan = edge_cost_with_model(&p, 0, 3, ProbeModel::LinearScan);
        let indexed = edge_cost_with_model(&p, 0, 3, ProbeModel::HashIndexed);
        assert!((indexed.probe - scan.probe * 0.1).abs() < 1e-9);
        // Every other component is probe-model independent.
        assert_eq!(indexed.purge, scan.purge);
        assert_eq!(indexed.routing, scan.routing);
        assert_eq!(indexed.system, scan.system);
        assert_eq!(indexed.union, scan.union);
        // The probe term stays slicing-invariant under either model, so the
        // CPU-Opt shortest path is unaffected by the model choice.
        let sliced = chain_cost_with_model(&p, &[0, 1, 2, 3], ProbeModel::HashIndexed);
        assert!((sliced.probe - indexed.probe).abs() < 1e-9);
    }

    #[test]
    fn band_indexed_probe_model_charges_log_state_plus_matches() {
        let p = params();
        let scan = edge_cost_with_model(&p, 0, 3, ProbeModel::LinearScan);
        let hash = edge_cost_with_model(&p, 0, 3, ProbeModel::HashIndexed);
        let band = edge_cost_with_model(&p, 0, 3, ProbeModel::BandIndexed);
        // Hand computation: range 30, λ = 10 each side, S⋈ = 0.1.
        let search = 2.0 * 10.0 * (1.0 + 10.0 * 30.0f64).log2();
        let matches = 2.0 * 10.0 * 10.0 * 30.0 * 0.1;
        assert!((band.probe - (search + matches)).abs() < 1e-9);
        // Band sits between hash (pure matches) and a linear scan here.
        assert!(band.probe > hash.probe);
        assert!(band.probe < scan.probe);
        // Non-probe components are probe-model independent.
        assert_eq!(band.purge, scan.purge);
        assert_eq!(band.routing, scan.routing);
        assert_eq!(band.system, scan.system);
        assert_eq!(band.union, scan.union);
        // Unlike the other two models the band probe term is NOT
        // slicing-invariant: every tuple pays a log-search per slice it
        // probes, so the finer slicing costs strictly more probe-side.
        let sliced = chain_cost_with_model(&p, &[0, 1, 2, 3], ProbeModel::BandIndexed);
        assert!(sliced.probe > band.probe);
        // The excess is exactly the extra log terms — bounded by the
        // per-slice searches, far below a linear scan's state term.
        assert!(sliced.probe < scan.probe);
    }

    #[test]
    fn edge_cost_matches_hand_computation() {
        let p = params();
        // Edge (1, 3): range = 30 - 5 = 25, serves 2 queries.
        let e = edge_cost(&p, 1, 3);
        assert!((e.probe - 2.0 * 100.0 * 25.0).abs() < 1e-9);
        assert!((e.purge - 20.0).abs() < 1e-9);
        assert!((e.routing - 2.0 * 100.0 * 25.0 * 0.1).abs() < 1e-9);
        assert!((e.system - 0.5 * 20.0).abs() < 1e-9);
        assert!((e.union - 2.0 * 100.0 * 25.0 * 0.1).abs() < 1e-9);
        let total = e.probe + e.purge + e.routing + e.system + e.union;
        assert!((e.total() - total).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid edge")]
    fn edge_cost_rejects_bad_indexes() {
        let _ = edge_cost(&params(), 2, 2);
    }

    #[test]
    #[should_panic(expected = "path must start at 0")]
    fn chain_cost_rejects_bad_paths() {
        let _ = chain_cost(&params(), &[0, 1]);
    }

    #[test]
    fn state_memory_matches_theorem_three() {
        let p = params();
        assert!((chain_state_tuples(&p) - 20.0 * 30.0).abs() < 1e-9);
    }
}
