//! Analytical memory / CPU cost model for shared window joins.
//!
//! This crate transcribes the cost analysis of the State-Slice paper:
//!
//! * [`pullup`] — Equation 1: naive sharing with selection pull-up,
//! * [`pushdown`] — Equation 2: stream partition with selection push-down,
//! * [`state_slice`] — Equation 3: the state-slice chain,
//! * [`savings`] — Equation 4: relative memory / CPU savings (the surfaces of
//!   Figure 11),
//! * [`chain`] — per-slice and per-merged-slice costs for arbitrary N-query
//!   chains; these are the edge lengths of the slice-merge DAG that the
//!   CPU-Opt algorithm (Section 5.2) runs Dijkstra over,
//! * [`measured`] — runtime-measured overlays ([`MeasuredParams`]) that feed
//!   observed rates / selectivities back into the chain model for adaptive
//!   re-costing.
//!
//! Units: arrival rates are tuples/second, windows are seconds, tuple sizes
//! are KB, CPU costs are comparisons/second and memory costs are KB — the
//! same units as Table 1 of the paper.

pub mod chain;
pub mod measured;
pub mod params;
pub mod pullup;
pub mod pushdown;
pub mod savings;
pub mod state_slice;

pub use chain::{
    chain_cost, chain_cost_with_model, edge_cost, edge_cost_with_model, mem_opt_cost,
    ChainCostBreakdown, ChainParams, ProbeModel,
};
pub use measured::MeasuredParams;
pub use params::{CostEstimate, SystemParams};
pub use pullup::pullup_cost;
pub use pushdown::pushdown_cost;
pub use savings::{
    cpu_saving_vs_pullup, cpu_saving_vs_pullup_closed_form, cpu_saving_vs_pushdown,
    cpu_saving_vs_pushdown_closed_form, mem_saving_vs_pullup, mem_saving_vs_pullup_closed_form,
    mem_saving_vs_pushdown, mem_saving_vs_pushdown_closed_form, SavingsPoint,
};
pub use state_slice::state_slice_cost;
