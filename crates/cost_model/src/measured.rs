//! Measured (runtime-observed) cost-model parameters.
//!
//! The chain model in [`crate::chain`] is normally driven by *declared*
//! workload parameters — the arrival rates and selectivities a query was
//! registered with.  Adaptive re-optimization instead feeds back values the
//! executor actually measured (windowed arrival rates in stream-time
//! tuples/second, per-operator selectivities, live per-slice state), so that
//! re-costing Mem-Opt against CPU-Opt runs against reality rather than the
//! original declaration.
//!
//! [`MeasuredParams`] is a plain carrier: every field is optional, and
//! [`MeasuredParams::apply_to`] overlays only the fields that were actually
//! observed (finite, in-range) onto a declared [`ChainParams`].  Smoothing is
//! the producer's job — the executor hands over EWMA-smoothed values — so
//! this module performs no filtering beyond sanity clamps.

use crate::chain::ChainParams;

/// Runtime-measured overrides for the declared chain parameters.
///
/// Any field left `None` (or out of range) falls through to the declared
/// value in [`MeasuredParams::apply_to`].  State vectors are carried per
/// slice, in chain order, for memory-side re-costing and drift detection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MeasuredParams {
    /// Measured arrival rate of stream A, tuples per stream-time second.
    pub rate_a: Option<f64>,
    /// Measured arrival rate of stream B, tuples per stream-time second.
    pub rate_b: Option<f64>,
    /// Measured join selectivity S⋈ (output / Cartesian-product output).
    pub sel_join: Option<f64>,
    /// Measured per-operator system overhead `C_sys`, comparisons-equivalent
    /// per input tuple per operator.
    pub csys: Option<f64>,
    /// Live state population per slice, in chain order (tuples).
    pub slice_state_tuples: Vec<usize>,
    /// Live state footprint per slice, in chain order (bytes).
    pub slice_state_bytes: Vec<usize>,
}

impl MeasuredParams {
    /// True when no override of any kind was observed.
    pub fn is_empty(&self) -> bool {
        self.rate_a.is_none()
            && self.rate_b.is_none()
            && self.sel_join.is_none()
            && self.csys.is_none()
            && self.slice_state_tuples.is_empty()
            && self.slice_state_bytes.is_empty()
    }

    /// Total live state across all slices, in tuples.
    pub fn state_tuples(&self) -> usize {
        self.slice_state_tuples.iter().sum()
    }

    /// Total live state across all slices, in bytes.
    pub fn state_bytes(&self) -> usize {
        self.slice_state_bytes.iter().sum()
    }

    /// Overlay the measured values onto declared chain parameters.
    ///
    /// Rates and `csys` are taken when finite and non-negative; the join
    /// selectivity additionally must land in `[0, 1]`.  Windows always come
    /// from the declaration — measurement cannot change what the queries
    /// asked for.
    pub fn apply_to(&self, declared: &ChainParams) -> ChainParams {
        let mut out = declared.clone();
        if let Some(r) = valid_rate(self.rate_a) {
            out.lambda_a = r;
        }
        if let Some(r) = valid_rate(self.rate_b) {
            out.lambda_b = r;
        }
        if let Some(s) = self
            .sel_join
            .filter(|s| s.is_finite() && (0.0..=1.0).contains(s))
        {
            out.sel_join = s;
        }
        if let Some(c) = valid_rate(self.csys) {
            out.csys = c;
        }
        out
    }
}

fn valid_rate(v: Option<f64>) -> Option<f64> {
    v.filter(|r| r.is_finite() && *r >= 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{chain_cost, mem_opt_cost};

    fn declared() -> ChainParams {
        ChainParams::symmetric(20.0, vec![10.0, 30.0], 0.1, 1.0)
    }

    #[test]
    fn empty_measurement_changes_nothing() {
        let m = MeasuredParams::default();
        assert!(m.is_empty());
        assert_eq!(m.apply_to(&declared()), declared());
        assert_eq!(m.state_tuples(), 0);
        assert_eq!(m.state_bytes(), 0);
    }

    #[test]
    fn measured_fields_override_declared_ones() {
        let m = MeasuredParams {
            rate_a: Some(35.0),
            sel_join: Some(0.004),
            ..MeasuredParams::default()
        };
        let p = m.apply_to(&declared());
        assert_eq!(p.lambda_a, 35.0);
        assert_eq!(p.lambda_b, 20.0); // untouched
        assert_eq!(p.sel_join, 0.004);
        assert_eq!(p.csys, 1.0);
        assert_eq!(p.windows, declared().windows);
    }

    #[test]
    fn out_of_range_measurements_fall_through() {
        let m = MeasuredParams {
            rate_a: Some(f64::NAN),
            rate_b: Some(-3.0),
            sel_join: Some(1.5),
            csys: Some(f64::INFINITY),
            ..MeasuredParams::default()
        };
        assert_eq!(m.apply_to(&declared()), declared());
    }

    #[test]
    fn state_vectors_sum_per_slice() {
        let m = MeasuredParams {
            slice_state_tuples: vec![100, 250],
            slice_state_bytes: vec![6_400, 16_000],
            ..MeasuredParams::default()
        };
        assert!(!m.is_empty());
        assert_eq!(m.state_tuples(), 350);
        assert_eq!(m.state_bytes(), 22_400);
    }

    #[test]
    fn recosting_with_measured_rates_scales_chain_cost() {
        let d = declared();
        let m = MeasuredParams {
            rate_a: Some(2.0 * d.lambda_a),
            rate_b: Some(2.0 * d.lambda_b),
            ..MeasuredParams::default()
        };
        let p = m.apply_to(&d);
        // Purge / system terms are linear in the rates and the probe term is
        // quadratic, so doubling both rates must more than double the cost.
        let base = mem_opt_cost(&d).total();
        let measured = mem_opt_cost(&p).total();
        assert!(measured > 2.0 * base);
        // Same monotonicity along an explicit path.
        let path = [0, 2];
        assert!(chain_cost(&p, &path).total() > chain_cost(&d, &path).total());
    }
}
