//! System parameters (Table 1 of the paper) and cost estimates.

/// Parameters of the two-query sharing scenario analysed in Section 3 of the
/// paper (queries Q1 and Q2 with windows `W1 < W2`, a selection on stream A
/// in Q2 only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemParams {
    /// Arrival rate of stream A in tuples/second (λ_A).
    pub lambda_a: f64,
    /// Arrival rate of stream B in tuples/second (λ_B).
    pub lambda_b: f64,
    /// Window size of Q1 in seconds (W1).
    pub w1: f64,
    /// Window size of Q2 in seconds (W2), with `w1 <= w2`.
    pub w2: f64,
    /// Tuple size in KB (M_t).
    pub tuple_kb: f64,
    /// Selectivity of the selection σ_A (S_σ), in `[0, 1]`.
    pub sel_filter: f64,
    /// Join selectivity (S_⋈), output / Cartesian-product output.
    pub sel_join: f64,
}

impl SystemParams {
    /// Symmetric-rate constructor matching the paper's simplification
    /// `λ_A = λ_B = λ`.
    pub fn symmetric(lambda: f64, w1: f64, w2: f64, sel_filter: f64, sel_join: f64) -> Self {
        SystemParams {
            lambda_a: lambda,
            lambda_b: lambda,
            w1,
            w2,
            tuple_kb: 1.0,
            sel_filter,
            sel_join,
        }
    }

    /// The common arrival rate λ (average of the two rates).
    pub fn lambda(&self) -> f64 {
        0.5 * (self.lambda_a + self.lambda_b)
    }

    /// The window ratio ρ = W1 / W2 used throughout Equation 4.
    pub fn rho(&self) -> f64 {
        if self.w2 <= 0.0 {
            0.0
        } else {
            self.w1 / self.w2
        }
    }

    /// Validate that the parameters are physically meaningful.
    pub fn validate(&self) -> Result<(), String> {
        if self.lambda_a < 0.0 || self.lambda_b < 0.0 {
            return Err("arrival rates must be non-negative".to_string());
        }
        if self.w1 < 0.0 || self.w2 < self.w1 {
            return Err("windows must satisfy 0 <= W1 <= W2".to_string());
        }
        if !(0.0..=1.0).contains(&self.sel_filter) {
            return Err("filter selectivity must be in [0, 1]".to_string());
        }
        if !(0.0..=1.0).contains(&self.sel_join) {
            return Err("join selectivity must be in [0, 1]".to_string());
        }
        if self.tuple_kb < 0.0 {
            return Err("tuple size must be non-negative".to_string());
        }
        Ok(())
    }
}

impl Default for SystemParams {
    fn default() -> Self {
        // The paper's running example: W1 = 1 min, W2 = 60 min, Sσ = 1 %.
        SystemParams {
            lambda_a: 10.0,
            lambda_b: 10.0,
            w1: 60.0,
            w2: 3600.0,
            tuple_kb: 1.0,
            sel_filter: 0.01,
            sel_join: 0.1,
        }
    }
}

/// An analytical cost estimate for one shared query plan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostEstimate {
    /// State-memory consumption `C_m` in KB.
    pub memory_kb: f64,
    /// CPU cost `C_p` in comparisons per second.
    pub cpu_per_sec: f64,
}

impl CostEstimate {
    /// Build an estimate from its two components.
    pub fn new(memory_kb: f64, cpu_per_sec: f64) -> Self {
        CostEstimate {
            memory_kb,
            cpu_per_sec,
        }
    }

    /// Memory expressed in tuples rather than KB.
    pub fn memory_tuples(&self, tuple_kb: f64) -> f64 {
        if tuple_kb <= 0.0 {
            0.0
        } else {
            self.memory_kb / tuple_kb
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_and_lambda() {
        let p = SystemParams::symmetric(20.0, 10.0, 30.0, 0.5, 0.1);
        assert!((p.rho() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.lambda(), 20.0);
        assert_eq!(p.tuple_kb, 1.0);
    }

    #[test]
    fn zero_w2_gives_zero_rho() {
        let p = SystemParams::symmetric(1.0, 0.0, 0.0, 0.5, 0.1);
        assert_eq!(p.rho(), 0.0);
    }

    #[test]
    fn default_matches_running_example() {
        let p = SystemParams::default();
        assert_eq!(p.w1, 60.0);
        assert_eq!(p.w2, 3600.0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let p = SystemParams {
            sel_filter: 1.5,
            ..SystemParams::default()
        };
        assert!(p.validate().is_err());
        let p = SystemParams {
            w1: 100.0,
            w2: 50.0,
            ..SystemParams::default()
        };
        assert!(p.validate().is_err());
        let p = SystemParams {
            lambda_a: -1.0,
            ..SystemParams::default()
        };
        assert!(p.validate().is_err());
        let p = SystemParams {
            sel_join: -0.1,
            ..SystemParams::default()
        };
        assert!(p.validate().is_err());
        let p = SystemParams {
            tuple_kb: -2.0,
            ..SystemParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn cost_estimate_memory_tuples() {
        let c = CostEstimate::new(100.0, 5.0);
        assert_eq!(c.memory_tuples(2.0), 50.0);
        assert_eq!(c.memory_tuples(0.0), 0.0);
    }
}
