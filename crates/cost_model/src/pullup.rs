//! Equation 1: naive sharing with selection pull-up (Section 3.1).
//!
//! The shared plan performs one sliding-window join with the larger window
//! `W2`, then routes every joined result to the registered queries and applies
//! the pulled-up selection of Q2 on the routed results.

use crate::params::{CostEstimate, SystemParams};

/// State memory `C_m` and CPU cost `C_p` of the selection pull-up plan.
///
/// ```text
/// C_m = 2 λ W2 M_t
/// C_p = 2 λ² W2  +  2 λ  +  2 λ² W2 S⋈  +  2 λ² W2 S⋈
///       (probe)    (purge)  (routing)      (selection)
/// ```
pub fn pullup_cost(p: &SystemParams) -> CostEstimate {
    let lambda = p.lambda();
    let memory_kb = 2.0 * lambda * p.w2 * p.tuple_kb;
    let probe = 2.0 * lambda * lambda * p.w2;
    let purge = 2.0 * lambda;
    let routing = 2.0 * lambda * lambda * p.w2 * p.sel_join;
    let selection = 2.0 * lambda * lambda * p.w2 * p.sel_join;
    CostEstimate::new(memory_kb, probe + purge + routing + selection)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_equation_one_by_hand() {
        // λ = 10, W2 = 100, Mt = 1, S⋈ = 0.1
        let p = SystemParams::symmetric(10.0, 10.0, 100.0, 0.5, 0.1);
        let c = pullup_cost(&p);
        assert!((c.memory_kb - 2.0 * 10.0 * 100.0).abs() < 1e-9);
        let expected_cpu = 2.0 * 100.0 * 100.0 + 2.0 * 10.0 + 2.0 * 100.0 * 100.0 * 0.1 * 2.0;
        assert!((c.cpu_per_sec - expected_cpu).abs() < 1e-9);
    }

    #[test]
    fn memory_is_independent_of_selectivities() {
        let a = pullup_cost(&SystemParams::symmetric(10.0, 10.0, 100.0, 0.1, 0.4));
        let b = pullup_cost(&SystemParams::symmetric(10.0, 10.0, 100.0, 0.9, 0.01));
        assert_eq!(a.memory_kb, b.memory_kb);
        assert!(a.cpu_per_sec > b.cpu_per_sec);
    }

    #[test]
    fn motivation_example_state_blowup() {
        // The intro example: W1 = 1 min, W2 = 60 min.  The naive shared plan
        // holds a state ~60x larger than Q1 alone would need.
        let shared = pullup_cost(&SystemParams::symmetric(10.0, 60.0, 3600.0, 0.01, 0.1));
        let q1_alone = 2.0 * 10.0 * 60.0; // 2 λ W1 Mt
        assert!(shared.memory_kb / q1_alone >= 59.0);
    }
}
