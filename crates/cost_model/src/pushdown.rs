//! Equation 2: stream partition with selection push-down (Section 3.2).
//!
//! Stream A is partitioned by the selection predicate; two joins process the
//! disjoint partitions and an order-preserving union merges their results
//! before a router dispatches them to the queries.

use crate::params::{CostEstimate, SystemParams};

/// State memory `C_m` and CPU cost `C_p` of the selection push-down plan.
///
/// ```text
/// C_m = (2 - Sσ) λ W1 M_t + (1 + Sσ) λ W2 M_t
/// C_p = λ                    (split)
///     + 2 (1 - Sσ) λ² W1     (probe of ⋈1)
///     + 2 Sσ λ² W2           (probe of ⋈2)
///     + 3 λ                  (cross-purge)
///     + 2 Sσ λ² W2 S⋈        (routing)
///     + 2 λ² W1 S⋈           (union)
/// ```
pub fn pushdown_cost(p: &SystemParams) -> CostEstimate {
    let lambda = p.lambda();
    let memory_kb = (2.0 - p.sel_filter) * lambda * p.w1 * p.tuple_kb
        + (1.0 + p.sel_filter) * lambda * p.w2 * p.tuple_kb;
    let split = lambda;
    let probe1 = 2.0 * (1.0 - p.sel_filter) * lambda * lambda * p.w1;
    let probe2 = 2.0 * p.sel_filter * lambda * lambda * p.w2;
    let purge = 3.0 * lambda;
    let routing = 2.0 * p.sel_filter * lambda * lambda * p.w2 * p.sel_join;
    let union = 2.0 * lambda * lambda * p.w1 * p.sel_join;
    CostEstimate::new(memory_kb, split + probe1 + probe2 + purge + routing + union)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pullup::pullup_cost;

    #[test]
    fn matches_equation_two_by_hand() {
        let p = SystemParams::symmetric(10.0, 10.0, 100.0, 0.5, 0.1);
        let c = pushdown_cost(&p);
        let expected_mem = (2.0 - 0.5) * 10.0 * 10.0 + (1.0 + 0.5) * 10.0 * 100.0;
        assert!((c.memory_kb - expected_mem).abs() < 1e-9);
        let expected_cpu = 10.0
            + 2.0 * 0.5 * 100.0 * 10.0
            + 2.0 * 0.5 * 100.0 * 100.0
            + 30.0
            + 2.0 * 0.5 * 100.0 * 100.0 * 0.1
            + 2.0 * 100.0 * 10.0 * 0.1;
        assert!((c.cpu_per_sec - expected_cpu).abs() < 1e-9);
    }

    #[test]
    fn pushdown_uses_less_cpu_than_pullup_with_selective_filters() {
        let p = SystemParams::symmetric(50.0, 10.0, 60.0, 0.2, 0.1);
        assert!(pushdown_cost(&p).cpu_per_sec < pullup_cost(&p).cpu_per_sec);
    }

    #[test]
    fn pushdown_can_use_more_memory_than_pullup_when_filter_is_weak() {
        // With Sσ -> 1 the partitioned plan stores B twice (B1 and B2 states
        // cannot be shared), so its memory exceeds the pull-up plan's.
        let p = SystemParams::symmetric(10.0, 30.0, 40.0, 0.95, 0.1);
        assert!(pushdown_cost(&p).memory_kb > pullup_cost(&p).memory_kb);
    }
}
