//! Equation 4: relative savings of the state-slice chain (Figure 11).
//!
//! Each saving is `(C_alt - C_slice) / C_alt`, i.e. the fraction of the
//! alternative strategy's cost that state-slicing avoids.  The paper reports
//! closed forms in terms of the window ratio `ρ = W1/W2`, the filter
//! selectivity `Sσ` and the join selectivity `S⋈`; for the CPU savings those
//! closed forms drop the terms linear in λ (cheap per-tuple overheads), which
//! is a good approximation at realistic rates.  We provide both the closed
//! forms and exact ratios computed from Equations 1–3.

use crate::params::SystemParams;
use crate::pullup::pullup_cost;
use crate::pushdown::pushdown_cost;
use crate::state_slice::state_slice_cost;

/// One point of the Figure 11 saving surfaces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SavingsPoint {
    /// Window ratio ρ = W1 / W2.
    pub rho: f64,
    /// Filter selectivity Sσ.
    pub sel_filter: f64,
    /// Join selectivity S⋈.
    pub sel_join: f64,
    /// Memory saving vs. selection pull-up, in `[0, 1]`.
    pub mem_vs_pullup: f64,
    /// Memory saving vs. selection push-down, in `[0, 1]`.
    pub mem_vs_pushdown: f64,
    /// CPU saving vs. selection pull-up, in `[0, 1]`.
    pub cpu_vs_pullup: f64,
    /// CPU saving vs. selection push-down, in `[0, 1]`.
    pub cpu_vs_pushdown: f64,
}

impl SavingsPoint {
    /// Evaluate every saving of Equation 4 (exact ratios) at one parameter
    /// combination.
    pub fn evaluate(params: &SystemParams) -> SavingsPoint {
        SavingsPoint {
            rho: params.rho(),
            sel_filter: params.sel_filter,
            sel_join: params.sel_join,
            mem_vs_pullup: mem_saving_vs_pullup(params),
            mem_vs_pushdown: mem_saving_vs_pushdown(params),
            cpu_vs_pullup: cpu_saving_vs_pullup(params),
            cpu_vs_pushdown: cpu_saving_vs_pushdown(params),
        }
    }
}

fn ratio(alt: f64, slice: f64) -> f64 {
    if alt <= 0.0 {
        0.0
    } else {
        (alt - slice) / alt
    }
}

/// Exact memory saving vs. the selection pull-up plan.
pub fn mem_saving_vs_pullup(p: &SystemParams) -> f64 {
    ratio(pullup_cost(p).memory_kb, state_slice_cost(p).memory_kb)
}

/// Exact memory saving vs. the selection push-down plan.
pub fn mem_saving_vs_pushdown(p: &SystemParams) -> f64 {
    ratio(pushdown_cost(p).memory_kb, state_slice_cost(p).memory_kb)
}

/// Exact CPU saving vs. the selection pull-up plan.
pub fn cpu_saving_vs_pullup(p: &SystemParams) -> f64 {
    ratio(pullup_cost(p).cpu_per_sec, state_slice_cost(p).cpu_per_sec)
}

/// Exact CPU saving vs. the selection push-down plan.
pub fn cpu_saving_vs_pushdown(p: &SystemParams) -> f64 {
    ratio(
        pushdown_cost(p).cpu_per_sec,
        state_slice_cost(p).cpu_per_sec,
    )
}

/// Closed form of the memory saving vs. pull-up:
/// `(1 - ρ)(1 - Sσ) / 2`.
pub fn mem_saving_vs_pullup_closed_form(rho: f64, sel_filter: f64) -> f64 {
    (1.0 - rho) * (1.0 - sel_filter) / 2.0
}

/// Closed form of the memory saving vs. push-down:
/// `ρ / (1 + 2ρ + (1 - ρ) Sσ)`.
pub fn mem_saving_vs_pushdown_closed_form(rho: f64, sel_filter: f64) -> f64 {
    let denom = 1.0 + 2.0 * rho + (1.0 - rho) * sel_filter;
    if denom <= 0.0 {
        0.0
    } else {
        rho / denom
    }
}

/// Closed form of the CPU saving vs. pull-up (λ-linear terms dropped):
/// `((1 - ρ)(1 - Sσ) + (2 - ρ) S⋈) / (1 + 2 S⋈)`.
pub fn cpu_saving_vs_pullup_closed_form(rho: f64, sel_filter: f64, sel_join: f64) -> f64 {
    ((1.0 - rho) * (1.0 - sel_filter) + (2.0 - rho) * sel_join) / (1.0 + 2.0 * sel_join)
}

/// Closed form of the CPU saving vs. push-down (λ-linear terms dropped):
/// `Sσ S⋈ / (ρ (1 - Sσ) + Sσ + Sσ S⋈ + ρ S⋈)`.
pub fn cpu_saving_vs_pushdown_closed_form(rho: f64, sel_filter: f64, sel_join: f64) -> f64 {
    let denom = rho * (1.0 - sel_filter) + sel_filter + sel_filter * sel_join + rho * sel_join;
    if denom <= 0.0 {
        0.0
    } else {
        sel_filter * sel_join / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(rho: f64, sel_filter: f64, sel_join: f64, lambda: f64) -> SystemParams {
        let w2 = 100.0;
        SystemParams::symmetric(lambda, rho * w2, w2, sel_filter, sel_join)
    }

    #[test]
    fn closed_form_memory_savings_match_exact_ratios() {
        for &rho in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            for &s in &[0.0, 0.2, 0.5, 0.8, 1.0] {
                let p = params(rho, s, 0.1, 50.0);
                let exact = mem_saving_vs_pullup(&p);
                let closed = mem_saving_vs_pullup_closed_form(rho, s);
                assert!(
                    (exact - closed).abs() < 1e-9,
                    "pull-up memory mismatch at rho={rho}, s={s}: {exact} vs {closed}"
                );
                let exact = mem_saving_vs_pushdown(&p);
                let closed = mem_saving_vs_pushdown_closed_form(rho, s);
                assert!(
                    (exact - closed).abs() < 1e-9,
                    "push-down memory mismatch at rho={rho}, s={s}: {exact} vs {closed}"
                );
            }
        }
    }

    #[test]
    fn closed_form_cpu_savings_approximate_exact_ratios_at_high_rate() {
        // The closed forms drop λ-linear terms; at high λ they converge to the
        // exact ratios.
        for &rho in &[0.1, 0.5, 0.9] {
            for &s in &[0.2, 0.5, 0.8] {
                for &sj in &[0.025, 0.1, 0.4] {
                    let p = params(rho, s, sj, 10_000.0);
                    let exact = cpu_saving_vs_pullup(&p);
                    let closed = cpu_saving_vs_pullup_closed_form(rho, s, sj);
                    assert!(
                        (exact - closed).abs() < 0.01,
                        "pull-up cpu mismatch at rho={rho}, s={s}, sj={sj}: {exact} vs {closed}"
                    );
                    let exact = cpu_saving_vs_pushdown(&p);
                    let closed = cpu_saving_vs_pushdown_closed_form(rho, s, sj);
                    assert!(
                        (exact - closed).abs() < 0.01,
                        "push-down cpu mismatch at rho={rho}, s={s}, sj={sj}: {exact} vs {closed}"
                    );
                }
            }
        }
    }

    #[test]
    fn closed_form_savings_are_non_negative_everywhere() {
        // The paper: "from Eq. 4 we can see that all the savings are positive".
        // (The closed forms ignore the λ-linear per-tuple overheads.)
        for &rho in &[0.05, 0.3, 0.6, 0.95] {
            for &s in &[0.0, 0.3, 0.7, 1.0] {
                for &sj in &[0.0, 0.1, 0.4] {
                    assert!(mem_saving_vs_pullup_closed_form(rho, s) >= -1e-12);
                    assert!(mem_saving_vs_pushdown_closed_form(rho, s) >= -1e-12);
                    assert!(cpu_saving_vs_pullup_closed_form(rho, s, sj) >= -1e-12);
                    assert!(cpu_saving_vs_pushdown_closed_form(rho, s, sj) >= -1e-12);
                    assert!(mem_saving_vs_pullup_closed_form(rho, s) <= 1.0);
                    assert!(cpu_saving_vs_pullup_closed_form(rho, s, sj) <= 1.0);
                }
            }
        }
    }

    #[test]
    fn exact_savings_are_non_negative_for_moderate_settings() {
        // The experimental section uses "moderate instead of extreme"
        // settings (Sσ in 0.2..0.8, S⋈ >= 0.025); for those the exact ratios
        // (including the λ-linear terms) are non-negative too.
        for &rho in &[0.1, 0.3, 0.6, 0.9] {
            for &s in &[0.2, 0.5, 0.8] {
                for &sj in &[0.025, 0.1, 0.4] {
                    let p = params(rho, s, sj, 40.0);
                    let pt = SavingsPoint::evaluate(&p);
                    assert!(pt.mem_vs_pullup >= -1e-12);
                    assert!(pt.mem_vs_pushdown >= -1e-12);
                    assert!(pt.cpu_vs_pullup >= -1e-12);
                    assert!(pt.cpu_vs_pushdown >= -1e-12);
                }
            }
        }
    }

    #[test]
    fn extreme_settings_reach_the_paper_headline_numbers() {
        // Figure 11(a)/(b): memory savings approach ~50 % and CPU savings
        // approach ~100 % for extreme parameter combinations.
        let best_mem = mem_saving_vs_pullup_closed_form(0.01, 0.01);
        assert!(best_mem > 0.48);
        let best_cpu = cpu_saving_vs_pullup_closed_form(0.01, 0.01, 0.4);
        assert!(best_cpu > 0.9);
    }

    #[test]
    fn no_selection_base_case() {
        // Sσ = 1: same memory as pull-up, CPU saving proportional to S⋈.
        let p = params(0.3, 1.0, 0.2, 100.0);
        assert!(mem_saving_vs_pullup(&p).abs() < 1e-9);
        assert!(cpu_saving_vs_pullup(&p) > 0.0);
        let small = cpu_saving_vs_pullup_closed_form(0.3, 1.0, 0.05);
        let large = cpu_saving_vs_pullup_closed_form(0.3, 1.0, 0.4);
        assert!(large > small);
    }

    #[test]
    fn degenerate_denominators_yield_zero() {
        assert_eq!(mem_saving_vs_pushdown_closed_form(0.0, 0.0), 0.0);
        assert_eq!(cpu_saving_vs_pushdown_closed_form(0.0, 0.0, 0.0), 0.0);
        let zero = SystemParams::symmetric(0.0, 0.0, 0.0, 0.5, 0.1);
        assert_eq!(mem_saving_vs_pullup(&zero), 0.0);
        assert_eq!(cpu_saving_vs_pullup(&zero), 0.0);
    }
}
