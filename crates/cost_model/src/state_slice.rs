//! Equation 3: the state-slice chain (Section 4.3).
//!
//! The shared plan is a chain of two sliced binary window joins
//! `⋈ˢ1 = A[0,W1] ⋈ˢ B[0,W1]` and `⋈ˢ2 = A[W1,W2] ⋈ˢ B[W1,W2]`, with the
//! selection σ_A pushed between them and σ'_A applied to ⋈ˢ1's output for Q2.

use crate::params::{CostEstimate, SystemParams};

/// State memory `C_m` and CPU cost `C_p` of the state-slice chain plan.
///
/// ```text
/// C_m = 2 λ W1 M_t + (1 + Sσ) λ (W2 - W1) M_t
/// C_p = 2 λ² W1              (probe of ⋈ˢ1)
///     + λ                    (filter σ_A)
///     + 2 λ² Sσ (W2 - W1)    (probe of ⋈ˢ2)
///     + 4 λ                  (cross-purge, both slices)
///     + 2 λ                  (union)
///     + 2 λ² S⋈ W1           (filter σ'_A on ⋈ˢ1 results)
/// ```
pub fn state_slice_cost(p: &SystemParams) -> CostEstimate {
    let lambda = p.lambda();
    let dw = (p.w2 - p.w1).max(0.0);
    let memory_kb =
        2.0 * lambda * p.w1 * p.tuple_kb + (1.0 + p.sel_filter) * lambda * dw * p.tuple_kb;
    let probe1 = 2.0 * lambda * lambda * p.w1;
    let filter = lambda;
    let probe2 = 2.0 * lambda * lambda * p.sel_filter * dw;
    let purge = 4.0 * lambda;
    let union = 2.0 * lambda;
    let residual_filter = 2.0 * lambda * lambda * p.sel_join * p.w1;
    CostEstimate::new(
        memory_kb,
        probe1 + filter + probe2 + purge + union + residual_filter,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pullup::pullup_cost;
    use crate::pushdown::pushdown_cost;

    #[test]
    fn matches_equation_three_by_hand() {
        let p = SystemParams::symmetric(10.0, 10.0, 100.0, 0.5, 0.1);
        let c = state_slice_cost(&p);
        let expected_mem = 2.0 * 10.0 * 10.0 + 1.5 * 10.0 * 90.0;
        assert!((c.memory_kb - expected_mem).abs() < 1e-9);
        let expected_cpu = 2.0 * 100.0 * 10.0
            + 10.0
            + 2.0 * 100.0 * 0.5 * 90.0
            + 40.0
            + 20.0
            + 2.0 * 100.0 * 0.1 * 10.0;
        assert!((c.cpu_per_sec - expected_cpu).abs() < 1e-9);
    }

    #[test]
    fn state_slice_never_uses_more_memory_than_alternatives() {
        // Sweep a grid of parameters; Equation 4 shows all savings are
        // non-negative.
        for &rho in &[0.1, 0.3, 0.5, 0.9] {
            for &s_sigma in &[0.0, 0.2, 0.5, 0.8, 1.0] {
                for &s_join in &[0.025, 0.1, 0.4] {
                    let w2 = 60.0;
                    let p = SystemParams::symmetric(20.0, rho * w2, w2, s_sigma, s_join);
                    let ss = state_slice_cost(&p);
                    assert!(ss.memory_kb <= pullup_cost(&p).memory_kb + 1e-9);
                    assert!(ss.memory_kb <= pushdown_cost(&p).memory_kb + 1e-9);
                }
            }
        }
    }

    #[test]
    fn state_slice_never_uses_more_cpu_than_alternatives() {
        for &rho in &[0.1, 0.3, 0.5, 0.9] {
            for &s_sigma in &[0.05, 0.2, 0.5, 0.8, 1.0] {
                for &s_join in &[0.025, 0.1, 0.4] {
                    let w2 = 60.0;
                    let p = SystemParams::symmetric(20.0, rho * w2, w2, s_sigma, s_join);
                    let ss = state_slice_cost(&p);
                    assert!(ss.cpu_per_sec <= pullup_cost(&p).cpu_per_sec + 1e-9);
                    assert!(ss.cpu_per_sec <= pushdown_cost(&p).cpu_per_sec + 1e-9);
                }
            }
        }
    }

    #[test]
    fn no_selection_means_same_memory_as_pullup() {
        // Base case from Section 4.3: Sσ = 1 gives equal memory and a CPU
        // saving proportional to S⋈.
        let p = SystemParams::symmetric(30.0, 15.0, 45.0, 1.0, 0.2);
        let ss = state_slice_cost(&p);
        let pu = pullup_cost(&p);
        assert!((ss.memory_kb - pu.memory_kb).abs() < 1e-9);
        assert!(ss.cpu_per_sec < pu.cpu_per_sec);
    }
}
