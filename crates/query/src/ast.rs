//! Abstract syntax tree for the window-extended SQL-like query language.
//!
//! The grammar covers the query shape the paper works with (Section 1):
//!
//! ```sql
//! SELECT A.* FROM Temperature A, Humidity B
//! WHERE A.LocationId = B.LocationId AND A.Value > 100
//! WINDOW 60 min
//! ```

use streamkit::{CmpOp, TimeDelta, Value};

/// A reference to a column of one of the two input streams, `alias.column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// The stream alias (`A`, `B`, ...).
    pub stream: String,
    /// The column name, or `*` for a whole-stream projection.
    pub column: String,
}

impl ColumnRef {
    /// Convenience constructor.
    pub fn new(stream: &str, column: &str) -> Self {
        ColumnRef {
            stream: stream.to_string(),
            column: column.to_string(),
        }
    }
}

/// The projection list of a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT alias.*`
    Star(String),
    /// `SELECT a.x, b.y, ...`
    Columns(Vec<ColumnRef>),
}

/// One stream in the `FROM` clause: `StreamName Alias`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamRef {
    /// The registered stream name (`Temperature`).
    pub name: String,
    /// The alias used in the rest of the query (`A`).
    pub alias: String,
}

/// One conjunct of the `WHERE` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// An equi-join predicate between two streams: `A.x = B.y`.
    Join {
        /// Left column.
        left: ColumnRef,
        /// Right column.
        right: ColumnRef,
    },
    /// A selection on one stream: `A.x > 10`.
    Filter {
        /// Filtered column.
        column: ColumnRef,
        /// Comparison operator.
        op: CmpOp,
        /// Constant operand.
        value: Value,
    },
}

/// A parsed continuous query.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Projection list.
    pub projection: Projection,
    /// The two input streams.
    pub streams: Vec<StreamRef>,
    /// `WHERE` conjuncts (joins and selections).
    pub conditions: Vec<Condition>,
    /// The sliding-window size from the `WINDOW` clause.
    pub window: TimeDelta,
}

impl QuerySpec {
    /// The join conjuncts.
    pub fn join_conditions(&self) -> Vec<&Condition> {
        self.conditions
            .iter()
            .filter(|c| matches!(c, Condition::Join { .. }))
            .collect()
    }

    /// The selection conjuncts restricted to the given stream alias.
    pub fn filters_on(&self, alias: &str) -> Vec<&Condition> {
        self.conditions
            .iter()
            .filter(|c| matches!(c, Condition::Filter { column, .. } if column.stream == alias))
            .collect()
    }

    /// Resolve a stream alias to its position in the `FROM` clause.
    pub fn alias_position(&self, alias: &str) -> Option<usize> {
        self.streams.iter().position(|s| s.alias == alias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> QuerySpec {
        QuerySpec {
            projection: Projection::Star("A".into()),
            streams: vec![
                StreamRef {
                    name: "Temperature".into(),
                    alias: "A".into(),
                },
                StreamRef {
                    name: "Humidity".into(),
                    alias: "B".into(),
                },
            ],
            conditions: vec![
                Condition::Join {
                    left: ColumnRef::new("A", "LocationId"),
                    right: ColumnRef::new("B", "LocationId"),
                },
                Condition::Filter {
                    column: ColumnRef::new("A", "Value"),
                    op: CmpOp::Gt,
                    value: Value::Int(100),
                },
            ],
            window: TimeDelta::from_secs(60),
        }
    }

    #[test]
    fn accessors_partition_conditions() {
        let q = spec();
        assert_eq!(q.join_conditions().len(), 1);
        assert_eq!(q.filters_on("A").len(), 1);
        assert_eq!(q.filters_on("B").len(), 0);
        assert_eq!(q.alias_position("A"), Some(0));
        assert_eq!(q.alias_position("B"), Some(1));
        assert_eq!(q.alias_position("C"), None);
    }
}
