//! Tokenizer for the SQL-like continuous query language.

use streamkit::error::{Result, StreamError};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (case preserved for identifiers).
    Ident(String),
    /// Numeric literal (integer or decimal).
    Number(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Token {
    /// `true` if this token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize query text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                tokens.push(Token::Ne);
                i += 2;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut end = start;
                while end < chars.len() && chars[end] != '\'' {
                    end += 1;
                }
                if end >= chars.len() {
                    return Err(StreamError::Parse("unterminated string literal".into()));
                }
                tokens.push(Token::Str(chars[start..end].iter().collect()));
                i = end + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let value: f64 = text
                    .parse()
                    .map_err(|_| StreamError::Parse(format!("invalid number '{text}'")))?;
                tokens.push(Token::Number(value));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(StreamError::Parse(format!(
                    "unexpected character '{other}' at offset {i}"
                )))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_the_paper_example() {
        let toks = tokenize(
            "SELECT A.* FROM Temperature A, Humidity B \
             WHERE A.LocationId=B.LocationId AND A.Value>100 WINDOW 60 min",
        )
        .unwrap();
        assert!(toks[0].is_keyword("select"));
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Gt));
        assert!(toks.contains(&Token::Number(100.0)));
        assert!(toks.iter().any(|t| t.is_keyword("window")));
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("a >= 1 b <= 2 c != 3 d <> 4 e < 5 f > 6 g = 7").unwrap();
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Le));
        assert_eq!(toks.iter().filter(|t| **t == Token::Ne).count(), 2);
        assert!(toks.contains(&Token::Lt));
        assert!(toks.contains(&Token::Gt));
        assert!(toks.contains(&Token::Eq));
    }

    #[test]
    fn string_literals_and_decimals() {
        let toks = tokenize("x = 'hello world' AND y > 2.5").unwrap();
        assert!(toks.contains(&Token::Str("hello world".into())));
        assert!(toks.contains(&Token::Number(2.5)));
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(tokenize("a = 'unterminated").is_err());
        assert!(tokenize("a # b").is_err());
        assert!(tokenize("1.2.3").is_err());
    }

    #[test]
    fn empty_input_is_empty_token_stream() {
        assert!(tokenize("   ").unwrap().is_empty());
    }
}
