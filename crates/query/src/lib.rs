//! SQL-like continuous query language with a `WINDOW` clause.
//!
//! The paper's running example (Section 1) writes continuous queries as
//!
//! ```sql
//! SELECT A.* FROM Temperature A, Humidity B
//! WHERE A.LocationId = B.LocationId AND A.Value > 100
//! WINDOW 60 min
//! ```
//!
//! This crate provides the [`lexer`], [`parser`] and [`ast`] for that
//! language, plus a [`translate`] step that resolves column names against
//! registered stream [`Schema`](streamkit::Schema)s and produces the
//! [`JoinCondition`](streamkit::JoinCondition) / [`Predicate`](streamkit::Predicate)
//! / window triple the plan builders consume.
//!
//! ```
//! use ss_query::{parse_query, translate, SchemaRegistry};
//! use streamkit::{Schema, TimeDelta};
//! use streamkit::tuple::{DataType, Field};
//!
//! let mut schemas = SchemaRegistry::new();
//! schemas.register("Temperature", Schema::new(vec![
//!     Field::new("LocationId", DataType::Int),
//!     Field::new("Value", DataType::Float),
//! ]));
//! schemas.register("Humidity", Schema::new(vec![
//!     Field::new("LocationId", DataType::Int),
//! ]));
//!
//! let spec = parse_query(
//!     "SELECT A.* FROM Temperature A, Humidity B \
//!      WHERE A.LocationId = B.LocationId WINDOW 1 min",
//! ).unwrap();
//! let q = translate(&spec, &schemas).unwrap();
//! assert_eq!(q.window, TimeDelta::from_secs(60));
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod translate;

pub use ast::{ColumnRef, Condition, Projection, QuerySpec, StreamRef};
pub use lexer::{tokenize, Token};
pub use parser::parse_query;
pub use translate::{translate, SchemaRegistry, TranslatedQuery};
