//! Recursive-descent parser for the SQL-like continuous query language.

use streamkit::error::{Result, StreamError};
use streamkit::{CmpOp, TimeDelta, Value};

use crate::ast::{ColumnRef, Condition, Projection, QuerySpec, StreamRef};
use crate::lexer::{tokenize, Token};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(t) if t.is_keyword(kw) => Ok(()),
            other => Err(StreamError::Parse(format!(
                "expected keyword '{kw}', found {other:?}"
            ))),
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(StreamError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn expect(&mut self, token: Token) -> Result<()> {
        match self.next() {
            Some(t) if t == token => Ok(()),
            other => Err(StreamError::Parse(format!(
                "expected {token:?}, found {other:?}"
            ))),
        }
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let stream = self.expect_ident()?;
        self.expect(Token::Dot)?;
        let column = match self.next() {
            Some(Token::Ident(c)) => c,
            Some(Token::Star) => "*".to_string(),
            other => {
                return Err(StreamError::Parse(format!(
                    "expected column name, found {other:?}"
                )))
            }
        };
        Ok(ColumnRef { stream, column })
    }

    fn projection(&mut self) -> Result<Projection> {
        let first = self.column_ref()?;
        if first.column == "*" {
            return Ok(Projection::Star(first.stream));
        }
        let mut cols = vec![first];
        while self.peek() == Some(&Token::Comma) {
            // Lookahead: the FROM clause also starts after a comma-free list,
            // so only consume the comma if a column reference follows.
            let save = self.pos;
            self.next();
            match self.column_ref() {
                Ok(c) if c.column != "*" => cols.push(c),
                _ => {
                    self.pos = save;
                    break;
                }
            }
        }
        Ok(Projection::Columns(cols))
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        match self.next() {
            Some(Token::Eq) => Ok(CmpOp::Eq),
            Some(Token::Ne) => Ok(CmpOp::Ne),
            Some(Token::Lt) => Ok(CmpOp::Lt),
            Some(Token::Le) => Ok(CmpOp::Le),
            Some(Token::Gt) => Ok(CmpOp::Gt),
            Some(Token::Ge) => Ok(CmpOp::Ge),
            other => Err(StreamError::Parse(format!(
                "expected a comparison operator, found {other:?}"
            ))),
        }
    }

    fn condition(&mut self) -> Result<Condition> {
        let left = self.column_ref()?;
        let op = self.cmp_op()?;
        match self.peek().cloned() {
            Some(Token::Ident(_)) => {
                // Column on the right side: a join predicate (must be `=`).
                let right = self.column_ref()?;
                if op != CmpOp::Eq {
                    return Err(StreamError::Parse(
                        "join predicates must use '=' (equi-join)".to_string(),
                    ));
                }
                Ok(Condition::Join { left, right })
            }
            Some(Token::Number(n)) => {
                self.next();
                let value = if n.fract() == 0.0 {
                    Value::Int(n as i64)
                } else {
                    Value::Float(n)
                };
                Ok(Condition::Filter {
                    column: left,
                    op,
                    value,
                })
            }
            Some(Token::Str(s)) => {
                self.next();
                Ok(Condition::Filter {
                    column: left,
                    op,
                    value: Value::str(&s),
                })
            }
            other => Err(StreamError::Parse(format!(
                "expected a column, number or string on the right-hand side, found {other:?}"
            ))),
        }
    }

    fn window(&mut self) -> Result<TimeDelta> {
        let amount = match self.next() {
            Some(Token::Number(n)) if n > 0.0 => n,
            other => {
                return Err(StreamError::Parse(format!(
                    "expected a positive window length, found {other:?}"
                )))
            }
        };
        let unit = match self.next() {
            Some(Token::Ident(u)) => u.to_ascii_lowercase(),
            None => "sec".to_string(),
            other => {
                return Err(StreamError::Parse(format!(
                    "expected a time unit, found {other:?}"
                )))
            }
        };
        let seconds = match unit.as_str() {
            "ms" | "msec" | "millisecond" | "milliseconds" => amount / 1000.0,
            "s" | "sec" | "secs" | "second" | "seconds" => amount,
            "min" | "mins" | "minute" | "minutes" => amount * 60.0,
            "h" | "hour" | "hours" => amount * 3600.0,
            other => return Err(StreamError::Parse(format!("unknown time unit '{other}'"))),
        };
        // `TimeDelta::from_secs_f64` saturates; a window the engine cannot
        // represent must be rejected here, not silently clamped to ~584k
        // years.
        let micros = seconds * 1e6;
        if !micros.is_finite() || micros >= u64::MAX as f64 {
            return Err(StreamError::Parse(format!(
                "window length {seconds} seconds is out of range"
            )));
        }
        Ok(TimeDelta::from_secs_f64(seconds))
    }
}

/// Parse one continuous query.
pub fn parse_query(text: &str) -> Result<QuerySpec> {
    let mut p = Parser {
        tokens: tokenize(text)?,
        pos: 0,
    };
    p.expect_keyword("SELECT")?;
    let projection = p.projection()?;
    p.expect_keyword("FROM")?;
    let mut streams = Vec::new();
    loop {
        let name = p.expect_ident()?;
        let alias = p.expect_ident()?;
        streams.push(StreamRef { name, alias });
        if p.peek() == Some(&Token::Comma) {
            p.next();
        } else {
            break;
        }
    }
    if streams.len() != 2 {
        return Err(StreamError::Parse(format!(
            "expected exactly two streams in the FROM clause, found {}",
            streams.len()
        )));
    }
    let mut conditions = Vec::new();
    if p.peek().map(|t| t.is_keyword("WHERE")).unwrap_or(false) {
        p.next();
        loop {
            conditions.push(p.condition()?);
            if p.peek().map(|t| t.is_keyword("AND")).unwrap_or(false) {
                p.next();
            } else {
                break;
            }
        }
    }
    p.expect_keyword("WINDOW")?;
    let window = p.window()?;
    if p.peek().is_some() {
        return Err(StreamError::Parse(format!(
            "unexpected trailing tokens starting at {:?}",
            p.peek()
        )));
    }
    Ok(QuerySpec {
        projection,
        streams,
        conditions,
        window,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q2: &str = "SELECT A.* FROM Temperature A, Humidity B \
                      WHERE A.LocationId=B.LocationId AND A.Value>100 WINDOW 60 min";

    #[test]
    fn parses_the_paper_example() {
        let q = parse_query(Q2).unwrap();
        assert_eq!(q.projection, Projection::Star("A".into()));
        assert_eq!(q.streams.len(), 2);
        assert_eq!(q.streams[0].name, "Temperature");
        assert_eq!(q.streams[1].alias, "B");
        assert_eq!(q.conditions.len(), 2);
        assert_eq!(q.window, TimeDelta::from_secs(3600));
        assert_eq!(q.join_conditions().len(), 1);
        assert_eq!(q.filters_on("A").len(), 1);
    }

    #[test]
    fn parses_without_selection_and_with_seconds() {
        let q =
            parse_query("SELECT A.* FROM T A, H B WHERE A.LocationId = B.LocationId WINDOW 1 sec")
                .unwrap();
        assert_eq!(q.conditions.len(), 1);
        assert_eq!(q.window, TimeDelta::from_secs(1));
    }

    #[test]
    fn parses_explicit_column_projection_and_float_filter() {
        let q = parse_query(
            "SELECT A.temp, B.humidity FROM T A, H B \
             WHERE A.id = B.id AND B.humidity >= 0.75 WINDOW 500 ms",
        )
        .unwrap();
        match &q.projection {
            Projection::Columns(cols) => assert_eq!(cols.len(), 2),
            other => panic!("unexpected projection {other:?}"),
        }
        assert_eq!(q.filters_on("B").len(), 1);
        assert_eq!(q.window, TimeDelta::from_millis(500));
    }

    #[test]
    fn window_units() {
        for (text, secs) in [("2 hour", 7200.0), ("90 seconds", 90.0), ("3 min", 180.0)] {
            let q = parse_query(&format!(
                "SELECT A.* FROM T A, H B WHERE A.x = B.x WINDOW {text}"
            ))
            .unwrap();
            assert_eq!(q.window, TimeDelta::from_secs_f64(secs));
        }
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_query("SELECT FROM T A, H B WINDOW 1 sec").is_err());
        assert!(parse_query("SELECT A.* FROM T A WINDOW 1 sec").is_err());
        assert!(parse_query("SELECT A.* FROM T A, H B WHERE A.x > B.y WINDOW 1 sec").is_err());
        assert!(parse_query("SELECT A.* FROM T A, H B WINDOW 0 sec").is_err());
        assert!(parse_query("SELECT A.* FROM T A, H B WINDOW 5 lightyears").is_err());
        assert!(parse_query("SELECT A.* FROM T A, H B WINDOW 5 sec trailing junk").is_err());
    }

    #[test]
    fn string_filters_are_supported() {
        let q = parse_query(
            "SELECT A.* FROM T A, H B WHERE A.id = B.id AND A.city = 'Seoul' WINDOW 10 sec",
        )
        .unwrap();
        assert_eq!(q.filters_on("A").len(), 1);
    }
}
