//! Translate parsed queries into executable join / selection specifications.
//!
//! Column names are resolved against registered stream schemas, producing the
//! [`JoinCondition`] and per-stream [`Predicate`]s that the chain planner and
//! the baseline plan builders consume.

use std::collections::HashMap;

use streamkit::error::{Result, StreamError};
use streamkit::{JoinCondition, Predicate, Schema, TimeDelta};

use crate::ast::{Condition, Projection, QuerySpec};

/// Registered stream schemas, keyed by stream name.
#[derive(Debug, Default, Clone)]
pub struct SchemaRegistry {
    schemas: HashMap<String, Schema>,
}

impl SchemaRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SchemaRegistry::default()
    }

    /// Register (or replace) a stream schema.
    pub fn register(&mut self, stream: &str, schema: Schema) -> &mut Self {
        self.schemas.insert(stream.to_string(), schema);
        self
    }

    /// Look up a stream schema.
    pub fn get(&self, stream: &str) -> Option<&Schema> {
        self.schemas.get(stream)
    }
}

/// The executable form of one continuous query.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslatedQuery {
    /// Sliding-window size.
    pub window: TimeDelta,
    /// The join condition between the first (A) and second (B) stream.
    pub join_condition: JoinCondition,
    /// Conjunction of the selections on the first stream.
    pub filter_a: Predicate,
    /// Conjunction of the selections on the second stream.
    pub filter_b: Predicate,
    /// Projected column indexes of the joined tuple, or `None` for `*`.
    pub projection: Option<Vec<usize>>,
}

/// Translate a parsed query against the registered schemas.
pub fn translate(spec: &QuerySpec, registry: &SchemaRegistry) -> Result<TranslatedQuery> {
    let a = &spec.streams[0];
    let b = &spec.streams[1];
    let schema_a = registry
        .get(&a.name)
        .ok_or_else(|| StreamError::SchemaMismatch(format!("unknown stream '{}'", a.name)))?;
    let schema_b = registry
        .get(&b.name)
        .ok_or_else(|| StreamError::SchemaMismatch(format!("unknown stream '{}'", b.name)))?;

    let resolve = |alias: &str, column: &str| -> Result<(usize, bool)> {
        // Returns (column index, is_stream_a).
        if alias == a.alias {
            schema_a
                .index_of(column)
                .map(|i| (i, true))
                .ok_or_else(|| column_error(&a.name, column))
        } else if alias == b.alias {
            schema_b
                .index_of(column)
                .map(|i| (i, false))
                .ok_or_else(|| column_error(&b.name, column))
        } else {
            Err(StreamError::SchemaMismatch(format!(
                "unknown stream alias '{alias}'"
            )))
        }
    };

    let mut join_condition: Option<JoinCondition> = None;
    let mut filter_a = Predicate::True;
    let mut filter_b = Predicate::True;
    for cond in &spec.conditions {
        match cond {
            Condition::Join { left, right } => {
                let (l_idx, l_is_a) = resolve(&left.stream, &left.column)?;
                let (r_idx, r_is_a) = resolve(&right.stream, &right.column)?;
                if l_is_a == r_is_a {
                    return Err(StreamError::SchemaMismatch(
                        "join predicates must reference both streams".to_string(),
                    ));
                }
                let (left_field, right_field) = if l_is_a {
                    (l_idx, r_idx)
                } else {
                    (r_idx, l_idx)
                };
                let this = JoinCondition::Equi {
                    left_field,
                    right_field,
                };
                join_condition = Some(match join_condition.take() {
                    None => this,
                    Some(existing) => JoinCondition::And(Box::new(existing), Box::new(this)),
                });
            }
            Condition::Filter { column, op, value } => {
                let (idx, is_a) = resolve(&column.stream, &column.column)?;
                let pred = Predicate::cmp(idx, *op, value.clone());
                if is_a {
                    filter_a = filter_a.and(pred);
                } else {
                    filter_b = filter_b.and(pred);
                }
            }
        }
    }
    let join_condition = join_condition.ok_or_else(|| {
        StreamError::SchemaMismatch("the query has no join predicate".to_string())
    })?;

    let projection = match &spec.projection {
        Projection::Star(_) => None,
        Projection::Columns(cols) => {
            let mut indexes = Vec::with_capacity(cols.len());
            for c in cols {
                let (idx, is_a) = resolve(&c.stream, &c.column)?;
                // Joined tuples concatenate A's columns before B's.
                indexes.push(if is_a { idx } else { schema_a.len() + idx });
            }
            Some(indexes)
        }
    };

    Ok(TranslatedQuery {
        window: spec.window,
        join_condition,
        filter_a,
        filter_b,
        projection,
    })
}

fn column_error(stream: &str, column: &str) -> StreamError {
    StreamError::SchemaMismatch(format!("stream '{stream}' has no column '{column}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use streamkit::tuple::{DataType, Field};

    fn registry() -> SchemaRegistry {
        let mut r = SchemaRegistry::new();
        r.register(
            "Temperature",
            Schema::new(vec![
                Field::new("LocationId", DataType::Int),
                Field::new("Value", DataType::Float),
            ]),
        );
        r.register(
            "Humidity",
            Schema::new(vec![
                Field::new("LocationId", DataType::Int),
                Field::new("Humidity", DataType::Float),
            ]),
        );
        r
    }

    #[test]
    fn translates_the_paper_example() {
        let q = parse_query(
            "SELECT A.* FROM Temperature A, Humidity B \
             WHERE A.LocationId=B.LocationId AND A.Value>100 WINDOW 60 min",
        )
        .unwrap();
        let t = translate(&q, &registry()).unwrap();
        assert_eq!(t.window, TimeDelta::from_secs(3600));
        assert_eq!(
            t.join_condition,
            JoinCondition::Equi {
                left_field: 0,
                right_field: 0
            }
        );
        assert_ne!(t.filter_a, Predicate::True);
        assert_eq!(t.filter_b, Predicate::True);
        assert_eq!(t.projection, None);
    }

    #[test]
    fn projection_indexes_span_both_streams() {
        let q = parse_query(
            "SELECT A.Value, B.Humidity FROM Temperature A, Humidity B \
             WHERE A.LocationId=B.LocationId WINDOW 10 sec",
        )
        .unwrap();
        let t = translate(&q, &registry()).unwrap();
        assert_eq!(t.projection, Some(vec![1, 3]));
    }

    #[test]
    fn filters_on_stream_b_are_separated() {
        let q = parse_query(
            "SELECT A.* FROM Temperature A, Humidity B \
             WHERE A.LocationId=B.LocationId AND B.Humidity >= 0.8 WINDOW 10 sec",
        )
        .unwrap();
        let t = translate(&q, &registry()).unwrap();
        assert_eq!(t.filter_a, Predicate::True);
        assert_ne!(t.filter_b, Predicate::True);
    }

    #[test]
    fn errors_cover_unknown_entities_and_missing_joins() {
        let r = registry();
        let q = parse_query(
            "SELECT A.* FROM Nowhere A, Humidity B WHERE A.x=B.LocationId WINDOW 1 sec",
        )
        .unwrap();
        assert!(translate(&q, &r).is_err());
        let q = parse_query(
            "SELECT A.* FROM Temperature A, Humidity B WHERE A.Bogus=B.LocationId WINDOW 1 sec",
        )
        .unwrap();
        assert!(translate(&q, &r).is_err());
        let q = parse_query(
            "SELECT A.* FROM Temperature A, Humidity B WHERE A.Value > 10 WINDOW 1 sec",
        )
        .unwrap();
        assert!(translate(&q, &r).is_err());
        let q = parse_query(
            "SELECT A.* FROM Temperature A, Humidity B WHERE A.Value = A.LocationId WINDOW 1 sec",
        )
        .unwrap();
        assert!(translate(&q, &r).is_err());
        let q = parse_query(
            "SELECT C.* FROM Temperature A, Humidity B WHERE C.x = B.LocationId WINDOW 1 sec",
        )
        .unwrap();
        assert!(translate(&q, &r).is_err());
    }

    #[test]
    fn multiple_join_conjuncts_compose() {
        let q = parse_query(
            "SELECT A.* FROM Temperature A, Humidity B \
             WHERE A.LocationId=B.LocationId AND A.Value=B.Humidity WINDOW 1 sec",
        )
        .unwrap();
        let t = translate(&q, &registry()).unwrap();
        assert!(matches!(t.join_condition, JoinCondition::And(_, _)));
    }
}
