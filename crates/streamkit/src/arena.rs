//! Segmented bump-arena storage for window-join state.
//!
//! [`JoinState`](crate::join_state::JoinState) stores one sliding window's
//! tuples in arrival order and releases them oldest-first (cross-purge).
//! A `VecDeque<Tuple>` serves that access pattern, but it recycles its slots
//! forever in place: state never *shrinks* allocation-wise, per-tuple heap
//! payloads churn through the allocator one at a time, and there is no
//! bookkeeping from which byte-accurate memory statistics could be sampled.
//!
//! [`TupleArena`] replaces it with a deque of fixed-size *segments* (bump
//! allocation regions):
//!
//! * **push** appends into the tail segment (a plain `Vec` bump),
//! * **pop_front** swaps the front slot with a payload-free placeholder and
//!   advances the head sequence number — when the head crosses a segment
//!   boundary the whole segment is dropped at once (an arena-range drop,
//!   one deallocation per [`SEGMENT_TUPLES`] purged tuples instead of
//!   per-tuple `VecDeque` surgery),
//! * every stored tuple is addressed by a stable, monotonically increasing
//!   **sequence number** (a generational index: once popped, a sequence
//!   number is never reused and lookups for it return `None`), which is what
//!   the hash buckets of [`JoinState`](crate::join_state::JoinState) store,
//! * **live** and **capacity** byte counts are maintained incrementally, so
//!   sampling memory in bytes is O(#segments), not O(#tuples).
//!
//! Migration hooks ([`TupleArena::drain`]) move state out as the usual
//! timestamp-ordered `Vec<Tuple>`: rehash/merge/split migrations re-cut state
//! tuple-wise anyway, so the cross-crate migration API keeps its row shape
//! and the whole-segment movement stays an internal detail of the arena.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::time::{TimeDelta, Timestamp};
use crate::tuple::{StreamId, Tuple, TupleRole, Value, LINEAGE_ALL};

/// Tuples per arena segment.  Large enough that segment allocation is rare
/// (one per 256 stored tuples) and a purge wave frees memory in coarse
/// ranges; small enough that a mostly-drained window does not pin much.
pub const SEGMENT_TUPLES: usize = 256;

/// Estimated heap bytes owned by one tuple's payload: the shared value slice
/// plus the bytes of any string values.
///
/// This is an **upper bound** under sharing: reference copies (male/female)
/// and fan-out clones share one `Arc<[Value]>`, but each stored copy counts
/// the payload in full.  That is the honest figure for a *state-memory*
/// metric — every stored reference pins the payload for its own lifetime —
/// and it makes per-slice byte counts add up the same way the paper's
/// per-slice tuple counts do.
pub fn tuple_heap_bytes(tuple: &Tuple) -> usize {
    let values = tuple.values.len() * std::mem::size_of::<Value>();
    let strings: usize = tuple
        .values
        .iter()
        .map(|v| match v {
            Value::Str(s) => s.len(),
            _ => 0,
        })
        .sum();
    values + strings
}

/// Total estimated bytes of one stored tuple: the inline struct plus its
/// heap payload (see [`tuple_heap_bytes`]).
pub fn tuple_bytes(tuple: &Tuple) -> usize {
    std::mem::size_of::<Tuple>() + tuple_heap_bytes(tuple)
}

#[derive(Debug)]
struct Segment {
    /// Sequence number of `tuples[0]`.
    base_seq: u64,
    tuples: Vec<Tuple>,
}

/// A segmented bump arena of tuples in arrival order, addressed by stable
/// sequence numbers (see the module docs).
#[derive(Debug)]
pub struct TupleArena {
    segments: VecDeque<Segment>,
    /// Sequence number of the oldest live tuple.
    head_seq: u64,
    /// Sequence number the next push receives.
    next_seq: u64,
    /// Incrementally maintained heap bytes of the live tuples.
    live_heap_bytes: usize,
    /// Cached empty payload swapped into popped slots (cloning it is a
    /// refcount bump, not an allocation).
    empty_payload: Arc<[Value]>,
}

impl Default for TupleArena {
    fn default() -> Self {
        TupleArena {
            segments: VecDeque::new(),
            head_seq: 0,
            next_seq: 0,
            live_heap_bytes: 0,
            empty_payload: Arc::from(Vec::new()),
        }
    }
}

impl TupleArena {
    /// An empty arena.
    pub fn new() -> TupleArena {
        TupleArena::default()
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        (self.next_seq - self.head_seq) as usize
    }

    /// `true` if no tuples are live.
    pub fn is_empty(&self) -> bool {
        self.head_seq == self.next_seq
    }

    /// Sequence number of the oldest live tuple (equal to
    /// [`TupleArena::next_seq`] when empty).  Sequence numbers below this are
    /// dead: a lazily-cleaned index entry pointing at one must be skipped.
    pub fn head_seq(&self) -> u64 {
        self.head_seq
    }

    /// Sequence number the next pushed tuple will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append a tuple, returning its sequence number.  Tuples must be pushed
    /// in timestamp order (the window-join operator contract).
    pub fn push(&mut self, tuple: Tuple) -> u64 {
        let seq = self.next_seq;
        self.live_heap_bytes += tuple_heap_bytes(&tuple);
        match self.segments.back_mut() {
            Some(seg) if seg.tuples.len() < SEGMENT_TUPLES => seg.tuples.push(tuple),
            _ => {
                let mut tuples = Vec::with_capacity(SEGMENT_TUPLES);
                tuples.push(tuple);
                self.segments.push_back(Segment {
                    base_seq: seq,
                    tuples,
                });
            }
        }
        self.next_seq += 1;
        seq
    }

    fn placeholder(&self) -> Tuple {
        Tuple {
            ts: Timestamp::ZERO,
            stream: StreamId::A,
            values: Arc::clone(&self.empty_payload),
            origin_span: TimeDelta::ZERO,
            role: TupleRole::Regular,
            lineage: LINEAGE_ALL,
            key_hash: None,
        }
    }

    /// Remove and return the oldest live tuple.  The slot is swapped with a
    /// payload-free placeholder; the segment itself is dropped whole once the
    /// head has crossed it (the arena-range drop).
    pub fn pop_front(&mut self) -> Option<Tuple> {
        if self.is_empty() {
            return None;
        }
        let placeholder = self.placeholder();
        let seg = self.segments.front_mut().expect("non-empty arena");
        let offset = (self.head_seq - seg.base_seq) as usize;
        let tuple = std::mem::replace(&mut seg.tuples[offset], placeholder);
        self.head_seq += 1;
        self.live_heap_bytes -= tuple_heap_bytes(&tuple);
        if offset + 1 == SEGMENT_TUPLES {
            // The head crossed the segment boundary: release the whole
            // segment (256 slots, one deallocation).
            self.segments.pop_front();
        }
        Some(tuple)
    }

    /// The tuple with the given sequence number, or `None` if it was never
    /// pushed or has been popped (generational lookup).
    pub fn get(&self, seq: u64) -> Option<&Tuple> {
        if seq < self.head_seq || seq >= self.next_seq {
            return None;
        }
        // Every segment but the last is full, and base sequence numbers are
        // contiguous, so the segment holding `seq` is found by arithmetic.
        let front_base = self.segments.front()?.base_seq;
        let idx = (seq - front_base) as usize;
        let seg = &self.segments[idx / SEGMENT_TUPLES];
        Some(&seg.tuples[idx % SEGMENT_TUPLES])
    }

    /// The oldest live tuple.
    pub fn front(&self) -> Option<&Tuple> {
        self.get(self.head_seq)
    }

    /// All live tuples, oldest first.
    pub fn iter(&self) -> ArenaIter<'_> {
        ArenaIter {
            arena: self,
            seq: self.head_seq,
        }
    }

    /// Estimated bytes resident in live tuples: inline slots plus heap
    /// payloads (see [`tuple_heap_bytes`] for the sharing caveat).
    pub fn live_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<Tuple>() + self.live_heap_bytes
    }

    /// Estimated bytes the arena currently holds on to: every allocated slot
    /// (including popped placeholders and unfilled tail capacity) plus the
    /// live heap payloads.  `capacity_bytes() - live_bytes()` is the arena's
    /// bump-allocation slack.
    pub fn capacity_bytes(&self) -> usize {
        let slots: usize = self.segments.iter().map(|s| s.tuples.capacity()).sum();
        slots * std::mem::size_of::<Tuple>() + self.live_heap_bytes
    }

    /// Move every live tuple out, oldest first, emptying the arena.  Whole
    /// segments are consumed at a time; sequence numbering continues from
    /// where it was (stale external references stay dead).
    pub fn drain(&mut self) -> Vec<Tuple> {
        let head = self.head_seq;
        let mut out = Vec::with_capacity(self.len());
        for seg in std::mem::take(&mut self.segments) {
            let skip = head.saturating_sub(seg.base_seq) as usize;
            out.extend(seg.tuples.into_iter().skip(skip));
        }
        self.head_seq = self.next_seq;
        self.live_heap_bytes = 0;
        out
    }

    /// Drop all contents and restart sequence numbering from zero.  Callers
    /// must drop every stored sequence number first (the generational
    /// guarantee does not survive a clear).
    pub fn clear(&mut self) {
        self.segments.clear();
        self.head_seq = 0;
        self.next_seq = 0;
        self.live_heap_bytes = 0;
    }
}

/// Iterator over an arena's live tuples, oldest first (see
/// [`TupleArena::iter`]).
#[derive(Debug)]
pub struct ArenaIter<'a> {
    arena: &'a TupleArena,
    seq: u64,
}

impl<'a> Iterator for ArenaIter<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        let tuple = self.arena.get(self.seq)?;
        self.seq += 1;
        Some(tuple)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.arena.next_seq.saturating_sub(self.seq)) as usize;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[key])
    }

    #[test]
    fn push_pop_preserves_fifo_order_and_seqs() {
        let mut a = TupleArena::new();
        assert!(a.is_empty());
        assert_eq!(a.front(), None);
        for i in 0..5u64 {
            let seq = a.push(t(i, i as i64));
            assert_eq!(seq, i);
        }
        assert_eq!(a.len(), 5);
        assert_eq!(a.head_seq(), 0);
        assert_eq!(a.next_seq(), 5);
        assert_eq!(a.front().unwrap().ts, Timestamp::from_secs(0));
        for i in 0..5u64 {
            let popped = a.pop_front().unwrap();
            assert_eq!(popped.ts, Timestamp::from_secs(i));
        }
        assert!(a.pop_front().is_none());
        assert!(a.is_empty());
    }

    #[test]
    fn generational_lookup_kills_popped_seqs() {
        let mut a = TupleArena::new();
        let s0 = a.push(t(1, 10));
        let s1 = a.push(t(2, 20));
        assert_eq!(a.get(s0).unwrap().ts, Timestamp::from_secs(1));
        a.pop_front();
        assert_eq!(a.get(s0), None, "popped seq is dead");
        assert_eq!(a.get(s1).unwrap().ts, Timestamp::from_secs(2));
        assert_eq!(a.get(99), None, "never-pushed seq is dead");
    }

    #[test]
    fn segments_are_released_whole_as_the_head_crosses_them() {
        let mut a = TupleArena::new();
        let n = (SEGMENT_TUPLES * 2 + 10) as u64;
        for i in 0..n {
            a.push(t(i, i as i64));
        }
        // Each test tuple carries one Int value of heap payload.
        let heap_per_tuple = std::mem::size_of::<Value>();
        let full_capacity = a.capacity_bytes();
        // Popping one short of the boundary keeps every slot resident: the
        // capacity only loses the popped tuples' heap payloads.
        for _ in 0..SEGMENT_TUPLES - 1 {
            a.pop_front();
        }
        assert_eq!(
            a.capacity_bytes(),
            full_capacity - (SEGMENT_TUPLES - 1) * heap_per_tuple
        );
        // ...and crossing the boundary releases all the segment's slots at
        // once.
        a.pop_front();
        assert_eq!(
            a.capacity_bytes(),
            full_capacity
                - SEGMENT_TUPLES * heap_per_tuple
                - SEGMENT_TUPLES * std::mem::size_of::<Tuple>()
        );
        assert_eq!(a.len(), (n as usize) - SEGMENT_TUPLES);
        // Ordering and addressing survive the range drop.
        assert_eq!(
            a.front().unwrap().ts,
            Timestamp::from_secs(SEGMENT_TUPLES as u64)
        );
        assert_eq!(
            a.get(a.head_seq()).unwrap().ts,
            Timestamp::from_secs(SEGMENT_TUPLES as u64)
        );
    }

    #[test]
    fn iter_skips_popped_slots() {
        let mut a = TupleArena::new();
        for i in 0..6u64 {
            a.push(t(i, i as i64));
        }
        a.pop_front();
        a.pop_front();
        let secs: Vec<u64> = a.iter().map(|t| t.ts.as_micros() / 1_000_000).collect();
        assert_eq!(secs, vec![2, 3, 4, 5]);
    }

    #[test]
    fn byte_accounting_tracks_live_and_capacity() {
        let mut a = TupleArena::new();
        assert_eq!(a.live_bytes(), 0);
        assert_eq!(a.capacity_bytes(), 0);
        a.push(t(1, 7));
        let one = a.live_bytes();
        assert!(one >= std::mem::size_of::<Tuple>() + std::mem::size_of::<Value>());
        a.push(Tuple::new(
            Timestamp::from_secs(2),
            StreamId::A,
            vec![Value::str("hello")],
        ));
        let with_str = a.live_bytes();
        assert!(with_str >= one + std::mem::size_of::<Tuple>() + 5);
        // Capacity counts the whole allocated segment, live only the tuples.
        assert!(a.capacity_bytes() >= SEGMENT_TUPLES * std::mem::size_of::<Tuple>());
        assert!(a.capacity_bytes() > a.live_bytes());
        a.pop_front();
        a.pop_front();
        assert_eq!(a.live_bytes(), 0);
        assert!(a.is_empty());
    }

    #[test]
    fn drain_moves_everything_out_in_order() {
        let mut a = TupleArena::new();
        let n = (SEGMENT_TUPLES + 20) as u64;
        for i in 0..n {
            a.push(t(i, i as i64));
        }
        a.pop_front();
        let drained = a.drain();
        assert_eq!(drained.len(), (n as usize) - 1);
        assert_eq!(drained[0].ts, Timestamp::from_secs(1));
        assert_eq!(drained.last().unwrap().ts, Timestamp::from_secs(n - 1));
        assert!(a.is_empty());
        assert_eq!(a.live_bytes(), 0);
        // Sequence numbering continues; old seqs stay dead.
        assert_eq!(a.next_seq(), n);
        let seq = a.push(t(n, 0));
        assert_eq!(seq, n);
        assert_eq!(a.get(0), None);
    }

    #[test]
    fn clear_restarts_sequence_numbering() {
        let mut a = TupleArena::new();
        a.push(t(1, 1));
        a.push(t(2, 2));
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.capacity_bytes(), 0);
        assert_eq!(a.push(t(3, 3)), 0);
    }

    #[test]
    fn tuple_byte_estimates_cover_struct_and_heap() {
        let plain = t(1, 7);
        assert_eq!(tuple_heap_bytes(&plain), std::mem::size_of::<Value>());
        assert_eq!(
            tuple_bytes(&plain),
            std::mem::size_of::<Tuple>() + std::mem::size_of::<Value>()
        );
        let stringy = Tuple::new(
            Timestamp::from_secs(1),
            StreamId::A,
            vec![Value::str("abcd"), Value::Int(1)],
        );
        assert_eq!(
            tuple_heap_bytes(&stringy),
            2 * std::mem::size_of::<Value>() + 4
        );
    }
}
