//! Punctuation-aligned checkpoints of a sharded state-slice session.
//!
//! The paper's punctuation protocol (Section 4.3) guarantees that when a
//! punctuation has fully propagated through a sliced chain, every union
//! buffer is empty and every join state holds exactly the tuples inside its
//! slice window.  Such a **drained punctuation boundary** is therefore a
//! consistent cut: capturing (a) each operator's window state through the
//! generic [`Operator::drain_window_states`](crate::Operator::drain_window_states)
//! migration hooks, (b) each union's per-port watermarks, (c) each sink's
//! cumulative counters, and (d) each shard executor's ingest counters fully
//! determines the session, because everything in flight has either been
//! absorbed into a window state or delivered to a sink.
//!
//! [`Checkpoint::capture`] takes such a snapshot from a drained
//! [`ShardedExecutor`]; [`Checkpoint::restore`] loads it back into a session
//! whose plans were rebuilt fresh (see `ShardedExecutor::recover_reset`).
//! Restoration is **absolute**, not additive: sink counts and ingest
//! counters are overwritten with the checkpointed values, and crash
//! recovery then replays the post-checkpoint input, which re-delivers the
//! post-checkpoint results exactly once (`core::recovery`).

use crate::error::{Result, StreamError};
use crate::executor::Executor;
use crate::operator::Operator;
use crate::ops::{SinkOp, UnionOp};
use crate::shard::ShardedExecutor;
use crate::time::Timestamp;
use crate::tuple::Tuple;

/// Version tag stamped on every checkpoint; restore refuses other versions.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Snapshot of one plan node's recoverable state.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeCheckpoint {
    /// The operator holds no state that survives a drained boundary
    /// (selections, projections, routers, transient reorder buffers).
    Stateless,
    /// A window-join operator's stored tuples, one vector per input side
    /// (`side_b` is empty for one-way joins).
    Window {
        /// Stored tuples of the first input side, in arrival order.
        side_a: Vec<Tuple>,
        /// Stored tuples of the second input side, in arrival order.
        side_b: Vec<Tuple>,
    },
    /// An order-preserving union's punctuation progress.  Its tuple buffers
    /// are provably empty at a drained boundary, so only the monotone
    /// watermarks need to survive.
    Union {
        /// Per-input-port punctuation watermarks.
        watermarks: Vec<Timestamp>,
        /// Largest watermark up to which output has been released.
        emitted_watermark: Timestamp,
    },
    /// A sink's cumulative result counters (and retained tuples, if any).
    Sink {
        /// Tuples received so far.
        count: u64,
        /// Timestamp of the last received tuple.
        last_ts: Option<Timestamp>,
        /// Out-of-order arrivals observed.
        out_of_order: u64,
        /// Retained tuples (empty for counting sinks).
        collected: Vec<Tuple>,
    },
}

/// Snapshot of one shard: its plan nodes plus the executor's ingest
/// counters (restored absolutely so replayed input is counted exactly once).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCheckpoint {
    /// Per-node state in plan node-id order.
    pub nodes: Vec<NodeCheckpoint>,
    /// Tuples ingested by this shard's executor.
    pub ingested: u64,
    /// Per-stream ingest counts.
    pub ingested_by_stream: [u64; 2],
    /// Largest ingested tuple timestamp, in seconds.
    pub ingest_max_ts_secs: f64,
    /// Punctuation epochs observed (the clock faults and checkpoints
    /// align to).
    pub punct_epochs: u64,
}

impl ShardCheckpoint {
    /// Capture one drained executor.  The executor's live state is left
    /// untouched (window states are drained, cloned and loaded back).
    pub fn capture(exec: &mut Executor) -> Result<ShardCheckpoint> {
        if !exec.is_drained() {
            return Err(StreamError::Checkpoint(
                "cannot capture an executor with queued input; run() to a \
                 punctuation boundary first"
                    .to_string(),
            ));
        }
        let (ingested, ingested_by_stream, ingest_max_ts_secs, punct_epochs) =
            exec.ingest_progress();
        let mut nodes = Vec::with_capacity(exec.plan().num_nodes());
        for node in exec.plan_mut().nodes_mut_internal() {
            nodes.push(capture_node(node.operator.as_mut())?);
        }
        Ok(ShardCheckpoint {
            nodes,
            ingested,
            ingested_by_stream,
            ingest_max_ts_secs,
            punct_epochs,
        })
    }

    /// Load this snapshot into an executor whose plan is a fresh instance of
    /// the captured plan (same nodes in the same order, empty states).
    pub fn restore(&self, exec: &mut Executor) -> Result<()> {
        if !exec.is_drained() {
            return Err(StreamError::Checkpoint(
                "cannot restore into an executor with queued input".to_string(),
            ));
        }
        if exec.plan().num_nodes() != self.nodes.len() {
            return Err(StreamError::Checkpoint(format!(
                "checkpoint has {} nodes but the plan has {}",
                self.nodes.len(),
                exec.plan().num_nodes()
            )));
        }
        for (node, ckpt) in exec
            .plan_mut()
            .nodes_mut_internal()
            .iter_mut()
            .zip(&self.nodes)
        {
            restore_node(node.operator.as_mut(), ckpt)?;
        }
        exec.restore_ingest_progress(
            self.ingested,
            self.ingested_by_stream,
            self.ingest_max_ts_secs,
            self.punct_epochs,
        );
        Ok(())
    }
}

/// A consistent snapshot of an entire sharded session, taken at a drained
/// punctuation boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Monotone checkpoint sequence number (assigned by the caller).
    pub seq: u64,
    /// Largest punctuation epoch across shards at capture time.
    pub epoch: u64,
    /// The punctuation watermark this checkpoint is aligned to: input with
    /// larger timestamps is not covered and must be replayed after restore.
    pub watermark: Timestamp,
    /// Per-shard snapshots in shard index order.
    pub shards: Vec<ShardCheckpoint>,
}

impl Checkpoint {
    /// Capture a drained session.  Fails with [`StreamError::Checkpoint`] if
    /// any input is still queued (router-side or in a shard), or if an
    /// operator holds state it exposes no migration hooks for.
    pub fn capture(
        session: &mut ShardedExecutor,
        seq: u64,
        watermark: Timestamp,
    ) -> Result<Checkpoint> {
        if !session.is_drained() {
            return Err(StreamError::Checkpoint(
                "cannot checkpoint an undrained session; run() to a \
                 punctuation boundary first"
                    .to_string(),
            ));
        }
        let mut epoch = 0;
        let mut shards = Vec::with_capacity(session.num_shards());
        for exec in session.shards_mut() {
            let shard = ShardCheckpoint::capture(exec)?;
            epoch = epoch.max(shard.punct_epochs);
            shards.push(shard);
        }
        Ok(Checkpoint {
            version: CHECKPOINT_VERSION,
            seq,
            epoch,
            watermark,
            shards,
        })
    }

    /// Load this snapshot into a session whose plans were rebuilt fresh
    /// (e.g. via `ShardedExecutor::recover_reset`).  The shard count and
    /// plan shape must match the captured session.
    pub fn restore(&self, session: &mut ShardedExecutor) -> Result<()> {
        if self.version != CHECKPOINT_VERSION {
            return Err(StreamError::Checkpoint(format!(
                "checkpoint version {} is not supported (expected {CHECKPOINT_VERSION})",
                self.version
            )));
        }
        if !session.is_drained() {
            return Err(StreamError::Checkpoint(
                "cannot restore into an undrained session".to_string(),
            ));
        }
        if session.num_shards() != self.shards.len() {
            return Err(StreamError::Checkpoint(format!(
                "checkpoint has {} shards but the session has {}",
                self.shards.len(),
                session.num_shards()
            )));
        }
        for (exec, shard) in session.shards_mut().iter_mut().zip(&self.shards) {
            shard.restore(exec)?;
        }
        Ok(())
    }

    /// Total tuples held in window states across all shards (a size proxy
    /// for logging and bench reports).
    pub fn state_tuples(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.nodes.iter())
            .map(|n| match n {
                NodeCheckpoint::Window { side_a, side_b } => (side_a.len() + side_b.len()) as u64,
                _ => 0,
            })
            .sum()
    }
}

fn capture_node(op: &mut dyn Operator) -> Result<NodeCheckpoint> {
    if let Some(sink) = op.as_any().downcast_ref::<SinkOp>() {
        return Ok(NodeCheckpoint::Sink {
            count: sink.count(),
            last_ts: sink.last_timestamp(),
            out_of_order: sink.out_of_order(),
            collected: sink.collected().to_vec(),
        });
    }
    if let Some(union) = op.as_any().downcast_ref::<UnionOp>() {
        if union.buffered_len() != 0 {
            return Err(StreamError::Checkpoint(format!(
                "union '{}' still buffers {} items at the checkpoint \
                 boundary — the cut is not punctuation-aligned",
                union.name(),
                union.buffered_len()
            )));
        }
        return Ok(NodeCheckpoint::Union {
            watermarks: union.watermarks().to_vec(),
            emitted_watermark: union.emitted_watermark(),
        });
    }
    if let Some((side_a, side_b)) = op.drain_window_states() {
        // Drain-clone-reload: capture must not disturb the live state.
        op.load_window_states(side_a.clone(), side_b.clone());
        return Ok(NodeCheckpoint::Window { side_a, side_b });
    }
    if op.state_size() > 0 && !op.is_transient_buffer() {
        return Err(StreamError::Checkpoint(format!(
            "operator '{}' holds {} state tuples but exposes no checkpoint \
             hooks (drain_window_states)",
            op.name(),
            op.state_size()
        )));
    }
    Ok(NodeCheckpoint::Stateless)
}

fn restore_node(op: &mut dyn Operator, ckpt: &NodeCheckpoint) -> Result<()> {
    match ckpt {
        // Fresh plan instances start empty; nothing to load.
        NodeCheckpoint::Stateless => Ok(()),
        NodeCheckpoint::Window { side_a, side_b } => {
            // Drain (and discard) whatever the fresh instance holds so the
            // load is absolute, and to verify the hook exists at all.
            if op.drain_window_states().is_none() {
                return Err(StreamError::Checkpoint(format!(
                    "checkpoint holds window state for '{}' but the operator \
                     has no load hook",
                    op.name()
                )));
            }
            op.load_window_states(side_a.clone(), side_b.clone());
            Ok(())
        }
        NodeCheckpoint::Union {
            watermarks,
            emitted_watermark,
        } => {
            let Some(union) = op.as_any_mut().downcast_mut::<UnionOp>() else {
                return Err(StreamError::Checkpoint(format!(
                    "checkpoint holds union progress for '{}' but the \
                     operator is not a union",
                    op.name()
                )));
            };
            if !union.restore_progress(watermarks.clone(), *emitted_watermark) {
                return Err(StreamError::Checkpoint(format!(
                    "union '{}' has a different port count than the \
                     checkpoint ({} watermarks)",
                    union.name(),
                    watermarks.len()
                )));
            }
            Ok(())
        }
        NodeCheckpoint::Sink {
            count,
            last_ts,
            out_of_order,
            collected,
        } => {
            let Some(sink) = op.as_any_mut().downcast_mut::<SinkOp>() else {
                return Err(StreamError::Checkpoint(format!(
                    "checkpoint holds sink counters for '{}' but the \
                     operator is not a sink",
                    op.name()
                )));
            };
            sink.restore(*count, *last_ts, *out_of_order, collected.clone());
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{SinkOp, WindowJoinOp};
    use crate::plan::Plan;
    use crate::predicate::JoinCondition;
    use crate::punctuation::Punctuation;
    use crate::shard::ShardSpec;
    use crate::tuple::{StreamId, Tuple};
    use crate::window::WindowSpec;

    fn a(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[key])
    }

    fn b(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::B, &[key])
    }

    fn join_plan() -> Plan {
        let mut builder = Plan::builder();
        let join = builder.add_op(WindowJoinOp::symmetric(
            "join",
            WindowSpec::from_secs(20),
            JoinCondition::equi(0),
        ));
        let sink = builder.add_op(SinkOp::retaining("q1"));
        builder.connect(join, 0, sink, 0);
        builder.entry("A", join, 0);
        builder.entry("B", join, 1);
        builder.build().unwrap()
    }

    fn session(shards: usize) -> ShardedExecutor {
        let plans: Vec<Plan> = (0..shards).map(|_| join_plan()).collect();
        ShardedExecutor::new(plans, ShardSpec::symmetric(0)).unwrap()
    }

    fn feed(exec: &mut ShardedExecutor, range: std::ops::Range<u64>) {
        for i in range {
            exec.ingest("A", a(i, (i % 5) as i64)).unwrap();
            exec.ingest("B", b(i, (i % 3) as i64)).unwrap();
        }
    }

    fn fingerprints(mut tuples: Vec<Tuple>) -> Vec<(Timestamp, crate::TimeDelta)> {
        let key = |t: &Tuple| (t.ts, t.origin_span);
        tuples.sort_by_key(key);
        tuples.iter().map(key).collect()
    }

    #[test]
    fn capture_refuses_undrained_sessions() {
        let mut exec = session(2);
        feed(&mut exec, 0..4);
        let err = Checkpoint::capture(&mut exec, 0, Timestamp::from_secs(4)).unwrap_err();
        assert!(matches!(err, StreamError::Checkpoint(_)));
    }

    #[test]
    fn roundtrip_recovers_results_and_counters() {
        // Uninterrupted run over the full input = the oracle.
        let mut oracle = session(3);
        feed(&mut oracle, 0..30);
        oracle.run().unwrap();
        let expected = fingerprints(oracle.sink_collected("q1"));

        // Checkpoint halfway, crash (throw the session away), restore into a
        // fresh one and replay the second half.
        let mut live = session(3);
        feed(&mut live, 0..15);
        live.run().unwrap();
        let ckpt = Checkpoint::capture(&mut live, 1, Timestamp::from_secs(14)).unwrap();
        assert_eq!(ckpt.version, CHECKPOINT_VERSION);
        assert!(ckpt.state_tuples() > 0);
        // Capture must not disturb the live session: finishing it still
        // matches the oracle.
        feed(&mut live, 15..30);
        live.run().unwrap();
        assert_eq!(fingerprints(live.sink_collected("q1")), expected);

        let mut recovered = session(3);
        ckpt.restore(&mut recovered).unwrap();
        feed(&mut recovered, 15..30);
        recovered.run().unwrap();
        assert_eq!(fingerprints(recovered.sink_collected("q1")), expected);
    }

    #[test]
    fn restore_validates_shape_and_version() {
        let mut live = session(2);
        feed(&mut live, 0..6);
        live.ingest("A", Punctuation::new(Timestamp::from_secs(6)))
            .unwrap();
        live.run().unwrap();
        let mut ckpt = Checkpoint::capture(&mut live, 0, Timestamp::from_secs(6)).unwrap();
        assert!(ckpt.epoch >= 1);

        // Wrong shard count.
        let mut narrow = session(1);
        assert!(matches!(
            ckpt.restore(&mut narrow).unwrap_err(),
            StreamError::Checkpoint(_)
        ));
        // Wrong version.
        let mut fresh = session(2);
        ckpt.version += 1;
        assert!(matches!(
            ckpt.restore(&mut fresh).unwrap_err(),
            StreamError::Checkpoint(_)
        ));
    }

    #[test]
    fn sink_and_ingest_counters_restore_absolutely() {
        let mut live = session(2);
        feed(&mut live, 0..10);
        let report = live.run().unwrap();
        let ckpt = Checkpoint::capture(&mut live, 2, Timestamp::from_secs(9)).unwrap();

        let mut recovered = session(2);
        ckpt.restore(&mut recovered).unwrap();
        let restored_report = recovered.run().unwrap();
        assert_eq!(restored_report.sink_count("q1"), report.sink_count("q1"));
        let (live_prog, rec_prog): (Vec<_>, Vec<_>) = (
            live.shards_mut()
                .iter()
                .map(|e| e.ingest_progress())
                .collect(),
            recovered
                .shards_mut()
                .iter()
                .map(|e| e.ingest_progress())
                .collect(),
        );
        assert_eq!(live_prog, rec_prog);
    }
}
