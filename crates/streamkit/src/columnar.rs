//! Column-major run batches and vectorized operator kernels.
//!
//! PR 4 made execution batch-at-a-time, but a batch was still a `Vec` of
//! row [`Tuple`]s: every operator hop loops over pointer-chasing rows, and
//! every join result pays an `Arc<[Value]>` allocation.  This module adds the
//! column-major alternative: a [`ColumnBatch`] stores a timestamp-contiguous
//! run as per-field typed column vectors (`Int`/`Float`/`Bool` as flat
//! primitive vectors, `Str` as shared `Arc<str>` handles, with validity masks
//! for `Null`s and a `Mixed` fallback for heterogeneous fields), plus
//! parallel per-row metadata columns (timestamp, stream, origin span, role,
//! lineage).
//!
//! Conversion at executor boundaries is as close to zero-copy as the row
//! representation allows: primitives are memcpy'd and string payloads are
//! reference-counted handles, never deep copies
//! ([`ColumnBatch::push_tuple`], [`ColumnBatch::materialize`]).
//!
//! Three operator kernels run as tight per-column loops:
//!
//! * **predicate evaluation** ([`eval_predicate`]) produces a *selection
//!   vector* of passing row indices.  Counting is exactly per-row
//!   [`Predicate::eval_counted`]'s: `And` refines the selection (the right
//!   operand is evaluated — and counted — only on rows the left passed),
//!   `Or` evaluates the right operand only on the left's complement, `Not`
//!   complements.  Filter-comparison counters are therefore bit-identical to
//!   the row path's.
//! * **projection** ([`ColumnBatch::project`]) gathers whole columns instead
//!   of rebuilding every row, padding out-of-range fields with `Null`
//!   columns (the row semantics of `ProjectOp`), and drops the key memo —
//!   the projected layout is new.
//! * **canonical key hashing** ([`ColumnBatch::hash_key_column`]) computes
//!   the [`canonical_key_hash`] class of one field for all rows in one loop,
//!   memoised as a `key_hash` column.  Materializing a row forwards its
//!   class into [`Tuple::key_hash`], so the one-hash-per-tuple path of
//!   [`crate::join_state`] is fed unchanged.

use std::sync::Arc;

use crate::join_state::{band_key_bits, canonical_key_hash, monotone_band_bits};
use crate::predicate::{BandProbe, CmpOp, JoinCondition, Predicate};
use crate::time::{TimeDelta, Timestamp};
use crate::tuple::{KeyClass, StreamId, Tuple, TupleRole, Value};

/// Typed storage of one payload field across the rows of a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Flat 64-bit integers.
    Int(Vec<i64>),
    /// Flat 64-bit floats.
    Float(Vec<f64>),
    /// Shared string handles (cloning a batch or materializing a row bumps
    /// reference counts, never copies payload bytes).
    Str(Vec<Arc<str>>),
    /// Flat booleans.
    Bool(Vec<bool>),
    /// Heterogeneous fallback: rows of this field carried differently-typed
    /// values, so they are stored as plain [`Value`]s (including `Null`s).
    Mixed(Vec<Value>),
}

/// One column: typed data plus an optional validity mask (`false` = the row's
/// value is `Null`).  A missing mask means every row is valid.  `Mixed`
/// columns never use a mask — they store `Value::Null` inline.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedColumn {
    data: ColumnData,
    validity: Option<Vec<bool>>,
}

impl TypedColumn {
    /// A fresh column holding `v` as its only row.  The first value picks the
    /// column type; a leading `Null` starts `Mixed` (no type to commit to).
    fn with_first(v: &Value) -> TypedColumn {
        let mut col = TypedColumn {
            data: match v {
                Value::Int(_) => ColumnData::Int(Vec::new()),
                Value::Float(_) => ColumnData::Float(Vec::new()),
                Value::Str(_) => ColumnData::Str(Vec::new()),
                Value::Bool(_) => ColumnData::Bool(Vec::new()),
                Value::Null => ColumnData::Mixed(Vec::new()),
            },
            validity: None,
        };
        col.push(v);
        col
    }

    fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(xs) => xs.len(),
            ColumnData::Float(xs) => xs.len(),
            ColumnData::Str(xs) => xs.len(),
            ColumnData::Bool(xs) => xs.len(),
            ColumnData::Mixed(xs) => xs.len(),
        }
    }

    /// Append a value, degrading to `Mixed` if it does not fit the column
    /// type (a `Null` fits any typed column via the validity mask).
    fn push(&mut self, v: &Value) {
        if let ColumnData::Mixed(xs) = &mut self.data {
            xs.push(v.clone());
            return;
        }
        let compatible = matches!(
            (&self.data, v),
            (ColumnData::Int(_), Value::Int(_))
                | (ColumnData::Float(_), Value::Float(_))
                | (ColumnData::Str(_), Value::Str(_))
                | (ColumnData::Bool(_), Value::Bool(_))
                | (_, Value::Null)
        );
        if !compatible {
            self.degrade_to_mixed();
            if let ColumnData::Mixed(xs) = &mut self.data {
                xs.push(v.clone());
            }
            return;
        }
        let len = self.len();
        match (&mut self.data, v) {
            (ColumnData::Int(xs), Value::Int(x)) => xs.push(*x),
            (ColumnData::Int(xs), _) => xs.push(0),
            (ColumnData::Float(xs), Value::Float(x)) => xs.push(*x),
            (ColumnData::Float(xs), _) => xs.push(0.0),
            (ColumnData::Str(xs), Value::Str(s)) => xs.push(Arc::clone(s)),
            (ColumnData::Str(xs), _) => xs.push(Arc::from("")),
            (ColumnData::Bool(xs), Value::Bool(b)) => xs.push(*b),
            (ColumnData::Bool(xs), _) => xs.push(false),
            (ColumnData::Mixed(_), _) => unreachable!("mixed handled above"),
        }
        if matches!(v, Value::Null) {
            self.validity
                .get_or_insert_with(|| vec![true; len])
                .push(false);
        } else if let Some(mask) = &mut self.validity {
            mask.push(true);
        }
    }

    fn degrade_to_mixed(&mut self) {
        let values: Vec<Value> = (0..self.len()).map(|i| self.value_at(i)).collect();
        self.data = ColumnData::Mixed(values);
        self.validity = None;
    }

    /// The row's value as a [`Value`] (primitives by copy, strings by
    /// reference-count bump).
    pub fn value_at(&self, i: usize) -> Value {
        if let Some(mask) = &self.validity {
            if !mask[i] {
                return Value::Null;
            }
        }
        match &self.data {
            ColumnData::Int(xs) => Value::Int(xs[i]),
            ColumnData::Float(xs) => Value::Float(xs[i]),
            ColumnData::Str(xs) => Value::Str(Arc::clone(&xs[i])),
            ColumnData::Bool(xs) => Value::Bool(xs[i]),
            ColumnData::Mixed(xs) => xs[i].clone(),
        }
    }

    /// Gather the given rows into a new column.
    fn gather(&self, rows: &[u32]) -> TypedColumn {
        let data = match &self.data {
            ColumnData::Int(xs) => ColumnData::Int(rows.iter().map(|&r| xs[r as usize]).collect()),
            ColumnData::Float(xs) => {
                ColumnData::Float(rows.iter().map(|&r| xs[r as usize]).collect())
            }
            ColumnData::Str(xs) => {
                ColumnData::Str(rows.iter().map(|&r| Arc::clone(&xs[r as usize])).collect())
            }
            ColumnData::Bool(xs) => {
                ColumnData::Bool(rows.iter().map(|&r| xs[r as usize]).collect())
            }
            ColumnData::Mixed(xs) => {
                ColumnData::Mixed(rows.iter().map(|&r| xs[r as usize].clone()).collect())
            }
        };
        let validity = self
            .validity
            .as_ref()
            .map(|mask| rows.iter().map(|&r| mask[r as usize]).collect());
        TypedColumn { data, validity }
    }

    /// The typed data vector (read-only; for kernels and benches).
    pub fn data(&self) -> &ColumnData {
        &self.data
    }
}

/// The canonical key classes of one payload field across a batch's rows —
/// the columnar counterpart of [`Tuple::key_hash`], and like it a cache: it
/// is excluded from batch equality and dropped by any mutation that changes
/// the payload layout.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyHashColumn {
    /// The payload field the classes were computed over.
    pub field: usize,
    /// One class per row.
    pub classes: Vec<KeyClass>,
}

/// A timestamp-contiguous run of tuples in column-major layout.
///
/// Rows must be appended in timestamp order (the same operator contract as
/// everywhere else in this tree); [`ColumnBatch::first_ts`] is the batch's
/// position in the global order.  All rows share one payload arity — an
/// append of a different arity is rejected (`false`) so the caller can flush
/// the batch and start a new one.
#[derive(Debug, Clone, Default)]
pub struct ColumnBatch {
    ts: Vec<Timestamp>,
    stream: Vec<StreamId>,
    origin_span: Vec<TimeDelta>,
    role: Vec<TupleRole>,
    lineage: Vec<u32>,
    columns: Vec<TypedColumn>,
    key_hash: Option<KeyHashColumn>,
}

/// Row equality only — the memoised `key_hash` column is a cache, exactly
/// like [`Tuple::key_hash`].
impl PartialEq for ColumnBatch {
    fn eq(&self, other: &ColumnBatch) -> bool {
        self.ts == other.ts
            && self.stream == other.stream
            && self.origin_span == other.origin_span
            && self.role == other.role
            && self.lineage == other.lineage
            && self.columns == other.columns
    }
}

impl ColumnBatch {
    /// An empty batch.  The first appended row fixes the payload arity.
    pub fn new() -> ColumnBatch {
        ColumnBatch::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// `true` if the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Payload arity (0 for an empty batch).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Timestamp of the first row — the batch's position in the stream's
    /// global timestamp order.
    pub fn first_ts(&self) -> Option<Timestamp> {
        self.ts.first().copied()
    }

    /// Timestamp of the last row.
    pub fn last_ts(&self) -> Option<Timestamp> {
        self.ts.last().copied()
    }

    /// Timestamp of row `i`.
    pub fn ts_at(&self, i: usize) -> Timestamp {
        self.ts[i]
    }

    /// The payload columns.
    pub fn columns(&self) -> &[TypedColumn] {
        &self.columns
    }

    /// Append a row copied out of a [`Tuple`].  Returns `false` (appending
    /// nothing) if the tuple's arity differs from the batch's.
    pub fn push_tuple(&mut self, t: &Tuple) -> bool {
        if !self.push_payload(t.values.iter(), t.arity()) {
            return false;
        }
        self.ts.push(t.ts);
        self.stream.push(t.stream);
        self.origin_span.push(t.origin_span);
        self.role.push(t.role);
        self.lineage.push(t.lineage);
        true
    }

    /// Append the join of two tuples — the columnar form of [`Tuple::join`]
    /// (max timestamp, |Ta-Tb| origin span, `Regular` role, min lineage,
    /// concatenated payload) without the per-row `Arc<[Value]>` allocation
    /// that makes the row path's result handling hot.
    pub fn push_join(&mut self, left: &Tuple, right: &Tuple, out_stream: StreamId) -> bool {
        let arity = left.arity() + right.arity();
        if !self.push_payload(left.values.iter().chain(right.values.iter()), arity) {
            return false;
        }
        self.ts.push(left.ts.max(right.ts));
        self.stream.push(out_stream);
        self.origin_span.push(left.ts.abs_diff(right.ts));
        self.role.push(TupleRole::Regular);
        self.lineage.push(left.lineage.min(right.lineage));
        true
    }

    /// Append row `i` of another batch.  Returns `false` on arity mismatch.
    pub fn push_row_from(&mut self, src: &ColumnBatch, i: usize) -> bool {
        self.key_hash = None;
        if self.ts.is_empty() {
            self.columns = src
                .columns
                .iter()
                .map(|c| TypedColumn::with_first(&c.value_at(i)))
                .collect();
        } else if src.columns.len() != self.columns.len() {
            return false;
        } else {
            for (dst, sc) in self.columns.iter_mut().zip(&src.columns) {
                dst.push(&sc.value_at(i));
            }
        }
        self.ts.push(src.ts[i]);
        self.stream.push(src.stream[i]);
        self.origin_span.push(src.origin_span[i]);
        self.role.push(src.role[i]);
        self.lineage.push(src.lineage[i]);
        true
    }

    fn push_payload<'a>(&mut self, values: impl Iterator<Item = &'a Value>, arity: usize) -> bool {
        self.key_hash = None;
        if self.ts.is_empty() {
            self.columns = values.map(TypedColumn::with_first).collect();
            true
        } else if arity != self.columns.len() {
            false
        } else {
            for (col, v) in self.columns.iter_mut().zip(values) {
                col.push(v);
            }
            true
        }
    }

    /// Build a batch from a slice of tuples.  `None` if the slice is empty
    /// or the tuples disagree on arity.
    pub fn from_tuples(tuples: &[Tuple]) -> Option<ColumnBatch> {
        if tuples.is_empty() {
            return None;
        }
        let mut batch = ColumnBatch::new();
        for t in tuples {
            if !batch.push_tuple(t) {
                return None;
            }
        }
        Some(batch)
    }

    /// Materialize row `i` as a [`Tuple`].  If a key-hash column is present,
    /// the row's class is forwarded into the tuple's key memo, so downstream
    /// consumers keying on the same field never rehash.
    pub fn row(&self, i: usize) -> Tuple {
        let values: Arc<[Value]> = self.columns.iter().map(|c| c.value_at(i)).collect();
        let mut t = Tuple {
            ts: self.ts[i],
            stream: self.stream[i],
            values,
            origin_span: self.origin_span[i],
            role: self.role[i],
            lineage: self.lineage[i],
            key_hash: None,
        };
        if let Some(k) = &self.key_hash {
            t.set_key_memo(k.field, k.classes[i]);
        }
        t
    }

    /// Materialize every row, in order.
    pub fn materialize(&self) -> Vec<Tuple> {
        (0..self.len()).map(|i| self.row(i)).collect()
    }

    /// Gather the given rows (ascending batch indices) into a new batch.  A
    /// memoised key-hash column survives: filtering does not change the
    /// payload layout.
    pub fn gather(&self, rows: &[u32]) -> ColumnBatch {
        ColumnBatch {
            ts: rows.iter().map(|&r| self.ts[r as usize]).collect(),
            stream: rows.iter().map(|&r| self.stream[r as usize]).collect(),
            origin_span: rows.iter().map(|&r| self.origin_span[r as usize]).collect(),
            role: rows.iter().map(|&r| self.role[r as usize]).collect(),
            lineage: rows.iter().map(|&r| self.lineage[r as usize]).collect(),
            columns: self.columns.iter().map(|c| c.gather(rows)).collect(),
            key_hash: self.key_hash.as_ref().map(|k| KeyHashColumn {
                field: k.field,
                classes: rows.iter().map(|&r| k.classes[r as usize]).collect(),
            }),
        }
    }

    /// Columnar projection: keep the columns named by `fields`, in that
    /// order, padding out-of-range indices with all-`Null` columns — the
    /// row-path semantics of `ProjectOp`.  The key memo is dropped: the
    /// projected payload has a new field layout.
    pub fn project(&self, fields: &[usize]) -> ColumnBatch {
        let n = self.len();
        ColumnBatch {
            ts: self.ts.clone(),
            stream: self.stream.clone(),
            origin_span: self.origin_span.clone(),
            role: self.role.clone(),
            lineage: self.lineage.clone(),
            columns: fields
                .iter()
                .map(|&f| match self.columns.get(f) {
                    Some(c) => c.clone(),
                    None => TypedColumn {
                        data: ColumnData::Mixed(vec![Value::Null; n]),
                        validity: None,
                    },
                })
                .collect(),
            key_hash: None,
        }
    }

    /// Compute (and memoise) the canonical key classes of `field` for every
    /// row in one per-column loop — the columnar counterpart of
    /// [`crate::join_state::memoize_key`].  A no-op if the column is already
    /// computed for the same field.
    pub fn hash_key_column(&mut self, field: usize) {
        if self.key_hash.as_ref().is_some_and(|k| k.field == field) {
            return;
        }
        let n = self.len();
        let mut classes = Vec::with_capacity(n);
        match self.columns.get(field) {
            // All rows share the batch arity, so a missing key attribute is
            // missing for every row.
            None => classes.resize(n, KeyClass::Missing),
            Some(col) => match (&col.data, &col.validity) {
                (ColumnData::Int(xs), None) => {
                    classes.extend(xs.iter().map(|&x| class_of(&Value::Int(x))));
                }
                (ColumnData::Float(xs), None) => {
                    classes.extend(xs.iter().map(|&x| class_of(&Value::Float(x))));
                }
                _ => classes.extend((0..n).map(|i| class_of(&col.value_at(i)))),
            },
        }
        self.key_hash = Some(KeyHashColumn { field, classes });
    }

    /// The memoised key classes, if computed for `field`.
    pub fn key_classes(&self, field: usize) -> Option<&[KeyClass]> {
        match &self.key_hash {
            Some(k) if k.field == field => Some(&k.classes),
            _ => None,
        }
    }
}

fn class_of(v: &Value) -> KeyClass {
    match canonical_key_hash(v) {
        Some(hash) => KeyClass::Hash(hash),
        None => KeyClass::Nan,
    }
}

/// Evaluate `pred` over every row of `batch`, returning the selection vector
/// of passing row indices (ascending) and adding the number of value
/// comparisons to `comparisons` — exactly the count the row path's
/// [`Predicate::eval_counted`] would report over the same rows.
pub fn eval_predicate(pred: &Predicate, batch: &ColumnBatch, comparisons: &mut u64) -> Vec<u32> {
    let scope: Vec<u32> = (0..batch.len() as u32).collect();
    let mut out = Vec::with_capacity(batch.len());
    eval_predicate_into(pred, batch, &scope, &mut out, comparisons);
    out
}

/// Evaluate `pred` over the rows listed in `scope` (ascending), writing the
/// passing subset into `out` (cleared first, order preserved).
///
/// Counting matches short-circuit row evaluation exactly: `And(a, b)` counts
/// `b` only on rows that passed `a`, `Or(a, b)` counts `b` only on rows that
/// failed `a`, and a `Compare`/`CompareFields` counts one comparison per
/// scoped row (even when the field is out of range — the row path counts
/// before it looks the field up).
pub fn eval_predicate_into(
    pred: &Predicate,
    batch: &ColumnBatch,
    scope: &[u32],
    out: &mut Vec<u32>,
    comparisons: &mut u64,
) {
    out.clear();
    match pred {
        Predicate::True => out.extend_from_slice(scope),
        Predicate::False => {}
        Predicate::Compare { field, op, value } => {
            *comparisons += scope.len() as u64;
            if let Some(col) = batch.columns.get(*field) {
                compare_const(col, scope, *op, value, out);
            }
        }
        Predicate::CompareFields { left, op, right } => {
            *comparisons += scope.len() as u64;
            if let (Some(a), Some(b)) = (batch.columns.get(*left), batch.columns.get(*right)) {
                compare_fields(a, b, scope, *op, out);
            }
        }
        Predicate::And(a, b) => {
            let mut pass_a = Vec::new();
            eval_predicate_into(a, batch, scope, &mut pass_a, comparisons);
            eval_predicate_into(b, batch, &pass_a, out, comparisons);
        }
        Predicate::Or(a, b) => {
            let mut pass_a = Vec::new();
            eval_predicate_into(a, batch, scope, &mut pass_a, comparisons);
            let mut fail_a = Vec::new();
            complement(scope, &pass_a, &mut fail_a);
            let mut pass_b = Vec::new();
            eval_predicate_into(b, batch, &fail_a, &mut pass_b, comparisons);
            merge_sorted(&pass_a, &pass_b, out);
        }
        Predicate::Not(p) => {
            let mut pass = Vec::new();
            eval_predicate_into(p, batch, scope, &mut pass, comparisons);
            complement(scope, &pass, out);
        }
    }
}

/// Tight per-column compare-against-constant loop.  The `Int`/`Float`
/// no-null fast paths inline the primitive comparison; everything else goes
/// through [`Value::compare`], whose semantics they replicate exactly.
fn compare_const(col: &TypedColumn, scope: &[u32], op: CmpOp, konst: &Value, out: &mut Vec<u32>) {
    match (&col.data, konst, &col.validity) {
        (ColumnData::Int(xs), Value::Int(k), None) => {
            for &r in scope {
                if op.apply(xs[r as usize].cmp(k)) {
                    out.push(r);
                }
            }
        }
        (ColumnData::Float(xs), Value::Float(k), None) => {
            for &r in scope {
                let ord = xs[r as usize]
                    .partial_cmp(k)
                    .unwrap_or(std::cmp::Ordering::Equal);
                if op.apply(ord) {
                    out.push(r);
                }
            }
        }
        _ => {
            for &r in scope {
                if op.apply(col.value_at(r as usize).compare(konst)) {
                    out.push(r);
                }
            }
        }
    }
}

fn compare_fields(a: &TypedColumn, b: &TypedColumn, scope: &[u32], op: CmpOp, out: &mut Vec<u32>) {
    match (&a.data, &a.validity, &b.data, &b.validity) {
        (ColumnData::Int(xs), None, ColumnData::Int(ys), None) => {
            for &r in scope {
                if op.apply(xs[r as usize].cmp(&ys[r as usize])) {
                    out.push(r);
                }
            }
        }
        _ => {
            for &r in scope {
                if op.apply(a.value_at(r as usize).compare(&b.value_at(r as usize))) {
                    out.push(r);
                }
            }
        }
    }
}

/// A sorted permutation of one payload column, the columnar counterpart of
/// the [`crate::join_state`] band index: numeric rows ordered by their key
/// value (ties by row index), non-numeric rows (`Null`/`Bool`/`Str`/`NaN` —
/// which *can* satisfy band thetas through cross-type comparisons) in a side
/// list every probe scans.  Rows whose band field is out of range appear in
/// neither (a theta over an absent field is false, and join conditions are
/// pure conjunctions).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BandColumnIndex {
    /// `(monotone key bits, row)` ascending — binary-search territory.
    order: Vec<(u64, u32)>,
    /// Rows whose key does not order numerically, ascending.
    side: Vec<u32>,
}

impl BandColumnIndex {
    /// Number of rows the index references.
    pub fn len(&self) -> usize {
        self.order.len() + self.side.len()
    }

    /// `true` if no row is referenced.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty() && self.side.is_empty()
    }
}

/// Build the sorted permutation of `field` over the rows of `batch` — one
/// `O(n log n)` sort that [`probe_band_column`] then binary-searches per
/// probe.  Typed `Int`/`Float` no-null columns take flat fast paths.
pub fn sort_band_column(batch: &ColumnBatch, field: usize) -> BandColumnIndex {
    let mut index = BandColumnIndex::default();
    let Some(col) = batch.columns.get(field) else {
        return index; // out-of-range field: no row can match a band theta
    };
    match (&col.data, &col.validity) {
        (ColumnData::Int(xs), None) => {
            index.order.extend(xs.iter().enumerate().map(|(i, &x)| {
                let bits = monotone_band_bits(x as f64).expect("i64 cast is never NaN");
                (bits, i as u32)
            }));
        }
        (ColumnData::Float(xs), None) => {
            for (i, &x) in xs.iter().enumerate() {
                match monotone_band_bits(x) {
                    Some(bits) => index.order.push((bits, i as u32)),
                    None => index.side.push(i as u32),
                }
            }
        }
        _ => {
            for i in 0..batch.len() {
                match band_key_bits(&col.value_at(i)) {
                    Some(bits) => index.order.push((bits, i as u32)),
                    None => index.side.push(i as u32),
                }
            }
        }
    }
    index.order.sort_unstable();
    index
}

/// Band-probe one stored batch with one probe tuple: binary-search the
/// sorted permutation to the probe's `[lo, hi]` key range, walk the
/// contiguous run plus the non-numeric side list, and evaluate the full
/// join condition on each candidate.  Returns the selection vector of
/// matching stored rows (ascending) and adds exactly the value comparisons
/// the row path — [`crate::join_state::JoinState::probe_candidates`] over
/// the same stored tuples followed by per-candidate
/// [`JoinCondition::eval_counted`] — would count.
///
/// `spec` must be `band_bounds(cond, stored_is_left)` for the same
/// condition and orientation; `stored_is_left` says whether the stored rows
/// are the condition's left operand.  Range endpoints are widened to
/// inclusive at `f64` granularity, a missing bound attribute on the probe
/// yields no candidates, and a non-numeric bound value degrades to scanning
/// every indexed row — all exactly as in the row path, so counters agree.
pub fn probe_band_column(
    cond: &JoinCondition,
    spec: &BandProbe,
    stored_is_left: bool,
    index: &BandColumnIndex,
    batch: &ColumnBatch,
    probe: &Tuple,
    comparisons: &mut u64,
) -> Vec<u32> {
    let mut lo = 0usize;
    let mut hi = index.order.len();
    let mut full_scan = false;
    for (bound, is_lower) in [(spec.lower, true), (spec.upper, false)] {
        if let Some((field, _inclusive)) = bound {
            match probe.value(field) {
                None => return Vec::new(),
                Some(v) => match band_key_bits(v) {
                    None => full_scan = true,
                    Some(bits) => {
                        if is_lower {
                            lo = index.order.partition_point(|&(b, _)| b < bits);
                        } else {
                            hi = index.order.partition_point(|&(b, _)| b <= bits);
                        }
                    }
                },
            }
        }
    }
    let mut out = Vec::new();
    let mut eval = |row: u32, out: &mut Vec<u32>| {
        let stored = batch.row(row as usize);
        let hit = if stored_is_left {
            cond.eval_counted(&stored, probe, comparisons)
        } else {
            cond.eval_counted(probe, &stored, comparisons)
        };
        if hit {
            out.push(row);
        }
    };
    if full_scan {
        // The row path degrades to Candidates::all here — every stored row,
        // even ones the index does not reference — so do exactly that.
        for row in 0..batch.len() as u32 {
            eval(row, &mut out);
        }
        return out;
    }
    if lo < hi {
        for &(_, row) in &index.order[lo..hi] {
            eval(row, &mut out);
        }
    }
    for &row in &index.side {
        eval(row, &mut out);
    }
    out.sort_unstable();
    out
}

/// `out` = `scope` minus `subset` (`subset` ⊆ `scope`, both ascending).
fn complement(scope: &[u32], subset: &[u32], out: &mut Vec<u32>) {
    let mut j = 0;
    for &r in scope {
        if j < subset.len() && subset[j] == r {
            j += 1;
        } else {
            out.push(r);
        }
    }
}

/// Merge two disjoint ascending index lists into `out` (ascending).
fn merge_sorted(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_state::memoize_key;
    use crate::tuple::LINEAGE_ALL;

    fn t(secs: u64, vals: &[i64]) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, vals)
    }

    fn tv(secs: u64, vals: Vec<Value>) -> Tuple {
        Tuple::new(Timestamp::from_secs(secs), StreamId::B, vals)
    }

    #[test]
    fn round_trip_preserves_rows() {
        let mut rows = vec![
            tv(1, vec![Value::Int(1), Value::str("a"), Value::Bool(true)]),
            tv(2, vec![Value::Int(2), Value::str("b"), Value::Null]),
            tv(3, vec![Value::Null, Value::str("c"), Value::Bool(false)]),
        ];
        rows[1].role = TupleRole::Male;
        rows[2].lineage = 4;
        rows[2].origin_span = TimeDelta::from_secs(7);
        let batch = ColumnBatch::from_tuples(&rows).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.arity(), 3);
        assert_eq!(batch.first_ts(), Some(Timestamp::from_secs(1)));
        assert_eq!(batch.last_ts(), Some(Timestamp::from_secs(3)));
        assert_eq!(batch.materialize(), rows);
    }

    #[test]
    fn column_types_degrade_to_mixed_when_needed() {
        let rows = vec![
            tv(1, vec![Value::Int(1)]),
            tv(2, vec![Value::Null]),
            tv(3, vec![Value::str("x")]),
            tv(4, vec![Value::Float(2.5)]),
        ];
        let batch = ColumnBatch::from_tuples(&rows).unwrap();
        assert!(matches!(batch.columns()[0].data(), ColumnData::Mixed(_)));
        assert_eq!(batch.materialize(), rows);
        // A pure Int-with-null column keeps its typed layout and a mask.
        let rows = vec![tv(1, vec![Value::Int(1)]), tv(2, vec![Value::Null])];
        let batch = ColumnBatch::from_tuples(&rows).unwrap();
        assert!(matches!(batch.columns()[0].data(), ColumnData::Int(_)));
        assert_eq!(batch.materialize(), rows);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut batch = ColumnBatch::new();
        assert!(batch.push_tuple(&t(1, &[1, 2])));
        assert!(!batch.push_tuple(&t(2, &[1])));
        assert_eq!(batch.len(), 1);
        assert!(ColumnBatch::from_tuples(&[t(1, &[1, 2]), t(2, &[3])]).is_none());
        assert!(ColumnBatch::from_tuples(&[]).is_none());
    }

    #[test]
    fn push_join_matches_tuple_join() {
        let pairs = [
            (t(5, &[7, 1]), t(2, &[7, 9])),
            (t(3, &[8, 2]), t(6, &[8, 0])),
        ];
        let mut batch = ColumnBatch::new();
        for (l, r) in &pairs {
            assert!(batch.push_join(l, r, StreamId(9)));
        }
        let want: Vec<Tuple> = pairs
            .iter()
            .map(|(l, r)| Tuple::join(l, r, StreamId(9)))
            .collect();
        assert_eq!(batch.materialize(), want);
    }

    #[test]
    fn push_row_from_copies_rows_across_batches() {
        let rows = vec![
            tv(1, vec![Value::Int(1), Value::str("a")]),
            tv(2, vec![Value::Null, Value::str("b")]),
            tv(3, vec![Value::Int(3), Value::str("c")]),
        ];
        let src = ColumnBatch::from_tuples(&rows).unwrap();
        let mut dst = ColumnBatch::new();
        assert!(dst.push_row_from(&src, 2));
        assert!(dst.push_row_from(&src, 0));
        assert_eq!(dst.materialize(), vec![rows[2].clone(), rows[0].clone()]);
        let other_arity = ColumnBatch::from_tuples(&[t(9, &[1])]).unwrap();
        assert!(!dst.push_row_from(&other_arity, 0));
    }

    #[test]
    fn predicate_kernel_matches_row_eval_exactly() {
        // Pseudo-random rows, a zoo of predicates: the kernel's pass set AND
        // its comparison count must equal per-row eval_counted.
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let rows: Vec<Tuple> = (0..200)
            .map(|i| {
                let a = (next() % 10) as i64;
                let b = (next() % 10) as i64;
                let v = if next() % 5 == 0 {
                    Value::Null
                } else {
                    Value::Int((next() % 100) as i64)
                };
                tv(i, vec![Value::Int(a), Value::Int(b), v])
            })
            .collect();
        let batch = ColumnBatch::from_tuples(&rows).unwrap();
        let preds = [
            Predicate::True,
            Predicate::False,
            Predicate::gt(0, 4i64),
            Predicate::eq(2, 50i64),
            Predicate::cmp(2, CmpOp::Le, Value::Null),
            Predicate::gt(7, 0i64), // out-of-range field
            Predicate::CompareFields {
                left: 0,
                op: CmpOp::Lt,
                right: 1,
            },
            Predicate::gt(0, 4i64).and(Predicate::le(1, 6i64)),
            Predicate::gt(0, 7i64).or(Predicate::le(1, 2i64)),
            Predicate::gt(0, 4i64).negate(),
            Predicate::gt(0, 2i64)
                .and(Predicate::le(1, 8i64).or(Predicate::eq(2, 3i64)))
                .and(Predicate::gt(7, 0i64).negate()),
        ];
        for pred in &preds {
            let mut kernel_count = 0u64;
            let selection = eval_predicate(pred, &batch, &mut kernel_count);
            let mut row_count = 0u64;
            let want: Vec<u32> = rows
                .iter()
                .enumerate()
                .filter(|(_, r)| pred.eval_counted(r, &mut row_count))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(selection, want, "selection mismatch for {pred:?}");
            assert_eq!(kernel_count, row_count, "count mismatch for {pred:?}");
        }
    }

    #[test]
    fn gather_subsets_rows_and_keeps_key_classes() {
        let rows = vec![t(1, &[7, 0]), t(2, &[8, 1]), t(3, &[7, 2]), t(4, &[9, 3])];
        let mut batch = ColumnBatch::from_tuples(&rows).unwrap();
        batch.hash_key_column(0);
        let sub = batch.gather(&[0, 2]);
        assert_eq!(
            sub.materialize(),
            vec![batch.row(0), batch.row(2)],
            "gathered rows"
        );
        let classes = sub.key_classes(0).expect("classes survive gather");
        assert_eq!(
            classes,
            &[
                KeyClass::Hash(canonical_key_hash(&Value::Int(7)).unwrap()),
                KeyClass::Hash(canonical_key_hash(&Value::Int(7)).unwrap()),
            ]
        );
    }

    #[test]
    fn projection_pads_missing_fields_with_null() {
        let rows = vec![t(1, &[1, 2]), t(2, &[3, 4])];
        let mut batch = ColumnBatch::from_tuples(&rows).unwrap();
        batch.hash_key_column(0);
        let projected = batch.project(&[1, 5, 0]);
        assert_eq!(projected.arity(), 3);
        let got = projected.materialize();
        assert_eq!(
            got[0].values.as_ref(),
            &[Value::Int(2), Value::Null, Value::Int(1)]
        );
        assert_eq!(
            got[1].values.as_ref(),
            &[Value::Int(4), Value::Null, Value::Int(3)]
        );
        // The projected layout is new: no key classes survive.
        assert_eq!(projected.key_classes(0), None);
        assert_eq!(got[0].key_hash, None);
        // Row metadata is carried through unchanged.
        assert_eq!(got[0].ts, rows[0].ts);
        assert_eq!(got[0].lineage, LINEAGE_ALL);
    }

    #[test]
    fn key_hash_column_matches_the_row_path_memo() {
        let rows = vec![
            tv(1, vec![Value::Int(3)]),
            tv(2, vec![Value::Float(3.0)]),
            tv(3, vec![Value::Float(f64::NAN)]),
            tv(4, vec![Value::Null]),
            tv(5, vec![Value::str("k")]),
        ];
        let mut batch = ColumnBatch::from_tuples(&rows).unwrap();
        assert_eq!(batch.key_classes(0), None);
        batch.hash_key_column(0);
        let classes = batch.key_classes(0).unwrap().to_vec();
        for (i, row) in rows.iter().enumerate() {
            let mut reference = row.clone();
            let want = memoize_key(&mut reference, 0);
            assert_eq!(classes[i], want, "row {i}");
            // Materialized rows carry the memo the row path would compute.
            assert_eq!(batch.row(i).memoized_key(0), Some(want), "row {i} memo");
        }
        // Out-of-range key field: every row is Missing.
        batch.hash_key_column(9);
        assert_eq!(batch.key_classes(9).unwrap(), &[KeyClass::Missing; 5]);
        // The memo is a cache: it does not participate in equality (checked
        // on NaN-free rows — NaN payloads never compare equal, same as the
        // row path)...
        let rows = vec![tv(1, vec![Value::Int(3)]), tv(2, vec![Value::Int(4)])];
        let plain = ColumnBatch::from_tuples(&rows).unwrap();
        let mut hashed = plain.clone();
        hashed.hash_key_column(0);
        assert_eq!(hashed, plain);
        // ...and any payload mutation drops it.
        assert!(hashed.push_tuple(&tv(6, vec![Value::Int(8)])));
        assert_eq!(hashed.key_classes(0), None);
    }

    fn theta(left_field: usize, op: CmpOp, right_field: usize) -> JoinCondition {
        JoinCondition::Theta {
            left_field,
            op,
            right_field,
        }
    }

    #[test]
    fn band_kernel_matches_row_probe_exactly() {
        use crate::join_state::JoinState;
        use crate::predicate::band_bounds;

        let mut seed = 0xdead_beef_cafe_f00du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        // Stored rows: field 0 is the band key (Int / Float / NaN / Null /
        // Str zoo), field 1 is the row id — equal to the row's position.
        let rows: Vec<Tuple> = (0..160)
            .map(|i| {
                let key = match next() % 8 {
                    0 => Value::Float((next() % 60) as f64 / 2.0),
                    1 => Value::Float(f64::NAN),
                    2 => Value::Null,
                    3 => Value::str("zed"),
                    _ => Value::Int((next() % 30) as i64),
                };
                tv(i, vec![key, Value::Int(i as i64)])
            })
            .collect();
        let batch = ColumnBatch::from_tuples(&rows).unwrap();
        let index = sort_band_column(&batch, 0);
        assert_eq!(index.len(), batch.len());
        assert!(index.order.windows(2).all(|w| w[0].0 <= w[1].0));

        // Same band either way round: stored field 0 between probe fields
        // 0 and 1, with the stored tuple on the left resp. the right.
        let cases = [
            (
                JoinCondition::And(
                    Box::new(theta(0, CmpOp::Ge, 0)),
                    Box::new(theta(0, CmpOp::Le, 1)),
                ),
                true,
            ),
            (
                JoinCondition::And(
                    Box::new(theta(0, CmpOp::Le, 0)),
                    Box::new(theta(1, CmpOp::Ge, 0)),
                ),
                false,
            ),
        ];
        for (cond, stored_is_left) in &cases {
            let spec = band_bounds(cond, *stored_is_left).unwrap();
            let mut state = JoinState::band_indexed(spec);
            for row in &rows {
                state.push(row.clone());
            }
            let probes = vec![
                t(90, &[10, 20]),
                t(91, &[20, 10]), // inverted range
                t(92, &[-5, 100]),
                tv(93, vec![Value::Float(9.5), Value::Float(22.0)]),
                tv(94, vec![Value::Float(f64::NAN), Value::Int(30)]), // full scan
                tv(95, vec![Value::str("x"), Value::Int(4)]),         // full scan
                tv(96, vec![Value::Null, Value::Int(4)]),             // full scan
                t(97, &[3]), // upper bound field missing -> no candidates
            ];
            for probe in &probes {
                let mut kernel_count = 0u64;
                let sel = probe_band_column(
                    cond,
                    &spec,
                    *stored_is_left,
                    &index,
                    &batch,
                    probe,
                    &mut kernel_count,
                );
                let mut got: Vec<i64> = sel.iter().map(|&r| r as i64).collect();
                got.sort_unstable();
                let mut row_count = 0u64;
                let mut want: Vec<i64> = Vec::new();
                for stored in state.probe_candidates(probe) {
                    let hit = if *stored_is_left {
                        cond.eval_counted(stored, probe, &mut row_count)
                    } else {
                        cond.eval_counted(probe, stored, &mut row_count)
                    };
                    if hit {
                        match stored.value(1) {
                            Some(Value::Int(id)) => want.push(*id),
                            other => panic!("row id missing: {other:?}"),
                        }
                    }
                }
                want.sort_unstable();
                assert_eq!(got, want, "selection for probe {probe:?}");
                assert_eq!(kernel_count, row_count, "comparisons for probe {probe:?}");
            }
        }
    }

    #[test]
    fn band_kernel_handles_missing_key_column_like_the_row_path() {
        use crate::join_state::JoinState;
        use crate::predicate::band_bounds;

        // The band field is out of range for every stored row: the index
        // references nothing, and only a full-scan probe touches the rows —
        // exactly what the row path's Candidates::all degrade does.
        let rows: Vec<Tuple> = (0..8).map(|i| t(i, &[i as i64])).collect();
        let batch = ColumnBatch::from_tuples(&rows).unwrap();
        let index = sort_band_column(&batch, 5);
        assert!(index.is_empty());

        let cond = theta(5, CmpOp::Ge, 0);
        let spec = band_bounds(&cond, true).unwrap();
        let mut state = JoinState::band_indexed(spec);
        for row in &rows {
            state.push(row.clone());
        }
        for probe in [t(9, &[0]), tv(9, vec![Value::str("q")])] {
            let mut kernel_count = 0u64;
            let sel = probe_band_column(
                &cond,
                &spec,
                true,
                &index,
                &batch,
                &probe,
                &mut kernel_count,
            );
            assert!(sel.is_empty(), "probe {probe:?}");
            let mut row_count = 0u64;
            let hits = state
                .probe_candidates(&probe)
                .filter(|stored| cond.eval_counted(stored, &probe, &mut row_count))
                .count();
            assert_eq!(hits, 0);
            // Thetas over an absent stored field never compare values, so
            // both paths report zero comparisons even on the full scan.
            assert_eq!(kernel_count, row_count);
            assert_eq!(kernel_count, 0);
        }
    }
}
