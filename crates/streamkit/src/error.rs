//! Error type shared by plan construction and execution.

use std::fmt;

/// Errors raised while building or executing a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The plan graph is malformed (dangling port, cycle, bad arity, ...).
    PlanValidation(String),
    /// A named entry point does not exist.
    UnknownEntry(String),
    /// A node id is out of range for the plan.
    UnknownNode(usize),
    /// An operator received a tuple it cannot process.
    SchemaMismatch(String),
    /// A runtime invariant was violated (e.g. out-of-order input).
    Execution(String),
    /// Query text could not be parsed.
    Parse(String),
    /// Configuration values are inconsistent.
    InvalidConfig(String),
    /// A shard worker died (panicked or exited) instead of completing its
    /// work.  Recoverable via `core::recovery::RecoverySupervisor`.
    WorkerFailed(String),
    /// Checkpoint capture or restore failed.
    Checkpoint(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::PlanValidation(m) => write!(f, "plan validation error: {m}"),
            StreamError::UnknownEntry(m) => write!(f, "unknown entry point: {m}"),
            StreamError::UnknownNode(id) => write!(f, "unknown node id: {id}"),
            StreamError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            StreamError::Execution(m) => write!(f, "execution error: {m}"),
            StreamError::Parse(m) => write!(f, "parse error: {m}"),
            StreamError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            StreamError::WorkerFailed(m) => write!(f, "worker failed: {m}"),
            StreamError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, StreamError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = StreamError::PlanValidation("dangling port".into());
        assert!(e.to_string().contains("dangling port"));
        let e = StreamError::UnknownEntry("A".into());
        assert!(e.to_string().contains("A"));
        let e = StreamError::UnknownNode(7);
        assert!(e.to_string().contains('7'));
        let e = StreamError::Parse("bad token".into());
        assert!(e.to_string().contains("bad token"));
        let e = StreamError::WorkerFailed("shard 3 panicked".into());
        assert!(e.to_string().contains("shard 3 panicked"));
        let e = StreamError::Checkpoint("no checkpoint taken yet".into());
        assert!(e.to_string().contains("no checkpoint taken yet"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&StreamError::Execution("x".into()));
    }
}
