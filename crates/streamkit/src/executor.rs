//! Plan execution with statistics collection.
//!
//! The [`Executor`] owns a [`Plan`], one queue per operator input port and the
//! statistics the paper's evaluation reports: state memory (tuples), the
//! comparison-count breakdown, per-query sink throughput and wall-clock
//! service rate (total throughput / running time, Section 7.1).

use std::collections::HashMap;
use std::time::Instant;

use crate::error::{Result, StreamError};
use crate::fault::{FaultKind, FaultPlan, FAULT_PANIC_PREFIX};
use crate::operator::{OpContext, PortId};
use crate::plan::Plan;
use crate::queue::{Queue, StreamItem};
use crate::scheduler::{RoundRobinScheduler, Scheduler};
use crate::stats::{
    CostCounters, MemoryStats, NodeStats, OperatorSnapshot, StatsSnapshot, StatsWindow,
    DEFAULT_STATS_ALPHA,
};
use crate::tuple::StreamId;

/// Executor tuning knobs.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Maximum items an operator consumes per scheduler visit.
    pub batch_per_visit: usize,
    /// Sample the total state size every this many processed items.
    pub memory_sample_every: u64,
    /// Safety bound on scheduler rounds (guards against runaway plans).
    pub max_rounds: u64,
    /// Batch-at-a-time execution (default): each visit pops whole
    /// timestamp-contiguous runs from one port and hands them to
    /// [`Operator::process_batch`](crate::operator::Operator), amortising
    /// dispatch, queue and output-staging costs over the run.  Disable for
    /// the strict item-at-a-time path — results and output-scaling counters
    /// are identical either way (pinned by `tests/batch_equivalence.rs`);
    /// the toggle exists so the speedup stays measurable.
    pub vectorized: bool,
    /// Deterministic fault to inject (crash-recovery testing only; `None`
    /// in production).  See [`crate::fault`].
    pub fault: Option<FaultPlan>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        // A small per-visit batch keeps the round-robin interleaving close to
        // the paper's CAPE setup (no operator races far ahead of the rest of
        // the plan, so state sizes stay representative) while amortising the
        // per-round scheduling overhead across a few tuples.
        ExecutorConfig {
            batch_per_visit: 64,
            memory_sample_every: 256,
            max_rounds: u64::MAX,
            vectorized: true,
            fault: None,
        }
    }
}

/// Result of running a plan to quiescence.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Global comparison counters summed over all operators.
    pub totals: CostCounters,
    /// Per-operator statistics, in node-id order.
    pub node_stats: Vec<NodeStats>,
    /// State-memory statistics sampled during the run.
    pub memory: MemoryStats,
    /// Tuples delivered to each sink, keyed by sink (query) name.
    pub sink_counts: HashMap<String, u64>,
    /// Number of external items ingested.
    pub ingested: u64,
    /// Wall-clock running time in seconds, accumulated over every
    /// [`Executor::run`] call of this executor's lifetime.  Incremental
    /// (ingest → run → ingest → run) usage therefore reports one consistent
    /// cumulative figure: counters, sink counts and elapsed time all cover
    /// the whole history, and the service rate stays exact across epochs.
    pub elapsed_secs: f64,
    /// Wall-clock seconds spent explicitly paused ([`Executor::pause`] /
    /// [`Executor::resume`]), e.g. during online chain migration.  Never part
    /// of `elapsed_secs`, so migration stalls cannot inflate (or deflate)
    /// the service rate.
    pub paused_secs: f64,
    /// Scheduler rounds executed (cumulative, like `elapsed_secs`).
    pub rounds: u64,
}

impl ExecutionReport {
    /// Total tuples delivered to all sinks.
    pub fn total_output(&self) -> u64 {
        self.sink_counts.values().sum()
    }

    /// The paper's service-rate metric: total throughput / running time.
    ///
    /// "Throughput" counts every tuple delivered to a query result receiver
    /// plus every ingested input tuple, so that a plan that filters
    /// everything still has a finite, comparable service rate.
    pub fn service_rate(&self) -> f64 {
        if self.elapsed_secs <= 0.0 {
            return 0.0;
        }
        (self.total_output() + self.ingested) as f64 / self.elapsed_secs
    }

    /// Output count for a specific sink.
    pub fn sink_count(&self, name: &str) -> u64 {
        self.sink_counts.get(name).copied().unwrap_or(0)
    }

    /// Merge the reports of partitions of one logical run (e.g. the
    /// per-shard reports of a [`ShardedExecutor`](crate::shard::ShardedExecutor))
    /// into one report with the same schema:
    ///
    /// * counters, sink counts and ingest counts are summed,
    /// * per-node statistics are summed position-wise (partitions execute
    ///   instances of the same plan, so node `i` is the same operator in
    ///   every partition),
    /// * memory peaks/averages are summed (see [`MemoryStats::merge`]),
    /// * `elapsed_secs` is the maximum — partitions run concurrently, so the
    ///   slowest one determines the wall clock and the service rate stays a
    ///   *total-throughput / wall-clock* metric,
    /// * `paused_secs` is the maximum, **not** the sum: a sharded pause
    ///   ([`crate::shard::ShardedExecutor::pause`]) pauses all partitions
    ///   over the same wall-clock interval, so summing would count one stall
    ///   N times.  Sequential epochs of the *same* executor are the
    ///   opposite case and must sum (see `accumulate_sequential` in the
    ///   live-reslicing layer) — pause time is counted exactly once either
    ///   way,
    /// * `rounds` is the maximum for the same reason.
    pub fn merge(reports: Vec<ExecutionReport>) -> ExecutionReport {
        let mut iter = reports.into_iter();
        let Some(mut merged) = iter.next() else {
            return ExecutionReport {
                totals: CostCounters::default(),
                node_stats: Vec::new(),
                memory: MemoryStats::default(),
                sink_counts: HashMap::new(),
                ingested: 0,
                elapsed_secs: 0.0,
                paused_secs: 0.0,
                rounds: 0,
            };
        };
        for report in iter {
            // Position-wise summing is only meaningful over instances of the
            // same plan; a length mismatch means the partition plans diverged
            // and `zip` would silently truncate the per-node statistics.
            debug_assert_eq!(
                merged.node_stats.len(),
                report.node_stats.len(),
                "merged reports must cover the same plan (node_stats lengths differ)"
            );
            merged.totals.add(&report.totals);
            for (into, from) in merged.node_stats.iter_mut().zip(&report.node_stats) {
                into.counters.add(&from.counters);
                into.state_tuples += from.state_tuples;
                into.peak_state_tuples += from.peak_state_tuples;
                into.state_bytes += from.state_bytes;
                into.peak_state_bytes += from.peak_state_bytes;
            }
            merged.memory.merge(&report.memory);
            for (name, count) in report.sink_counts {
                *merged.sink_counts.entry(name).or_insert(0) += count;
            }
            merged.ingested += report.ingested;
            merged.elapsed_secs = merged.elapsed_secs.max(report.elapsed_secs);
            merged.paused_secs = merged.paused_secs.max(report.paused_secs);
            merged.rounds = merged.rounds.max(report.rounds);
        }
        merged
    }
}

/// Runs a [`Plan`] to quiescence over externally ingested input.
pub struct Executor {
    plan: Plan,
    config: ExecutorConfig,
    /// `queues[node][port]` is the input queue of that port.
    queues: Vec<Vec<Queue>>,
    /// Precomputed routing table: `routing[node][out_port]` lists the
    /// destination `(node index, input port)` pairs.
    routing: Vec<Vec<Vec<(usize, PortId)>>>,
    node_counters: Vec<CostCounters>,
    peak_state: Vec<usize>,
    peak_state_bytes: Vec<usize>,
    memory: MemoryStats,
    ingested: u64,
    processed_since_sample: u64,
    /// Cumulative in-run wall clock over this executor's lifetime.
    active_secs: f64,
    /// Cumulative explicitly-paused wall clock (migration stalls).
    paused_secs: f64,
    /// Start of the pause currently in progress, if any.
    pause_started: Option<Instant>,
    /// Scheduler rounds accumulated over every run.
    total_rounds: u64,
    /// Counters of operators retired by [`Executor::swap_plan`], folded into
    /// every subsequent report's totals.
    carried_totals: CostCounters,
    /// Sink deliveries of plans retired by [`Executor::swap_plan`], folded
    /// into every subsequent report's sink counts.
    carried_sinks: HashMap<String, u64>,
    /// Data tuples ingested per stream (A, B); tuples of other streams and
    /// pre-built columnar batches count only into `ingested`.
    ingested_by_stream: [u64; 2],
    /// Largest ingested tuple timestamp seen so far, in seconds — the
    /// stream-time clock that measured arrival rates are computed against.
    ingest_max_ts_secs: f64,
    /// Incremental state behind [`Executor::stats_snapshot`].
    stats_window: StatsWindow,
    /// Per-node queued-item counts, maintained incrementally on every push
    /// and pop so a scheduler round never rescans the queues.
    node_backlog: Vec<usize>,
    /// Total queued items across all nodes (the sum of `node_backlog`).
    total_backlog: usize,
    /// Reusable operator context (output buffer + counters) for the hot loop.
    scratch_ctx: OpContext,
    /// Reusable output staging buffer.
    scratch_out: Vec<(PortId, StreamItem)>,
    /// Reusable run buffer for the vectorized path.
    scratch_run: Vec<StreamItem>,
    /// Reusable fan-out grouping buffer for output dispatch.
    scratch_group: Vec<StreamItem>,
    /// Reusable per-round buffer.
    order_buf: Vec<usize>,
    /// Punctuation epochs seen at ingest (each ingested punctuation is one
    /// epoch boundary) — the clock faults and checkpoints align to.
    punct_epochs: u64,
    /// Whether the armed fault (if any) has already fired.  Survives
    /// checkpoint restore and replay, so recovery never re-triggers the
    /// crash it is recovering from.
    fault_fired: bool,
    /// A `FaultKind::PoisonRun` trigger was reached: panic mid-run, after
    /// the next scheduler round has partially processed the backlog.
    fault_poison_armed: bool,
}

impl Executor {
    /// Wrap a plan with default configuration.
    pub fn new(plan: Plan) -> Self {
        Executor::with_config(plan, ExecutorConfig::default())
    }

    /// Wrap a plan with an explicit configuration.
    pub fn with_config(plan: Plan, config: ExecutorConfig) -> Self {
        let queues = Self::build_queues(&plan);
        let routing = Self::build_routing(&plan);
        let n = plan.num_nodes();
        Executor {
            plan,
            config,
            queues,
            routing,
            node_counters: vec![CostCounters::default(); n],
            peak_state: vec![0; n],
            peak_state_bytes: vec![0; n],
            memory: MemoryStats::default(),
            ingested: 0,
            processed_since_sample: 0,
            active_secs: 0.0,
            paused_secs: 0.0,
            pause_started: None,
            total_rounds: 0,
            carried_totals: CostCounters::default(),
            carried_sinks: HashMap::new(),
            ingested_by_stream: [0, 0],
            ingest_max_ts_secs: 0.0,
            stats_window: StatsWindow::default(),
            node_backlog: vec![0; n],
            total_backlog: 0,
            scratch_ctx: OpContext::new(),
            scratch_out: Vec::new(),
            scratch_run: Vec::new(),
            scratch_group: Vec::new(),
            order_buf: Vec::new(),
            punct_epochs: 0,
            fault_fired: false,
            fault_poison_armed: false,
        }
    }

    fn build_queues(plan: &Plan) -> Vec<Vec<Queue>> {
        plan.nodes()
            .iter()
            .map(|n| {
                (0..n.operator.num_input_ports())
                    .map(|_| Queue::new())
                    .collect()
            })
            .collect()
    }

    fn build_routing(plan: &Plan) -> Vec<Vec<Vec<(usize, PortId)>>> {
        plan.nodes()
            .iter()
            .map(|n| {
                (0..n.operator.num_output_ports())
                    .map(|port| {
                        plan.downstream(n.id, port)
                            .into_iter()
                            .map(|(to, to_port)| (to.0, to_port))
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    /// `true` if every input queue is empty (a safe point for plan surgery).
    pub fn is_drained(&self) -> bool {
        self.total_backlog == 0
    }

    /// Mark the start of an execution pause (e.g. an online chain migration
    /// stall).  Paused wall clock accumulates into
    /// [`ExecutionReport::paused_secs`] and is never counted as running time;
    /// idempotent while already paused.
    pub fn pause(&mut self) {
        if self.pause_started.is_none() {
            self.pause_started = Some(Instant::now());
        }
    }

    /// End an execution pause started with [`Executor::pause`].  Running the
    /// executor also resumes implicitly.
    pub fn resume(&mut self) {
        if let Some(start) = self.pause_started.take() {
            self.paused_secs += start.elapsed().as_secs_f64();
        }
    }

    /// Cumulative explicitly-paused wall clock so far (completed pauses only).
    pub fn paused_secs(&self) -> f64 {
        self.paused_secs
    }

    /// Cumulative in-run wall clock so far.
    pub fn active_secs(&self) -> f64 {
        self.active_secs
    }

    /// Replace the executed plan with a new one, returning the old plan (so
    /// the caller can harvest operator state — the online chain migration
    /// path drains the old slices' states into the new plan's slices).
    ///
    /// Requires every input queue to be drained: in-flight items belong to
    /// the old plan's topology and cannot be re-addressed.  Statistics
    /// continuity: the old plan's operator counters and sink deliveries are
    /// folded into carried totals so subsequent reports remain cumulative
    /// over the executor's whole lifetime; per-node statistics and peaks
    /// restart with the new plan (the node lists are not comparable).
    pub fn swap_plan(&mut self, plan: Plan) -> Result<Plan> {
        if self.total_backlog != 0 {
            return Err(StreamError::Execution(format!(
                "cannot swap the plan with {} items still queued; drain first",
                self.total_backlog
            )));
        }
        for counters in &self.node_counters {
            self.carried_totals.add(counters);
        }
        for (name, id) in self.plan.sinks() {
            if let Some(sink) = self
                .plan
                .node(id)?
                .operator
                .as_any()
                .downcast_ref::<crate::ops::SinkOp>()
            {
                *self.carried_sinks.entry(name).or_insert(0) += sink.count();
            }
        }
        let old = std::mem::replace(&mut self.plan, plan);
        self.queues = Self::build_queues(&self.plan);
        self.routing = Self::build_routing(&self.plan);
        let n = self.plan.num_nodes();
        self.node_counters = vec![CostCounters::default(); n];
        self.peak_state = vec![0; n];
        self.peak_state_bytes = vec![0; n];
        self.node_backlog = vec![0; n];
        self.total_backlog = 0;
        self.stats_window.reset_nodes();
        Ok(old)
    }

    /// Crash-recovery variant of [`Executor::swap_plan`]: replace the plan
    /// of an executor whose state is *suspect* (a caught worker panic may
    /// have interrupted it mid-run).  Unlike `swap_plan` it
    ///
    /// * tolerates queued items — they belong to work the crash lost and
    ///   are dropped (the recovery supervisor re-delivers everything since
    ///   the checkpoint from its replay ring),
    /// * folds the old operators' cost counters into the carried totals
    ///   (the CPU work genuinely happened; replayed work is then honestly
    ///   counted a second time and reported separately as replay volume),
    /// * does **not** fold the old sinks' delivery counts — the checkpoint
    ///   restores sink state absolutely, and replay re-delivers the
    ///   post-checkpoint results, so carrying the crashed plan's counts
    ///   would double-count them.
    ///
    /// Returns the number of queued items that were dropped.
    pub fn recover_plan(&mut self, plan: Plan) -> usize {
        let dropped = self.total_backlog;
        for counters in &self.node_counters {
            self.carried_totals.add(counters);
        }
        self.plan = plan;
        self.queues = Self::build_queues(&self.plan);
        self.routing = Self::build_routing(&self.plan);
        let n = self.plan.num_nodes();
        self.node_counters = vec![CostCounters::default(); n];
        self.peak_state = vec![0; n];
        self.peak_state_bytes = vec![0; n];
        self.node_backlog = vec![0; n];
        self.total_backlog = 0;
        self.processed_since_sample = 0;
        self.fault_poison_armed = false;
        self.stats_window.reset_nodes();
        dropped
    }

    /// Track per-stream ingest counts and stream-time progress for
    /// [`Executor::stats_snapshot`]'s measured arrival rates.
    fn meter_ingest(&mut self, item: &StreamItem) {
        if let StreamItem::Tuple(t) = item {
            if t.stream == StreamId::A {
                self.ingested_by_stream[0] += 1;
            } else if t.stream == StreamId::B {
                self.ingested_by_stream[1] += 1;
            }
            let secs = t.ts.as_micros() as f64 / 1e6;
            if secs > self.ingest_max_ts_secs {
                self.ingest_max_ts_secs = secs;
            }
        }
    }

    /// Arm a deterministic fault on this executor (overrides any fault the
    /// config was built with).  See [`crate::fault`].
    pub fn arm_fault(&mut self, plan: FaultPlan) {
        self.config.fault = Some(plan);
        self.fault_fired = false;
        self.fault_poison_armed = false;
    }

    /// Punctuation epochs ingested so far (each punctuation is one epoch).
    pub fn punctuation_epochs(&self) -> u64 {
        self.punct_epochs
    }

    /// Whether the armed fault (if any) has already fired.
    pub fn fault_fired(&self) -> bool {
        self.fault_fired
    }

    /// Ingest-progress counters a checkpoint captures: `(ingested tuples,
    /// per-stream ingest counts, max ingested timestamp in seconds,
    /// punctuation epochs)`.
    pub fn ingest_progress(&self) -> (u64, [u64; 2], f64, u64) {
        (
            self.ingested,
            self.ingested_by_stream,
            self.ingest_max_ts_secs,
            self.punct_epochs,
        )
    }

    /// Restore checkpointed ingest progress (absolute: replay re-counts the
    /// post-checkpoint input exactly once).  Also resets the incremental
    /// statistics window — windowed deltas spanning a recovery would
    /// underflow against the rolled-back cumulative counters.
    pub fn restore_ingest_progress(
        &mut self,
        ingested: u64,
        by_stream: [u64; 2],
        max_ts_secs: f64,
        punct_epochs: u64,
    ) {
        self.ingested = ingested;
        self.ingested_by_stream = by_stream;
        self.ingest_max_ts_secs = max_ts_secs;
        self.punct_epochs = punct_epochs;
        self.stats_window = StatsWindow::default();
    }

    /// Advance the punctuation-epoch clock and fire the armed fault when
    /// its trigger epoch is reached.  `Panic` unwinds right here, inside
    /// the worker's ingest (caught by the pool's `catch_unwind` barrier);
    /// `Stall` sleeps so the shard's bounded ring fills behind it;
    /// `PoisonRun` arms a panic for the middle of the next run.
    fn note_punctuation(&mut self) {
        self.punct_epochs += 1;
        let Some(fault) = self.config.fault else {
            return;
        };
        if self.fault_fired || self.punct_epochs < fault.at_epoch {
            return;
        }
        self.fault_fired = true;
        match fault.kind {
            FaultKind::Panic => panic!(
                "{FAULT_PANIC_PREFIX}: injected worker panic at punctuation epoch {}",
                self.punct_epochs
            ),
            FaultKind::Stall { millis } => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
            }
            FaultKind::PoisonRun => self.fault_poison_armed = true,
        }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Mutable access to the wrapped plan (used by online chain migration).
    pub fn plan_mut(&mut self) -> &mut Plan {
        &mut self.plan
    }

    /// Push an item into a named entry point.
    ///
    /// Only data tuples count towards [`ExecutionReport::ingested`] (and thus
    /// the service-rate denominator's throughput term); punctuations are
    /// progress metadata, not workload.
    pub fn ingest(&mut self, entry: &str, item: impl Into<StreamItem>) -> Result<()> {
        let (node, port) = self.plan.entry(entry)?;
        let item = item.into();
        let is_punct = item.is_punctuation();
        if !is_punct {
            self.ingested += 1;
            self.meter_ingest(&item);
        }
        self.queues[node.0][port].push(item);
        self.node_backlog[node.0] += 1;
        self.total_backlog += 1;
        if is_punct {
            self.note_punctuation();
        }
        Ok(())
    }

    /// Push a batch of items into a named entry point.  Like
    /// [`Executor::ingest`], punctuations are not counted as ingested tuples.
    pub fn ingest_all<I>(&mut self, entry: &str, items: I) -> Result<()>
    where
        I: IntoIterator,
        I::Item: Into<StreamItem>,
    {
        let (node, port) = self.plan.entry(entry)?;
        let mut pushed = 0usize;
        for item in items {
            let item = item.into();
            let is_punct = item.is_punctuation();
            if !is_punct {
                self.ingested += 1;
                self.meter_ingest(&item);
            }
            self.queues[node.0][port].push(item);
            pushed += 1;
            if is_punct {
                // Settle backlog accounting before the epoch hook: an
                // injected panic must not leave pushed items uncounted.
                self.node_backlog[node.0] += pushed;
                self.total_backlog += pushed;
                pushed = 0;
                self.note_punctuation();
            }
        }
        self.node_backlog[node.0] += pushed;
        self.total_backlog += pushed;
        Ok(())
    }

    /// Total queued items, maintained incrementally on push/pop (the old
    /// implementation rescanned every queue of every node per call, once per
    /// scheduler round plus once per memory sample).
    fn total_queue_items(&self) -> usize {
        debug_assert_eq!(
            self.total_backlog,
            self.queues
                .iter()
                .map(|ports| ports.iter().map(|q| q.len()).sum::<usize>())
                .sum::<usize>(),
            "incremental backlog total drifted from the queues"
        );
        self.total_backlog
    }

    fn sample_memory(&mut self) {
        let mut state = 0usize;
        let mut state_bytes = 0usize;
        let mut capacity_bytes = 0usize;
        let mut buffers = 0usize;
        for node in self.plan.nodes() {
            if node.operator.is_transient_buffer() {
                buffers += node.operator.state_size();
            } else {
                state += node.operator.state_size();
                state_bytes += node.operator.state_bytes();
                capacity_bytes += node.operator.state_capacity_bytes();
            }
        }
        let queued = self.total_queue_items() + buffers;
        self.memory
            .record(state, state_bytes, capacity_bytes, queued);
        for (i, node) in self.plan.nodes().iter().enumerate() {
            self.peak_state[i] = self.peak_state[i].max(node.operator.state_size());
            self.peak_state_bytes[i] = self.peak_state_bytes[i].max(node.operator.state_bytes());
        }
    }

    /// Pop the next item for a node: the oldest head across its input ports,
    /// preserving the global timestamp order the paper assumes.
    fn pop_oldest(queues: &mut [Queue]) -> Option<(PortId, StreamItem)> {
        let mut best: Option<(PortId, crate::time::Timestamp)> = None;
        for (port, q) in queues.iter().enumerate() {
            if let Some(ts) = q.peek_timestamp() {
                match best {
                    Some((_, best_ts)) if best_ts <= ts => {}
                    _ => best = Some((port, ts)),
                }
            }
        }
        let (port, _) = best?;
        queues[port].pop().map(|item| (port, item))
    }

    /// Pick the port the next run comes from and the run's inclusive
    /// timestamp bound, replicating [`Executor::pop_oldest`]'s choice exactly:
    /// the first port with the minimal head timestamp wins, and the run may
    /// not overtake any other port's head — strictly for lower-indexed ports
    /// (they win timestamp ties), inclusively for higher-indexed ones.
    fn choose_run(queues: &[Queue]) -> Option<(PortId, Option<crate::time::Timestamp>)> {
        use crate::time::Timestamp;
        let mut best: Option<(PortId, Timestamp)> = None;
        for (port, q) in queues.iter().enumerate() {
            if let Some(ts) = q.peek_timestamp() {
                match best {
                    Some((_, best_ts)) if best_ts <= ts => {}
                    _ => best = Some((port, ts)),
                }
            }
        }
        let (chosen, _) = best?;
        let mut bound: Option<Timestamp> = None;
        for (port, q) in queues.iter().enumerate() {
            if port == chosen {
                continue;
            }
            if let Some(head) = q.peek_timestamp() {
                // A tie goes to the lower port index, so a lower-indexed
                // port's head is a *strict* bound: convert to inclusive via
                // the previous microsecond tick (heads are > the chosen
                // port's head here, hence nonzero).
                let limit = if port < chosen {
                    Timestamp::from_micros(head.as_micros() - 1)
                } else {
                    head
                };
                bound = Some(bound.map_or(limit, |b| b.min(limit)));
            }
        }
        Some((chosen, bound))
    }

    /// Route a batch of operator outputs into the destination queues,
    /// grouping consecutive same-port outputs so each group costs one routing
    /// lookup and one bulk push instead of one of each per item.
    fn dispatch_outputs(
        routing: &[Vec<Vec<(usize, PortId)>>],
        queues: &mut [Vec<Queue>],
        node_backlog: &mut [usize],
        total_backlog: &mut usize,
        node: usize,
        outputs: &mut Vec<(PortId, StreamItem)>,
        group_buf: &mut Vec<StreamItem>,
    ) {
        let mut iter = outputs.drain(..).peekable();
        while let Some((out_port, item)) = iter.next() {
            let destinations = &routing[node][out_port];
            match destinations.len() {
                0 => {
                    // Dangling port: results intentionally discarded — skip
                    // the rest of the run too.
                    while iter.next_if(|(p, _)| *p == out_port).is_some() {}
                }
                1 => {
                    let (to, to_port) = destinations[0];
                    let queue = &mut queues[to][to_port];
                    let before = queue.len();
                    queue.push(item);
                    while let Some((_, next)) = iter.next_if(|(p, _)| *p == out_port) {
                        queue.push(next);
                    }
                    let pushed = queue.len() - before;
                    node_backlog[to] += pushed;
                    *total_backlog += pushed;
                }
                _ => {
                    // Fan-out: gather the run once, then bulk-clone it into
                    // every destination (the last destination takes the
                    // originals).
                    group_buf.clear();
                    group_buf.push(item);
                    while let Some((_, next)) = iter.next_if(|(p, _)| *p == out_port) {
                        group_buf.push(next);
                    }
                    // The 0-destination arm above makes this infallible;
                    // treat an impossible empty fan-out like a dangling
                    // port rather than panicking mid-route.
                    let Some((last, rest)) = destinations.split_last() else {
                        continue;
                    };
                    for &(to, to_port) in rest {
                        queues[to][to_port].extend(group_buf.iter().cloned());
                        node_backlog[to] += group_buf.len();
                        *total_backlog += group_buf.len();
                    }
                    let &(to, to_port) = last;
                    node_backlog[to] += group_buf.len();
                    *total_backlog += group_buf.len();
                    queues[to][to_port].extend(group_buf.drain(..));
                }
            }
        }
    }

    /// Run one visit of the given node, consuming at most `batch` items.
    /// Returns the number of items consumed.
    ///
    /// In vectorized mode ([`ExecutorConfig::vectorized`]) each iteration
    /// pops a whole timestamp-contiguous run from one port and hands it to
    /// [`Operator::process_batch`](crate::operator::Operator); single-input
    /// operators — every node of a sliced chain — consume the entire visit
    /// budget in one call.  Item mode pops and processes one item at a time.
    fn visit_node(&mut self, idx: usize, batch: usize) -> usize {
        if self.node_backlog[idx] == 0 {
            // Nothing queued: skip the context churn a no-op visit would pay.
            return 0;
        }
        let mut consumed = 0;
        self.scratch_ctx.reset_counters();
        if self.config.vectorized {
            while consumed < batch {
                let Some((port, bound)) = Self::choose_run(&self.queues[idx]) else {
                    break;
                };
                let popped = self.queues[idx][port].pop_run_into(
                    batch - consumed,
                    bound,
                    &mut self.scratch_run,
                );
                debug_assert!(popped > 0, "a chosen run is never empty");
                let node = &mut self.plan.nodes_mut_internal()[idx];
                node.operator
                    .process_batch(port, &mut self.scratch_run, &mut self.scratch_ctx);
                debug_assert!(
                    self.scratch_run.is_empty(),
                    "process_batch drains its input"
                );
                self.scratch_run.clear();
                consumed += popped;
                self.scratch_ctx.swap_outputs(&mut self.scratch_out);
                Self::dispatch_outputs(
                    &self.routing,
                    &mut self.queues,
                    &mut self.node_backlog,
                    &mut self.total_backlog,
                    idx,
                    &mut self.scratch_out,
                    &mut self.scratch_group,
                );
            }
        } else {
            while consumed < batch {
                let Some((port, item)) = Self::pop_oldest(&mut self.queues[idx]) else {
                    break;
                };
                let node = &mut self.plan.nodes_mut_internal()[idx];
                node.operator.process(port, item, &mut self.scratch_ctx);
                consumed += 1;
                self.scratch_ctx.swap_outputs(&mut self.scratch_out);
                Self::dispatch_outputs(
                    &self.routing,
                    &mut self.queues,
                    &mut self.node_backlog,
                    &mut self.total_backlog,
                    idx,
                    &mut self.scratch_out,
                    &mut self.scratch_group,
                );
            }
        }
        self.node_backlog[idx] -= consumed;
        self.total_backlog -= consumed;
        self.node_counters[idx].add(&self.scratch_ctx.counters);
        self.processed_since_sample += consumed as u64;
        if self.processed_since_sample >= self.config.memory_sample_every {
            self.processed_since_sample = 0;
            self.sample_memory();
        }
        consumed
    }

    /// Run until every queue is empty, then flush all operators (in
    /// topological order) and drain again, using the given scheduler.
    pub fn run_with_scheduler<S: Scheduler>(
        &mut self,
        scheduler: &mut S,
    ) -> Result<ExecutionReport> {
        // Running implicitly ends a migration pause.
        self.resume();
        let start = Instant::now();
        let mut rounds = 0u64;
        self.sample_memory();
        loop {
            if self.total_backlog == 0 {
                break;
            }
            if rounds >= self.config.max_rounds {
                return Err(StreamError::Execution(format!(
                    "exceeded the configured maximum of {} scheduler rounds",
                    self.config.max_rounds
                )));
            }
            rounds += 1;
            let mut order = std::mem::take(&mut self.order_buf);
            order.clear();
            scheduler.next_round(&self.node_backlog, &mut order);
            let mut any = false;
            for &idx in &order {
                if idx >= self.plan.num_nodes() {
                    continue;
                }
                if self.visit_node(idx, self.config.batch_per_visit) > 0 {
                    any = true;
                }
            }
            self.order_buf = order;
            if self.fault_poison_armed {
                // The round above partially processed the backlog; panicking
                // here leaves genuinely mid-run state (queued items, staged
                // outputs) for recovery to discard.
                self.fault_poison_armed = false;
                panic!("{FAULT_PANIC_PREFIX}: injected mid-run poison after round {rounds}");
            }
            if !any {
                // Defensive: queues are non-empty but nothing was consumable.
                return Err(StreamError::Execution(
                    "scheduler made no progress with non-empty queues".to_string(),
                ));
            }
        }
        // Flush operators so buffered results (e.g. union reorder buffers)
        // are emitted, then drain any output that produced.
        let order = self.plan.topological_order()?;
        for id in order {
            self.scratch_ctx.reset_counters();
            self.plan.nodes_mut_internal()[id.0]
                .operator
                .flush(&mut self.scratch_ctx);
            self.node_counters[id.0].add(&self.scratch_ctx.counters);
            self.scratch_ctx.swap_outputs(&mut self.scratch_out);
            Self::dispatch_outputs(
                &self.routing,
                &mut self.queues,
                &mut self.node_backlog,
                &mut self.total_backlog,
                id.0,
                &mut self.scratch_out,
                &mut self.scratch_group,
            );
            // Drain downstream work created by this flush before moving on.
            while self.total_backlog > 0 {
                for idx in 0..self.plan.num_nodes() {
                    if self.node_backlog[idx] > 0 {
                        self.visit_node(idx, self.config.batch_per_visit);
                    }
                }
            }
        }
        self.sample_memory();
        self.active_secs += start.elapsed().as_secs_f64();
        self.total_rounds += rounds;

        let mut sink_counts = self.carried_sinks.clone();
        for (name, id) in self.plan.sinks() {
            if let Some(sink) = self
                .plan
                .node(id)?
                .operator
                .as_any()
                .downcast_ref::<crate::ops::SinkOp>()
            {
                *sink_counts.entry(name).or_insert(0) += sink.count();
            }
        }
        let mut totals = self.carried_totals;
        let mut node_stats = Vec::with_capacity(self.plan.num_nodes());
        for (i, node) in self.plan.nodes().iter().enumerate() {
            totals.add(&self.node_counters[i]);
            node_stats.push(NodeStats {
                name: node.operator.name().to_string(),
                counters: self.node_counters[i],
                state_tuples: node.operator.state_size(),
                peak_state_tuples: self.peak_state[i].max(node.operator.state_size()),
                state_bytes: node.operator.state_bytes(),
                peak_state_bytes: self.peak_state_bytes[i].max(node.operator.state_bytes()),
            });
        }
        Ok(ExecutionReport {
            totals,
            node_stats,
            memory: self.memory,
            sink_counts,
            ingested: self.ingested,
            elapsed_secs: self.active_secs,
            paused_secs: self.paused_secs,
            rounds: self.total_rounds,
        })
    }

    /// Run to quiescence with the default round-robin scheduler.
    pub fn run(&mut self) -> Result<ExecutionReport> {
        let mut scheduler = RoundRobinScheduler;
        self.run_with_scheduler(&mut scheduler)
    }

    /// Sample a measured-statistics snapshot: windowed deltas since the
    /// previous snapshot, with arrival rates and per-operator selectivities
    /// EWMA-smoothed across windows (see [`StatsSnapshot`]).
    ///
    /// Call between runs — the punctuation boundary of this pull-based
    /// executor — where reading the counters needs no locks and cannot touch
    /// the hot path.
    pub fn stats_snapshot(&mut self) -> StatsSnapshot {
        self.stats_snapshot_with_alpha(DEFAULT_STATS_ALPHA)
    }

    /// [`Executor::stats_snapshot`] with an explicit EWMA smoothing factor in
    /// `(0, 1]` — `1.0` means no smoothing (the last window only).
    pub fn stats_snapshot_with_alpha(&mut self, alpha: f64) -> StatsSnapshot {
        let w = &mut self.stats_window;
        w.seq += 1;
        let stream_secs = (self.ingest_max_ts_secs - w.prev_stream_secs).max(0.0);
        w.prev_stream_secs = self.ingest_max_ts_secs;
        let ingested_delta = self.ingested - w.prev_ingested;
        w.prev_ingested = self.ingested;
        // A window with no stream-time progress cannot measure a rate; the
        // previous smoothed value stands.
        let mut rates = [0.0f64; 2];
        for (s, rate) in rates.iter_mut().enumerate() {
            let delta = self.ingested_by_stream[s] - w.prev_stream_count[s];
            w.prev_stream_count[s] = self.ingested_by_stream[s];
            if stream_secs > 0.0 {
                let inst = delta as f64 / stream_secs;
                w.rate_ewma[s] = Some(StatsWindow::smooth(w.rate_ewma[s], inst, alpha));
            }
            *rate = w.rate_ewma[s].unwrap_or(0.0);
        }
        let n = self.plan.num_nodes();
        w.prev_in.resize(n, 0);
        w.prev_out.resize(n, 0);
        w.sel_ewma.resize(n, None);
        let mut operators = Vec::with_capacity(n);
        let mut state_tuples = 0usize;
        let mut state_bytes = 0usize;
        for (i, node) in self.plan.nodes().iter().enumerate() {
            let counters = &self.node_counters[i];
            let tuples_in = counters.tuples_processed - w.prev_in[i];
            let tuples_out = counters.items_emitted - w.prev_out[i];
            w.prev_in[i] = counters.tuples_processed;
            w.prev_out[i] = counters.items_emitted;
            if tuples_in > 0 {
                let inst = tuples_out as f64 / tuples_in as f64;
                w.sel_ewma[i] = Some(StatsWindow::smooth(w.sel_ewma[i], inst, alpha));
            }
            let transient = node.operator.is_transient_buffer();
            let op_tuples = if transient {
                0
            } else {
                node.operator.state_size()
            };
            let op_bytes = if transient {
                0
            } else {
                node.operator.state_bytes()
            };
            state_tuples += op_tuples;
            state_bytes += op_bytes;
            operators.push(OperatorSnapshot {
                name: node.operator.name().to_string(),
                tuples_in,
                tuples_out,
                selectivity: w.sel_ewma[i].unwrap_or(1.0),
                measured: w.sel_ewma[i].is_some(),
                state_tuples: op_tuples,
                state_bytes: op_bytes,
                backlog: self.node_backlog[i],
            });
        }
        let mut sink_out = Vec::new();
        for (name, id) in self.plan.sinks() {
            let Ok(node) = self.plan.node(id) else {
                continue;
            };
            if let Some(sink) = node.operator.as_any().downcast_ref::<crate::ops::SinkOp>() {
                let total = self.carried_sinks.get(&name).copied().unwrap_or(0) + sink.count();
                let prev = w.prev_sinks.insert(name.clone(), total).unwrap_or(0);
                sink_out.push((name, total - prev));
            }
        }
        sink_out.sort();
        StatsSnapshot {
            seq: w.seq,
            active_secs: self.active_secs,
            stream_secs,
            ingested_delta,
            rate_a: rates[0],
            rate_b: rates[1],
            operators,
            sink_out,
            state_tuples,
            state_bytes,
            backlog: self.total_backlog,
            busiest_shard_share: 0.0,
            router: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{SelectOp, SinkOp, UnionOp, WindowJoinOp};
    use crate::predicate::{JoinCondition, Predicate};
    use crate::scheduler::{LongestQueueFirstScheduler, ReverseScheduler};
    use crate::time::Timestamp;
    use crate::tuple::{StreamId, Tuple};
    use crate::window::WindowSpec;

    fn a(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[key])
    }

    fn b(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::B, &[key])
    }

    fn join_plan() -> Plan {
        let mut builder = Plan::builder();
        let join = builder.add_op(WindowJoinOp::symmetric(
            "join",
            WindowSpec::from_secs(10),
            JoinCondition::equi(0),
        ));
        let sink = builder.add_op(SinkOp::retaining("q1"));
        builder.connect(join, 0, sink, 0);
        builder.entry("A", join, 0);
        builder.entry("B", join, 1);
        builder.build().unwrap()
    }

    #[test]
    fn executes_a_simple_join_plan() {
        let mut exec = Executor::new(join_plan());
        exec.ingest_all("A", vec![a(1, 7), a(2, 8)]).unwrap();
        exec.ingest_all("B", vec![b(3, 7), b(4, 9)]).unwrap();
        let report = exec.run().unwrap();
        assert_eq!(report.sink_count("q1"), 1);
        assert_eq!(report.total_output(), 1);
        assert_eq!(report.ingested, 4);
        assert!(report.service_rate() > 0.0);
        assert!(report.totals.probe_comparisons > 0);
        assert!(report.memory.peak_state_tuples >= 2);
        assert!(report.rounds >= 1);
        assert_eq!(report.node_stats.len(), 2);
        // Byte accounting: the join's window state is sampled in real bytes,
        // and arena capacity is never below the live footprint.
        assert!(report.memory.peak_state_bytes > 0);
        assert!(report.memory.peak_capacity_bytes >= report.memory.peak_state_bytes);
        assert!(report.memory.avg_state_bytes > 0.0);
        assert!(report.memory.final_state_bytes > 0, "window never purged");
        assert!(report.node_stats[0].peak_state_bytes > 0);
        assert_eq!(
            report.node_stats[0].state_bytes,
            report.memory.final_state_bytes
        );
    }

    #[test]
    fn punctuations_do_not_count_as_ingested() {
        use crate::punctuation::Punctuation;
        let mut exec = Executor::new(join_plan());
        exec.ingest("A", a(1, 7)).unwrap();
        exec.ingest("A", Punctuation::new(Timestamp::from_secs(2)))
            .unwrap();
        exec.ingest_all(
            "B",
            vec![
                StreamItem::from(b(3, 7)),
                StreamItem::from(Punctuation::new(Timestamp::from_secs(4))),
            ],
        )
        .unwrap();
        let report = exec.run().unwrap();
        // Two data tuples were ingested; the two punctuations must not
        // inflate the ingest count (and through it the service rate).
        assert_eq!(report.ingested, 2);
        assert_eq!(report.sink_count("q1"), 1);
    }

    #[test]
    fn unknown_entry_is_an_error() {
        let mut exec = Executor::new(join_plan());
        assert!(exec.ingest("C", a(1, 1)).is_err());
    }

    #[test]
    fn scheduler_choice_does_not_change_results() {
        let inputs_a: Vec<Tuple> = (0..40).map(|i| a(i, (i % 5) as i64)).collect();
        let inputs_b: Vec<Tuple> = (0..40).map(|i| b(i, (i % 5) as i64)).collect();
        let mut counts = Vec::new();
        // Round-robin.
        let mut exec = Executor::new(join_plan());
        exec.ingest_all("A", inputs_a.clone()).unwrap();
        exec.ingest_all("B", inputs_b.clone()).unwrap();
        counts.push(exec.run().unwrap().sink_count("q1"));
        // Reverse order.
        let mut exec = Executor::new(join_plan());
        exec.ingest_all("A", inputs_a.clone()).unwrap();
        exec.ingest_all("B", inputs_b.clone()).unwrap();
        let mut sched = ReverseScheduler;
        counts.push(
            exec.run_with_scheduler(&mut sched)
                .unwrap()
                .sink_count("q1"),
        );
        // Longest queue first.
        let mut exec = Executor::new(join_plan());
        exec.ingest_all("A", inputs_a).unwrap();
        exec.ingest_all("B", inputs_b).unwrap();
        let mut sched = LongestQueueFirstScheduler;
        counts.push(
            exec.run_with_scheduler(&mut sched)
                .unwrap()
                .sink_count("q1"),
        );
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[1], counts[2]);
        assert!(counts[0] > 0);
    }

    #[test]
    fn flush_drains_union_buffers() {
        let mut builder = Plan::builder();
        let union = builder.add_op(UnionOp::new("union", 2));
        let sink = builder.add_op(SinkOp::new("q"));
        builder.connect(union, 0, sink, 0);
        builder.entry("L", union, 0);
        builder.entry("R", union, 1);
        let mut exec = Executor::new(builder.build().unwrap());
        exec.ingest("L", a(5, 0)).unwrap();
        exec.ingest("R", a(9, 0)).unwrap();
        let report = exec.run().unwrap();
        // Without the flush the tuple at ts=9 would stay buffered forever.
        assert_eq!(report.sink_count("q"), 2);
    }

    #[test]
    fn select_plan_counts_filter_comparisons() {
        let mut builder = Plan::builder();
        let sel = builder.add_op(SelectOp::new("sigma", Predicate::gt(0, 3i64)));
        let sink = builder.add_op(SinkOp::new("q"));
        builder.connect(sel, 0, sink, 0);
        builder.entry("A", sel, 0);
        let mut exec = Executor::new(builder.build().unwrap());
        exec.ingest_all("A", (0..10).map(|i| a(i, i as i64)))
            .unwrap();
        let report = exec.run().unwrap();
        assert_eq!(report.sink_count("q"), 6);
        assert_eq!(report.totals.filter_comparisons, 10);
        let sel_stats = &report.node_stats[0];
        assert_eq!(sel_stats.name, "sigma");
        assert_eq!(sel_stats.counters.filter_comparisons, 10);
    }

    #[test]
    fn multi_run_elapsed_accumulates_and_pauses_are_excluded() {
        // Regression: a live (ingest → run → migrate → ingest → run) workload
        // produces cumulative sink counts, so the report's elapsed time must
        // also be cumulative over the runs — a per-run elapsed would divide
        // the whole run's output by the last epoch's wall clock and inflate
        // the service rate; counting the migration stall would deflate it.
        let mut exec = Executor::new(join_plan());
        exec.ingest_all("A", vec![a(1, 7), a(2, 8)]).unwrap();
        exec.ingest_all("B", vec![b(3, 7)]).unwrap();
        let first = exec.run().unwrap();
        // Simulated migration stall between the epochs.
        exec.pause();
        std::thread::sleep(std::time::Duration::from_millis(25));
        exec.resume();
        exec.ingest_all("B", vec![b(4, 8)]).unwrap();
        let second = exec.run().unwrap();
        assert_eq!(second.ingested, 4);
        assert_eq!(second.sink_count("q1"), 2);
        assert!(second.elapsed_secs >= first.elapsed_secs);
        assert!(second.rounds >= first.rounds);
        // The stall is accounted as paused time, not running time.
        assert!(second.paused_secs >= 0.025, "stall not recorded as pause");
        assert!(
            second.elapsed_secs < second.paused_secs,
            "two tiny runs ({}s) must cost less than the 25ms stall ({}s); \
             the stall leaked into the running time",
            second.elapsed_secs,
            second.paused_secs
        );
        // Service rate is computed over active time only.
        assert!(second.service_rate() > (6.0 / second.paused_secs));
        // pause() is idempotent and run() implicitly resumes.
        exec.pause();
        exec.pause();
        let third = exec.run().unwrap();
        assert!(third.paused_secs >= second.paused_secs);
        assert_eq!(exec.active_secs(), third.elapsed_secs);
    }

    #[test]
    fn stats_snapshot_windows_rates_and_selectivities() {
        let mut exec = Executor::new(join_plan());
        // Window 1: both streams at 1 tuple per stream-second over 10s, with
        // keys that never match (selectivity 0 at the join).
        exec.ingest_all("A", (1..=10).map(|s| a(s, 1))).unwrap();
        exec.ingest_all("B", (1..=10).map(|s| b(s, 2))).unwrap();
        exec.run().unwrap();
        let s1 = exec.stats_snapshot();
        assert_eq!(s1.seq, 1);
        assert_eq!(s1.ingested_delta, 20);
        assert!((s1.stream_secs - 10.0).abs() < 1e-9);
        assert!((s1.rate_a - 1.0).abs() < 1e-9, "rate_a {}", s1.rate_a);
        assert!((s1.rate_b - 1.0).abs() < 1e-9, "rate_b {}", s1.rate_b);
        let join = s1.operator("join").unwrap();
        assert!(join.measured);
        assert_eq!(join.tuples_in, 20);
        assert!(join.selectivity < 1e-9, "no key ever matches");
        assert!(join.state_tuples > 0, "the window retains state");
        assert!(s1.state_bytes > 0);
        assert_eq!(s1.backlog, 0, "sampled at quiescence");
        assert_eq!(s1.sink_out, vec![("q1".to_string(), 0)]);
        // Window 2: stream A doubles to 2/sec, stream B stops.  EWMA with
        // the default alpha 0.5 lands halfway between the windows.
        exec.ingest_all("A", (0..20).map(|i| a(11 + i / 2, 1)))
            .unwrap();
        exec.run().unwrap();
        let s2 = exec.stats_snapshot();
        assert_eq!(s2.seq, 2);
        assert!((s2.stream_secs - 10.0).abs() < 1e-9);
        assert!((s2.rate_a - 1.5).abs() < 1e-9, "rate_a {}", s2.rate_a);
        assert!((s2.rate_b - 0.5).abs() < 1e-9, "rate_b {}", s2.rate_b);
        assert_eq!(s2.ingested_delta, 20);
        // A third snapshot without progress keeps the smoothed rates.
        let s3 = exec.stats_snapshot();
        assert_eq!(s3.ingested_delta, 0);
        assert!((s3.rate_a - 1.5).abs() < 1e-9, "no progress: EWMA stands");
    }

    #[test]
    fn swap_plan_carries_totals_and_sink_counts() {
        let mut exec = Executor::new(join_plan());
        exec.ingest_all("A", vec![a(1, 7)]).unwrap();
        exec.ingest_all("B", vec![b(2, 7)]).unwrap();
        let before = exec.run().unwrap();
        assert_eq!(before.sink_count("q1"), 1);
        assert!(before.totals.probe_comparisons > 0);
        assert!(exec.is_drained());
        let old = exec.swap_plan(join_plan()).unwrap();
        // The old plan is handed back for state harvesting.
        assert!(old.sink("q1").is_some());
        assert_eq!(old.sink("q1").unwrap().count(), 1);
        // The fresh plan starts empty, but reports stay cumulative.
        exec.ingest_all("A", vec![a(10, 3)]).unwrap();
        exec.ingest_all("B", vec![b(11, 3)]).unwrap();
        let after = exec.run().unwrap();
        assert_eq!(after.sink_count("q1"), 2);
        assert_eq!(after.ingested, 4);
        assert!(after.totals.probe_comparisons >= before.totals.probe_comparisons);
        assert_eq!(exec.plan().sink("q1").unwrap().count(), 1);
    }

    #[test]
    fn swap_plan_refuses_undrained_queues() {
        let mut exec = Executor::new(join_plan());
        exec.ingest("A", a(1, 7)).unwrap();
        assert!(!exec.is_drained());
        assert!(exec.swap_plan(join_plan()).is_err());
        exec.run().unwrap();
        assert!(exec.swap_plan(join_plan()).is_ok());
    }

    fn synthetic_report(
        ingested: u64,
        sink: u64,
        elapsed_secs: f64,
        paused_secs: f64,
    ) -> ExecutionReport {
        ExecutionReport {
            totals: CostCounters::default(),
            node_stats: Vec::new(),
            memory: MemoryStats::default(),
            sink_counts: HashMap::from([("q1".to_string(), sink)]),
            ingested,
            elapsed_secs,
            paused_secs,
            rounds: 1,
        }
    }

    #[test]
    fn merge_counts_a_concurrent_pause_exactly_once() {
        // Two shards paused over the same wall-clock interval: the merged
        // pause is the interval, not twice the interval (and tiny per-shard
        // jitter picks the larger figure).
        let merged = ExecutionReport::merge(vec![
            synthetic_report(10, 4, 2.0, 1.0),
            synthetic_report(30, 6, 3.0, 1.25),
        ]);
        assert_eq!(merged.ingested, 40);
        assert_eq!(merged.sink_count("q1"), 10);
        assert_eq!(merged.elapsed_secs, 3.0, "concurrent: wall clock is max");
        assert_eq!(merged.paused_secs, 1.25, "concurrent pause counted once");
        // Service rate divides by running time only — pause time excluded.
        assert!((merged.service_rate() - 50.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn merge_of_empty_and_zero_elapsed_reports_is_safe() {
        let empty = ExecutionReport::merge(Vec::new());
        assert_eq!(empty.service_rate(), 0.0);
        assert_eq!(empty.total_output(), 0);
        let zero = ExecutionReport::merge(vec![synthetic_report(5, 5, 0.0, 0.0)]);
        assert_eq!(zero.service_rate(), 0.0, "zero elapsed must not divide");
    }

    #[test]
    fn max_rounds_guard_triggers() {
        let mut exec = Executor::with_config(
            join_plan(),
            ExecutorConfig {
                batch_per_visit: 1,
                memory_sample_every: 1,
                max_rounds: 0,
                ..ExecutorConfig::default()
            },
        );
        exec.ingest("A", a(1, 1)).unwrap();
        assert!(exec.run().is_err());
    }
}
