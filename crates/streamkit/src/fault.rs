//! Deterministic fault injection for crash-recovery testing.
//!
//! A [`FaultPlan`] arms one reproducible failure on an
//! [`Executor`](crate::executor::Executor): a worker panic when a given
//! punctuation epoch is reached, a worker stall (which fills the shard's
//! input ring and backpressures the router), or a poisoned run (a panic
//! fired *mid-run*, after the scheduler has partially processed the
//! backlog, leaving harder-to-repair in-flight state than an
//! ingest-boundary panic).  Plans are plain data threaded through
//! [`ExecutorConfig`](crate::executor::ExecutorConfig) — or armed on one
//! shard via
//! [`ShardedExecutor::arm_fault`](crate::shard::ShardedExecutor::arm_fault)
//! — so every failure mode is exactly reproducible in tests and benches.
//!
//! Injected panics carry the [`FAULT_PANIC_PREFIX`] marker so test panic
//! hooks can silence the intentional ones without hiding real failures.

/// Marker prefix of every injected panic message.
pub const FAULT_PANIC_PREFIX: &str = "ss-fault-inject";

/// The failure mode a [`FaultPlan`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic the worker thread while it ingests the trigger punctuation.
    Panic,
    /// Stall the worker for this many milliseconds at the trigger
    /// punctuation.  The shard's bounded input ring fills behind it and the
    /// stall surfaces in the router's `stalls` counter.
    Stall {
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Arm a panic that fires mid-run, after at least one scheduler round
    /// has partially processed the backlog.
    PoisonRun,
}

/// One armed, reproducible fault: fire `kind` at the first punctuation
/// epoch `>= at_epoch` (epochs count ingested punctuations, starting at 1).
///
/// The fault fires **once** per executor lifetime: the fired flag survives
/// checkpoint restore and input replay, so recovery does not re-trigger the
/// crash it is recovering from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// What to inject.
    pub kind: FaultKind,
    /// Punctuation epoch (1-based) at which to inject it.
    pub at_epoch: u64,
}

impl FaultPlan {
    /// Panic the worker at punctuation epoch `epoch`.
    pub fn panic_at(epoch: u64) -> FaultPlan {
        FaultPlan {
            kind: FaultKind::Panic,
            at_epoch: epoch,
        }
    }

    /// Stall the worker for `millis` ms at punctuation epoch `epoch`.
    pub fn stall_at(epoch: u64, millis: u64) -> FaultPlan {
        FaultPlan {
            kind: FaultKind::Stall { millis },
            at_epoch: epoch,
        }
    }

    /// Arm a mid-run panic at punctuation epoch `epoch`.
    pub fn poison_at(epoch: u64) -> FaultPlan {
        FaultPlan {
            kind: FaultKind::PoisonRun,
            at_epoch: epoch,
        }
    }

    /// Derive a plan deterministically from a seed: the epoch lands in
    /// `1..=max_epoch` and the kind cycles through all three failure modes.
    /// The same seed always yields the same plan (splitmix64, no global
    /// RNG), which is what makes seed-driven fault campaigns replayable.
    pub fn from_seed(seed: u64, max_epoch: u64) -> FaultPlan {
        let mut state = seed;
        let at_epoch = 1 + splitmix64(&mut state) % max_epoch.max(1);
        let kind = match splitmix64(&mut state) % 3 {
            0 => FaultKind::Panic,
            1 => FaultKind::Stall {
                millis: 1 + splitmix64(&mut state) % 20,
            },
            _ => FaultKind::PoisonRun,
        };
        FaultPlan { kind, at_epoch }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        for seed in 0..200u64 {
            let a = FaultPlan::from_seed(seed, 7);
            let b = FaultPlan::from_seed(seed, 7);
            assert_eq!(a, b, "same seed, same plan");
            assert!((1..=7).contains(&a.at_epoch), "epoch {}", a.at_epoch);
            if let FaultKind::Stall { millis } = a.kind {
                assert!((1..=20).contains(&millis));
            }
        }
    }

    #[test]
    fn seeds_cover_all_three_failure_modes() {
        let kinds: std::collections::HashSet<u64> = (0..64)
            .map(|seed| match FaultPlan::from_seed(seed, 5).kind {
                FaultKind::Panic => 0,
                FaultKind::Stall { .. } => 1,
                FaultKind::PoisonRun => 2,
            })
            .collect();
        assert_eq!(kinds.len(), 3, "64 seeds must hit every failure mode");
    }

    #[test]
    fn constructors_set_the_obvious_fields() {
        assert_eq!(
            FaultPlan::panic_at(3),
            FaultPlan {
                kind: FaultKind::Panic,
                at_epoch: 3
            }
        );
        assert_eq!(
            FaultPlan::stall_at(2, 10).kind,
            FaultKind::Stall { millis: 10 }
        );
        assert_eq!(FaultPlan::poison_at(4).kind, FaultKind::PoisonRun);
        // A zero max_epoch still produces a valid (epoch 1) plan.
        assert_eq!(FaultPlan::from_seed(1, 0).at_epoch, 1);
    }
}
