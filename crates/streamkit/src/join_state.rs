//! Hash-indexed sliding-window join state.
//!
//! Every window join in this tree — the regular joins in
//! [`ops::window_join`](crate::ops::window_join) and the state-sliced joins in
//! `state_slice_core` — keeps per-stream state that is
//!
//! 1. **cross-purged oldest-first** (states are in arrival order, so purging
//!    pops from the front until the first still-valid tuple), and
//! 2. **probed** by every arrival of the opposite stream.
//!
//! [`JoinState`] packages both access paths: a time-ordered segmented bump
//! arena ([`TupleArena`]) for O(1) oldest-first purging with whole-segment
//! deallocation, plus — for equi-join conditions — a hash index `key →
//! bucket of entries` maintained incrementally on insert and cleaned
//! *lazily* on purge (dead bucket references are skipped by probes and swept
//! out by occasional compaction, so the purge hot path never touches the
//! map).  An equi probe then touches only its key bucket, so the probe cost
//! is O(1 + matches) instead of O(|state|); the `probe_comparisons` counters
//! incremented by the callers consequently scale with the *output* size, not
//! with the state size (the dominant cost in the paper's Figures 17–19).
//!
//! Conditions with no equi component but an inequality (band/theta)
//! component get a third mode, **`BandIndexed`**: a value-ordered secondary
//! index (`BTreeMap` over an order-preserving encoding of the stored band
//! key) maintained incrementally on insert and cleaned lazily like the hash
//! buckets.  A band probe `lo ≤ stored.g ≤ hi` binary-searches to the range
//! start and walks the contiguous run — O(log n + matches) instead of the
//! O(n) scan (the classic ordered range-reporting bound).  Stored keys that
//! do not order numerically (`Null`/`Bool`/`Str`/`NaN` — cross-type
//! comparisons go through type ranks, so they *can* satisfy a band theta)
//! live in a side list every band probe scans; a probe whose bound value is
//! non-numeric degrades to a full scan, and range endpoints are widened to
//! inclusive at `f64` granularity so `i64 → f64` rounding can never lose a
//! true match.  As everywhere else: false positives are fine (callers
//! re-evaluate the full condition per candidate), false negatives never.
//!
//! Cross products and conditions with no usable component at all fall back
//! to a linear scan over the time-ordered store, which is exactly the
//! pre-index behaviour.
//!
//! ## Correctness of the bucket mapping
//!
//! Candidate filtering must never produce *false negatives*: two key values
//! that [`Value::compare`] as `Equal` must land in the same bucket.  False
//! positives are harmless — callers re-evaluate the full join condition for
//! every candidate.  The key canonicalisation therefore:
//!
//! * maps `Int(i)` and `Float(f)` to the bits of the canonical `f64`
//!   (`compare` equates `Int(i)` with `Float(f)` iff `i as f64 == f`), with
//!   `-0.0` normalised to `+0.0`,
//! * keeps `NaN` keys **out of the index** (under IEEE semantics `compare`
//!   equates `NaN` with every number): they live in a small side list that
//!   every probe scans in addition to its bucket, and a `NaN` *probe* key
//!   degrades to a full linear scan,
//! * gives tuples whose key attribute is missing their own bucket that no
//!   probe ever reads (a missing attribute never satisfies an equi
//!   condition).
//!
//! ## One hash per tuple
//!
//! Buckets are keyed directly by the 64-bit [`canonical_key_hash`] (the map
//! uses an identity hasher), and that hash is computed **once per tuple**:
//! [`memoize_key`] stores it on the tuple ([`Tuple::key_hash`]), every
//! insert/probe reuses the memo when its key field matches, and each stored
//! entry remembers its hash so purging never rehashes the key it hashed on
//! insert.  A chain of N slices and a hash-sharded router therefore share one
//! hash per tuple instead of recomputing it at every hop.  Keying buckets by
//! the hash can in principle alias two distinct key classes (a 64-bit
//! collision); that only widens a candidate set, and callers re-evaluate the
//! condition per candidate, so correctness is unaffected.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use crate::arena::{ArenaIter, TupleArena};
use crate::predicate::{band_bounds, BandProbe, JoinCondition};
use crate::tuple::{KeyClass, Tuple, Value};

/// The `(stored_field, probe_field)` pair of the first equi component of a
/// join condition, from the perspective of a state that stores the
/// condition's *left* (`stored_is_left = true`) or *right* side.
///
/// `And` conjunctions are searched left-to-right for an equi component: the
/// index filters on that component and the caller re-evaluates the full
/// condition per candidate, so any single equi conjunct is a correct filter.
/// Returns `None` for conditions with no equi component (cross products,
/// pure theta/band predicates) — those use a linear scan.
pub fn equi_key_fields(cond: &JoinCondition, stored_is_left: bool) -> Option<(usize, usize)> {
    match cond {
        JoinCondition::Equi {
            left_field,
            right_field,
        } => Some(if stored_is_left {
            (*left_field, *right_field)
        } else {
            (*right_field, *left_field)
        }),
        JoinCondition::And(a, b) => {
            equi_key_fields(a, stored_is_left).or_else(|| equi_key_fields(b, stored_is_left))
        }
        JoinCondition::Cross | JoinCondition::Theta { .. } => None,
    }
}

/// Canonical hash key of a [`Value`] (see the module docs for why this is
/// coarser than `Value` equality in places, and why that is safe).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum IndexKey {
    /// `Null` joins only `Null`.
    Null,
    /// Booleans.
    Bool(bool),
    /// Canonical numeric bits: `Int` and `Float` keys that compare `Equal`
    /// share these bits.  `NaN` is rejected (returns `None` below).
    Num(u64),
    /// Strings (shared, so building a key never copies the payload).
    Str(Arc<str>),
}

impl IndexKey {
    /// The bucket key for a value, or `None` for `NaN` (unindexable).
    fn for_value(v: &Value) -> Option<IndexKey> {
        match v {
            Value::Null => Some(IndexKey::Null),
            Value::Bool(b) => Some(IndexKey::Bool(*b)),
            Value::Int(i) => Some(IndexKey::Num(canonical_bits(*i as f64)?)),
            Value::Float(f) => Some(IndexKey::Num(canonical_bits(*f)?)),
            Value::Str(s) => Some(IndexKey::Str(Arc::clone(s))),
        }
    }
}

fn canonical_bits(f: f64) -> Option<u64> {
    if f.is_nan() {
        None
    } else if f == 0.0 {
        Some(0.0f64.to_bits()) // fold -0.0 into +0.0
    } else {
        Some(f.to_bits())
    }
}

/// Canonical key class of `tuple.value(field)`, reusing the tuple's memo when
/// it was computed for the same field.
pub fn tuple_key(tuple: &Tuple, field: usize) -> KeyClass {
    if let Some(class) = tuple.memoized_key(field) {
        return class;
    }
    compute_key(tuple, field)
}

/// Compute (and memoise) the canonical key class of `tuple.value(field)`, so
/// every later consumer keying on the same field — each slice of a chain, the
/// shard router — reuses it instead of rehashing.
pub fn memoize_key(tuple: &mut Tuple, field: usize) -> KeyClass {
    if let Some(class) = tuple.memoized_key(field) {
        return class;
    }
    let class = compute_key(tuple, field);
    tuple.set_key_memo(field, class);
    class
}

fn compute_key(tuple: &Tuple, field: usize) -> KeyClass {
    match tuple.value(field) {
        None => KeyClass::Missing,
        Some(v) => match canonical_key_hash(v) {
            Some(hash) => KeyClass::Hash(hash),
            None => KeyClass::Nan,
        },
    }
}

/// Pass-through hasher for bucket maps keyed by an already-uniform
/// [`canonical_key_hash`]: re-hashing a 64-bit FNV output through SipHash per
/// map operation would only burn cycles.
#[derive(Debug, Default, Clone)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; fold bytes in as a safety net.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ b as u64;
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type IdentityBuild = BuildHasherDefault<IdentityHasher>;

/// Deterministic hash of a join-key value over the *same* equivalence
/// classes as the [`JoinState`] bucket mapping: two key values that
/// [`Value::compare`](crate::tuple::Value) as `Equal` hash identically
/// (`Int(3)` with `Float(3.0)`, `-0.0` with `+0.0`, ...).
///
/// This is the partitioning primitive of hash-sharded parallel execution
/// ([`shard`](crate::shard)): all tuples whose keys can equi-join land on the
/// same shard.  Returns `None` for `NaN` keys — under this tree's comparison
/// semantics `NaN` equi-joins *every* number, so no hash partition can route
/// it correctly (the caller decides how to degrade).
///
/// The hash is FNV-1a over a type-tagged canonical encoding, fixed across
/// runs and platforms so shard assignments are reproducible.
pub fn canonical_key_hash(v: &Value) -> Option<u64> {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    fn fnv(hash: u64, bytes: &[u8]) -> u64 {
        bytes
            .iter()
            .fold(hash, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
    }
    let key = IndexKey::for_value(v)?;
    Some(match key {
        IndexKey::Null => fnv(FNV_OFFSET, &[0]),
        // Tag 1 is reserved for stored tuples with a *missing* key attribute
        // (`MISSING_KEY_HASH`), which no `Value` can produce.
        IndexKey::Bool(b) => fnv(FNV_OFFSET, &[2, b as u8]),
        IndexKey::Num(bits) => fnv(fnv(FNV_OFFSET, &[3]), &bits.to_le_bytes()),
        IndexKey::Str(s) => fnv(fnv(FNV_OFFSET, &[4]), s.as_bytes()),
    })
}

/// Bucket hash of stored tuples whose key attribute is missing: same
/// type-tagged FNV scheme as [`canonical_key_hash`], tag 1 (no [`Value`] maps
/// to this tag, and no probe ever looks the bucket up).
const MISSING_KEY_HASH: u64 = 0xaf63_bc4c_8601_b62c;

/// Compact the lazily-cleaned index once the dead-entry backlog exceeds
/// `max(live entries, MIN_COMPACT_STALE)` — amortised O(1) per purge, and
/// small states never bother.
const MIN_COMPACT_STALE: usize = 32;

/// Order-preserving `u64` encoding of a *numeric* band key: `a < b` under
/// [`Value::compare`] iff `bits(a) < bits(b)` (the classic sign-flip trick
/// over IEEE-754 bits), with `-0.0` folded into `+0.0`.  Returns `None` for
/// `NaN`, which has no place in a total order.
pub(crate) fn monotone_band_bits(f: f64) -> Option<u64> {
    let bits = canonical_bits(f)?;
    Some(if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    })
}

/// Ordering key of a stored band-key value, or `None` for values the tree
/// cannot order numerically (`NaN`, and the non-numeric types whose
/// cross-type comparisons go through type ranks) — those go to the
/// always-scanned side list.
pub(crate) fn band_key_bits(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) => monotone_band_bits(*i as f64),
        Value::Float(f) => monotone_band_bits(*f),
        Value::Null | Value::Bool(_) | Value::Str(_) => None,
    }
}

/// The value-ordered secondary index of a `BandIndexed` [`JoinState`].
#[derive(Debug)]
struct BandIndexState {
    /// The band shape ([`band_bounds`]) this state answers probes for.
    spec: BandProbe,
    /// Order index: monotone key bits → sequence numbers in insertion order.
    /// Holds only numerically-ordered keys; cleaned lazily like the hash
    /// buckets (dead sequence numbers are skipped and swept by compaction).
    tree: BTreeMap<u64, VecDeque<u64>>,
    /// Sequence numbers of entries whose band key exists but is not
    /// numerically ordered (`Null`/`Bool`/`Str`/`NaN`); every band probe
    /// scans these in addition to its tree range.  Entries *missing* the
    /// band key field are referenced by neither structure — a theta over an
    /// absent field is false, and conditions are pure conjunctions, so such
    /// tuples can never match.
    side: VecDeque<u64>,
}

/// One stream's window-join state: an arena-backed, time-ordered tuple store
/// with an optional incrementally-maintained hash index on the equi-join key.
///
/// Entries live in a segmented bump arena ([`TupleArena`]) and are identified
/// by its stable, monotonically increasing sequence numbers; buckets store
/// sequence numbers and look entries up generationally.  Purging pops the
/// arena front and does **not** touch the buckets: a bucket entry whose
/// sequence number has fallen behind the arena head is dead, and every
/// reader (probes, compaction) skips such entries.  This removes the
/// per-purge bucket surgery — a hash lookup, a bucket pop and, for the very
/// common one-entry bucket, a map-entry deallocation that the next push of
/// the same key pays all over again — from the cross-purge hot path; dead
/// entries are swept out wholesale by an occasional compaction instead.
///
/// The probe-visible candidate set is unaffected by the laziness (dead
/// sequence numbers are filtered before a candidate is ever yielded), so the
/// probe-comparison counters of every caller are identical to eager
/// cleanup's.
///
/// Buckets are keyed by the canonical 64-bit key hash; each stored tuple
/// carries its key class as a memo ([`memoize_key`]), so neither purging nor
/// compaction ever rehashes a key that was hashed on insert.
#[derive(Debug, Default)]
pub struct JoinState {
    arena: TupleArena,
    index: HashMap<u64, VecDeque<u64>, IdentityBuild>,
    /// Sequence numbers of entries with unindexable (`NaN`) keys, in time
    /// order; scanned by every probe in addition to its bucket.
    unindexed: VecDeque<u64>,
    /// Dead sequence numbers still referenced by `index`/`unindexed`/the
    /// band index (indexed modes only); drives compaction.
    stale: usize,
    /// Field of *stored* tuples the index is built on (`None` = linear mode).
    stored_key_field: Option<usize>,
    /// Field of *probing* tuples holding the lookup key.
    probe_key_field: Option<usize>,
    /// Value-ordered band index (`BandIndexed` mode); mutually exclusive
    /// with the hash index.
    band: Option<BandIndexState>,
}

impl JoinState {
    /// A linear-scan state (no index) — the pre-index behaviour, also used
    /// as the fallback for non-equi conditions.
    pub fn linear() -> JoinState {
        JoinState::default()
    }

    /// A state hash-indexed on `stored_key_field` of inserted tuples and
    /// probed with `probe_key_field` of arriving tuples.
    pub fn indexed(stored_key_field: usize, probe_key_field: usize) -> JoinState {
        JoinState {
            stored_key_field: Some(stored_key_field),
            probe_key_field: Some(probe_key_field),
            ..JoinState::default()
        }
    }

    /// A state band-indexed on `spec.stored_field` of inserted tuples,
    /// answering range probes bounded by the probe-tuple fields in `spec`.
    pub fn band_indexed(spec: BandProbe) -> JoinState {
        JoinState {
            band: Some(BandIndexState {
                spec,
                tree: BTreeMap::new(),
                side: VecDeque::new(),
            }),
            ..JoinState::default()
        }
    }

    /// The right state for a join condition: hash-indexed on the condition's
    /// first equi component if it has one, band-indexed on its band
    /// component when there is no equi but an inequality theta, linear
    /// otherwise.  `stored_is_left` says whether this state stores the
    /// tuples that appear on the *left* of the condition's `eval` calls.
    pub fn for_condition(cond: &JoinCondition, stored_is_left: bool) -> JoinState {
        if let Some((stored, probe)) = equi_key_fields(cond, stored_is_left) {
            return JoinState::indexed(stored, probe);
        }
        match band_bounds(cond, stored_is_left) {
            Some(spec) => JoinState::band_indexed(spec),
            None => JoinState::linear(),
        }
    }

    /// `true` if this state maintains a hash index.
    pub fn is_indexed(&self) -> bool {
        self.stored_key_field.is_some()
    }

    /// `true` if this state maintains a value-ordered band index.
    pub fn is_band_indexed(&self) -> bool {
        self.band.is_some()
    }

    /// The band shape a `BandIndexed` state answers probes for.
    pub fn band_spec(&self) -> Option<&BandProbe> {
        self.band.as_ref().map(|b| &b.spec)
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// `true` if no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// The oldest stored tuple.
    pub fn front(&self) -> Option<&Tuple> {
        self.arena.front()
    }

    /// All stored tuples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.arena.iter()
    }

    /// Estimated bytes resident in the stored tuples (inline slots + heap
    /// payloads; see [`crate::arena::tuple_heap_bytes`] for the Arc-sharing
    /// caveat).
    pub fn live_bytes(&self) -> usize {
        self.arena.live_bytes()
    }

    /// Estimated bytes the backing arena currently holds on to, including
    /// purged-but-not-yet-released slots and unfilled tail capacity.
    pub fn capacity_bytes(&self) -> usize {
        self.arena.capacity_bytes()
    }

    /// The bucket hash of a stored entry's key class: `Missing` entries get
    /// their own bucket no probe ever reads.
    fn bucket_hash(class: KeyClass) -> Option<u64> {
        match class {
            KeyClass::Hash(h) => Some(h),
            KeyClass::Missing => Some(MISSING_KEY_HASH),
            KeyClass::Nan => None,
        }
    }

    /// Insert a tuple at the back.  Tuples must arrive in timestamp order
    /// (the operator contract for all window joins).  The canonical key hash
    /// is taken from the tuple's memo when present ([`memoize_key`]) and
    /// computed — and memoised on the stored copy — otherwise, so that a
    /// purge forwarding this tuple to the next slice ships the hash along.
    pub fn push(&mut self, mut tuple: Tuple) {
        if let Some(field) = self.stored_key_field {
            let class = memoize_key(&mut tuple, field);
            let seq = self.arena.next_seq();
            match Self::bucket_hash(class) {
                Some(hash) => self.index.entry(hash).or_default().push_back(seq),
                None => self.unindexed.push_back(seq),
            }
        } else if let Some(band) = &mut self.band {
            let seq = self.arena.next_seq();
            match tuple.value(band.spec.stored_field) {
                // A missing band key can never satisfy the (conjunctive)
                // condition, so the entry is referenced by neither the tree
                // nor the side list.
                None => {}
                Some(v) => match band_key_bits(v) {
                    Some(bits) => band.tree.entry(bits).or_default().push_back(seq),
                    None => band.side.push_back(seq),
                },
            }
        }
        self.arena.push(tuple);
    }

    /// Remove and return the oldest tuple.  The index is cleaned **lazily**:
    /// the popped entry's bucket reference merely goes dead (probes skip it)
    /// and is swept out by the next compaction, so the purge hot path never
    /// touches the hash map.
    pub fn pop_front(&mut self) -> Option<Tuple> {
        let tuple = self.arena.pop_front()?;
        if self.stored_key_field.is_some() || self.band.is_some() {
            self.stale += 1;
            if self.stale > self.arena.len().max(MIN_COMPACT_STALE) {
                self.compact();
            }
        }
        Some(tuple)
    }

    /// Sweep dead entries out of the index by rebuilding it from the live
    /// tuples' key memos.  No key is rehashed: every stored tuple memoised
    /// its class on insert ([`memoize_key`]).  Runs automatically once the
    /// dead backlog exceeds the live size (amortised O(1) per purge); public
    /// so state inspection and tests can force a consistent view.
    pub fn compact(&mut self) {
        if let Some(field) = self.stored_key_field {
            self.index.clear();
            self.unindexed.clear();
            for (seq, tuple) in (self.arena.head_seq()..).zip(self.arena.iter()) {
                let class = tuple
                    .memoized_key(field)
                    .unwrap_or_else(|| compute_key(tuple, field));
                match Self::bucket_hash(class) {
                    Some(hash) => self.index.entry(hash).or_default().push_back(seq),
                    None => self.unindexed.push_back(seq),
                }
            }
            self.stale = 0;
        } else if let Some(band) = &mut self.band {
            band.tree.clear();
            band.side.clear();
            for (seq, tuple) in (self.arena.head_seq()..).zip(self.arena.iter()) {
                match tuple.value(band.spec.stored_field) {
                    None => {}
                    Some(v) => match band_key_bits(v) {
                        Some(bits) => band.tree.entry(bits).or_default().push_back(seq),
                        None => band.side.push_back(seq),
                    },
                }
            }
            self.stale = 0;
        }
    }

    /// The candidate tuples an arriving `probe` tuple has to be evaluated
    /// against:
    ///
    /// * linear mode — every stored tuple, oldest first,
    /// * hash-indexed mode — the probe key's bucket plus the `NaN` side
    ///   list; a `NaN` probe key degrades to a full scan and a missing probe
    ///   attribute yields no candidates (it can never satisfy the condition),
    /// * band-indexed mode — the tree range between the probe tuple's bound
    ///   values (binary search + contiguous walk, value order) plus the
    ///   non-numeric side list; a missing bound attribute yields no
    ///   candidates and a non-numeric bound value degrades to a full scan.
    ///
    /// Callers must still evaluate the full join condition (and any window
    /// validity check) per candidate: buckets and band ranges may contain
    /// false positives (band endpoints are deliberately widened to inclusive
    /// at `f64` granularity).  The probe key hash is reused from the tuple's
    /// memo when present.
    pub fn probe_candidates(&self, probe: &Tuple) -> Candidates<'_> {
        if let Some(band) = &self.band {
            return self.band_candidates(band, probe);
        }
        let field = match self.probe_key_field {
            None => return Candidates::all(&self.arena),
            Some(field) => field,
        };
        let hash = match tuple_key(probe, field) {
            KeyClass::Missing => return Candidates::empty(),
            KeyClass::Nan => return Candidates::all(&self.arena), // NaN probe
            KeyClass::Hash(hash) => hash,
        };
        Candidates {
            inner: CandidatesInner::Indexed {
                arena: &self.arena,
                bucket: self.index.get(&hash).map(|b| b.iter()),
                extra: self.unindexed.iter(),
            },
        }
    }

    /// Band-probe candidate selection (see [`JoinState::probe_candidates`]).
    fn band_candidates<'a>(&'a self, band: &'a BandIndexState, probe: &Tuple) -> Candidates<'a> {
        use std::ops::Bound;
        let mut lo = Bound::Unbounded;
        let mut hi = Bound::Unbounded;
        for (bound, slot) in [(band.spec.lower, &mut lo), (band.spec.upper, &mut hi)] {
            if let Some((field, _inclusive)) = bound {
                match probe.value(field) {
                    // A missing bound attribute makes the band theta — and
                    // with it the whole conjunction — false for every pair.
                    None => return Candidates::empty(),
                    Some(v) => match band_key_bits(v) {
                        // Non-numeric (or NaN) bound: under the cross-type
                        // total order the matching keys are not one
                        // contiguous bits range, so degrade to a full scan.
                        None => return Candidates::all(&self.arena),
                        // Endpoints are always *inclusive* at f64-bucket
                        // granularity, even for strict thetas: the monotone
                        // (non-strict) i64 → f64 cast can collapse distinct
                        // values into one bucket, and only widening keeps
                        // every true match inside the range.  The re-eval of
                        // the exact condition discards the false positives.
                        Some(bits) => *slot = Bound::Included(bits),
                    },
                }
            }
        }
        // An inverted range holds no tree matches (BTreeMap::range would
        // panic on it); the side list must still be scanned.
        let range = match (lo, hi) {
            (Bound::Included(l), Bound::Included(h)) if l > h => band.tree.range(0..0),
            _ => band.tree.range((lo, hi)),
        };
        Candidates {
            inner: CandidatesInner::Band {
                arena: &self.arena,
                range,
                bucket: None,
                extra: band.side.iter(),
            },
        }
    }

    /// Cross-purge: pop entries from the front while `is_expired` says so
    /// (states are in arrival order, so the scan stops at the first
    /// still-valid tuple), handing each expired tuple to `on_expired`.
    /// Returns the number of front checks performed — the purge
    /// timestamp-comparison count of the paper's cost model: one per popped
    /// tuple plus one for the first survivor.
    pub fn purge_expired(
        &mut self,
        mut is_expired: impl FnMut(&Tuple) -> bool,
        mut on_expired: impl FnMut(Tuple),
    ) -> u64 {
        let mut comparisons = 0;
        while let Some(front) = self.front() {
            comparisons += 1;
            if !is_expired(front) {
                break;
            }
            let tuple = self.pop_front().expect("front exists");
            on_expired(tuple);
        }
        comparisons
    }

    /// Drain every stored tuple, oldest first, resetting the index.  Used by
    /// online chain migration to move state between slices: the arena's
    /// segments are consumed whole, and re-cutting state tuple-wise is left
    /// to the caller (every migration — rehash, merge, split — re-cuts
    /// anyway, so the cross-crate hooks keep their `Vec<Tuple>` shape).
    pub fn drain_ordered(&mut self) -> Vec<Tuple> {
        self.index.clear();
        self.unindexed.clear();
        if let Some(band) = &mut self.band {
            band.tree.clear();
            band.side.clear();
        }
        self.stale = 0;
        self.arena.drain()
    }

    /// Replace the contents with `tuples` (which must be in timestamp
    /// order), rebuilding the index.
    /// The rebuild is deterministic: pushing the same ordered tuples always
    /// yields the same index (band tree runs are in insertion = time order),
    /// so a state restored from a checkpoint probes identically — same
    /// candidates, same comparison counts — to the incrementally-maintained
    /// original.
    pub fn load_ordered(&mut self, tuples: Vec<Tuple>) {
        self.arena.clear();
        self.index.clear();
        self.unindexed.clear();
        if let Some(band) = &mut self.band {
            band.tree.clear();
            band.side.clear();
        }
        self.stale = 0;
        for t in tuples {
            self.push(t);
        }
    }
}

/// Iterator over probe candidates (see [`JoinState::probe_candidates`]).
#[derive(Debug)]
pub struct Candidates<'a> {
    inner: CandidatesInner<'a>,
}

#[derive(Debug)]
enum CandidatesInner<'a> {
    Empty,
    All(ArenaIter<'a>),
    Indexed {
        arena: &'a TupleArena,
        bucket: Option<std::collections::vec_deque::Iter<'a, u64>>,
        extra: std::collections::vec_deque::Iter<'a, u64>,
    },
    Band {
        arena: &'a TupleArena,
        range: std::collections::btree_map::Range<'a, u64, VecDeque<u64>>,
        bucket: Option<std::collections::vec_deque::Iter<'a, u64>>,
        extra: std::collections::vec_deque::Iter<'a, u64>,
    },
}

impl<'a> Candidates<'a> {
    fn empty() -> Candidates<'a> {
        Candidates {
            inner: CandidatesInner::Empty,
        }
    }

    fn all(arena: &'a TupleArena) -> Candidates<'a> {
        Candidates {
            inner: CandidatesInner::All(arena.iter()),
        }
    }
}

impl<'a> Iterator for Candidates<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        match &mut self.inner {
            CandidatesInner::Empty => None,
            CandidatesInner::All(iter) => iter.next(),
            CandidatesInner::Indexed {
                arena,
                bucket,
                extra,
            } => {
                // Index cleanup is lazy: sequence numbers behind the arena
                // head are dead (purged) references and are skipped here, so
                // the yielded candidate set — and with it every caller's
                // probe-comparison count — is exactly eager cleanup's.
                if let Some(iter) = bucket {
                    for &seq in iter.by_ref() {
                        if let Some(tuple) = arena.get(seq) {
                            return Some(tuple);
                        }
                    }
                }
                for &seq in extra.by_ref() {
                    if let Some(tuple) = arena.get(seq) {
                        return Some(tuple);
                    }
                }
                None
            }
            CandidatesInner::Band {
                arena,
                range,
                bucket,
                extra,
            } => {
                // Walk the tree range run by run (value order, insertion
                // order within a run), then the non-numeric side list; dead
                // sequence numbers are skipped exactly as in the hash path.
                loop {
                    if let Some(iter) = bucket {
                        for &seq in iter.by_ref() {
                            if let Some(tuple) = arena.get(seq) {
                                return Some(tuple);
                            }
                        }
                    }
                    match range.next() {
                        Some((_, run)) => *bucket = Some(run.iter()),
                        None => break,
                    }
                }
                for &seq in extra.by_ref() {
                    if let Some(tuple) = arena.get(seq) {
                        return Some(tuple);
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;
    use crate::tuple::StreamId;

    fn t(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[key])
    }

    fn tv(secs: u64, key: Value) -> Tuple {
        Tuple::new(Timestamp::from_secs(secs), StreamId::A, vec![key])
    }

    fn candidate_secs(state: &JoinState, probe: &Tuple) -> Vec<u64> {
        state
            .probe_candidates(probe)
            .map(|t| t.ts.as_micros() / 1_000_000)
            .collect()
    }

    #[test]
    fn equi_fields_respect_side_and_recurse_into_and() {
        let equi = JoinCondition::Equi {
            left_field: 1,
            right_field: 2,
        };
        assert_eq!(equi_key_fields(&equi, true), Some((1, 2)));
        assert_eq!(equi_key_fields(&equi, false), Some((2, 1)));
        assert_eq!(equi_key_fields(&JoinCondition::Cross, true), None);
        let theta = JoinCondition::Theta {
            left_field: 0,
            op: crate::predicate::CmpOp::Lt,
            right_field: 0,
        };
        assert_eq!(equi_key_fields(&theta, true), None);
        let both = JoinCondition::And(Box::new(theta), Box::new(equi));
        assert_eq!(equi_key_fields(&both, false), Some((2, 1)));
    }

    #[test]
    fn equi_fields_are_found_anywhere_in_nested_conjunctions() {
        // An equi component buried at any depth and any position of the And
        // tree must be found — ShardSpec::from_condition relies on this to
        // hash-partition shardable joins.
        let equi = JoinCondition::Equi {
            left_field: 3,
            right_field: 4,
        };
        let theta = JoinCondition::Theta {
            left_field: 0,
            op: crate::predicate::CmpOp::Lt,
            right_field: 0,
        };
        let deep_right = JoinCondition::And(
            Box::new(theta.clone()),
            Box::new(JoinCondition::And(
                Box::new(JoinCondition::Cross),
                Box::new(equi.clone()),
            )),
        );
        assert_eq!(equi_key_fields(&deep_right, true), Some((3, 4)));
        assert_eq!(equi_key_fields(&deep_right, false), Some((4, 3)));
        let deep_left = JoinCondition::And(
            Box::new(JoinCondition::And(
                Box::new(equi.clone()),
                Box::new(JoinCondition::Cross),
            )),
            Box::new(theta.clone()),
        );
        assert_eq!(equi_key_fields(&deep_left, true), Some((3, 4)));
        // Two equi components: the first in left-to-right order wins (any
        // single equi conjunct is a correct filter).
        let two = JoinCondition::And(
            Box::new(JoinCondition::And(
                Box::new(theta.clone()),
                Box::new(JoinCondition::equi(1)),
            )),
            Box::new(equi),
        );
        assert_eq!(equi_key_fields(&two, true), Some((1, 1)));
        // All-theta trees have no equi anywhere.
        let none = JoinCondition::And(
            Box::new(theta.clone()),
            Box::new(JoinCondition::And(
                Box::new(JoinCondition::Cross),
                Box::new(theta),
            )),
        );
        assert_eq!(equi_key_fields(&none, true), None);
    }

    #[test]
    fn condition_selects_index_or_linear() {
        assert!(JoinState::for_condition(&JoinCondition::equi(0), true).is_indexed());
        assert!(!JoinState::for_condition(&JoinCondition::Cross, true).is_indexed());
    }

    #[test]
    fn indexed_probe_returns_only_the_key_bucket() {
        let mut s = JoinState::indexed(0, 0);
        for (secs, key) in [(1, 7), (2, 8), (3, 7), (4, 9), (5, 7)] {
            s.push(t(secs, key));
        }
        assert_eq!(s.len(), 5);
        assert_eq!(candidate_secs(&s, &t(9, 7)), vec![1, 3, 5]);
        assert_eq!(candidate_secs(&s, &t(9, 9)), vec![4]);
        assert_eq!(candidate_secs(&s, &t(9, 42)), Vec::<u64>::new());
    }

    #[test]
    fn purging_keeps_buckets_consistent() {
        let mut s = JoinState::indexed(0, 0);
        for (secs, key) in [(1, 7), (2, 8), (3, 7)] {
            s.push(t(secs, key));
        }
        assert_eq!(s.front().unwrap().ts, Timestamp::from_secs(1));
        let popped = s.pop_front().unwrap();
        assert_eq!(popped.ts, Timestamp::from_secs(1));
        assert_eq!(candidate_secs(&s, &t(9, 7)), vec![3]);
        assert_eq!(candidate_secs(&s, &t(9, 8)), vec![2]);
        // Cleanup is lazy: dead bucket references linger but are invisible
        // to probes, and a compaction sweeps them out entirely.
        s.pop_front();
        s.pop_front();
        assert!(s.is_empty());
        assert_eq!(candidate_secs(&s, &t(9, 7)), Vec::<u64>::new());
        assert_eq!(candidate_secs(&s, &t(9, 8)), Vec::<u64>::new());
        s.compact();
        assert!(s.index.is_empty());
    }

    #[test]
    fn linear_mode_scans_everything() {
        let mut s = JoinState::linear();
        s.push(t(1, 7));
        s.push(t(2, 8));
        assert!(!s.is_indexed());
        assert_eq!(candidate_secs(&s, &t(9, 7)), vec![1, 2]);
    }

    #[test]
    fn int_and_float_keys_share_buckets() {
        let mut s = JoinState::indexed(0, 0);
        s.push(tv(1, Value::Int(3)));
        s.push(tv(2, Value::Float(3.0)));
        s.push(tv(3, Value::Float(-0.0)));
        assert_eq!(candidate_secs(&s, &tv(9, Value::Float(3.0))), vec![1, 2]);
        assert_eq!(candidate_secs(&s, &tv(9, Value::Int(3))), vec![1, 2]);
        assert_eq!(candidate_secs(&s, &tv(9, Value::Int(0))), vec![3]);
        assert_eq!(candidate_secs(&s, &tv(9, Value::Float(0.0))), vec![3]);
    }

    #[test]
    fn nan_keys_never_produce_false_negatives() {
        let mut s = JoinState::indexed(0, 0);
        s.push(tv(1, Value::Int(5)));
        s.push(tv(2, Value::Float(f64::NAN)));
        // Value::compare equates NaN with every number, so the NaN entry must
        // be a candidate for a numeric probe...
        assert_eq!(candidate_secs(&s, &tv(9, Value::Int(5))), vec![1, 2]);
        // ...and a NaN probe must see everything (full scan).
        assert_eq!(
            candidate_secs(&s, &tv(9, Value::Float(f64::NAN))),
            vec![1, 2]
        );
        // Purging the NaN entry leaves a dead side-list reference that no
        // probe sees; compaction removes it.
        s.pop_front();
        s.pop_front();
        assert_eq!(candidate_secs(&s, &tv(9, Value::Int(5))), Vec::<u64>::new());
        s.compact();
        assert!(s.unindexed.is_empty());
    }

    #[test]
    fn missing_probe_attribute_yields_no_candidates() {
        let mut s = JoinState::indexed(1, 1);
        // Stored tuple has no field 1: indexed under Missing, never probed.
        s.push(t(1, 7));
        assert_eq!(candidate_secs(&s, &t(9, 8)), Vec::<u64>::new());
        // And purging it still balances the books (after a sweep).
        s.pop_front();
        s.compact();
        assert!(s.index.is_empty());
    }

    #[test]
    fn mixed_type_keys_use_distinct_buckets() {
        let mut s = JoinState::indexed(0, 0);
        s.push(tv(1, Value::str("x")));
        s.push(tv(2, Value::Bool(true)));
        s.push(tv(3, Value::Null));
        assert_eq!(candidate_secs(&s, &tv(9, Value::str("x"))), vec![1]);
        assert_eq!(candidate_secs(&s, &tv(9, Value::Bool(true))), vec![2]);
        assert_eq!(candidate_secs(&s, &tv(9, Value::Null)), vec![3]);
    }

    #[test]
    fn drain_and_load_round_trip_rebuilds_the_index() {
        let mut s = JoinState::indexed(0, 0);
        for (secs, key) in [(1, 7), (2, 8), (3, 7)] {
            s.push(t(secs, key));
        }
        s.pop_front(); // advance head_seq so load resets it
        let drained = s.drain_ordered();
        assert_eq!(drained.len(), 2);
        assert!(s.is_empty());
        s.load_ordered(drained);
        assert_eq!(s.len(), 2);
        assert_eq!(candidate_secs(&s, &t(9, 7)), vec![3]);
        assert_eq!(candidate_secs(&s, &t(9, 8)), vec![2]);
    }

    #[test]
    fn canonical_key_hash_follows_value_equivalence() {
        // Values that compare Equal must hash identically...
        assert_eq!(
            canonical_key_hash(&Value::Int(3)),
            canonical_key_hash(&Value::Float(3.0))
        );
        assert_eq!(
            canonical_key_hash(&Value::Float(-0.0)),
            canonical_key_hash(&Value::Int(0))
        );
        // ...distinct values get (with overwhelming likelihood) distinct
        // hashes, NaN is unhashable, and the function is deterministic.
        assert_ne!(
            canonical_key_hash(&Value::Int(3)),
            canonical_key_hash(&Value::Int(4))
        );
        assert_ne!(
            canonical_key_hash(&Value::str("3")),
            canonical_key_hash(&Value::Int(3))
        );
        assert_ne!(
            canonical_key_hash(&Value::Null),
            canonical_key_hash(&Value::Bool(false))
        );
        assert_eq!(canonical_key_hash(&Value::Float(f64::NAN)), None);
        assert_eq!(
            canonical_key_hash(&Value::str("abc")),
            canonical_key_hash(&Value::str("abc"))
        );
    }

    #[test]
    fn missing_bucket_hash_matches_the_fnv_scheme() {
        // MISSING_KEY_HASH must stay disjoint from every Value-derived hash:
        // it is the FNV of tag byte 1, which IndexKey::for_value never emits.
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        assert_eq!(MISSING_KEY_HASH, (FNV_OFFSET ^ 1).wrapping_mul(FNV_PRIME));
    }

    #[test]
    fn push_memoizes_and_reuses_the_key_hash() {
        let mut s = JoinState::indexed(0, 0);
        s.push(t(1, 7));
        // The stored copy carries the memo for the stored field...
        let stored = s.front().unwrap();
        let class = stored.memoized_key(0).expect("memoised on insert");
        assert_eq!(
            class,
            KeyClass::Hash(canonical_key_hash(&Value::Int(7)).unwrap())
        );
        // ...and a pre-memoised probe takes the indexed path unchanged.
        let mut probe = t(9, 7);
        memoize_key(&mut probe, 0);
        assert_eq!(candidate_secs(&s, &probe), vec![1]);
        // The popped tuple still carries the memo it got on insert, and a
        // compaction (which rebuilds buckets from memos) leaves no trace.
        let popped = s.pop_front().unwrap();
        assert_eq!(popped.memoized_key(0), Some(class));
        s.compact();
        assert!(s.index.is_empty());
    }

    #[test]
    fn stale_bucket_references_auto_compact() {
        let mut s = JoinState::indexed(0, 0);
        // Push 40, pop 35: the dead backlog (35) exceeds both the live size
        // (5) and the minimum threshold (32), so compaction must have fired
        // and the index must reference exactly the live entries again.
        for i in 0..40u64 {
            s.push(t(i, (i % 7) as i64));
        }
        for _ in 0..35 {
            s.pop_front();
        }
        assert_eq!(s.len(), 5);
        // Compaction fired on the 33rd pop (dead backlog 33 > max(live 7,
        // 32)); the two pops after it left two fresh dead references, so the
        // index references 5 live + 2 dead entries — not the 35 an
        // un-compacted index would carry.
        let referenced: usize =
            s.index.values().map(|b| b.len()).sum::<usize>() + s.unindexed.len();
        assert_eq!(referenced, 7, "auto-compaction swept dead references");
        // Probes agree with a from-scratch rebuild.
        for key in 0..7i64 {
            let want: Vec<u64> = s
                .iter()
                .filter(|c| c.value(0) == Some(&Value::Int(key)))
                .map(|c| c.ts.as_micros() / 1_000_000)
                .collect();
            assert_eq!(candidate_secs(&s, &t(99, key)), want);
        }
    }

    #[test]
    fn byte_accounting_follows_pushes_and_purges() {
        let mut s = JoinState::indexed(0, 0);
        assert_eq!(s.live_bytes(), 0);
        s.push(t(1, 7));
        s.push(t(2, 8));
        let two = s.live_bytes();
        assert!(two > 0);
        assert!(s.capacity_bytes() >= two);
        s.pop_front();
        assert!(s.live_bytes() < two);
        s.pop_front();
        assert_eq!(s.live_bytes(), 0);
    }

    /// `lo ≤ stored.0 ≤ hi` with the bounds in probe fields 0 and 1.
    fn band_state() -> JoinState {
        JoinState::band_indexed(BandProbe {
            stored_field: 0,
            lower: Some((0, true)),
            upper: Some((1, true)),
        })
    }

    fn band_probe_tuple(lo: i64, hi: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(99), StreamId::B, &[lo, hi])
    }

    #[test]
    fn condition_selects_band_index_when_no_equi() {
        let theta = JoinCondition::Theta {
            left_field: 0,
            op: crate::predicate::CmpOp::Ge,
            right_field: 1,
        };
        let s = JoinState::for_condition(&theta, true);
        assert!(s.is_band_indexed());
        assert!(!s.is_indexed());
        assert_eq!(
            s.band_spec(),
            Some(&BandProbe {
                stored_field: 0,
                lower: Some((1, true)),
                upper: None,
            })
        );
        // An equi component anywhere wins: hash index, no band index.
        let both = JoinCondition::And(Box::new(theta), Box::new(JoinCondition::equi(2)));
        let s = JoinState::for_condition(&both, true);
        assert!(s.is_indexed());
        assert!(!s.is_band_indexed());
        // No usable component at all: linear.
        let s = JoinState::for_condition(&JoinCondition::Cross, true);
        assert!(!s.is_indexed() && !s.is_band_indexed());
    }

    #[test]
    fn band_probe_walks_only_the_value_range() {
        let mut s = band_state();
        for (secs, key) in [(1, 5), (2, 20), (3, 7), (4, 11), (5, 6)] {
            s.push(t(secs, key));
        }
        // Range [5, 7]: keys 5, 6, 7 in value order.
        assert_eq!(candidate_secs(&s, &band_probe_tuple(5, 7)), vec![1, 5, 3]);
        // Half-miss range and full-miss range.
        assert_eq!(candidate_secs(&s, &band_probe_tuple(12, 25)), vec![2]);
        assert_eq!(
            candidate_secs(&s, &band_probe_tuple(13, 19)),
            Vec::<u64>::new()
        );
        // Inverted range (lo > hi): no candidates, and no panic.
        assert_eq!(
            candidate_secs(&s, &band_probe_tuple(9, 3)),
            Vec::<u64>::new()
        );
        // Duplicate keys stay in insertion order within their run.
        s.push(t(6, 6));
        assert_eq!(candidate_secs(&s, &band_probe_tuple(6, 6)), vec![5, 6]);
    }

    #[test]
    fn band_non_numeric_and_nan_keys_never_produce_false_negatives() {
        let mut s = band_state();
        s.push(tv(1, Value::Int(5)));
        s.push(tv(2, Value::Float(f64::NAN)));
        s.push(tv(3, Value::str("zzz")));
        s.push(tv(4, Value::Null));
        // Numeric probe range: the tree narrows to key 5, but NaN (compares
        // Equal to everything), Str (ranks above numbers, can satisfy ≥) and
        // Null (ranks below, can satisfy ≤) must all stay candidates.
        assert_eq!(
            candidate_secs(&s, &band_probe_tuple(5, 5)),
            vec![1, 2, 3, 4]
        );
        // A non-numeric bound value degrades to a full scan.
        let probe = Tuple::new(
            Timestamp::from_secs(9),
            StreamId::B,
            vec![Value::str("a"), Value::str("b")],
        );
        assert_eq!(candidate_secs(&s, &probe), vec![1, 2, 3, 4]);
        // A missing bound attribute yields no candidates at all.
        let probe = Tuple::of_ints(Timestamp::from_secs(9), StreamId::B, &[3]);
        assert_eq!(candidate_secs(&s, &probe), Vec::<u64>::new());
        // A stored tuple *missing* the band field is never a candidate.
        let mut s = JoinState::band_indexed(BandProbe {
            stored_field: 7,
            lower: Some((0, true)),
            upper: Some((1, true)),
        });
        s.push(t(1, 5));
        assert_eq!(
            candidate_secs(&s, &band_probe_tuple(i64::MIN, i64::MAX)),
            Vec::<u64>::new()
        );
    }

    #[test]
    fn band_endpoints_widen_over_int_to_float_rounding() {
        // 2^53 and 2^53 + 1 are distinct i64 keys that collapse to the same
        // f64 bucket.  A probe whose exact range covers only one of them
        // must still see both (widened endpoints; the caller's condition
        // re-eval discards the false positive).
        const BIG: i64 = 1 << 53;
        let mut s = band_state();
        s.push(t(1, BIG));
        s.push(t(2, BIG + 1));
        let candidates = candidate_secs(&s, &band_probe_tuple(BIG + 1, BIG + 1));
        assert!(candidates.contains(&2), "true match lost to rounding");
        assert_eq!(candidates, vec![1, 2], "bucket-mates ride along");
        // -0.0 and +0.0 share one bucket.
        let mut s = band_state();
        s.push(tv(1, Value::Float(-0.0)));
        assert_eq!(candidate_secs(&s, &band_probe_tuple(0, 0)), vec![1]);
    }

    #[test]
    fn band_stale_references_auto_compact() {
        let mut s = band_state();
        for i in 0..40u64 {
            s.push(t(i, (i % 7) as i64));
        }
        for _ in 0..35 {
            s.pop_front();
        }
        assert_eq!(s.len(), 5);
        // Same compaction cadence as the hash index: the sweep fired on the
        // 33rd pop, leaving 5 live + 2 fresh dead references.
        let band = s.band.as_ref().unwrap();
        let referenced: usize =
            band.tree.values().map(|r| r.len()).sum::<usize>() + band.side.len();
        assert_eq!(referenced, 7, "auto-compaction swept dead references");
        // A full-range probe still sees exactly the live tuples (candidates
        // come back in value order; compare as multisets).
        let mut want: Vec<u64> = s.iter().map(|c| c.ts.as_micros() / 1_000_000).collect();
        let mut got = candidate_secs(&s, &band_probe_tuple(0, 6));
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn band_drain_and_load_round_trip_rebuilds_the_order_index() {
        let mut s = band_state();
        for (secs, key) in [(1, 9), (2, 3), (3, 9), (4, 5)] {
            s.push(t(secs, key));
        }
        s.pop_front();
        let before = candidate_secs(&s, &band_probe_tuple(3, 9));
        let drained = s.drain_ordered();
        assert_eq!(drained.len(), 3);
        s.load_ordered(drained);
        assert!(s.is_band_indexed());
        // The rebuilt index probes identically to the incremental one.
        assert_eq!(candidate_secs(&s, &band_probe_tuple(3, 9)), before);
        assert_eq!(candidate_secs(&s, &band_probe_tuple(3, 9)), vec![2, 4, 3]);
    }

    #[test]
    fn band_random_probes_match_a_linear_reference() {
        // Differential check: stored.0 ∈ [probe.1, probe.2], with strict
        // variants and occasional NaN/missing values thrown in.
        let cond = JoinCondition::And(
            Box::new(JoinCondition::Theta {
                left_field: 0,
                op: crate::predicate::CmpOp::Ge,
                right_field: 1,
            }),
            Box::new(JoinCondition::Theta {
                left_field: 0,
                op: crate::predicate::CmpOp::Lt,
                right_field: 2,
            }),
        );
        let mut banded = JoinState::for_condition(&cond, true);
        assert!(banded.is_band_indexed());
        let mut linear = JoinState::linear();
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for step in 0..500u64 {
            let key = match next() % 16 {
                0 => Value::Float(f64::NAN),
                1 => Value::Float((next() % 19) as f64 / 2.0),
                _ => Value::Int((next() % 19) as i64),
            };
            let tuple = tv(step, key);
            if next() % 4 == 0 && !banded.is_empty() {
                banded.pop_front();
                linear.pop_front();
            }
            let lo = (next() % 19) as i64;
            let probe = Tuple::of_ints(
                Timestamp::from_secs(step),
                StreamId::B,
                &[0, lo, lo + (next() % 5) as i64],
            );
            let mut got: Vec<&Tuple> = banded
                .probe_candidates(&probe)
                .filter(|s| cond.eval(s, &probe))
                .collect();
            let mut want: Vec<&Tuple> = linear.iter().filter(|s| cond.eval(s, &probe)).collect();
            got.sort_by_key(|t| t.ts);
            want.sort_by_key(|t| t.ts);
            assert_eq!(got, want, "divergence at step {step}");
            banded.push(tuple.clone());
            linear.push(tuple);
        }
    }

    #[test]
    fn random_probes_match_a_linear_reference() {
        // Exhaustive cross-check on a pseudo-random workload: for every probe
        // the indexed candidate set must contain every stored tuple the
        // condition matches (no false negatives).
        let cond = JoinCondition::equi(0);
        let mut indexed = JoinState::for_condition(&cond, true);
        let mut linear = JoinState::linear();
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for step in 0..500u64 {
            let key = (next() % 11) as i64;
            let tuple = t(step, key);
            if next() % 4 == 0 && !indexed.is_empty() {
                indexed.pop_front();
                linear.pop_front();
            }
            let probe = t(step, (next() % 11) as i64);
            let mut got: Vec<&Tuple> = indexed
                .probe_candidates(&probe)
                .filter(|s| cond.eval(s, &probe))
                .collect();
            let mut want: Vec<&Tuple> = linear.iter().filter(|s| cond.eval(s, &probe)).collect();
            got.sort_by_key(|t| t.ts);
            want.sort_by_key(|t| t.ts);
            assert_eq!(got, want, "divergence at step {step}");
            indexed.push(tuple.clone());
            linear.push(tuple);
        }
    }
}
