//! `streamkit` — a minimal, single-process data stream management substrate.
//!
//! The State-Slice paper ([Wang et al., VLDB 2006]) evaluates its sharing
//! paradigm inside the CAPE data stream management system.  CAPE itself is not
//! available, so this crate provides the substrate the paper's operators need:
//!
//! * typed [`Tuple`]s carrying timestamps, payload values, a slice *lineage*
//!   level and a *role* tag used for reference-copy pipelining,
//! * [`Predicate`]s and [`JoinCondition`]s with explicit comparison counting,
//! * hash-indexed window-join state ([`JoinState`]) giving O(1 + matches)
//!   equi-join probes with a linear-scan fallback for other conditions,
//! * a multi-port [`Operator`](operator::Operator) abstraction,
//! * the classic continuous-query operators (selection, projection, split,
//!   router, order-preserving union, sliding-window joins, sinks),
//! * an operator-DAG [`Plan`](plan::Plan) with per-port queues,
//! * a round-robin [`Scheduler`](scheduler::RoundRobinScheduler) and an
//!   [`Executor`](executor::Executor) with statistics collection (state
//!   memory, comparison counts, throughput / service rate),
//! * a [`ShardedExecutor`](shard::ShardedExecutor) running N instances of
//!   one plan on a persistent [`WorkerPool`](pool::WorkerPool) — one
//!   long-lived worker per shard, fed by bounded SPSC rings — over input
//!   hash-partitioned by the canonical equi-join key, with per-shard reports
//!   merged back into one, and optional skew-aware hot-key routing
//!   ([`skew`]) that replicates heavy keys to all shards.
//!
//! The cost drivers the paper reasons about — join probing, cross-purging,
//! routing, filtering and union merging — are all surfaced as explicit counter
//! increments so that analytical and measured comparisons line up.
//!
//! [Wang et al., VLDB 2006]: https://dl.acm.org/doi/10.5555/1182635.1164186

pub mod arena;
pub mod checkpoint;
pub mod columnar;
pub mod error;
pub mod executor;
pub mod fault;
pub mod join_state;
pub mod operator;
pub mod ops;
pub mod plan;
pub mod pool;
pub mod predicate;
pub mod punctuation;
pub mod queue;
pub mod scheduler;
pub mod shard;
pub mod skew;
pub mod stats;
pub mod time;
pub mod tuple;
pub mod window;

pub use arena::TupleArena;
pub use checkpoint::{Checkpoint, NodeCheckpoint, ShardCheckpoint, CHECKPOINT_VERSION};
pub use columnar::ColumnBatch;
pub use error::{Result, StreamError};
pub use executor::{ExecutionReport, Executor, ExecutorConfig};
pub use fault::{FaultKind, FaultPlan, FAULT_PANIC_PREFIX};
pub use join_state::JoinState;
pub use operator::{OpContext, Operator, PortId};
pub use plan::{NodeId, Plan, PlanBuilder};
pub use pool::{SpscRing, WorkerPool};
pub use predicate::{CmpOp, JoinCondition, Predicate};
pub use punctuation::Punctuation;
pub use queue::StreamItem;
pub use shard::{RouterStats, ShardSpec, ShardedExecutor};
pub use skew::{HotKeyTracker, SkewConfig, SpaceSavingSketch};
pub use stats::{
    CostCounters, MemoryStats, NodeStats, OperatorSnapshot, StatsSnapshot, DEFAULT_STATS_ALPHA,
};
pub use time::{TimeDelta, Timestamp};
pub use tuple::{Field, Schema, StreamId, Tuple, TupleRole, Value};
pub use window::{SliceWindow, WindowSpec};
