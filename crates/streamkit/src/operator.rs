//! The operator abstraction.
//!
//! Operators are push-based: the scheduler hands them one [`StreamItem`] at a
//! time on a given input port, and they emit zero or more items on their
//! output ports through the [`OpContext`].  All stateful operators report
//! their state size in tuples so the executor can sample total state memory.

use std::any::Any;

use crate::queue::StreamItem;
use crate::stats::CostCounters;
use crate::tuple::Tuple;

/// Index of an input or output port of an operator.
pub type PortId = usize;

/// Execution context handed to operators: an output buffer plus the cost
/// counters for the current operator.
#[derive(Debug, Default)]
pub struct OpContext {
    outputs: Vec<(PortId, StreamItem)>,
    /// Comparison counters attributed to the running operator.
    pub counters: CostCounters,
}

impl OpContext {
    /// Fresh context with zeroed counters.
    pub fn new() -> Self {
        OpContext::default()
    }

    /// Emit an item on the given output port.
    pub fn emit(&mut self, port: PortId, item: impl Into<StreamItem>) {
        self.counters.items_emitted += 1;
        self.outputs.push((port, item.into()));
    }

    /// Drain the buffered outputs (used by the executor).
    pub fn take_outputs(&mut self) -> Vec<(PortId, StreamItem)> {
        std::mem::take(&mut self.outputs)
    }

    /// Swap the buffered outputs with `buf` (an allocation-reuse variant of
    /// [`OpContext::take_outputs`] used by the executor's hot loop).
    pub fn swap_outputs(&mut self, buf: &mut Vec<(PortId, StreamItem)>) {
        std::mem::swap(&mut self.outputs, buf);
    }

    /// Reset the comparison counters (the executor attributes them per
    /// operator visit).
    pub fn reset_counters(&mut self) {
        self.counters = CostCounters::default();
    }

    /// Number of buffered outputs (mostly useful in tests).
    pub fn pending_outputs(&self) -> usize {
        self.outputs.len()
    }
}

/// A stream operator.
///
/// Implementations must be deterministic given the sequence of `(port, item)`
/// calls; the round-robin scheduler may interleave operators arbitrarily, and
/// the paper's correctness argument (Lemma 1) is independent of scheduling.
pub trait Operator: Send {
    /// Human-readable operator name (used in reports).
    fn name(&self) -> &str;

    /// Number of input ports.
    fn num_input_ports(&self) -> usize {
        1
    }

    /// Number of output ports.
    fn num_output_ports(&self) -> usize {
        1
    }

    /// Process one item arriving on `port`.
    fn process(&mut self, port: PortId, item: StreamItem, ctx: &mut OpContext);

    /// Process a timestamp-ordered run of items arriving on `port`, draining
    /// `items`.  The executor's vectorized path feeds whole queue runs here
    /// (see [`Queue::pop_run_into`](crate::queue::Queue::pop_run_into)) so
    /// stateful operators can amortise per-run work (purges, watermark
    /// merges, key hashing) over the batch.
    ///
    /// The default implementation loops over [`Operator::process`].  Default
    /// trait methods are monomorphised per implementing type, so this is
    /// already one virtual call per run with a statically dispatched inner
    /// loop — simple per-item operators (selects, projections, sinks, ...)
    /// need no override; only operators with genuinely amortisable work do.
    ///
    /// Overrides must be **item-at-a-time equivalent**: the emitted output
    /// multiset, its timestamp order, and all output-scaling counters
    /// (probe/filter/route/split/union comparisons) must match processing
    /// the run one item at a time.  Internal bookkeeping that is monotone in
    /// the input — cross-purge timestamp comparisons, transient peak-state,
    /// punctuation granularity, and the relative order of *equal-timestamp*
    /// items from different ports — may differ.
    fn process_batch(&mut self, port: PortId, items: &mut Vec<StreamItem>, ctx: &mut OpContext) {
        for item in items.drain(..) {
            self.process(port, item, ctx);
        }
    }

    /// Called once when all input is exhausted, so operators can flush
    /// buffered output (e.g. the order-preserving union).
    fn flush(&mut self, _ctx: &mut OpContext) {}

    /// Current state size in tuples (join windows, union buffers, ...).
    fn state_size(&self) -> usize {
        0
    }

    /// Estimated live bytes of this operator's window state (inline tuple
    /// slots plus heap payloads).  Join operators report their
    /// [`JoinState`](crate::join_state::JoinState) arena bookkeeping;
    /// stateless and transient-buffer operators keep the zero default.
    fn state_bytes(&self) -> usize {
        0
    }

    /// Estimated bytes the operator's state storage currently *holds on to*,
    /// including purged-but-unreleased arena slots and unfilled tail
    /// capacity — what the allocator sees, as opposed to what is live.
    /// Defaults to [`Operator::state_bytes`].
    fn state_capacity_bytes(&self) -> usize {
        self.state_bytes()
    }

    /// `true` if this operator's `state_size` is a transient reorder/queue
    /// buffer rather than window state.  The paper distinguishes *state
    /// memory* (join windows) from *queue memory* (Section 2); the executor
    /// attributes transient buffers to the latter when sampling memory.
    fn is_transient_buffer(&self) -> bool {
        false
    }

    /// Take this operator's window state as two timestamp-ordered tuple
    /// runs `(side a, side b)`, leaving the operator empty.  Returns `None`
    /// when the operator has no migratable window state (the default).
    ///
    /// This is the generic face of the state-migration path the sharded
    /// executor's hot-key replication uses: together with
    /// [`Operator::load_window_states`] it lets the router move or replicate
    /// a key's stored bucket across shard plan instances without knowing the
    /// concrete join type.  Join operators (windowed and sliced) implement
    /// the pair; stateless and transient-buffer operators keep the default.
    /// Call only at quiescence (the owning executor drained), so no partial
    /// batch is in flight.
    fn drain_window_states(&mut self) -> Option<(Vec<Tuple>, Vec<Tuple>)> {
        None
    }

    /// Restore window state drained by [`Operator::drain_window_states`]
    /// (possibly merged with replicated tuples, still timestamp-ordered per
    /// side).  The default panics: it must only be called on operators whose
    /// `drain_window_states` returns `Some`.
    fn load_window_states(&mut self, _side_a: Vec<Tuple>, _side_b: Vec<Tuple>) {
        panic!(
            "operator '{}' does not support window-state migration",
            self.name()
        );
    }

    /// Downcasting support (sinks expose collected results this way).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;
    use crate::tuple::{StreamId, Tuple};

    struct Echo;

    impl Operator for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn process(&mut self, _port: PortId, item: StreamItem, ctx: &mut OpContext) {
            ctx.emit(0, item);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn context_buffers_and_drains_outputs() {
        let mut ctx = OpContext::new();
        let mut op = Echo;
        assert_eq!(op.num_input_ports(), 1);
        assert_eq!(op.num_output_ports(), 1);
        assert_eq!(op.state_size(), 0);
        let t = Tuple::of_ints(Timestamp::from_secs(1), StreamId::A, &[1]);
        op.process(0, t.clone().into(), &mut ctx);
        assert_eq!(ctx.pending_outputs(), 1);
        assert_eq!(ctx.counters.items_emitted, 1);
        let out = ctx.take_outputs();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[0].1.as_tuple(), Some(&t));
        assert_eq!(ctx.pending_outputs(), 0);
    }

    #[test]
    fn default_process_batch_loops_over_process() {
        let mut ctx = OpContext::new();
        let mut op = Echo;
        let mut items: Vec<StreamItem> = (1..=3u64)
            .map(|s| Tuple::of_ints(Timestamp::from_secs(s), StreamId::A, &[s as i64]).into())
            .collect();
        op.process_batch(0, &mut items, &mut ctx);
        assert!(items.is_empty(), "batch input is drained");
        assert_eq!(ctx.pending_outputs(), 3);
        assert_eq!(ctx.counters.items_emitted, 3);
    }

    #[test]
    fn operators_are_downcastable() {
        let mut op = Echo;
        assert!(op.as_any().downcast_ref::<Echo>().is_some());
        assert!(op.as_any_mut().downcast_mut::<Echo>().is_some());
    }
}
