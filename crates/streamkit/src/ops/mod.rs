//! The built-in continuous-query operators.
//!
//! These are the operators the paper's shared query plans are made of:
//! selection, projection, stream split (partitioning), result routing,
//! order-preserving union, sliding-window joins and result sinks.

pub mod project;
pub mod router;
pub mod select;
pub mod sink;
pub mod split;
pub mod union;
pub mod window_join;

pub use project::ProjectOp;
pub use router::{RouteTarget, RouterOp};
pub use select::SelectOp;
pub use sink::SinkOp;
pub use split::SplitOp;
pub use union::UnionOp;
pub use window_join::{OneWayWindowJoinOp, WindowJoinOp};
