//! Projection operator.

use std::any::Any;
use std::sync::Arc;

use crate::operator::{OpContext, Operator, PortId};
use crate::queue::StreamItem;
use crate::tuple::Tuple;

// Columnar runs are projected with the per-column kernel
// [`crate::columnar::ColumnBatch::project`]; see `process`.

/// Stateless projection: keeps the listed payload columns in order.
///
/// The paper's example queries project `A.*`; projection is included for
/// completeness of the substrate and used by the query translator.
#[derive(Debug)]
pub struct ProjectOp {
    name: String,
    columns: Vec<usize>,
}

impl ProjectOp {
    /// Keep the columns at the given indexes, in the given order.
    pub fn new(name: impl Into<String>, columns: Vec<usize>) -> Self {
        ProjectOp {
            name: name.into(),
            columns,
        }
    }

    /// The projected column indexes.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    fn apply(&self, t: &Tuple) -> Tuple {
        let values: Vec<_> = self
            .columns
            .iter()
            .map(|&c| t.value(c).cloned().unwrap_or(crate::tuple::Value::Null))
            .collect();
        Tuple {
            values: Arc::from(values),
            // The projected payload has a new field layout, so a key hash
            // memoised over the input layout would be wrong.
            key_hash: None,
            ..t.clone()
        }
    }
}

impl Operator for ProjectOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, _port: PortId, item: StreamItem, ctx: &mut OpContext) {
        match item {
            StreamItem::Tuple(t) => {
                ctx.counters.tuples_processed += 1;
                ctx.emit(0, self.apply(&t));
            }
            StreamItem::Batch(b) => {
                ctx.counters.tuples_processed += b.len() as u64;
                ctx.emit(0, b.project(&self.columns));
            }
            p @ StreamItem::Punctuation(_) => ctx.emit(0, p),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::punctuation::Punctuation;
    use crate::time::Timestamp;
    use crate::tuple::{StreamId, Value};

    #[test]
    fn projects_and_reorders_columns() {
        let mut op = ProjectOp::new("pi", vec![2, 0]);
        let mut ctx = OpContext::new();
        let t = Tuple::of_ints(Timestamp::from_secs(1), StreamId::A, &[10, 20, 30]);
        op.process(0, t.into(), &mut ctx);
        let out = ctx.take_outputs();
        let projected = out[0].1.as_tuple().unwrap();
        assert_eq!(projected.arity(), 2);
        assert_eq!(projected.value(0), Some(&Value::Int(30)));
        assert_eq!(projected.value(1), Some(&Value::Int(10)));
        assert_eq!(op.columns(), &[2, 0]);
    }

    #[test]
    fn missing_columns_become_null() {
        let mut op = ProjectOp::new("pi", vec![0, 9]);
        let mut ctx = OpContext::new();
        let t = Tuple::of_ints(Timestamp::from_secs(1), StreamId::A, &[10]);
        op.process(0, t.into(), &mut ctx);
        let out = ctx.take_outputs();
        let projected = out[0].1.as_tuple().unwrap();
        assert_eq!(projected.value(1), Some(&Value::Null));
    }

    #[test]
    fn punctuations_pass_through() {
        let mut op = ProjectOp::new("pi", vec![0]);
        let mut ctx = OpContext::new();
        op.process(
            0,
            Punctuation::new(Timestamp::from_secs(5)).into(),
            &mut ctx,
        );
        assert!(ctx.take_outputs()[0].1.is_punctuation());
    }
}
