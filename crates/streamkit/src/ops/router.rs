//! Result router.
//!
//! In the selection pull-up and push-down baselines (Sections 3.1–3.2 of the
//! paper) a router dispatches each joined result tuple to every registered
//! query whose window constraint it satisfies: the result `(a, b)` belongs to
//! query `Q_i` iff `|Ta - Tb| < W_i`.  Each check costs one timestamp
//! comparison per registered query, which is exactly the per-result routing
//! cost the paper identifies as a weakness of those strategies.

use std::any::Any;

use crate::operator::{OpContext, Operator, PortId};
use crate::predicate::Predicate;
use crate::queue::StreamItem;
use crate::time::TimeDelta;

/// One routing destination: a window constraint plus an optional residual
/// filter applied after routing (e.g. the pulled-up selection of Q2).
#[derive(Debug, Clone)]
pub struct RouteTarget {
    /// Dispatch joined tuples with `|Ta - Tb| < window`.
    pub window: TimeDelta,
    /// Residual selection applied to routed tuples.
    pub filter: Option<Predicate>,
}

impl RouteTarget {
    /// Target with a window constraint only.
    pub fn window_only(window: TimeDelta) -> Self {
        RouteTarget {
            window,
            filter: None,
        }
    }

    /// Target with a window constraint and a residual filter.
    pub fn with_filter(window: TimeDelta, filter: Predicate) -> Self {
        RouteTarget {
            window,
            filter: Some(filter),
        }
    }
}

/// Routes joined tuples to the queries whose window (and filter) they satisfy.
#[derive(Debug)]
pub struct RouterOp {
    name: String,
    targets: Vec<RouteTarget>,
    dispatched: Vec<u64>,
}

impl RouterOp {
    /// Build a router for the given targets; output port `i` serves target `i`.
    pub fn new(name: impl Into<String>, targets: Vec<RouteTarget>) -> Self {
        let dispatched = vec![0; targets.len()];
        RouterOp {
            name: name.into(),
            targets,
            dispatched,
        }
    }

    /// Number of tuples dispatched to each target so far.
    pub fn dispatched_counts(&self) -> &[u64] {
        &self.dispatched
    }

    /// The router fan-out (number of registered queries).
    pub fn fanout(&self) -> usize {
        self.targets.len()
    }
}

impl Operator for RouterOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_output_ports(&self) -> usize {
        self.targets.len()
    }

    fn process(&mut self, _port: PortId, item: StreamItem, ctx: &mut OpContext) {
        match item {
            StreamItem::Tuple(t) => {
                ctx.counters.tuples_processed += 1;
                for (port, target) in self.targets.iter().enumerate() {
                    // One timestamp comparison per registered query per result.
                    ctx.counters.route_comparisons += 1;
                    if t.origin_span < target.window {
                        let keep = match &target.filter {
                            Some(pred) => {
                                pred.eval_counted(&t, &mut ctx.counters.filter_comparisons)
                            }
                            None => true,
                        };
                        if keep {
                            self.dispatched[port] += 1;
                            ctx.emit(port, t.clone());
                        }
                    }
                }
            }
            StreamItem::Batch(b) => {
                // Row fallback: routing fans one row out to several ports, so
                // each row is dispatched individually (counter-identical to
                // the row path).
                for t in b.materialize() {
                    self.process(0, StreamItem::Tuple(t), ctx);
                }
            }
            StreamItem::Punctuation(p) => {
                for port in 0..self.targets.len() {
                    ctx.emit(port, p);
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;
    use crate::tuple::{StreamId, Tuple};

    fn joined(span_secs: u64, value: i64) -> Tuple {
        let a = Tuple::of_ints(Timestamp::from_secs(10 + span_secs), StreamId::A, &[value]);
        let b = Tuple::of_ints(Timestamp::from_secs(10), StreamId::B, &[0]);
        Tuple::join(&a, &b, StreamId(2))
    }

    #[test]
    fn routes_by_window_constraint() {
        let mut op = RouterOp::new(
            "router",
            vec![
                RouteTarget::window_only(TimeDelta::from_secs(1)),
                RouteTarget::window_only(TimeDelta::from_secs(60)),
            ],
        );
        assert_eq!(op.fanout(), 2);
        let mut ctx = OpContext::new();
        // span 0: both queries; span 30: only the 60s query.
        op.process(0, joined(0, 1).into(), &mut ctx);
        op.process(0, joined(30, 2).into(), &mut ctx);
        let out = ctx.take_outputs();
        assert_eq!(out.len(), 3);
        assert_eq!(op.dispatched_counts(), &[1, 2]);
        // Two results x two targets = four routing comparisons.
        assert_eq!(ctx.counters.route_comparisons, 4);
    }

    #[test]
    fn residual_filter_applies_after_routing() {
        let mut op = RouterOp::new(
            "router",
            vec![RouteTarget::with_filter(
                TimeDelta::from_secs(60),
                Predicate::gt(0, 5i64),
            )],
        );
        let mut ctx = OpContext::new();
        op.process(0, joined(1, 2).into(), &mut ctx);
        op.process(0, joined(1, 9).into(), &mut ctx);
        let out = ctx.take_outputs();
        assert_eq!(out.len(), 1);
        assert_eq!(ctx.counters.filter_comparisons, 2);
        assert_eq!(op.dispatched_counts(), &[1]);
    }

    #[test]
    fn punctuations_broadcast() {
        let mut op = RouterOp::new(
            "router",
            vec![
                RouteTarget::window_only(TimeDelta::from_secs(1)),
                RouteTarget::window_only(TimeDelta::from_secs(2)),
            ],
        );
        let mut ctx = OpContext::new();
        op.process(
            0,
            crate::punctuation::Punctuation::new(Timestamp::from_secs(1)).into(),
            &mut ctx,
        );
        assert_eq!(ctx.take_outputs().len(), 2);
    }
}
