//! Selection (filter) operator.

use std::any::Any;

use crate::columnar::eval_predicate;
use crate::operator::{OpContext, Operator, PortId};
use crate::predicate::Predicate;
use crate::queue::StreamItem;

/// Stateless selection: forwards tuples that satisfy the predicate, drops the
/// rest, and forwards punctuations unchanged.  Predicate comparisons are
/// charged to `filter_comparisons`.
#[derive(Debug)]
pub struct SelectOp {
    name: String,
    predicate: Predicate,
    passed: u64,
    dropped: u64,
}

impl SelectOp {
    /// Build a selection with the given predicate.
    pub fn new(name: impl Into<String>, predicate: Predicate) -> Self {
        SelectOp {
            name: name.into(),
            predicate,
            passed: 0,
            dropped: 0,
        }
    }

    /// Number of tuples that satisfied the predicate so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Number of tuples dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The selection predicate.
    pub fn predicate(&self) -> &Predicate {
        &self.predicate
    }
}

impl Operator for SelectOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, _port: PortId, item: StreamItem, ctx: &mut OpContext) {
        match item {
            StreamItem::Tuple(t) => {
                ctx.counters.tuples_processed += 1;
                if self
                    .predicate
                    .eval_counted(&t, &mut ctx.counters.filter_comparisons)
                {
                    self.passed += 1;
                    ctx.emit(0, t);
                } else {
                    self.dropped += 1;
                }
            }
            StreamItem::Batch(b) => {
                ctx.counters.tuples_processed += b.len() as u64;
                // Columnar selection kernel: one pass over the run, with
                // comparison counts identical to per-row `eval_counted`.
                let passers =
                    eval_predicate(&self.predicate, &b, &mut ctx.counters.filter_comparisons);
                self.passed += passers.len() as u64;
                self.dropped += (b.len() - passers.len()) as u64;
                if passers.len() == b.len() {
                    ctx.emit(0, b);
                } else if !passers.is_empty() {
                    ctx.emit(0, b.gather(&passers));
                }
            }
            p @ StreamItem::Punctuation(_) => ctx.emit(0, p),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::punctuation::Punctuation;
    use crate::time::Timestamp;
    use crate::tuple::{StreamId, Tuple};

    fn tup(v: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(1), StreamId::A, &[v])
    }

    #[test]
    fn filters_tuples_and_counts_comparisons() {
        let mut op = SelectOp::new("sigma_A", Predicate::gt(0, 5i64));
        let mut ctx = OpContext::new();
        op.process(0, tup(9).into(), &mut ctx);
        op.process(0, tup(3).into(), &mut ctx);
        op.process(0, tup(6).into(), &mut ctx);
        let out = ctx.take_outputs();
        assert_eq!(out.len(), 2);
        assert_eq!(op.passed(), 2);
        assert_eq!(op.dropped(), 1);
        assert_eq!(ctx.counters.filter_comparisons, 3);
        assert_eq!(ctx.counters.tuples_processed, 3);
        assert!(op.predicate().eval(&tup(10)));
    }

    #[test]
    fn punctuations_pass_through() {
        let mut op = SelectOp::new("sigma", Predicate::False);
        let mut ctx = OpContext::new();
        op.process(
            0,
            Punctuation::new(Timestamp::from_secs(2)).into(),
            &mut ctx,
        );
        let out = ctx.take_outputs();
        assert_eq!(out.len(), 1);
        assert!(out[0].1.is_punctuation());
        assert_eq!(ctx.counters.filter_comparisons, 0);
    }

    #[test]
    fn name_and_ports() {
        let op = SelectOp::new("s", Predicate::True);
        assert_eq!(op.name(), "s");
        assert_eq!(op.num_input_ports(), 1);
        assert_eq!(op.num_output_ports(), 1);
        assert_eq!(op.state_size(), 0);
    }
}
