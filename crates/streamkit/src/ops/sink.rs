//! Result sinks (the paper's "result receivers").

use std::any::Any;

use crate::operator::{OpContext, Operator, PortId};
use crate::queue::StreamItem;
use crate::time::Timestamp;
use crate::tuple::Tuple;

/// Collects the result tuples of one registered continuous query.
///
/// By default only counts and the last timestamp are kept; `retaining()`
/// additionally stores every tuple, which tests and the equivalence oracle
/// use to compare result sets.
#[derive(Debug)]
pub struct SinkOp {
    name: String,
    count: u64,
    last_ts: Option<Timestamp>,
    out_of_order: u64,
    retain: bool,
    collected: Vec<Tuple>,
}

impl SinkOp {
    /// A counting sink.
    pub fn new(name: impl Into<String>) -> Self {
        SinkOp {
            name: name.into(),
            count: 0,
            last_ts: None,
            out_of_order: 0,
            retain: false,
            collected: Vec::new(),
        }
    }

    /// A sink that also stores every received tuple.
    pub fn retaining(name: impl Into<String>) -> Self {
        let mut s = SinkOp::new(name);
        s.retain = true;
        s
    }

    /// Number of tuples received.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Timestamp of the last received tuple.
    pub fn last_timestamp(&self) -> Option<Timestamp> {
        self.last_ts
    }

    /// Number of tuples that arrived with a timestamp smaller than a
    /// previously received tuple (should be zero for order-preserving plans).
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order
    }

    /// The retained tuples (empty unless built with [`SinkOp::retaining`]).
    pub fn collected(&self) -> &[Tuple] {
        &self.collected
    }

    /// Overwrite the sink's cumulative state with a checkpointed snapshot
    /// (absolute, not additive: crash recovery restores the counts as of
    /// the checkpoint and then replays the post-checkpoint input, which
    /// re-delivers the post-checkpoint results).
    pub fn restore(
        &mut self,
        count: u64,
        last_ts: Option<Timestamp>,
        out_of_order: u64,
        collected: Vec<Tuple>,
    ) {
        self.count = count;
        self.last_ts = last_ts;
        self.out_of_order = out_of_order;
        self.collected = collected;
    }
}

impl Operator for SinkOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_output_ports(&self) -> usize {
        0
    }

    fn process(&mut self, _port: PortId, item: StreamItem, ctx: &mut OpContext) {
        match item {
            StreamItem::Tuple(t) => {
                ctx.counters.tuples_processed += 1;
                self.count += 1;
                if let Some(prev) = self.last_ts {
                    if t.ts < prev {
                        self.out_of_order += 1;
                    }
                }
                if self.last_ts.is_none_or(|prev| t.ts >= prev) {
                    self.last_ts = Some(t.ts);
                }
                if self.retain {
                    self.collected.push(t);
                }
            }
            StreamItem::Batch(b) => {
                // A columnar run is counted without materializing rows; only
                // a retaining sink pays for row tuples.
                ctx.counters.tuples_processed += b.len() as u64;
                self.count += b.len() as u64;
                for i in 0..b.len() {
                    let ts = b.ts_at(i);
                    if let Some(prev) = self.last_ts {
                        if ts < prev {
                            self.out_of_order += 1;
                        }
                    }
                    if self.last_ts.is_none_or(|prev| ts >= prev) {
                        self.last_ts = Some(ts);
                    }
                }
                if self.retain {
                    self.collected.extend(b.materialize());
                }
            }
            StreamItem::Punctuation(_) => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::punctuation::Punctuation;
    use crate::tuple::StreamId;

    fn tup(secs: u64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[0])
    }

    #[test]
    fn counting_sink_tracks_order() {
        let mut op = SinkOp::new("q1");
        let mut ctx = OpContext::new();
        op.process(0, tup(1).into(), &mut ctx);
        op.process(0, tup(3).into(), &mut ctx);
        op.process(0, tup(2).into(), &mut ctx);
        op.process(
            0,
            Punctuation::new(Timestamp::from_secs(9)).into(),
            &mut ctx,
        );
        assert_eq!(op.count(), 3);
        assert_eq!(op.out_of_order(), 1);
        assert_eq!(op.last_timestamp(), Some(Timestamp::from_secs(3)));
        assert!(op.collected().is_empty());
        assert_eq!(op.num_output_ports(), 0);
    }

    #[test]
    fn retaining_sink_stores_tuples() {
        let mut op = SinkOp::retaining("q2");
        let mut ctx = OpContext::new();
        op.process(0, tup(1).into(), &mut ctx);
        op.process(0, tup(2).into(), &mut ctx);
        assert_eq!(op.collected().len(), 2);
        assert_eq!(op.count(), 2);
    }
}
