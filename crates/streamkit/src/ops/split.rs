//! Stream split (partitioning) operator.
//!
//! The selection push-down baseline (Section 3.2 of the paper) partitions
//! input stream A by the selection condition, so disjoint sub-streams feed
//! different join operators.  `SplitOp` has one predicate per output port and
//! routes every tuple to the *first* port whose predicate matches; predicates
//! are expected to be disjoint and exhaustive for a true partition.

use std::any::Any;

use crate::operator::{OpContext, Operator, PortId};
use crate::predicate::Predicate;
use crate::queue::StreamItem;

/// Partition a stream into disjoint sub-streams by predicate.
#[derive(Debug)]
pub struct SplitOp {
    name: String,
    predicates: Vec<Predicate>,
    routed: Vec<u64>,
    unmatched: u64,
}

impl SplitOp {
    /// One predicate per output port.
    pub fn new(name: impl Into<String>, predicates: Vec<Predicate>) -> Self {
        let routed = vec![0; predicates.len()];
        SplitOp {
            name: name.into(),
            predicates,
            routed,
            unmatched: 0,
        }
    }

    /// How many tuples have been routed to each output port.
    pub fn routed_counts(&self) -> &[u64] {
        &self.routed
    }

    /// Tuples that matched no predicate (dropped).
    pub fn unmatched(&self) -> u64 {
        self.unmatched
    }
}

impl Operator for SplitOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_output_ports(&self) -> usize {
        self.predicates.len()
    }

    fn process(&mut self, _port: PortId, item: StreamItem, ctx: &mut OpContext) {
        match item {
            StreamItem::Tuple(t) => {
                ctx.counters.tuples_processed += 1;
                let mut matched = false;
                for (port, pred) in self.predicates.iter().enumerate() {
                    if pred.eval_counted(&t, &mut ctx.counters.split_comparisons) {
                        self.routed[port] += 1;
                        ctx.emit(port, t);
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    self.unmatched += 1;
                }
            }
            StreamItem::Batch(b) => {
                // Row fallback: partitioning routes each row to its own port
                // (counter-identical to the row path).
                for t in b.materialize() {
                    self.process(0, StreamItem::Tuple(t), ctx);
                }
            }
            StreamItem::Punctuation(p) => {
                // Progress information is valid for every partition.
                for port in 0..self.predicates.len() {
                    ctx.emit(port, p);
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::punctuation::Punctuation;
    use crate::time::Timestamp;
    use crate::tuple::{StreamId, Tuple};

    fn tup(v: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(1), StreamId::A, &[v])
    }

    #[test]
    fn partitions_by_first_matching_predicate() {
        let mut op = SplitOp::new(
            "split",
            vec![Predicate::gt(0, 10i64), Predicate::le(0, 10i64)],
        );
        assert_eq!(op.num_output_ports(), 2);
        let mut ctx = OpContext::new();
        op.process(0, tup(20).into(), &mut ctx);
        op.process(0, tup(5).into(), &mut ctx);
        op.process(0, tup(11).into(), &mut ctx);
        let out = ctx.take_outputs();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[1].0, 1);
        assert_eq!(out[2].0, 0);
        assert_eq!(op.routed_counts(), &[2, 1]);
        assert_eq!(op.unmatched(), 0);
        // Matching the first port costs one comparison, the second two.
        assert_eq!(ctx.counters.split_comparisons, 4);
    }

    #[test]
    fn unmatched_tuples_are_dropped() {
        let mut op = SplitOp::new("split", vec![Predicate::gt(0, 100i64)]);
        let mut ctx = OpContext::new();
        op.process(0, tup(1).into(), &mut ctx);
        assert!(ctx.take_outputs().is_empty());
        assert_eq!(op.unmatched(), 1);
    }

    #[test]
    fn punctuations_broadcast_to_all_ports() {
        let mut op = SplitOp::new("split", vec![Predicate::True, Predicate::False]);
        let mut ctx = OpContext::new();
        op.process(
            0,
            Punctuation::new(Timestamp::from_secs(3)).into(),
            &mut ctx,
        );
        let out = ctx.take_outputs();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|(_, i)| i.is_punctuation()));
    }
}
