//! Order-preserving union.
//!
//! The union operator merges the joined results coming from multiple join
//! operators into a single stream ordered by timestamp (the paper cites the
//! Aurora order-preserving union [1]).  Progress is driven by punctuations:
//! a tuple buffered from port `p` may only be released once every port has
//! promised (via a punctuation or a later tuple) not to produce anything
//! older.  The male tuples leaving the last sliced join act as exactly such
//! punctuations (Section 4.3).
//!
//! Because every input port delivers tuples in timestamp order, the operator
//! is a k-way streaming merge: one FIFO buffer per port, one watermark per
//! port, and a release loop that repeatedly emits the globally oldest
//! buffered tuple as long as it is covered by every port's watermark.  Each
//! released tuple costs one merge comparison, matching the paper's union cost
//! model ("a one-time merge sort on timestamps").
//!
//! [1]: Abadi et al., "Aurora: A new model and architecture for data stream
//! management", VLDB Journal 2003.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

use crate::columnar::ColumnBatch;
use crate::operator::{OpContext, Operator, PortId};
use crate::punctuation::Punctuation;
use crate::queue::StreamItem;
use crate::time::Timestamp;
use crate::tuple::Tuple;

/// One buffered result row: a row tuple, or a shared reference to one row of
/// a column batch.  Batch rows stay columnar through the reorder buffer —
/// buffering costs one `(Arc, index)` slot per row instead of a materialized
/// [`Tuple`], and released runs leave as column batches again.
#[derive(Debug)]
enum Slot {
    Row(Tuple),
    Batch { batch: Arc<ColumnBatch>, row: u32 },
}

impl Slot {
    fn ts(&self) -> Timestamp {
        match self {
            Slot::Row(t) => t.ts,
            Slot::Batch { batch, row } => batch.ts_at(*row as usize),
        }
    }
}

/// Order-preserving merge union over `n` input ports.
#[derive(Debug)]
pub struct UnionOp {
    name: String,
    inputs: usize,
    /// Per-port FIFO buffers (each port delivers in timestamp order).
    buffers: Vec<VecDeque<Slot>>,
    /// Monotone per-port progress watermarks.
    watermarks: Vec<Timestamp>,
    /// Last merged watermark forwarded downstream (when enabled).
    emitted_watermark: Timestamp,
    /// Emit punctuations downstream whenever the merged watermark advances.
    forward_punctuations: bool,
    buffered: usize,
    /// Items received on a port this union does not have (and dropped).
    foreign_port_drops: u64,
}

impl UnionOp {
    /// Build a union over `inputs` ports.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is zero: a zero-port union is always a plan
    /// construction bug, and the old behaviour of silently clamping to one
    /// port let such plans pass validation with an input port nothing was
    /// ever supposed to feed.
    pub fn new(name: impl Into<String>, inputs: usize) -> Self {
        assert!(inputs >= 1, "UnionOp requires at least one input port");
        UnionOp {
            name: name.into(),
            inputs,
            buffers: (0..inputs).map(|_| VecDeque::new()).collect(),
            watermarks: vec![Timestamp::ZERO; inputs],
            emitted_watermark: Timestamp::ZERO,
            forward_punctuations: false,
            buffered: 0,
            foreign_port_drops: 0,
        }
    }

    /// Also forward punctuations downstream when the merged watermark grows
    /// (useful when unions feed further unions).
    pub fn forwarding_punctuations(mut self) -> Self {
        self.forward_punctuations = true;
        self
    }

    fn merged_watermark(&self) -> Timestamp {
        self.watermarks
            .iter()
            .copied()
            .min()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Release every buffered tuple whose timestamp is covered by
    /// `watermark`, in global timestamp order (ties: lowest port first).
    ///
    /// Consecutively released batch rows are coalesced into one outgoing
    /// [`ColumnBatch`]; the open output batch is flushed before any
    /// interleaved row tuple, so the emitted *row* order is exactly the
    /// release order either way.
    fn release_up_to(&mut self, watermark: Timestamp, ctx: &mut OpContext) {
        let mut pending: Option<ColumnBatch> = None;
        loop {
            let mut best: Option<(usize, Timestamp)> = None;
            for (port, buf) in self.buffers.iter().enumerate() {
                if let Some(front) = buf.front() {
                    let front_ts = front.ts();
                    match best {
                        Some((_, best_ts)) if best_ts <= front_ts => {}
                        _ => best = Some((port, front_ts)),
                    }
                }
            }
            let Some((port, ts)) = best else { break };
            if ts > watermark {
                break;
            }
            let slot = self.buffers[port].pop_front().expect("front exists");
            self.buffered -= 1;
            // One merge comparison per released tuple (one-time merge sort on
            // timestamps, as in the paper's union cost model).
            ctx.counters.union_comparisons += 1;
            match slot {
                Slot::Row(tuple) => {
                    if let Some(full) = pending.take() {
                        ctx.emit(0, full);
                    }
                    ctx.emit(0, tuple);
                }
                Slot::Batch { batch, row } => {
                    let row = row as usize;
                    let out = pending.get_or_insert_with(ColumnBatch::new);
                    if !out.push_row_from(&batch, row) {
                        // Arity changed between sources: flush and restart.
                        let full = pending.take().expect("just inserted");
                        ctx.emit(0, full);
                        let out = pending.get_or_insert_with(ColumnBatch::new);
                        let ok = out.push_row_from(&batch, row);
                        debug_assert!(ok, "a fresh batch accepts any arity");
                    }
                }
            }
        }
        if let Some(full) = pending.take() {
            ctx.emit(0, full);
        }
    }

    /// Number of tuples currently buffered (waiting for watermarks).
    pub fn buffered_len(&self) -> usize {
        self.buffered
    }

    /// Number of items that arrived on a non-existent port and were dropped
    /// (always zero for plans that pass [`Plan`](crate::plan::Plan)
    /// validation).
    pub fn foreign_port_drops(&self) -> u64 {
        self.foreign_port_drops
    }

    /// Per-port progress watermarks, in port order (checkpoint capture).
    pub fn watermarks(&self) -> &[Timestamp] {
        &self.watermarks
    }

    /// The merged watermark last forwarded downstream.
    pub fn emitted_watermark(&self) -> Timestamp {
        self.emitted_watermark
    }

    /// Restore the punctuation-driven progress state captured at a
    /// checkpoint boundary.  The reorder buffers themselves are always
    /// empty there (the post-run flush released everything), so the
    /// watermarks *are* the union's persistent state.  Returns `false` —
    /// and restores nothing — when the port count does not match.
    pub fn restore_progress(
        &mut self,
        watermarks: Vec<Timestamp>,
        emitted_watermark: Timestamp,
    ) -> bool {
        if watermarks.len() != self.inputs {
            return false;
        }
        self.watermarks = watermarks;
        self.emitted_watermark = emitted_watermark;
        true
    }
}

impl Operator for UnionOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_input_ports(&self) -> usize {
        self.inputs
    }

    fn process(&mut self, port: PortId, item: StreamItem, ctx: &mut OpContext) {
        if port >= self.inputs {
            // A mis-wired plan is feeding a foreign stream into this union.
            // The old behaviour clamped to the last port, which silently
            // merged the stream and corrupted that port's watermark; instead
            // drop the item and surface the event through the counters.
            // (Plan validation rejects such edges, so this can only happen
            // when an operator is driven directly.)
            self.foreign_port_drops += 1;
            ctx.counters.items_dropped += 1;
            return;
        }
        match item {
            StreamItem::Tuple(t) => {
                ctx.counters.tuples_processed += 1;
                // A tuple on an in-order channel is itself a progress promise.
                if t.ts > self.watermarks[port] {
                    self.watermarks[port] = t.ts;
                }
                self.buffers[port].push_back(Slot::Row(t));
                self.buffered += 1;
            }
            StreamItem::Batch(b) => {
                let rows = b.len();
                ctx.counters.tuples_processed += rows as u64;
                let shared = Arc::new(b);
                for row in 0..rows {
                    let ts = shared.ts_at(row);
                    if ts > self.watermarks[port] {
                        self.watermarks[port] = ts;
                    }
                    self.buffers[port].push_back(Slot::Batch {
                        batch: Arc::clone(&shared),
                        row: row as u32,
                    });
                }
                self.buffered += rows;
            }
            StreamItem::Punctuation(p) => {
                if p.watermark > self.watermarks[port] {
                    self.watermarks[port] = p.watermark;
                }
            }
        }
        let wm = self.merged_watermark();
        if wm > self.emitted_watermark {
            self.emitted_watermark = wm;
            self.release_up_to(wm, ctx);
            if self.forward_punctuations {
                ctx.emit(0, Punctuation::new(wm));
            }
        } else if self.buffered > 0 {
            // Even without watermark progress, tuples at or below the current
            // merged watermark (e.g. arriving late on a lagging port) can be
            // released immediately.
            self.release_up_to(self.emitted_watermark, ctx);
        }
    }

    /// Bulk reorder-buffer insert: append the whole run (one port, timestamp
    /// order) and advance the port watermark to the run maximum, then do a
    /// single release pass — one watermark merge and one release scan per
    /// run instead of one per item.  Equivalent to item-at-a-time processing
    /// up to equal-timestamp ties: the released multiset depends only on the
    /// final buffer contents and merged watermark, and the release order is
    /// globally timestamp-sorted either way, but when a run tuple ties with
    /// a tuple already buffered from another port, the single release pass
    /// may order the tie differently than interleaved per-item releases
    /// would (both orders are valid timestamp orders; downstream ordering
    /// guarantees are by timestamp only).  In punctuation-forwarding mode,
    /// one merged punctuation summarises the run's progress (progress
    /// promises are monotone, so coarser is safe).
    fn process_batch(&mut self, port: PortId, items: &mut Vec<StreamItem>, ctx: &mut OpContext) {
        if port >= self.inputs {
            let dropped = items.len() as u64;
            items.clear();
            self.foreign_port_drops += dropped;
            ctx.counters.items_dropped += dropped;
            return;
        }
        let mut port_wm = self.watermarks[port];
        let buffer = &mut self.buffers[port];
        let mut inserted = 0usize;
        for item in items.drain(..) {
            match item {
                StreamItem::Tuple(t) => {
                    ctx.counters.tuples_processed += 1;
                    if t.ts > port_wm {
                        port_wm = t.ts;
                    }
                    buffer.push_back(Slot::Row(t));
                    inserted += 1;
                }
                StreamItem::Batch(b) => {
                    let rows = b.len();
                    ctx.counters.tuples_processed += rows as u64;
                    let shared = Arc::new(b);
                    for row in 0..rows {
                        let ts = shared.ts_at(row);
                        if ts > port_wm {
                            port_wm = ts;
                        }
                        buffer.push_back(Slot::Batch {
                            batch: Arc::clone(&shared),
                            row: row as u32,
                        });
                    }
                    inserted += rows;
                }
                StreamItem::Punctuation(p) => {
                    if p.watermark > port_wm {
                        port_wm = p.watermark;
                    }
                }
            }
        }
        self.buffered += inserted;
        self.watermarks[port] = port_wm;
        let wm = self.merged_watermark();
        if wm > self.emitted_watermark {
            self.emitted_watermark = wm;
            self.release_up_to(wm, ctx);
            if self.forward_punctuations {
                ctx.emit(0, Punctuation::new(wm));
            }
        } else if self.buffered > 0 {
            // Late items at or below the already-emitted watermark are
            // releasable immediately (see `process`).
            self.release_up_to(self.emitted_watermark, ctx);
        }
    }

    fn flush(&mut self, ctx: &mut OpContext) {
        self.release_up_to(Timestamp::MAX, ctx);
        if self.forward_punctuations {
            ctx.emit(0, Punctuation::end_of_stream());
        }
    }

    fn state_size(&self) -> usize {
        self.buffered
    }

    fn is_transient_buffer(&self) -> bool {
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::StreamId;

    fn tup(secs: u64, v: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[v])
    }

    fn collect_ts(out: Vec<(PortId, StreamItem)>) -> Vec<u64> {
        out.into_iter()
            .filter_map(|(_, i)| i.into_tuple())
            .map(|t| t.ts.as_micros() / 1_000_000)
            .collect()
    }

    #[test]
    fn merges_two_ports_in_timestamp_order() {
        let mut op = UnionOp::new("union", 2);
        let mut ctx = OpContext::new();
        op.process(0, tup(1, 0).into(), &mut ctx);
        op.process(0, tup(5, 0).into(), &mut ctx);
        // Port 1 has produced nothing yet, so nothing can be released.
        assert!(collect_ts(ctx.take_outputs()).is_empty());
        assert_eq!(op.buffered_len(), 2);
        // Progress on port 1 releases everything up to the merged watermark.
        op.process(1, tup(3, 0).into(), &mut ctx);
        assert_eq!(collect_ts(ctx.take_outputs()), vec![1, 3]);
        // A punctuation on port 0 alone does not advance the merged watermark
        // past port 1's progress.
        op.process(
            0,
            Punctuation::new(Timestamp::from_secs(10)).into(),
            &mut ctx,
        );
        assert!(collect_ts(ctx.take_outputs()).is_empty());
        op.process(
            1,
            Punctuation::new(Timestamp::from_secs(10)).into(),
            &mut ctx,
        );
        assert_eq!(collect_ts(ctx.take_outputs()), vec![5]);
        assert_eq!(op.state_size(), 0);
        assert!(op.is_transient_buffer());
    }

    #[test]
    fn flush_releases_everything_in_order() {
        let mut op = UnionOp::new("union", 3);
        let mut ctx = OpContext::new();
        op.process(0, tup(7, 0).into(), &mut ctx);
        op.process(1, tup(2, 0).into(), &mut ctx);
        op.process(2, tup(4, 0).into(), &mut ctx);
        let _ = ctx.take_outputs();
        op.flush(&mut ctx);
        let remaining = collect_ts(ctx.take_outputs());
        let mut sorted = remaining.clone();
        sorted.sort_unstable();
        assert_eq!(remaining, sorted);
        assert_eq!(op.buffered_len(), 0);
    }

    #[test]
    fn counts_one_union_comparison_per_released_tuple() {
        let mut op = UnionOp::new("union", 1);
        let mut ctx = OpContext::new();
        op.process(0, tup(1, 0).into(), &mut ctx);
        op.process(0, tup(2, 0).into(), &mut ctx);
        op.process(0, tup(3, 0).into(), &mut ctx);
        op.flush(&mut ctx);
        let out = ctx.take_outputs();
        let tuples: Vec<_> = out.iter().filter(|(_, i)| !i.is_punctuation()).collect();
        assert_eq!(tuples.len(), 3);
        assert_eq!(ctx.counters.union_comparisons, 3);
    }

    #[test]
    fn forwarding_punctuations_emits_watermarks() {
        let mut op = UnionOp::new("union", 1).forwarding_punctuations();
        let mut ctx = OpContext::new();
        op.process(0, tup(2, 0).into(), &mut ctx);
        let out = ctx.take_outputs();
        assert!(out.iter().any(|(_, i)| i.is_punctuation()));
        op.flush(&mut ctx);
        let out = ctx.take_outputs();
        assert!(out
            .iter()
            .any(|(_, i)| matches!(i, StreamItem::Punctuation(p) if p.is_end_of_stream())));
    }

    #[test]
    fn equal_timestamps_preserve_arrival_order() {
        let mut op = UnionOp::new("union", 1);
        let mut ctx = OpContext::new();
        op.process(0, tup(1, 10).into(), &mut ctx);
        op.process(0, tup(1, 20).into(), &mut ctx);
        op.flush(&mut ctx);
        let vals: Vec<i64> = ctx
            .take_outputs()
            .into_iter()
            .filter_map(|(_, i)| i.into_tuple())
            .map(|t| t.value(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![10, 20]);
    }

    #[test]
    fn late_tuples_below_the_watermark_are_released_immediately() {
        let mut op = UnionOp::new("union", 2);
        let mut ctx = OpContext::new();
        // Both ports have promised progress up to ts 10.
        op.process(
            0,
            Punctuation::new(Timestamp::from_secs(10)).into(),
            &mut ctx,
        );
        op.process(
            1,
            Punctuation::new(Timestamp::from_secs(10)).into(),
            &mut ctx,
        );
        // A tuple at ts 4 on port 0 is already covered by the merged
        // watermark and must not wait for further progress.
        op.process(0, tup(4, 0).into(), &mut ctx);
        assert_eq!(collect_ts(ctx.take_outputs()), vec![4]);
        assert_eq!(op.buffered_len(), 0);
    }

    #[test]
    fn single_input_union_is_a_pass_through_after_flush() {
        let mut op = UnionOp::new("union", 1);
        assert_eq!(op.num_input_ports(), 1);
        let mut ctx = OpContext::new();
        for s in [3u64, 4, 9] {
            op.process(0, tup(s, 0).into(), &mut ctx);
        }
        op.flush(&mut ctx);
        assert_eq!(collect_ts(ctx.take_outputs()), vec![3, 4, 9]);
    }

    #[test]
    #[should_panic(expected = "at least one input port")]
    fn zero_input_union_is_rejected() {
        let _ = UnionOp::new("union", 0);
    }

    #[test]
    fn batches_merge_with_rows_and_recoalesce_on_release() {
        let mut op = UnionOp::new("union", 2);
        let mut ctx = OpContext::new();
        // Port 0 delivers a 3-row batch; port 1 delivers plain rows that
        // interleave with the batch rows by timestamp.
        let batch = ColumnBatch::from_tuples(&[tup(1, 10), tup(3, 30), tup(5, 50)]).unwrap();
        op.process(0, StreamItem::Batch(batch), &mut ctx);
        assert!(collect_ts(ctx.take_outputs()).is_empty());
        assert_eq!(op.buffered_len(), 3);
        op.process(1, tup(2, 20).into(), &mut ctx);
        op.process(1, tup(4, 40).into(), &mut ctx);
        op.process(
            0,
            Punctuation::new(Timestamp::from_secs(9)).into(),
            &mut ctx,
        );
        op.process(
            1,
            Punctuation::new(Timestamp::from_secs(9)).into(),
            &mut ctx,
        );
        op.flush(&mut ctx);
        // Rows leave in global timestamp order; runs of batch rows leave as
        // re-coalesced batches, interleaved rows as tuples.
        let mut vals = Vec::new();
        for (_, item) in ctx.take_outputs() {
            match item {
                StreamItem::Tuple(t) => vals.push(t.value(0).unwrap().as_int().unwrap()),
                StreamItem::Batch(b) => {
                    for t in b.materialize() {
                        vals.push(t.value(0).unwrap().as_int().unwrap());
                    }
                }
                StreamItem::Punctuation(_) => {}
            }
        }
        assert_eq!(vals, vec![10, 20, 30, 40, 50]);
        // One merge comparison per released row, batch rows included.
        assert_eq!(ctx.counters.union_comparisons, 5);
        assert_eq!(op.buffered_len(), 0);
    }

    #[test]
    fn out_of_range_ports_are_dropped_not_clamped() {
        let mut op = UnionOp::new("union", 2);
        let mut ctx = OpContext::new();
        op.process(0, tup(1, 0).into(), &mut ctx);
        // A foreign stream mis-wired into port 7 must not be merged into the
        // last port (the old clamp corrupted port 1's watermark, releasing
        // the port-0 tuple prematurely and merging the foreign tuple).
        op.process(7, tup(9, 42).into(), &mut ctx);
        op.process(
            7,
            Punctuation::new(Timestamp::from_secs(50)).into(),
            &mut ctx,
        );
        assert!(collect_ts(ctx.take_outputs()).is_empty());
        assert_eq!(op.foreign_port_drops(), 2);
        assert_eq!(ctx.counters.items_dropped, 2);
        assert_eq!(op.buffered_len(), 1);
        // Port 1's watermark is untouched: only genuine progress on port 1
        // releases the buffered tuple (up to the merged watermark of 1).
        op.process(1, tup(3, 0).into(), &mut ctx);
        assert_eq!(collect_ts(ctx.take_outputs()), vec![1]);
    }
}
