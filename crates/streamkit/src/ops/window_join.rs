//! Regular (un-sliced) sliding-window joins.
//!
//! [`WindowJoinOp`] is the classic binary sliding-window join of Figure 1 in
//! the paper: on each arrival it cross-purges the opposite window state,
//! probes it, and inserts the new tuple into its own state.  It is both the
//! building block of the baseline sharing strategies (Section 3) and the
//! reference oracle the state-sliced chain is verified against (Theorems 1–2).
//!
//! [`OneWayWindowJoinOp`] is the asymmetric variant `A[W] ⋉ B` where only
//! stream A keeps state (Section 4.1).

use std::any::Any;

use crate::join_state::{equi_key_fields, memoize_key, JoinState};
use crate::operator::{OpContext, Operator, PortId};
use crate::predicate::JoinCondition;
use crate::punctuation::Punctuation;
use crate::queue::StreamItem;
use crate::time::Timestamp;
use crate::tuple::{StreamId, Tuple};
use crate::window::WindowSpec;

/// Stream id assigned to joined result tuples.
pub const JOINED_STREAM: StreamId = StreamId(100);

/// Binary sliding-window join `A[W_A] ⋈ B[W_B]`.
///
/// * input port 0: stream A, input port 1: stream B
/// * output port 0: joined results (followed by a punctuation per probe when
///   punctuation emission is enabled)
#[derive(Debug)]
pub struct WindowJoinOp {
    name: String,
    window_a: WindowSpec,
    window_b: WindowSpec,
    condition: JoinCondition,
    state_a: JoinState,
    state_b: JoinState,
    peak_state: usize,
    results: u64,
    emit_punctuations: bool,
}

impl WindowJoinOp {
    /// Build a join with per-stream windows and a join condition.
    pub fn new(
        name: impl Into<String>,
        window_a: WindowSpec,
        window_b: WindowSpec,
        condition: JoinCondition,
    ) -> Self {
        // State A stores tuples that appear on the *left* of condition
        // evaluations, state B on the right; each gets a hash index when the
        // condition has an equi component.
        let state_a = JoinState::for_condition(&condition, true);
        let state_b = JoinState::for_condition(&condition, false);
        WindowJoinOp {
            name: name.into(),
            window_a,
            window_b,
            condition,
            state_a,
            state_b,
            peak_state: 0,
            results: 0,
            emit_punctuations: false,
        }
    }

    /// Symmetric window on both inputs.
    pub fn symmetric(
        name: impl Into<String>,
        window: WindowSpec,
        condition: JoinCondition,
    ) -> Self {
        WindowJoinOp::new(name, window, window, condition)
    }

    /// Emit a punctuation on the result port after every probe, so that a
    /// downstream order-preserving union can make progress.
    pub fn with_punctuations(mut self) -> Self {
        self.emit_punctuations = true;
        self
    }

    /// Disable the equi-join hash index and probe by linear scan, the
    /// pre-index behaviour.  Benchmark/testing aid; call before processing
    /// any tuples.
    pub fn without_index(mut self) -> Self {
        debug_assert!(self.state_a.is_empty() && self.state_b.is_empty());
        self.state_a = JoinState::linear();
        self.state_b = JoinState::linear();
        self
    }

    /// Number of joined results produced so far.
    pub fn results(&self) -> u64 {
        self.results
    }

    /// Current state size of the A window, in tuples.
    pub fn state_a_len(&self) -> usize {
        self.state_a.len()
    }

    /// Current state size of the B window, in tuples.
    pub fn state_b_len(&self) -> usize {
        self.state_b.len()
    }

    /// Peak combined state size, in tuples.
    pub fn peak_state(&self) -> usize {
        self.peak_state
    }

    fn track_peak(&mut self) {
        let total = self.state_a.len() + self.state_b.len();
        if total > self.peak_state {
            self.peak_state = total;
        }
    }

    /// Purge expired tuples from the opposite state; each scanned tuple
    /// costs one timestamp comparison (see [`JoinState::purge_expired`]).
    fn cross_purge(
        state: &mut JoinState,
        window: WindowSpec,
        arrival: &Tuple,
        ctx: &mut OpContext,
    ) {
        let comparisons = state.purge_expired(|front| window.expired(arrival.ts, front.ts), |_| {});
        ctx.counters.purge_comparisons += comparisons;
    }

    /// Full window-validity check for a candidate pair `(a, b)`: the pair
    /// joins iff `Tb - Ta < W_A` or `Ta - Tb < W_B` (Section 2 of the paper).
    /// Checking both sides makes the operator robust to operators upstream
    /// delaying one stream by a few scheduling steps.
    fn pair_in_window(
        window_a: WindowSpec,
        window_b: WindowSpec,
        a_ts: crate::time::Timestamp,
        b_ts: crate::time::Timestamp,
    ) -> bool {
        if b_ts >= a_ts {
            window_a.contains(b_ts, a_ts)
        } else {
            window_b.contains(a_ts, b_ts)
        }
    }

    /// The equi-key field of tuples arriving on `port` (both their probe key
    /// against the opposite state and their stored key in their own state —
    /// the same field on the same side of the condition), or `None` when the
    /// condition has no equi component.
    fn key_field(&self, port: PortId) -> Option<usize> {
        let (left, right) = equi_key_fields(&self.condition, true)?;
        Some(if port == 0 { left } else { right })
    }

    /// Probe the opposite state with an arrival.  For equi conditions the
    /// state's hash index narrows the scan to the arrival's key bucket, so
    /// the comparisons counted here scale with the matches produced rather
    /// than with the state size.
    #[allow(clippy::too_many_arguments)]
    fn probe(
        state: &JoinState,
        arrival: &Tuple,
        condition: &JoinCondition,
        arrival_is_left: bool,
        window_a: WindowSpec,
        window_b: WindowSpec,
        ctx: &mut OpContext,
        results: &mut u64,
        emit: &mut Vec<Tuple>,
    ) {
        for stored in state.probe_candidates(arrival) {
            let (a_ts, b_ts) = if arrival_is_left {
                (arrival.ts, stored.ts)
            } else {
                (stored.ts, arrival.ts)
            };
            if !Self::pair_in_window(window_a, window_b, a_ts, b_ts) {
                continue;
            }
            let matched = if arrival_is_left {
                condition.eval_counted(arrival, stored, &mut ctx.counters.probe_comparisons)
            } else {
                condition.eval_counted(stored, arrival, &mut ctx.counters.probe_comparisons)
            };
            if matched {
                *results += 1;
                let joined = if arrival_is_left {
                    Tuple::join(arrival, stored, JOINED_STREAM)
                } else {
                    Tuple::join(stored, arrival, JOINED_STREAM)
                };
                emit.push(joined);
            }
        }
    }
}

impl Operator for WindowJoinOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_input_ports(&self) -> usize {
        2
    }

    fn process(&mut self, port: PortId, item: StreamItem, ctx: &mut OpContext) {
        let tuple = match item {
            StreamItem::Tuple(t) => t,
            StreamItem::Batch(b) => {
                // Row fallback: terminal joins are not on the columnar path.
                for t in b.materialize() {
                    self.process(port, StreamItem::Tuple(t), ctx);
                }
                return;
            }
            StreamItem::Punctuation(p) => {
                // Progress markers just pass through to the result port.
                ctx.emit(0, p);
                return;
            }
        };
        ctx.counters.tuples_processed += 1;
        let mut out = Vec::new();
        if port == 0 {
            // New A tuple: purge + probe B state, then insert into A state.
            Self::cross_purge(&mut self.state_b, self.window_b, &tuple, ctx);
            Self::probe(
                &self.state_b,
                &tuple,
                &self.condition,
                true,
                self.window_a,
                self.window_b,
                ctx,
                &mut self.results,
                &mut out,
            );
            self.state_a.push(tuple.clone());
        } else {
            // New B tuple: purge + probe A state, then insert into B state.
            Self::cross_purge(&mut self.state_a, self.window_a, &tuple, ctx);
            Self::probe(
                &self.state_a,
                &tuple,
                &self.condition,
                false,
                self.window_a,
                self.window_b,
                ctx,
                &mut self.results,
                &mut out,
            );
            self.state_b.push(tuple.clone());
        }
        self.track_peak();
        for joined in out {
            ctx.emit(0, joined);
        }
        if self.emit_punctuations {
            ctx.emit(0, Punctuation::from_stream(tuple.ts, tuple.stream));
        }
    }

    /// Batch path: per-tuple probes against the opposite state, then **one
    /// cross-purge per run** at the run-maximum timestamp instead of one per
    /// tuple.
    ///
    /// Deferring the purge is result-identical because every probe re-checks
    /// window validity per candidate ([`WindowJoinOp::pair_in_window`]) —
    /// expired-but-unpurged candidates are filtered before the condition is
    /// evaluated, so `probe_comparisons` is unchanged too — and purging is
    /// monotone in the probe timestamp, so one purge at the run maximum
    /// leaves exactly the state that per-tuple purging would.  (Transient
    /// `peak_state` may read slightly higher: expired tuples linger until the
    /// end of the run.)
    fn process_batch(&mut self, port: PortId, items: &mut Vec<StreamItem>, ctx: &mut OpContext) {
        let mut max_ts: Option<Timestamp> = None;
        let key_field = self.key_field(port);
        let mut out = Vec::new();
        for item in items.drain(..) {
            let mut tuple = match item {
                StreamItem::Tuple(t) => t,
                StreamItem::Batch(b) => {
                    // Row fallback (see `process`); purges per row, which is
                    // the row path's own (equivalent) schedule.
                    for t in b.materialize() {
                        self.process(port, StreamItem::Tuple(t), ctx);
                    }
                    continue;
                }
                StreamItem::Punctuation(p) => {
                    ctx.emit(0, p);
                    continue;
                }
            };
            ctx.counters.tuples_processed += 1;
            // One canonical key hash per tuple, shared by the probe below and
            // the insert into this side's state.
            if let Some(field) = key_field {
                memoize_key(&mut tuple, field);
            }
            max_ts = Some(tuple.ts); // runs are timestamp-ordered
            let (opposite, own, arrival_is_left) = if port == 0 {
                (&self.state_b, &mut self.state_a, true)
            } else {
                (&self.state_a, &mut self.state_b, false)
            };
            Self::probe(
                opposite,
                &tuple,
                &self.condition,
                arrival_is_left,
                self.window_a,
                self.window_b,
                ctx,
                &mut self.results,
                &mut out,
            );
            let (ts, stream) = (tuple.ts, tuple.stream);
            own.push(tuple);
            for joined in out.drain(..) {
                ctx.emit(0, joined);
            }
            if self.emit_punctuations {
                ctx.emit(0, Punctuation::from_stream(ts, stream));
            }
        }
        self.track_peak();
        if let Some(ts) = max_ts {
            let (opposite, window) = if port == 0 {
                (&mut self.state_b, self.window_b)
            } else {
                (&mut self.state_a, self.window_a)
            };
            let comparisons = opposite.purge_expired(|front| window.expired(ts, front.ts), |_| {});
            ctx.counters.purge_comparisons += comparisons;
        }
    }

    fn state_size(&self) -> usize {
        self.state_a.len() + self.state_b.len()
    }

    fn state_bytes(&self) -> usize {
        self.state_a.live_bytes() + self.state_b.live_bytes()
    }

    fn state_capacity_bytes(&self) -> usize {
        self.state_a.capacity_bytes() + self.state_b.capacity_bytes()
    }

    fn drain_window_states(&mut self) -> Option<(Vec<Tuple>, Vec<Tuple>)> {
        Some((self.state_a.drain_ordered(), self.state_b.drain_ordered()))
    }

    fn load_window_states(&mut self, side_a: Vec<Tuple>, side_b: Vec<Tuple>) {
        self.state_a.load_ordered(side_a);
        self.state_b.load_ordered(side_b);
        self.track_peak();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// One-way sliding-window join `A[W] ⋉ B`: only stream A keeps state, only B
/// tuples probe.
///
/// * input port 0: stream A (inserted into the window state)
/// * input port 1: stream B (purges and probes the A state)
/// * output port 0: joined results
#[derive(Debug)]
pub struct OneWayWindowJoinOp {
    name: String,
    window: WindowSpec,
    condition: JoinCondition,
    state_a: JoinState,
    peak_state: usize,
    results: u64,
}

impl OneWayWindowJoinOp {
    /// Build a one-way join with the given window on stream A.
    pub fn new(name: impl Into<String>, window: WindowSpec, condition: JoinCondition) -> Self {
        // Stored A tuples are the left side of every condition evaluation.
        let state_a = JoinState::for_condition(&condition, true);
        OneWayWindowJoinOp {
            name: name.into(),
            window,
            condition,
            state_a,
            peak_state: 0,
            results: 0,
        }
    }

    /// Disable the equi-join hash index (linear-scan probes); benchmark and
    /// testing aid, call before processing any tuples.
    pub fn without_index(mut self) -> Self {
        debug_assert!(self.state_a.is_empty());
        self.state_a = JoinState::linear();
        self
    }

    /// Number of joined results produced so far.
    pub fn results(&self) -> u64 {
        self.results
    }

    /// Current A-state size in tuples.
    pub fn state_len(&self) -> usize {
        self.state_a.len()
    }

    /// Peak A-state size in tuples.
    pub fn peak_state(&self) -> usize {
        self.peak_state
    }
}

impl Operator for OneWayWindowJoinOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_input_ports(&self) -> usize {
        2
    }

    fn process(&mut self, port: PortId, item: StreamItem, ctx: &mut OpContext) {
        let tuple = match item {
            StreamItem::Tuple(t) => t,
            StreamItem::Batch(b) => {
                // Row fallback: terminal joins are not on the columnar path.
                for t in b.materialize() {
                    self.process(port, StreamItem::Tuple(t), ctx);
                }
                return;
            }
            StreamItem::Punctuation(p) => {
                ctx.emit(0, p);
                return;
            }
        };
        ctx.counters.tuples_processed += 1;
        if port == 0 {
            // Stream A: insert only.
            self.state_a.push(tuple);
            self.peak_state = self.peak_state.max(self.state_a.len());
            return;
        }
        // Stream B: cross-purge then probe.
        let window = self.window;
        let comparisons = self
            .state_a
            .purge_expired(|front| window.expired(tuple.ts, front.ts), |_| {});
        ctx.counters.purge_comparisons += comparisons;
        for stored in self.state_a.probe_candidates(&tuple) {
            // One-way semantics: only pairs where the stored A tuple is not
            // newer than the probing B tuple and still inside the window —
            // exactly `contains`, which is false for newer stored tuples.
            if !self.window.contains(tuple.ts, stored.ts) {
                continue;
            }
            if self
                .condition
                .eval_counted(stored, &tuple, &mut ctx.counters.probe_comparisons)
            {
                self.results += 1;
                ctx.emit(0, Tuple::join(stored, &tuple, JOINED_STREAM));
            }
        }
    }

    /// Batch path: stream-A runs are a tight insert loop; stream-B runs probe
    /// per tuple and cross-purge **once per run** at the run-maximum
    /// timestamp.  Identical results and probe counts for the same reason as
    /// [`WindowJoinOp::process_batch`]: the probe's `contains` check filters
    /// expired candidates before the condition is evaluated, and purging is
    /// monotone in the probe timestamp.
    fn process_batch(&mut self, port: PortId, items: &mut Vec<StreamItem>, ctx: &mut OpContext) {
        let key_fields = equi_key_fields(&self.condition, true);
        if port == 0 {
            for item in items.drain(..) {
                match item {
                    StreamItem::Tuple(mut t) => {
                        ctx.counters.tuples_processed += 1;
                        if let Some((stored_field, _)) = key_fields {
                            memoize_key(&mut t, stored_field);
                        }
                        self.state_a.push(t);
                    }
                    StreamItem::Batch(b) => {
                        for t in b.materialize() {
                            self.process(port, StreamItem::Tuple(t), ctx);
                        }
                    }
                    StreamItem::Punctuation(p) => ctx.emit(0, p),
                }
            }
            self.peak_state = self.peak_state.max(self.state_a.len());
            return;
        }
        let mut max_ts: Option<Timestamp> = None;
        for item in items.drain(..) {
            let mut tuple = match item {
                StreamItem::Tuple(t) => t,
                StreamItem::Batch(b) => {
                    for t in b.materialize() {
                        self.process(port, StreamItem::Tuple(t), ctx);
                    }
                    continue;
                }
                StreamItem::Punctuation(p) => {
                    ctx.emit(0, p);
                    continue;
                }
            };
            ctx.counters.tuples_processed += 1;
            if let Some((_, probe_field)) = key_fields {
                memoize_key(&mut tuple, probe_field);
            }
            max_ts = Some(tuple.ts); // runs are timestamp-ordered
            for stored in self.state_a.probe_candidates(&tuple) {
                if !self.window.contains(tuple.ts, stored.ts) {
                    continue;
                }
                if self
                    .condition
                    .eval_counted(stored, &tuple, &mut ctx.counters.probe_comparisons)
                {
                    self.results += 1;
                    ctx.emit(0, Tuple::join(stored, &tuple, JOINED_STREAM));
                }
            }
        }
        if let Some(ts) = max_ts {
            let window = self.window;
            let comparisons = self
                .state_a
                .purge_expired(|front| window.expired(ts, front.ts), |_| {});
            ctx.counters.purge_comparisons += comparisons;
        }
    }

    fn state_size(&self) -> usize {
        self.state_a.len()
    }

    fn state_bytes(&self) -> usize {
        self.state_a.live_bytes()
    }

    fn state_capacity_bytes(&self) -> usize {
        self.state_a.capacity_bytes()
    }

    fn drain_window_states(&mut self) -> Option<(Vec<Tuple>, Vec<Tuple>)> {
        Some((self.state_a.drain_ordered(), Vec::new()))
    }

    fn load_window_states(&mut self, side_a: Vec<Tuple>, side_b: Vec<Tuple>) {
        debug_assert!(side_b.is_empty(), "one-way join keeps no B state");
        self.state_a.load_ordered(side_a);
        self.peak_state = self.peak_state.max(self.state_a.len());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn a(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[key])
    }

    fn b(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::B, &[key])
    }

    fn joined_pairs(ctx: &mut OpContext) -> Vec<(u64, u64)> {
        ctx.take_outputs()
            .into_iter()
            .filter_map(|(_, i)| i.into_tuple())
            .filter(|t| t.stream == JOINED_STREAM)
            .map(|t| {
                (
                    t.ts.as_micros() / 1_000_000,
                    t.origin_span.as_micros() / 1_000_000,
                )
            })
            .collect()
    }

    #[test]
    fn binary_join_respects_windows_and_purges() {
        let mut op =
            WindowJoinOp::symmetric("join", WindowSpec::from_secs(10), JoinCondition::equi(0));
        let mut ctx = OpContext::new();
        op.process(0, a(1, 7).into(), &mut ctx);
        op.process(0, a(5, 7).into(), &mut ctx);
        op.process(1, b(12, 7).into(), &mut ctx);
        // a@1 is expired (12-1 >= 10); only a@5 joins.
        let pairs = joined_pairs(&mut ctx);
        assert_eq!(pairs, vec![(12, 7)]);
        assert_eq!(op.state_a_len(), 1);
        assert_eq!(op.state_b_len(), 1);
        assert_eq!(op.results(), 1);
        assert!(op.peak_state() >= 2);
        assert!(ctx.counters.probe_comparisons >= 1);
        assert!(ctx.counters.purge_comparisons >= 1);
    }

    #[test]
    fn binary_join_is_symmetric_in_probe_direction() {
        let mut op =
            WindowJoinOp::symmetric("join", WindowSpec::from_secs(100), JoinCondition::equi(0));
        let mut ctx = OpContext::new();
        op.process(1, b(1, 3).into(), &mut ctx);
        op.process(0, a(2, 3).into(), &mut ctx);
        let pairs = joined_pairs(&mut ctx);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, 2); // ts = max(1, 2)
        assert_eq!(pairs[0].1, 1); // |2 - 1|
    }

    #[test]
    fn asymmetric_windows_purge_independently() {
        // A keeps 2s of tuples, B keeps 100s.
        let mut op = WindowJoinOp::new(
            "join",
            WindowSpec::from_secs(2),
            WindowSpec::from_secs(100),
            JoinCondition::Cross,
        );
        let mut ctx = OpContext::new();
        op.process(0, a(1, 0).into(), &mut ctx);
        op.process(0, a(2, 0).into(), &mut ctx);
        op.process(1, b(5, 0).into(), &mut ctx);
        // Window A = 2s: both a@1 (diff 4) and a@2 (diff 3) are expired.
        assert_eq!(joined_pairs(&mut ctx).len(), 0);
        assert_eq!(op.state_a_len(), 0);
    }

    #[test]
    fn join_condition_filters_pairs() {
        let mut op =
            WindowJoinOp::symmetric("join", WindowSpec::from_secs(100), JoinCondition::equi(0));
        let mut ctx = OpContext::new();
        op.process(0, a(1, 1).into(), &mut ctx);
        op.process(0, a(2, 2).into(), &mut ctx);
        op.process(1, b(3, 2).into(), &mut ctx);
        assert_eq!(joined_pairs(&mut ctx).len(), 1);
        // The hash index narrows the probe to the key-2 bucket: one
        // comparison instead of one per stored tuple.
        assert_eq!(ctx.counters.probe_comparisons, 1);
    }

    #[test]
    fn indexed_probe_comparisons_scale_with_matches_not_state() {
        // 100 stored A tuples, only 2 share the probing key: an indexed probe
        // costs 2 comparisons where the old linear scan cost 100.
        let mut op =
            WindowJoinOp::symmetric("join", WindowSpec::from_secs(1000), JoinCondition::equi(0));
        let mut ctx = OpContext::new();
        for i in 0..100u64 {
            let key = if i % 50 == 0 { 7 } else { i as i64 + 100 };
            op.process(0, a(i + 1, key).into(), &mut ctx);
        }
        ctx.counters.probe_comparisons = 0;
        op.process(1, b(200, 7).into(), &mut ctx);
        assert_eq!(joined_pairs(&mut ctx).len(), 2);
        assert_eq!(ctx.counters.probe_comparisons, 2);
    }

    #[test]
    fn without_index_restores_linear_scan_costs() {
        let mut op =
            WindowJoinOp::symmetric("join", WindowSpec::from_secs(1000), JoinCondition::equi(0))
                .without_index();
        let mut ctx = OpContext::new();
        for i in 0..10u64 {
            op.process(0, a(i + 1, i as i64).into(), &mut ctx);
        }
        ctx.counters.probe_comparisons = 0;
        op.process(1, b(100, 3).into(), &mut ctx);
        // Linear mode evaluates the condition against all 10 stored tuples.
        assert_eq!(ctx.counters.probe_comparisons, 10);
        assert_eq!(joined_pairs(&mut ctx).len(), 1);
    }

    #[test]
    fn punctuation_mode_emits_progress_after_each_probe() {
        let mut op =
            WindowJoinOp::symmetric("join", WindowSpec::from_secs(10), JoinCondition::Cross)
                .with_punctuations();
        let mut ctx = OpContext::new();
        op.process(0, a(1, 0).into(), &mut ctx);
        let out = ctx.take_outputs();
        assert!(out.iter().any(|(_, i)| i.is_punctuation()));
    }

    #[test]
    fn punctuations_pass_through_join() {
        let mut op =
            WindowJoinOp::symmetric("join", WindowSpec::from_secs(10), JoinCondition::Cross);
        let mut ctx = OpContext::new();
        op.process(
            0,
            Punctuation::new(Timestamp::from_secs(1)).into(),
            &mut ctx,
        );
        assert!(ctx.take_outputs()[0].1.is_punctuation());
    }

    #[test]
    fn one_way_join_only_keeps_a_state() {
        let mut op =
            OneWayWindowJoinOp::new("oneway", WindowSpec::from_secs(4), JoinCondition::Cross);
        assert_eq!(op.num_input_ports(), 2);
        let mut ctx = OpContext::new();
        op.process(0, a(1, 0).into(), &mut ctx);
        op.process(0, a(2, 0).into(), &mut ctx);
        op.process(0, a(3, 0).into(), &mut ctx);
        assert_eq!(op.state_len(), 3);
        op.process(1, b(4, 0).into(), &mut ctx);
        // a@1: diff 3 < 4 still valid; all three join.
        assert_eq!(joined_pairs(&mut ctx).len(), 3);
        op.process(1, b(6, 0).into(), &mut ctx);
        // a@1 (diff 5) and a@2 (diff 4) expired, a@3 joins.
        assert_eq!(joined_pairs(&mut ctx).len(), 1);
        assert_eq!(op.state_len(), 1);
        assert_eq!(op.results(), 4);
        assert!(op.peak_state() >= 3);
    }

    #[test]
    fn batched_runs_match_item_at_a_time_with_one_purge_per_run() {
        // Same A-run and B-run, processed item-at-a-time vs as batches: the
        // joined output and probe comparisons must match exactly, and the
        // deferred batch purge must leave the same final state.
        let make =
            || WindowJoinOp::symmetric("join", WindowSpec::from_secs(5), JoinCondition::equi(0));
        let a_run: Vec<Tuple> = (1..=20u64).map(|s| a(s, (s % 3) as i64)).collect();
        let b_run: Vec<Tuple> = (10..=30u64).map(|s| b(s, (s % 3) as i64)).collect();

        let mut item_op = make();
        let mut item_ctx = OpContext::new();
        for t in &a_run {
            item_op.process(0, t.clone().into(), &mut item_ctx);
        }
        for t in &b_run {
            item_op.process(1, t.clone().into(), &mut item_ctx);
        }

        let mut batch_op = make();
        let mut batch_ctx = OpContext::new();
        let mut items: Vec<StreamItem> = a_run.iter().cloned().map(Into::into).collect();
        batch_op.process_batch(0, &mut items, &mut batch_ctx);
        let mut items: Vec<StreamItem> = b_run.iter().cloned().map(Into::into).collect();
        batch_op.process_batch(1, &mut items, &mut batch_ctx);

        assert_eq!(joined_pairs(&mut item_ctx), joined_pairs(&mut batch_ctx));
        assert_eq!(
            item_ctx.counters.probe_comparisons,
            batch_ctx.counters.probe_comparisons
        );
        // The batch purge at the run maximum leaves the identical state...
        assert_eq!(item_op.state_a_len(), batch_op.state_a_len());
        assert_eq!(item_op.state_b_len(), batch_op.state_b_len());
        assert_eq!(item_op.results(), batch_op.results());
        // ...with (far) fewer purge comparisons: one pass per run.
        assert!(batch_ctx.counters.purge_comparisons < item_ctx.counters.purge_comparisons);
    }

    #[test]
    fn one_way_batched_runs_match_item_at_a_time() {
        let make =
            || OneWayWindowJoinOp::new("oneway", WindowSpec::from_secs(4), JoinCondition::equi(0));
        let a_run: Vec<Tuple> = (1..=15u64).map(|s| a(s, (s % 2) as i64)).collect();
        let b_run: Vec<Tuple> = (5..=20u64).map(|s| b(s, (s % 2) as i64)).collect();

        let mut item_op = make();
        let mut item_ctx = OpContext::new();
        for t in &a_run {
            item_op.process(0, t.clone().into(), &mut item_ctx);
        }
        for t in &b_run {
            item_op.process(1, t.clone().into(), &mut item_ctx);
        }

        let mut batch_op = make();
        let mut batch_ctx = OpContext::new();
        let mut items: Vec<StreamItem> = a_run.iter().cloned().map(Into::into).collect();
        batch_op.process_batch(0, &mut items, &mut batch_ctx);
        let mut items: Vec<StreamItem> = b_run.iter().cloned().map(Into::into).collect();
        batch_op.process_batch(1, &mut items, &mut batch_ctx);

        assert_eq!(joined_pairs(&mut item_ctx), joined_pairs(&mut batch_ctx));
        assert_eq!(
            item_ctx.counters.probe_comparisons,
            batch_ctx.counters.probe_comparisons
        );
        assert_eq!(item_op.state_len(), batch_op.state_len());
        assert_eq!(item_op.results(), batch_op.results());
    }

    #[test]
    fn one_way_join_forwards_punctuations() {
        let mut op =
            OneWayWindowJoinOp::new("oneway", WindowSpec::from_secs(4), JoinCondition::Cross);
        let mut ctx = OpContext::new();
        op.process(
            1,
            Punctuation::new(Timestamp::from_secs(9)).into(),
            &mut ctx,
        );
        assert!(ctx.take_outputs()[0].1.is_punctuation());
        assert_eq!(op.state_size(), 0);
    }
}
