//! Operator-DAG query plans.
//!
//! A [`Plan`] is a directed acyclic graph of operators.  Edges connect an
//! output port of one operator to an input port of another; the executor
//! materialises one queue per input port.  A shared multi-query plan is a DAG
//! with one sink per registered query (Section 2 of the paper).

use std::collections::HashMap;

use crate::error::{Result, StreamError};
use crate::operator::{Operator, PortId};
use crate::ops::SinkOp;

/// Identifier of a node inside a [`Plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A directed edge between two operator ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Source output port.
    pub from_port: PortId,
    /// Destination node.
    pub to: NodeId,
    /// Destination input port.
    pub to_port: PortId,
}

/// One operator instance inside a plan.
pub struct PlanNode {
    /// Node id (index into the plan's node list).
    pub id: NodeId,
    /// The operator.
    pub operator: Box<dyn Operator>,
}

impl std::fmt::Debug for PlanNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanNode")
            .field("id", &self.id)
            .field("operator", &self.operator.name())
            .finish()
    }
}

/// Builder for [`Plan`]s.
#[derive(Default)]
pub struct PlanBuilder {
    nodes: Vec<PlanNode>,
    edges: Vec<Edge>,
    entries: HashMap<String, (NodeId, PortId)>,
}

impl PlanBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        PlanBuilder::default()
    }

    /// Add an operator, returning its node id.
    pub fn add(&mut self, operator: Box<dyn Operator>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(PlanNode { id, operator });
        id
    }

    /// Add an operator (generic convenience).
    pub fn add_op<O: Operator + 'static>(&mut self, operator: O) -> NodeId {
        self.add(Box::new(operator))
    }

    /// Connect `from.from_port` to `to.to_port`.
    pub fn connect(&mut self, from: NodeId, from_port: PortId, to: NodeId, to_port: PortId) {
        self.edges.push(Edge {
            from,
            from_port,
            to,
            to_port,
        });
    }

    /// Register a named external entry point feeding `node.port`.
    pub fn entry(&mut self, name: impl Into<String>, node: NodeId, port: PortId) {
        self.entries.insert(name.into(), (node, port));
    }

    /// Validate and build the plan.
    pub fn build(self) -> Result<Plan> {
        let PlanBuilder {
            nodes,
            edges,
            entries,
        } = self;
        // Port bounds.
        for e in &edges {
            let from = nodes
                .get(e.from.0)
                .ok_or(StreamError::UnknownNode(e.from.0))?;
            let to = nodes.get(e.to.0).ok_or(StreamError::UnknownNode(e.to.0))?;
            if e.from_port >= from.operator.num_output_ports() {
                return Err(StreamError::PlanValidation(format!(
                    "edge from '{}' uses output port {} but the operator has {} output ports",
                    from.operator.name(),
                    e.from_port,
                    from.operator.num_output_ports()
                )));
            }
            if e.to_port >= to.operator.num_input_ports() {
                return Err(StreamError::PlanValidation(format!(
                    "edge into '{}' uses input port {} but the operator has {} input ports",
                    to.operator.name(),
                    e.to_port,
                    to.operator.num_input_ports()
                )));
            }
        }
        for (name, (node, port)) in &entries {
            let n = nodes.get(node.0).ok_or(StreamError::UnknownNode(node.0))?;
            if *port >= n.operator.num_input_ports() {
                return Err(StreamError::PlanValidation(format!(
                    "entry '{name}' uses input port {port} but '{}' has {} input ports",
                    n.operator.name(),
                    n.operator.num_input_ports()
                )));
            }
        }
        let plan = Plan {
            nodes,
            edges,
            entries,
        };
        plan.topological_order()?; // cycle check
        Ok(plan)
    }
}

/// A validated operator DAG.
pub struct Plan {
    nodes: Vec<PlanNode>,
    edges: Vec<Edge>,
    entries: HashMap<String, (NodeId, PortId)>,
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("nodes", &self.nodes.len())
            .field("edges", &self.edges.len())
            .field("entries", &self.entries.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Plan {
    /// Start building a plan.
    pub fn builder() -> PlanBuilder {
        PlanBuilder::new()
    }

    /// Number of operator nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Node by id.
    pub fn node(&self, id: NodeId) -> Result<&PlanNode> {
        self.nodes.get(id.0).ok_or(StreamError::UnknownNode(id.0))
    }

    /// Mutable node by id.
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut PlanNode> {
        self.nodes
            .get_mut(id.0)
            .ok_or(StreamError::UnknownNode(id.0))
    }

    /// Resolve a named entry point.
    pub fn entry(&self, name: &str) -> Result<(NodeId, PortId)> {
        self.entries
            .get(name)
            .copied()
            .ok_or_else(|| StreamError::UnknownEntry(name.to_string()))
    }

    /// Names of all entry points.
    pub fn entry_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.entries.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Downstream destinations of `(node, out_port)`.
    pub fn downstream(&self, from: NodeId, from_port: PortId) -> Vec<(NodeId, PortId)> {
        self.edges
            .iter()
            .filter(|e| e.from == from && e.from_port == from_port)
            .map(|e| (e.to, e.to_port))
            .collect()
    }

    /// Node ids of every sink operator ([`SinkOp`]) keyed by operator name.
    pub fn sinks(&self) -> Vec<(String, NodeId)> {
        self.nodes
            .iter()
            .filter(|n| n.operator.as_any().is::<SinkOp>())
            .map(|n| (n.operator.name().to_string(), n.id))
            .collect()
    }

    /// Immutable access to a sink operator by name.
    pub fn sink(&self, name: &str) -> Option<&SinkOp> {
        self.nodes
            .iter()
            .filter(|n| n.operator.name() == name)
            .find_map(|n| n.operator.as_any().downcast_ref::<SinkOp>())
    }

    /// Internal mutable access to the node list (used by the executor to
    /// drive operators while keeping the public API immutable).
    pub(crate) fn nodes_mut_internal(&mut self) -> &mut [PlanNode] {
        &mut self.nodes
    }

    /// A topological order over the nodes; fails if the graph has a cycle.
    pub fn topological_order(&self) -> Result<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            adj[e.from.0].push(e.to.0);
            indegree[e.to.0] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(next) = ready.pop() {
            order.push(NodeId(next));
            for &succ in &adj[next] {
                indegree[succ] -= 1;
                if indegree[succ] == 0 {
                    ready.push(succ);
                }
            }
        }
        if order.len() != n {
            return Err(StreamError::PlanValidation(
                "plan graph contains a cycle".to_string(),
            ));
        }
        Ok(order)
    }

    /// Total state size (in tuples) over all operators.
    pub fn total_state_size(&self) -> usize {
        self.nodes.iter().map(|n| n.operator.state_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{SelectOp, SinkOp, UnionOp};
    use crate::predicate::Predicate;

    #[test]
    fn build_connect_and_query_structure() {
        let mut b = Plan::builder();
        let sel = b.add_op(SelectOp::new("sigma", Predicate::True));
        let union = b.add_op(UnionOp::new("union", 2));
        let sink = b.add_op(SinkOp::new("q1"));
        b.connect(sel, 0, union, 0);
        b.connect(union, 0, sink, 0);
        b.entry("A", sel, 0);
        let plan = b.build().unwrap();
        assert_eq!(plan.num_nodes(), 3);
        assert_eq!(plan.edges().len(), 2);
        assert_eq!(plan.entry("A").unwrap(), (sel, 0));
        assert!(plan.entry("missing").is_err());
        assert_eq!(plan.entry_names(), vec!["A"]);
        assert_eq!(plan.downstream(sel, 0), vec![(union, 0)]);
        assert_eq!(plan.downstream(sink, 0), vec![]);
        assert_eq!(plan.sinks().len(), 1);
        assert!(plan.sink("q1").is_some());
        assert!(plan.sink("sigma").is_none());
        assert_eq!(plan.total_state_size(), 0);
        assert!(plan.node(sink).is_ok());
        assert!(plan.node(NodeId(99)).is_err());
        let order = plan.topological_order().unwrap();
        assert_eq!(order.len(), 3);
        let pos = |id: NodeId| order.iter().position(|&n| n == id).unwrap();
        assert!(pos(sel) < pos(union));
        assert!(pos(union) < pos(sink));
    }

    #[test]
    fn invalid_output_port_is_rejected() {
        let mut b = Plan::builder();
        let sel = b.add_op(SelectOp::new("sigma", Predicate::True));
        let sink = b.add_op(SinkOp::new("q1"));
        b.connect(sel, 5, sink, 0);
        assert!(matches!(b.build(), Err(StreamError::PlanValidation(_))));
    }

    #[test]
    fn invalid_input_port_is_rejected() {
        let mut b = Plan::builder();
        let sel = b.add_op(SelectOp::new("sigma", Predicate::True));
        let sink = b.add_op(SinkOp::new("q1"));
        b.connect(sel, 0, sink, 3);
        assert!(b.build().is_err());
    }

    #[test]
    fn invalid_entry_port_is_rejected() {
        let mut b = Plan::builder();
        let sel = b.add_op(SelectOp::new("sigma", Predicate::True));
        b.entry("A", sel, 9);
        assert!(b.build().is_err());
    }

    #[test]
    fn cycles_are_rejected() {
        let mut b = Plan::builder();
        let s1 = b.add_op(SelectOp::new("s1", Predicate::True));
        let s2 = b.add_op(SelectOp::new("s2", Predicate::True));
        b.connect(s1, 0, s2, 0);
        b.connect(s2, 0, s1, 0);
        assert!(matches!(b.build(), Err(StreamError::PlanValidation(m)) if m.contains("cycle")));
    }

    #[test]
    fn edge_to_unknown_node_is_rejected() {
        let mut b = Plan::builder();
        let s1 = b.add_op(SelectOp::new("s1", Predicate::True));
        b.connect(s1, 0, NodeId(42), 0);
        assert!(matches!(b.build(), Err(StreamError::UnknownNode(42))));
    }
}
