//! Persistent worker pool for the sharded executor.
//!
//! [`crate::shard::ShardedExecutor`] used to spawn one scoped OS thread per
//! shard on *every* `run` call.  This module replaces that with N long-lived
//! workers, each owning its shard's plan instance between synchronisation
//! barriers, fed through a bounded single-producer / single-consumer ring of
//! [`Job`]s from the router thread.
//!
//! Design notes:
//!
//! * **Bounded ring, blocking semantics.**  [`SpscRing`] is a fixed-capacity
//!   circular buffer guarded by a mutex and two condvars.  A full ring blocks
//!   the producer (backpressure) and reports the stall so the router can
//!   account it in [`crate::CostCounters::router_stalls`]; peak occupancy is
//!   tracked for [`crate::MemoryStats::peak_ring_runs`].  On a mostly
//!   single-core CI container a lock-based ring is both simpler and no slower
//!   than a lock-free one; the interface (bounded, SPSC, run-granular) is what
//!   the executor depends on, not the synchronisation strategy.
//! * **Checkout model.**  Executors rest inside `ShardedExecutor` between
//!   barriers.  [`Job::Adopt`] moves an executor to its worker, [`Job::Run`]
//!   feeds it a run of [`StreamItem`]s to ingest and process, and
//!   [`Job::Park`] finishes outstanding work and hands the executor back
//!   through a reply channel.  While parked, `pause`/`resume`/`swap_plans`
//!   and live-reslice plan surgery operate on the executors directly, with no
//!   locking — the workers never touch a parked executor.
//! * **Run granularity matches [`crate::queue::Queue::pop_run_into`].**  A
//!   `Job::Run` carries a timestamp-ordered batch; items with equal
//!   timestamps keep their arrival (FIFO) order through the ring exactly as
//!   they would through an in-plan queue, so sharded executions remain
//!   scheduling-equivalent to single-executor runs (Lemma 1).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::error::{Result, StreamError};
use crate::executor::Executor;
use crate::queue::StreamItem;

/// Default capacity (in queued runs) of each worker's input ring.
pub const DEFAULT_RING_CAPACITY: usize = 8;

/// How often `park_all` wakes from the reply channel to scan for dead
/// workers while waiting on outstanding park replies.
const PARK_POLL: Duration = Duration::from_millis(50);

struct RingState<T> {
    buf: VecDeque<T>,
    capacity: usize,
    peak: usize,
    closed: bool,
}

struct RingInner<T> {
    state: Mutex<RingState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

/// A bounded single-producer / single-consumer ring.
///
/// `push` blocks while the ring is full (and reports that it had to);
/// `pop` blocks while it is empty and returns `None` once the ring is closed
/// and drained.  Clones share the same buffer; the type does not enforce the
/// single-producer / single-consumer discipline, it only assumes it.
pub struct SpscRing<T> {
    inner: Arc<RingInner<T>>,
}

impl<T> Clone for SpscRing<T> {
    fn clone(&self) -> Self {
        SpscRing {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> SpscRing<T> {
    /// Lock the ring state, tolerating mutex poisoning.  Every mutation the
    /// ring performs under the lock is a single panic-free step (`VecDeque`
    /// push/pop, flag and counter writes), so a poisoned mutex can only mean
    /// a *caller* panicked elsewhere while a guard was live on its stack —
    /// the protected state itself is still consistent and safe to reuse.
    /// Before this, one worker panic turned into a whole-session abort the
    /// next time any thread touched the ring.
    fn lock_state(&self) -> MutexGuard<'_, RingState<T>> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Create a ring holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        SpscRing {
            inner: Arc::new(RingInner {
                state: Mutex::new(RingState {
                    buf: VecDeque::with_capacity(capacity),
                    capacity,
                    peak: 0,
                    closed: false,
                }),
                not_full: Condvar::new(),
                not_empty: Condvar::new(),
            }),
        }
    }

    /// Blocking push.  Returns `Ok(true)` when the producer had to wait for
    /// space (a backpressure stall), `Ok(false)` on an immediate push, and an
    /// error if the ring was closed.
    pub fn push(&self, item: T) -> Result<bool> {
        let mut state = self.lock_state();
        let mut stalled = false;
        while state.buf.len() >= state.capacity && !state.closed {
            stalled = true;
            state = self
                .inner
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if state.closed {
            return Err(StreamError::Execution(
                "worker ring closed while pushing".into(),
            ));
        }
        state.buf.push_back(item);
        state.peak = state.peak.max(state.buf.len());
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(stalled)
    }

    /// Non-blocking push.  Returns the item back when the ring is full.
    pub fn try_push(&self, item: T) -> std::result::Result<(), T> {
        let mut state = self.lock_state();
        if state.closed || state.buf.len() >= state.capacity {
            return Err(item);
        }
        state.buf.push_back(item);
        state.peak = state.peak.max(state.buf.len());
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop.  Returns `None` once the ring is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock_state();
        loop {
            if let Some(item) = state.buf.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .inner
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.lock_state();
        let item = state.buf.pop_front();
        if item.is_some() {
            drop(state);
            self.inner.not_full.notify_one();
        }
        item
    }

    /// Close the ring: producers error out, consumers drain then see `None`.
    pub fn close(&self) {
        let mut state = self.lock_state();
        state.closed = true;
        drop(state);
        self.inner.not_full.notify_all();
        self.inner.not_empty.notify_all();
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.lock_state().buf.len()
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum capacity.
    pub fn capacity(&self) -> usize {
        self.lock_state().capacity
    }

    /// High-water mark of occupancy since creation.
    pub fn peak(&self) -> usize {
        self.lock_state().peak
    }
}

/// One unit of work for a shard worker.
pub enum Job {
    /// Hand the worker its executor (checkout: pool takes ownership).
    Adopt(Box<Executor>),
    /// Ingest a timestamp-ordered run of items at `entry` and process to
    /// quiescence.
    Run {
        /// Entry-point name to ingest at.
        entry: String,
        /// The run, in the order the router emitted it.
        items: Vec<StreamItem>,
    },
    /// Finish outstanding work and return the executor through the reply
    /// channel (check-in).  The worker stays alive waiting for the next
    /// `Adopt`.
    Park,
}

/// A worker's reply to [`Job::Park`].
pub struct ParkedShard {
    /// Which shard this executor belongs to.
    pub shard: usize,
    /// The executor, returned to the caller.  `None` only if the worker was
    /// parked without ever adopting an executor.
    pub executor: Option<Box<Executor>>,
    /// First error encountered since adoption, if any.
    pub outcome: Result<()>,
}

/// N long-lived shard workers fed by bounded rings.
///
/// Created once per [`crate::shard::ShardedExecutor`]; reused across every
/// `run` call and live-reslice epoch.  Dropping the pool closes the rings and
/// joins all threads.
pub struct WorkerPool {
    rings: Vec<SpscRing<Job>>,
    replies: mpsc::Receiver<ParkedShard>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn `workers` threads, each with a ring of `ring_capacity` runs.
    pub fn new(workers: usize, ring_capacity: usize) -> Self {
        assert!(workers > 0, "worker pool needs at least one worker");
        let (tx, rx) = mpsc::channel();
        let mut rings = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for shard in 0..workers {
            let ring = SpscRing::new(ring_capacity);
            let worker_ring = ring.clone();
            let worker_tx = tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("ss-shard-{shard}"))
                .spawn(move || worker_loop(shard, worker_ring, worker_tx))
                .expect("failed to spawn shard worker");
            rings.push(ring);
            handles.push(handle);
        }
        WorkerPool {
            rings,
            replies: rx,
            handles,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Send a job to `shard`'s worker.  Returns whether the producer stalled
    /// on a full ring.
    pub fn send(&self, shard: usize, job: Job) -> Result<bool> {
        self.rings[shard].push(job)
    }

    /// Park every worker and collect the executors back, ordered by shard.
    ///
    /// Worker panics are caught inside the worker loop ([`worker_loop`]), so
    /// a failed run normally still parks — with the failure in
    /// [`ParkedShard::outcome`].  Should a worker thread nevertheless die
    /// (a panic while unwinding, a stack overflow abort path, ...), the
    /// barrier must not block forever on a reply that will never come: it
    /// polls the reply channel and scans the outstanding workers' join
    /// handles, surfacing the dead shards as a typed
    /// [`StreamError::WorkerFailed`] instead of deadlocking.
    pub fn park_all(&self) -> Result<Vec<ParkedShard>> {
        for ring in &self.rings {
            ring.push(Job::Park)?;
        }
        let n = self.rings.len();
        let mut parked: Vec<Option<ParkedShard>> = (0..n).map(|_| None).collect();
        let mut received = 0usize;
        while received < n {
            match self.replies.recv_timeout(PARK_POLL) {
                Ok(reply) => {
                    let slot = reply.shard;
                    if parked[slot].replace(reply).is_some() {
                        return Err(StreamError::Execution(format!(
                            "shard {slot} replied to park twice"
                        )));
                    }
                    received += 1;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    let dead: Vec<usize> = self
                        .handles
                        .iter()
                        .enumerate()
                        .filter(|(shard, handle)| parked[*shard].is_none() && handle.is_finished())
                        .map(|(shard, _)| shard)
                        .collect();
                    if !dead.is_empty() {
                        return Err(StreamError::WorkerFailed(format!(
                            "shard worker(s) {dead:?} died without replying to park"
                        )));
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(StreamError::WorkerFailed(
                        "all shard workers exited without replying to park".into(),
                    ));
                }
            }
        }
        Ok(parked
            .into_iter()
            .map(|p| p.expect("received == n implies every slot is filled"))
            .collect())
    }

    /// Per-ring peak occupancy (queued runs), by shard.
    pub fn ring_peaks(&self) -> Vec<usize> {
        self.rings.iter().map(|r| r.peak()).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for ring in &self.rings {
            ring.close();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Render a panic payload into a human-readable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execute a fallible executor step, converting a panic into a typed
/// [`StreamError::WorkerFailed`] so the worker thread survives to park.  The
/// executor's in-memory state after a caught panic is *suspect* (the panic
/// may have interrupted processing mid-tuple); recovery discards it and
/// restores from the last checkpoint, so handing the executor back anyway is
/// safe and keeps the shard slot occupied.
fn run_caught(shard: usize, step: impl FnOnce() -> Result<()>) -> Result<()> {
    match catch_unwind(AssertUnwindSafe(step)) {
        Ok(outcome) => outcome,
        Err(payload) => Err(StreamError::WorkerFailed(format!(
            "shard {shard} worker panicked: {}",
            panic_message(payload)
        ))),
    }
}

fn worker_loop(shard: usize, ring: SpscRing<Job>, tx: mpsc::Sender<ParkedShard>) {
    let mut executor: Option<Box<Executor>> = None;
    let mut failed: Option<StreamError> = None;
    while let Some(job) = ring.pop() {
        match job {
            Job::Adopt(exec) => {
                executor = Some(exec);
                failed = None;
            }
            Job::Run { entry, items } => {
                if failed.is_some() {
                    continue;
                }
                match executor.as_mut() {
                    Some(exec) => {
                        let outcome = run_caught(shard, || {
                            exec.ingest_all(&entry, items)
                                .and_then(|_| exec.run().map(|_| ()))
                        });
                        if let Err(err) = outcome {
                            failed = Some(err);
                        }
                    }
                    None => {
                        failed = Some(StreamError::Execution(format!(
                            "shard {shard} received a run before adopting an executor"
                        )));
                    }
                }
            }
            Job::Park => {
                let mut outcome = match failed.take() {
                    Some(err) => Err(err),
                    None => Ok(()),
                };
                if outcome.is_ok() {
                    if let Some(exec) = executor.as_mut() {
                        outcome = run_caught(shard, || exec.run().map(|_| ()));
                    }
                }
                let reply = ParkedShard {
                    shard,
                    executor: executor.take(),
                    outcome,
                };
                if tx.send(reply).is_err() {
                    // Pool dropped mid-park; nothing left to do.
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Queue;
    use crate::time::Timestamp;
    use crate::tuple::{StreamId, Tuple, Value};

    fn item(ts_ms: u64, tag: i64) -> StreamItem {
        StreamItem::from(Tuple::new(
            Timestamp::from_millis(ts_ms),
            StreamId::A,
            vec![Value::Int(tag)],
        ))
    }

    fn tag(item: &StreamItem) -> i64 {
        match item {
            StreamItem::Tuple(t) => match t.value(0) {
                Some(Value::Int(v)) => *v,
                _ => panic!("expected int payload"),
            },
            StreamItem::Batch(_) | StreamItem::Punctuation(_) => panic!("expected tuple"),
        }
    }

    #[test]
    fn ring_full_empty_and_wrap_boundaries() {
        let ring: SpscRing<u32> = SpscRing::new(3);
        assert!(ring.is_empty());
        assert_eq!(ring.capacity(), 3);
        assert!(ring.try_pop().is_none());
        for v in 0..3 {
            ring.try_push(v).unwrap();
        }
        // Full: try_push hands the item back.
        assert_eq!(ring.try_push(99), Err(99));
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.peak(), 3);
        // Drain two, refill two: exercises wrap-around of the circular
        // buffer while preserving FIFO order.
        assert_eq!(ring.try_pop(), Some(0));
        assert_eq!(ring.try_pop(), Some(1));
        ring.try_push(3).unwrap();
        ring.try_push(4).unwrap();
        assert_eq!(ring.try_push(5), Err(5));
        let drained: Vec<u32> = std::iter::from_fn(|| ring.try_pop()).collect();
        assert_eq!(drained, vec![2, 3, 4]);
        assert!(ring.is_empty());
        assert_eq!(ring.peak(), 3);
    }

    #[test]
    fn closed_ring_rejects_producers_and_drains_consumers() {
        let ring: SpscRing<u32> = SpscRing::new(2);
        ring.try_push(1).unwrap();
        ring.close();
        assert!(ring.push(2).is_err());
        assert_eq!(ring.pop(), Some(1));
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn blocking_push_reports_stall_and_unblocks() {
        let ring: SpscRing<u32> = SpscRing::new(1);
        assert!(!ring.push(1).unwrap(), "first push must not stall");
        let producer = {
            let ring = ring.clone();
            std::thread::spawn(move || ring.push(2).unwrap())
        };
        // Give the producer time to block on the full ring, then free a slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(ring.pop(), Some(1));
        let stalled = producer.join().unwrap();
        assert!(stalled, "push into a full ring must report the stall");
        assert_eq!(ring.pop(), Some(2));
    }

    #[test]
    fn ring_fifo_tie_order_matches_queue_pop_run_into() {
        // Three items, two sharing a timestamp.  Route them through the ring
        // and then through a plan queue: the equal-timestamp items must keep
        // their arrival order, exactly as `Queue::pop_run_into` yields them.
        let items = vec![item(10, 1), item(20, 2), item(20, 3)];
        let ring: SpscRing<StreamItem> = SpscRing::new(4);
        for it in items {
            ring.try_push(it).unwrap();
        }
        let mut queue = Queue::new();
        while let Some(it) = ring.try_pop() {
            queue.push(it);
        }
        let mut run = Vec::new();
        queue.pop_run_into(usize::MAX, None, &mut run);
        let tags: Vec<i64> = run.iter().map(tag).collect();
        assert_eq!(tags, vec![1, 2, 3], "ties must preserve arrival order");
    }

    #[test]
    fn two_thread_ping_pong_smoke() {
        // Producer pushes 10_000 items through a tiny ring while the
        // consumer pops them all; order and count must survive backpressure.
        const N: i64 = 10_000;
        let ring: SpscRing<StreamItem> = SpscRing::new(4);
        let producer = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                let mut stalls = 0u64;
                for i in 0..N {
                    if ring.push(item(i as u64, i)).unwrap() {
                        stalls += 1;
                    }
                }
                ring.close();
                stalls
            })
        };
        let consumer = std::thread::spawn(move || {
            let mut seen = Vec::new();
            while let Some(it) = ring.pop() {
                seen.push(tag(&it));
            }
            seen
        });
        let _stalls = producer.join().unwrap();
        let seen = consumer.join().unwrap();
        assert_eq!(seen.len(), N as usize);
        assert!(seen.windows(2).all(|w| w[1] == w[0] + 1), "order preserved");
    }

    #[test]
    fn pool_park_without_adopt_returns_no_executor() {
        let pool = WorkerPool::new(2, 4);
        assert_eq!(pool.workers(), 2);
        let parked = pool.park_all().unwrap();
        assert_eq!(parked.len(), 2);
        for (i, p) in parked.iter().enumerate() {
            assert_eq!(p.shard, i);
            assert!(p.executor.is_none());
            assert!(p.outcome.is_ok());
        }
    }

    /// Run `f` (which is expected to panic somewhere) with the default panic
    /// hook silenced, so intentional panics don't spray backtraces into the
    /// test output.
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn poisoned_ring_lock_recovers() {
        let ring: SpscRing<u32> = SpscRing::new(2);
        ring.try_push(7).unwrap();
        let holder = ring.clone();
        with_quiet_panics(|| {
            std::thread::spawn(move || {
                let _guard = holder.inner.state.lock().unwrap();
                panic!("poison the ring lock");
            })
            .join()
            .unwrap_err()
        });
        // The mutex is poisoned now; every ring operation must still work.
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.peak(), 1);
        assert_eq!(ring.capacity(), 2);
        assert_eq!(ring.try_pop(), Some(7));
        ring.try_push(8).unwrap();
        assert!(!ring.push(9).unwrap());
        assert_eq!(ring.pop(), Some(8));
        assert_eq!(ring.pop(), Some(9));
        ring.close();
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn run_caught_converts_panics_to_worker_failed() {
        assert!(run_caught(0, || Ok(())).is_ok());
        let err = with_quiet_panics(|| run_caught(3, || panic!("boom {}", 42)));
        match err {
            Err(StreamError::WorkerFailed(msg)) => {
                assert!(msg.contains("shard 3"), "got: {msg}");
                assert!(msg.contains("boom 42"), "got: {msg}");
            }
            other => panic!("expected WorkerFailed, got {other:?}"),
        }
    }

    #[test]
    fn pool_run_before_adopt_is_an_error_at_park() {
        let pool = WorkerPool::new(1, 4);
        pool.send(
            0,
            Job::Run {
                entry: "A".into(),
                items: vec![item(1, 1)],
            },
        )
        .unwrap();
        let parked = pool.park_all().unwrap();
        assert!(parked[0].outcome.is_err());
    }
}
