//! Predicates over single tuples and join conditions over tuple pairs.
//!
//! Every predicate evaluation reports the number of value comparisons it
//! performed, because the paper's CPU cost metric is a comparison count
//! (Section 3: "we use the count of comparisons per time unit as the metric
//! for estimated CPU costs").

use crate::tuple::{Tuple, Value};

/// Comparison operator of a [`Predicate::Compare`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Apply the operator to an ordering.
    pub fn apply(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A boolean predicate over a single tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (selectivity 1).
    True,
    /// Always false (selectivity 0).
    False,
    /// Compare a field against a constant.
    Compare {
        /// Field index in the tuple.
        field: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Constant to compare against.
        value: Value,
    },
    /// Compare two fields of the same tuple.
    CompareFields {
        /// Left field index.
        left: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Right field index.
        right: usize,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `field op value` comparison predicate.
    pub fn cmp(field: usize, op: CmpOp, value: impl Into<Value>) -> Predicate {
        Predicate::Compare {
            field,
            op,
            value: value.into(),
        }
    }

    /// `field > value` shortcut (the paper's running example uses
    /// `A.Value > Threshold`).
    pub fn gt(field: usize, value: impl Into<Value>) -> Predicate {
        Predicate::cmp(field, CmpOp::Gt, value)
    }

    /// `field <= value` shortcut.
    pub fn le(field: usize, value: impl Into<Value>) -> Predicate {
        Predicate::cmp(field, CmpOp::Le, value)
    }

    /// `field = value` shortcut.
    pub fn eq(field: usize, value: impl Into<Value>) -> Predicate {
        Predicate::cmp(field, CmpOp::Eq, value)
    }

    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::False, _) | (_, Predicate::False) => Predicate::False,
            (a, b) => Predicate::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction helper.
    pub fn or(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::False, p) | (p, Predicate::False) => p,
            (Predicate::True, _) | (_, Predicate::True) => Predicate::True,
            (a, b) => Predicate::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Negation helper.
    pub fn negate(self) -> Predicate {
        match self {
            Predicate::True => Predicate::False,
            Predicate::False => Predicate::True,
            Predicate::Not(inner) => *inner,
            p => Predicate::Not(Box::new(p)),
        }
    }

    /// Disjunction of an arbitrary number of predicates.  Used to build the
    /// pushed-down selection `σ'_i = cond_i ∨ cond_{i+1} ∨ ... ∨ cond_N`
    /// (Section 6.1 of the paper).  The disjunction of an empty set is
    /// `False`.
    pub fn disjunction<I: IntoIterator<Item = Predicate>>(preds: I) -> Predicate {
        preds.into_iter().fold(Predicate::False, |acc, p| acc.or(p))
    }

    /// Evaluate the predicate.  Returns the boolean result and adds the
    /// number of value comparisons performed to `comparisons`.
    pub fn eval_counted(&self, tuple: &Tuple, comparisons: &mut u64) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::Compare { field, op, value } => {
                *comparisons += 1;
                match tuple.value(*field) {
                    Some(v) => op.apply(v.compare(value)),
                    None => false,
                }
            }
            Predicate::CompareFields { left, op, right } => {
                *comparisons += 1;
                match (tuple.value(*left), tuple.value(*right)) {
                    (Some(l), Some(r)) => op.apply(l.compare(r)),
                    _ => false,
                }
            }
            Predicate::And(a, b) => {
                a.eval_counted(tuple, comparisons) && b.eval_counted(tuple, comparisons)
            }
            Predicate::Or(a, b) => {
                a.eval_counted(tuple, comparisons) || b.eval_counted(tuple, comparisons)
            }
            Predicate::Not(p) => !p.eval_counted(tuple, comparisons),
        }
    }

    /// Evaluate the predicate without counting comparisons.
    pub fn eval(&self, tuple: &Tuple) -> bool {
        let mut scratch = 0;
        self.eval_counted(tuple, &mut scratch)
    }

    /// `true` for the trivial `True` predicate (no selection present).
    pub fn is_true(&self) -> bool {
        matches!(self, Predicate::True)
    }
}

/// Join condition between a pair of tuples.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinCondition {
    /// Cartesian product: every pair matches.
    Cross,
    /// Equality between a left-tuple field and a right-tuple field (the
    /// paper's running example joins on `LocationId`).
    Equi {
        /// Field index in the left tuple.
        left_field: usize,
        /// Field index in the right tuple.
        right_field: usize,
    },
    /// Arbitrary theta comparison between a left field and a right field.
    Theta {
        /// Field index in the left tuple.
        left_field: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Field index in the right tuple.
        right_field: usize,
    },
    /// Conjunction of two join conditions.
    And(Box<JoinCondition>, Box<JoinCondition>),
}

impl JoinCondition {
    /// Equi-join on the same field index of both inputs.
    pub fn equi(field: usize) -> JoinCondition {
        JoinCondition::Equi {
            left_field: field,
            right_field: field,
        }
    }

    /// Evaluate the condition for a `(left, right)` pair, counting value
    /// comparisons into `comparisons`.
    pub fn eval_counted(&self, left: &Tuple, right: &Tuple, comparisons: &mut u64) -> bool {
        match self {
            JoinCondition::Cross => {
                // Even the cross product performs the window/timestamp check,
                // which the window state handles; no value comparison here.
                true
            }
            JoinCondition::Equi {
                left_field,
                right_field,
            } => {
                // Count only when both fields exist: the counter contract is
                // "counters equal actual value comparisons", and an absent
                // field short-circuits to false before any compare runs.
                match (left.value(*left_field), right.value(*right_field)) {
                    (Some(l), Some(r)) => {
                        *comparisons += 1;
                        l.compare(r) == std::cmp::Ordering::Equal
                    }
                    _ => false,
                }
            }
            JoinCondition::Theta {
                left_field,
                op,
                right_field,
            } => match (left.value(*left_field), right.value(*right_field)) {
                (Some(l), Some(r)) => {
                    *comparisons += 1;
                    op.apply(l.compare(r))
                }
                _ => false,
            },
            JoinCondition::And(a, b) => {
                a.eval_counted(left, right, comparisons) && b.eval_counted(left, right, comparisons)
            }
        }
    }

    /// Evaluate without counting.
    pub fn eval(&self, left: &Tuple, right: &Tuple) -> bool {
        let mut scratch = 0;
        self.eval_counted(left, right, &mut scratch)
    }
}

/// A band probe recognised by [`band_bounds`]: the stored-side field is
/// constrained to a (half-)interval whose endpoints come from probe-tuple
/// fields, `lo ≤ stored.g − probe.f ≤ hi` in the classic band-join shape.
///
/// Each bound is `(probe_field, inclusive)`.  One of the two may be absent
/// (a half-open band from a single `Theta`).  Any equi or residual component
/// of the original condition is *not* represented here — callers re-evaluate
/// the full [`JoinCondition`] on every candidate, so the probe only has to
/// be a superset of the true matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandProbe {
    /// Field index of the stored tuple the order index sorts by.
    pub stored_field: usize,
    /// Lower bound: `stored.field ≥ probe.0` (`>` when `.1` is false).
    pub lower: Option<(usize, bool)>,
    /// Upper bound: `stored.field ≤ probe.0` (`<` when `.1` is false).
    pub upper: Option<(usize, bool)>,
}

impl BandProbe {
    /// `true` when both a lower and an upper bound are present.
    pub fn is_two_sided(&self) -> bool {
        self.lower.is_some() && self.upper.is_some()
    }
}

/// One usable theta constraint on a stored-side field, in normalised
/// `stored op probe` orientation.
struct ThetaBound {
    stored_field: usize,
    probe_field: usize,
    op: CmpOp,
}

fn collect_theta_bounds(cond: &JoinCondition, stored_is_left: bool, out: &mut Vec<ThetaBound>) {
    match cond {
        JoinCondition::Theta {
            left_field,
            op,
            right_field,
        } => {
            // Normalise to `stored op probe`: when the stored tuple is the
            // right operand, flip the operand order and mirror the operator.
            let (stored_field, probe_field, op) = if stored_is_left {
                (*left_field, *right_field, *op)
            } else {
                let mirrored = match op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    CmpOp::Eq => CmpOp::Eq,
                    CmpOp::Ne => CmpOp::Ne,
                };
                (*right_field, *left_field, mirrored)
            };
            if matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) {
                out.push(ThetaBound {
                    stored_field,
                    probe_field,
                    op,
                });
            }
        }
        JoinCondition::And(a, b) => {
            collect_theta_bounds(a, stored_is_left, out);
            collect_theta_bounds(b, stored_is_left, out);
        }
        JoinCondition::Cross | JoinCondition::Equi { .. } => {}
    }
}

/// Classify the band shape of a join condition from the stored side's point
/// of view (`stored_is_left` says whether the stored tuple is the condition's
/// left or right operand).
///
/// Walks the `And` tree collecting inequality `Theta` components, normalised
/// to `stored op probe`, and groups them by stored field.  A field with both
/// a lower and an upper bound (two opposing thetas on the same stored field)
/// wins over a field with only one; ties go to the first field encountered.
/// `Eq`/`Ne` thetas, equi components and `Cross` contribute nothing — they
/// stay in the condition and are re-evaluated on every candidate the band
/// probe yields.  Returns `None` when no inequality theta exists at all.
pub fn band_bounds(cond: &JoinCondition, stored_is_left: bool) -> Option<BandProbe> {
    let mut bounds = Vec::new();
    collect_theta_bounds(cond, stored_is_left, &mut bounds);
    if bounds.is_empty() {
        return None;
    }
    // Assemble per-stored-field probes, preserving first-encountered order.
    let mut probes: Vec<BandProbe> = Vec::new();
    for b in &bounds {
        let probe = match probes.iter_mut().find(|p| p.stored_field == b.stored_field) {
            Some(p) => p,
            None => {
                probes.push(BandProbe {
                    stored_field: b.stored_field,
                    lower: None,
                    upper: None,
                });
                probes.last_mut().unwrap()
            }
        };
        match b.op {
            CmpOp::Ge | CmpOp::Gt => {
                if probe.lower.is_none() {
                    probe.lower = Some((b.probe_field, b.op == CmpOp::Ge));
                }
            }
            CmpOp::Le | CmpOp::Lt => {
                if probe.upper.is_none() {
                    probe.upper = Some((b.probe_field, b.op == CmpOp::Le));
                }
            }
            _ => unreachable!("collect_theta_bounds only keeps inequalities"),
        }
    }
    probes
        .iter()
        .find(|p| p.is_two_sided())
        .or_else(|| probes.first())
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;
    use crate::tuple::StreamId;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(1), StreamId::A, vals)
    }

    #[test]
    fn cmp_op_apply() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.apply(Equal));
        assert!(!CmpOp::Eq.apply(Less));
        assert!(CmpOp::Ne.apply(Greater));
        assert!(CmpOp::Lt.apply(Less));
        assert!(CmpOp::Le.apply(Equal));
        assert!(CmpOp::Gt.apply(Greater));
        assert!(CmpOp::Ge.apply(Equal));
        assert!(!CmpOp::Ge.apply(Less));
    }

    #[test]
    fn compare_predicates_count_one_comparison() {
        let p = Predicate::gt(1, 10i64);
        let mut c = 0;
        assert!(p.eval_counted(&t(&[0, 11]), &mut c));
        assert!(!p.eval_counted(&t(&[0, 10]), &mut c));
        assert_eq!(c, 2);
    }

    #[test]
    fn compare_fields() {
        let p = Predicate::CompareFields {
            left: 0,
            op: CmpOp::Lt,
            right: 1,
        };
        assert!(p.eval(&t(&[1, 2])));
        assert!(!p.eval(&t(&[2, 2])));
    }

    #[test]
    fn out_of_range_field_is_false() {
        let p = Predicate::eq(7, 1i64);
        assert!(!p.eval(&t(&[1])));
        let p = Predicate::CompareFields {
            left: 0,
            op: CmpOp::Eq,
            right: 9,
        };
        assert!(!p.eval(&t(&[1])));
    }

    #[test]
    fn boolean_connectives_simplify() {
        let p = Predicate::True.and(Predicate::gt(0, 1i64));
        assert_eq!(p, Predicate::gt(0, 1i64));
        let p = Predicate::False.and(Predicate::gt(0, 1i64));
        assert_eq!(p, Predicate::False);
        let p = Predicate::False.or(Predicate::gt(0, 1i64));
        assert_eq!(p, Predicate::gt(0, 1i64));
        let p = Predicate::True.or(Predicate::gt(0, 1i64));
        assert_eq!(p, Predicate::True);
        assert_eq!(Predicate::True.negate(), Predicate::False);
        assert_eq!(
            Predicate::gt(0, 1i64).negate().negate(),
            Predicate::gt(0, 1i64)
        );
    }

    #[test]
    fn and_or_evaluation() {
        let p = Predicate::gt(0, 5i64).and(Predicate::le(1, 3i64));
        assert!(p.eval(&t(&[6, 3])));
        assert!(!p.eval(&t(&[6, 4])));
        assert!(!p.eval(&t(&[5, 3])));
        let q = Predicate::gt(0, 5i64).or(Predicate::le(1, 3i64));
        assert!(q.eval(&t(&[0, 0])));
        assert!(q.eval(&t(&[9, 9])));
        assert!(!q.eval(&t(&[0, 9])));
    }

    #[test]
    fn disjunction_of_many() {
        let p = Predicate::disjunction(vec![
            Predicate::eq(0, 1i64),
            Predicate::eq(0, 2i64),
            Predicate::eq(0, 3i64),
        ]);
        assert!(p.eval(&t(&[2])));
        assert!(!p.eval(&t(&[4])));
        assert_eq!(Predicate::disjunction(vec![]), Predicate::False);
        assert!(Predicate::True.is_true());
        assert!(!Predicate::False.is_true());
    }

    #[test]
    fn equi_join_condition() {
        let c = JoinCondition::equi(0);
        let a = t(&[7, 1]);
        let b = t(&[7, 2]);
        let d = t(&[8, 2]);
        let mut n = 0;
        assert!(c.eval_counted(&a, &b, &mut n));
        assert!(!c.eval_counted(&a, &d, &mut n));
        assert_eq!(n, 2);
        assert!(JoinCondition::Cross.eval(&a, &d));
    }

    #[test]
    fn join_condition_counters_skip_absent_fields() {
        // Pin the counter contract: counters equal *actual* value
        // comparisons.  An absent field short-circuits Equi/Theta to false
        // with no compare, so the counter must not move.
        let equi = JoinCondition::equi(3);
        let theta = JoinCondition::Theta {
            left_field: 3,
            op: CmpOp::Lt,
            right_field: 0,
        };
        let short = t(&[1]); // has no field 3
        let long = t(&[1, 2, 3, 4]);
        let mut n = 0;
        assert!(!equi.eval_counted(&short, &long, &mut n));
        assert!(!equi.eval_counted(&long, &short, &mut n));
        assert!(!theta.eval_counted(&short, &long, &mut n));
        assert_eq!(n, 0, "absent-field evaluations must not count");
        // Both fields present: exactly one comparison each.
        assert!(equi.eval_counted(&long, &long, &mut n));
        assert!(!theta.eval_counted(&long, &long, &mut n));
        assert_eq!(n, 2);
        // And short-circuit: a false left conjunct with a missing field
        // costs zero and suppresses the right conjunct entirely.
        let both = JoinCondition::And(Box::new(equi), Box::new(theta));
        let mut m = 0;
        assert!(!both.eval_counted(&short, &long, &mut m));
        assert_eq!(m, 0);
    }

    #[test]
    fn band_bounds_recognises_single_theta_half_bands() {
        // stored(left).2 >= probe(right).0  →  lower bound on field 2.
        let c = JoinCondition::Theta {
            left_field: 2,
            op: CmpOp::Ge,
            right_field: 0,
        };
        assert_eq!(
            band_bounds(&c, true),
            Some(BandProbe {
                stored_field: 2,
                lower: Some((0, true)),
                upper: None,
            })
        );
        // Same condition from the right-hand store's point of view:
        // probe.2 >= stored.0  ⇔  stored.0 <= probe.2 (upper bound).
        assert_eq!(
            band_bounds(&c, false),
            Some(BandProbe {
                stored_field: 0,
                lower: None,
                upper: Some((2, true)),
            })
        );
        // Strict operators stay strict.
        let c = JoinCondition::Theta {
            left_field: 1,
            op: CmpOp::Lt,
            right_field: 3,
        };
        assert_eq!(
            band_bounds(&c, true),
            Some(BandProbe {
                stored_field: 1,
                lower: None,
                upper: Some((3, false)),
            })
        );
    }

    #[test]
    fn band_bounds_pairs_opposing_thetas_and_prefers_two_sided_fields() {
        // lo ≤ stored.0 ≤ hi with probe fields 2 (lo) and 3 (hi).
        let lo = JoinCondition::Theta {
            left_field: 0,
            op: CmpOp::Ge,
            right_field: 2,
        };
        let hi = JoinCondition::Theta {
            left_field: 0,
            op: CmpOp::Le,
            right_field: 3,
        };
        let band = JoinCondition::And(Box::new(lo.clone()), Box::new(hi.clone()));
        assert_eq!(
            band_bounds(&band, true),
            Some(BandProbe {
                stored_field: 0,
                lower: Some((2, true)),
                upper: Some((3, true)),
            })
        );
        // A one-sided theta on another field first: the two-sided field
        // still wins regardless of encounter order.
        let stray = JoinCondition::Theta {
            left_field: 5,
            op: CmpOp::Gt,
            right_field: 1,
        };
        let c = JoinCondition::And(Box::new(stray), Box::new(band.clone()));
        assert_eq!(band_bounds(&c, true).unwrap().stored_field, 0);
        assert!(band_bounds(&c, true).unwrap().is_two_sided());
        // Equi and Cross components are transparent residue.
        let c = JoinCondition::And(
            Box::new(JoinCondition::equi(4)),
            Box::new(JoinCondition::And(
                Box::new(JoinCondition::Cross),
                Box::new(band),
            )),
        );
        assert_eq!(
            band_bounds(&c, true),
            Some(BandProbe {
                stored_field: 0,
                lower: Some((2, true)),
                upper: Some((3, true)),
            })
        );
        // No inequality theta anywhere → no band.
        assert_eq!(band_bounds(&JoinCondition::equi(0), true), None);
        assert_eq!(band_bounds(&JoinCondition::Cross, true), None);
        // Ne is not a usable bound.
        let ne = JoinCondition::Theta {
            left_field: 0,
            op: CmpOp::Ne,
            right_field: 0,
        };
        assert_eq!(band_bounds(&ne, true), None);
    }

    #[test]
    fn theta_and_composite_join_conditions() {
        let c = JoinCondition::Theta {
            left_field: 1,
            op: CmpOp::Lt,
            right_field: 1,
        };
        assert!(c.eval(&t(&[0, 1]), &t(&[0, 2])));
        assert!(!c.eval(&t(&[0, 2]), &t(&[0, 2])));
        let both = JoinCondition::And(Box::new(JoinCondition::equi(0)), Box::new(c));
        assert!(both.eval(&t(&[5, 1]), &t(&[5, 2])));
        assert!(!both.eval(&t(&[5, 3]), &t(&[5, 2])));
        assert!(!both.eval(&t(&[4, 1]), &t(&[5, 2])));
    }
}
