//! Punctuations: stream progress markers.
//!
//! The paper (Section 4.3) notes that the male copy of a tuple leaving the
//! last sliced join acts as a punctuation for the order-preserving union: no
//! joined tuple with a smaller timestamp will be produced afterwards.  We make
//! this explicit with a [`Punctuation`] item that carries the watermark
//! timestamp and, optionally, the originating stream.

use crate::time::Timestamp;
use crate::tuple::StreamId;

/// A promise that no tuple with timestamp `< watermark` will follow on the
/// channel this punctuation was emitted on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Punctuation {
    /// All future tuples on this channel have `ts >= watermark`.
    pub watermark: Timestamp,
    /// Stream the punctuation originated from, if meaningful.
    pub stream: Option<StreamId>,
}

impl Punctuation {
    /// Punctuation with a watermark only.
    pub fn new(watermark: Timestamp) -> Self {
        Punctuation {
            watermark,
            stream: None,
        }
    }

    /// Punctuation tagged with the originating stream.
    pub fn from_stream(watermark: Timestamp, stream: StreamId) -> Self {
        Punctuation {
            watermark,
            stream: Some(stream),
        }
    }

    /// The end-of-stream punctuation: everything can be flushed.
    pub fn end_of_stream() -> Self {
        Punctuation {
            watermark: Timestamp::MAX,
            stream: None,
        }
    }

    /// `true` if this is the end-of-stream marker.
    pub fn is_end_of_stream(&self) -> bool {
        self.watermark == Timestamp::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let p = Punctuation::new(Timestamp::from_secs(3));
        assert_eq!(p.watermark, Timestamp::from_secs(3));
        assert_eq!(p.stream, None);
        assert!(!p.is_end_of_stream());

        let p = Punctuation::from_stream(Timestamp::from_secs(1), StreamId::B);
        assert_eq!(p.stream, Some(StreamId::B));

        assert!(Punctuation::end_of_stream().is_end_of_stream());
    }
}
