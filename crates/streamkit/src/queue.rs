//! Inter-operator queues and the items they carry.

use std::collections::VecDeque;

use crate::columnar::ColumnBatch;
use crate::punctuation::Punctuation;
use crate::time::Timestamp;
use crate::tuple::Tuple;

/// An item travelling through a queue: a data tuple, a column-major run of
/// tuples, or a punctuation.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamItem {
    /// A data tuple.
    Tuple(Tuple),
    /// A column-major run of data tuples (columnar execution).  Never empty;
    /// rows are in timestamp order, and the *first* row's timestamp is the
    /// item's position in the global order (later rows may exceed another
    /// port's head — safe, because every order-sensitive consumer reorders
    /// by per-row timestamp: the union buffers rows behind its watermark and
    /// sinks/fallbacks look at row timestamps, never at item granularity).
    Batch(ColumnBatch),
    /// A progress marker.
    Punctuation(Punctuation),
}

impl StreamItem {
    /// Timestamp used for ordering decisions: the tuple timestamp, the first
    /// row's timestamp, or the punctuation watermark.
    pub fn timestamp(&self) -> Timestamp {
        match self {
            StreamItem::Tuple(t) => t.ts,
            StreamItem::Batch(b) => b.first_ts().unwrap_or(Timestamp::from_micros(0)),
            StreamItem::Punctuation(p) => p.watermark,
        }
    }

    /// The contained tuple, if any (`None` for batches: their rows are not
    /// materialized as row tuples).
    pub fn as_tuple(&self) -> Option<&Tuple> {
        match self {
            StreamItem::Tuple(t) => Some(t),
            StreamItem::Batch(_) | StreamItem::Punctuation(_) => None,
        }
    }

    /// The contained tuple by value, if any.
    pub fn into_tuple(self) -> Option<Tuple> {
        match self {
            StreamItem::Tuple(t) => Some(t),
            StreamItem::Batch(_) | StreamItem::Punctuation(_) => None,
        }
    }

    /// `true` if this is a punctuation.
    pub fn is_punctuation(&self) -> bool {
        matches!(self, StreamItem::Punctuation(_))
    }
}

impl From<Tuple> for StreamItem {
    fn from(t: Tuple) -> Self {
        StreamItem::Tuple(t)
    }
}

impl From<ColumnBatch> for StreamItem {
    fn from(b: ColumnBatch) -> Self {
        StreamItem::Batch(b)
    }
}

impl From<Punctuation> for StreamItem {
    fn from(p: Punctuation) -> Self {
        StreamItem::Punctuation(p)
    }
}

/// A FIFO queue between two operator ports.
///
/// Queue memory is tracked separately from operator state memory, matching the
/// paper's distinction between state memory and queue memory (Section 2).
#[derive(Debug, Default)]
pub struct Queue {
    items: VecDeque<StreamItem>,
    /// Largest number of items ever held.
    peak_len: usize,
    /// Total number of items ever enqueued.
    total_enqueued: u64,
}

impl Queue {
    /// An empty queue.
    pub fn new() -> Self {
        Queue::default()
    }

    /// Append an item.
    pub fn push(&mut self, item: StreamItem) {
        self.items.push_back(item);
        self.total_enqueued += 1;
        if self.items.len() > self.peak_len {
            self.peak_len = self.items.len();
        }
    }

    /// Remove and return the oldest item.
    pub fn pop(&mut self) -> Option<StreamItem> {
        self.items.pop_front()
    }

    /// Pop a timestamp-contiguous run from the front into `out`: up to `max`
    /// items whose timestamps do not exceed `min_other_ts` (no bound when
    /// `None`).  Returns the number of items popped.
    ///
    /// This is the batched counterpart of popping one item at a time while
    /// this port stays the oldest across its node's input ports: each port
    /// delivers items in timestamp order, so the executor can hand a whole
    /// run to [`Operator::process_batch`](crate::operator::Operator) without
    /// overtaking any other port's head.  Punctuations participate like
    /// tuples, ordered by their watermark.
    pub fn pop_run_into(
        &mut self,
        max: usize,
        min_other_ts: Option<Timestamp>,
        out: &mut Vec<StreamItem>,
    ) -> usize {
        let mut popped = 0;
        while popped < max {
            match self.items.front() {
                Some(item) if min_other_ts.is_none_or(|bound| item.timestamp() <= bound) => {
                    out.push(self.items.pop_front().expect("front exists"));
                    popped += 1;
                }
                _ => break,
            }
        }
        popped
    }

    /// Columnar variant of [`Queue::pop_run_into`]: pop the leading run of
    /// *tuples* (same `max` / `min_other_ts` bound) directly into a
    /// [`ColumnBatch`], without materializing intermediate `Vec<StreamItem>`.
    ///
    /// Stops early at the first punctuation, pre-built batch, or tuple whose
    /// arity does not fit `batch` — those stay queued for the row path.
    /// Returns the number of tuples transposed into `batch`.
    pub fn pop_run_columnar(
        &mut self,
        max: usize,
        min_other_ts: Option<Timestamp>,
        batch: &mut ColumnBatch,
    ) -> usize {
        let mut popped = 0;
        while popped < max {
            let fits = match self.items.front() {
                Some(StreamItem::Tuple(t)) if min_other_ts.is_none_or(|bound| t.ts <= bound) => {
                    batch.push_tuple(t)
                }
                _ => false,
            };
            if !fits {
                break;
            }
            self.items.pop_front();
            popped += 1;
        }
        popped
    }

    /// Allocating convenience wrapper around [`Queue::pop_run_into`].
    pub fn pop_run(&mut self, max: usize, min_other_ts: Option<Timestamp>) -> Vec<StreamItem> {
        let mut out = Vec::new();
        self.pop_run_into(max, min_other_ts, &mut out);
        out
    }

    /// Append every item of an iterator (bulk [`Queue::push`]).
    pub fn extend<I: IntoIterator<Item = StreamItem>>(&mut self, items: I) {
        for item in items {
            self.items.push_back(item);
            self.total_enqueued += 1;
        }
        if self.items.len() > self.peak_len {
            self.peak_len = self.items.len();
        }
    }

    /// Timestamp of the oldest item without removing it.
    pub fn peek_timestamp(&self) -> Option<Timestamp> {
        self.items.front().map(|i| i.timestamp())
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Largest number of items ever held.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Total number of items ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::StreamId;

    #[test]
    fn item_timestamp_and_accessors() {
        let t = Tuple::of_ints(Timestamp::from_secs(4), StreamId::A, &[1]);
        let item = StreamItem::from(t.clone());
        assert_eq!(item.timestamp(), Timestamp::from_secs(4));
        assert_eq!(item.as_tuple(), Some(&t));
        assert!(!item.is_punctuation());
        assert_eq!(item.into_tuple(), Some(t));

        let p = StreamItem::from(Punctuation::new(Timestamp::from_secs(9)));
        assert_eq!(p.timestamp(), Timestamp::from_secs(9));
        assert!(p.is_punctuation());
        assert_eq!(p.as_tuple(), None);
        assert_eq!(p.into_tuple(), None);
    }

    fn at(secs: u64) -> StreamItem {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[0]).into()
    }

    #[test]
    fn pop_run_stops_at_the_other_ports_head() {
        let mut q = Queue::new();
        for s in [1u64, 2, 4, 7] {
            q.push(at(s));
        }
        // Bound 4 (inclusive): the run is 1, 2, 4; 7 stays queued.
        let run = q.pop_run(10, Some(Timestamp::from_secs(4)));
        let ts: Vec<u64> = run
            .iter()
            .map(|i| i.timestamp().as_micros() / 1_000_000)
            .collect();
        assert_eq!(ts, vec![1, 2, 4]);
        assert_eq!(q.len(), 1);
        // Nothing at or below the bound left: empty run, queue untouched.
        assert!(q.pop_run(10, Some(Timestamp::from_secs(6))).is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_run_includes_equal_timestamps_and_respects_max() {
        let mut q = Queue::new();
        for s in [3u64, 3, 3, 5] {
            q.push(at(s));
        }
        // Equal timestamps are all part of one run (inclusive bound)...
        let run = q.pop_run(10, Some(Timestamp::from_secs(3)));
        assert_eq!(run.len(), 3);
        // ...and `max` caps a run mid-way without losing order.
        q.push(at(5));
        let run = q.pop_run(1, None);
        assert_eq!(run.len(), 1);
        assert_eq!(run[0].timestamp(), Timestamp::from_secs(5));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_run_with_empty_other_port_drains_everything() {
        let mut q = Queue::new();
        for s in [1u64, 9, 20] {
            q.push(at(s));
        }
        // No other-port head (bound None): the run is the whole queue.
        let run = q.pop_run(10, None);
        assert_eq!(run.len(), 3);
        assert!(q.is_empty());
        assert!(q.pop_run(10, None).is_empty());
    }

    #[test]
    fn pop_run_orders_punctuations_by_watermark() {
        let mut q = Queue::new();
        q.push(at(1));
        q.push(Punctuation::new(Timestamp::from_secs(2)).into());
        q.push(at(4));
        // The punctuation's watermark is its run timestamp: a bound of 2
        // takes the tuple and the punctuation but not the later tuple.
        let run = q.pop_run(10, Some(Timestamp::from_secs(2)));
        assert_eq!(run.len(), 2);
        assert!(run[1].is_punctuation());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_run_columnar_transposes_the_leading_tuple_run() {
        let mut q = Queue::new();
        for s in [1u64, 2, 4] {
            q.push(at(s));
        }
        q.push(Punctuation::new(Timestamp::from_secs(5)).into());
        q.push(at(6));

        // Bound 4 (inclusive) with a punctuation behind: only tuples join the
        // batch, the punctuation stays queued for the row path.
        let mut batch = ColumnBatch::new();
        let popped = q.pop_run_columnar(10, Some(Timestamp::from_secs(4)), &mut batch);
        assert_eq!(popped, 3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.first_ts(), Some(Timestamp::from_secs(1)));
        assert_eq!(batch.last_ts(), Some(Timestamp::from_secs(4)));
        assert!(q.pop().unwrap().is_punctuation());

        // Arity mismatch leaves the tuple queued (caller flushes and retries).
        let mut narrow = ColumnBatch::new();
        assert!(narrow.push_tuple(&Tuple::of_ints(
            Timestamp::from_secs(5),
            StreamId::A,
            &[1, 2, 3]
        )));
        assert_eq!(q.pop_run_columnar(10, None, &mut narrow), 0);
        assert_eq!(q.len(), 1);

        // A queued batch item carries the first row's timestamp and is opaque
        // to the tuple-run pop.
        let mut tail = ColumnBatch::new();
        assert_eq!(q.pop_run_columnar(10, None, &mut tail), 1);
        let item = StreamItem::from(tail);
        assert_eq!(item.timestamp(), Timestamp::from_secs(6));
        assert_eq!(item.as_tuple(), None);
        q.push(item);
        let mut other = ColumnBatch::new();
        assert_eq!(q.pop_run_columnar(10, None, &mut other), 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn extend_bulk_pushes_and_tracks_stats() {
        let mut q = Queue::new();
        q.extend([at(1), at(2), at(3)]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peak_len(), 3);
        assert_eq!(q.total_enqueued(), 3);
        assert_eq!(q.peek_timestamp(), Some(Timestamp::from_secs(1)));
    }

    #[test]
    fn queue_fifo_and_stats() {
        let mut q = Queue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_timestamp(), None);
        for s in 1..=3u64 {
            q.push(Tuple::of_ints(Timestamp::from_secs(s), StreamId::A, &[s as i64]).into());
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.peak_len(), 3);
        assert_eq!(q.total_enqueued(), 3);
        assert_eq!(q.peek_timestamp(), Some(Timestamp::from_secs(1)));
        let first = q.pop().unwrap();
        assert_eq!(first.timestamp(), Timestamp::from_secs(1));
        assert_eq!(q.len(), 2);
        // Peak length remembers the high-water mark.
        q.pop();
        q.pop();
        assert!(q.pop().is_none());
        assert_eq!(q.peak_len(), 3);
    }
}
