//! Inter-operator queues and the items they carry.

use std::collections::VecDeque;

use crate::punctuation::Punctuation;
use crate::time::Timestamp;
use crate::tuple::Tuple;

/// An item travelling through a queue: either a data tuple or a punctuation.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamItem {
    /// A data tuple.
    Tuple(Tuple),
    /// A progress marker.
    Punctuation(Punctuation),
}

impl StreamItem {
    /// Timestamp used for ordering decisions: the tuple timestamp or the
    /// punctuation watermark.
    pub fn timestamp(&self) -> Timestamp {
        match self {
            StreamItem::Tuple(t) => t.ts,
            StreamItem::Punctuation(p) => p.watermark,
        }
    }

    /// The contained tuple, if any.
    pub fn as_tuple(&self) -> Option<&Tuple> {
        match self {
            StreamItem::Tuple(t) => Some(t),
            StreamItem::Punctuation(_) => None,
        }
    }

    /// The contained tuple by value, if any.
    pub fn into_tuple(self) -> Option<Tuple> {
        match self {
            StreamItem::Tuple(t) => Some(t),
            StreamItem::Punctuation(_) => None,
        }
    }

    /// `true` if this is a punctuation.
    pub fn is_punctuation(&self) -> bool {
        matches!(self, StreamItem::Punctuation(_))
    }
}

impl From<Tuple> for StreamItem {
    fn from(t: Tuple) -> Self {
        StreamItem::Tuple(t)
    }
}

impl From<Punctuation> for StreamItem {
    fn from(p: Punctuation) -> Self {
        StreamItem::Punctuation(p)
    }
}

/// A FIFO queue between two operator ports.
///
/// Queue memory is tracked separately from operator state memory, matching the
/// paper's distinction between state memory and queue memory (Section 2).
#[derive(Debug, Default)]
pub struct Queue {
    items: VecDeque<StreamItem>,
    /// Largest number of items ever held.
    peak_len: usize,
    /// Total number of items ever enqueued.
    total_enqueued: u64,
}

impl Queue {
    /// An empty queue.
    pub fn new() -> Self {
        Queue::default()
    }

    /// Append an item.
    pub fn push(&mut self, item: StreamItem) {
        self.items.push_back(item);
        self.total_enqueued += 1;
        if self.items.len() > self.peak_len {
            self.peak_len = self.items.len();
        }
    }

    /// Remove and return the oldest item.
    pub fn pop(&mut self) -> Option<StreamItem> {
        self.items.pop_front()
    }

    /// Timestamp of the oldest item without removing it.
    pub fn peek_timestamp(&self) -> Option<Timestamp> {
        self.items.front().map(|i| i.timestamp())
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Largest number of items ever held.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Total number of items ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::StreamId;

    #[test]
    fn item_timestamp_and_accessors() {
        let t = Tuple::of_ints(Timestamp::from_secs(4), StreamId::A, &[1]);
        let item = StreamItem::from(t.clone());
        assert_eq!(item.timestamp(), Timestamp::from_secs(4));
        assert_eq!(item.as_tuple(), Some(&t));
        assert!(!item.is_punctuation());
        assert_eq!(item.into_tuple(), Some(t));

        let p = StreamItem::from(Punctuation::new(Timestamp::from_secs(9)));
        assert_eq!(p.timestamp(), Timestamp::from_secs(9));
        assert!(p.is_punctuation());
        assert_eq!(p.as_tuple(), None);
        assert_eq!(p.into_tuple(), None);
    }

    #[test]
    fn queue_fifo_and_stats() {
        let mut q = Queue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_timestamp(), None);
        for s in 1..=3u64 {
            q.push(Tuple::of_ints(Timestamp::from_secs(s), StreamId::A, &[s as i64]).into());
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.peak_len(), 3);
        assert_eq!(q.total_enqueued(), 3);
        assert_eq!(q.peek_timestamp(), Some(Timestamp::from_secs(1)));
        let first = q.pop().unwrap();
        assert_eq!(first.timestamp(), Timestamp::from_secs(1));
        assert_eq!(q.len(), 2);
        // Peak length remembers the high-water mark.
        q.pop();
        q.pop();
        assert!(q.pop().is_none());
        assert_eq!(q.peak_len(), 3);
    }
}
