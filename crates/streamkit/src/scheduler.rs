//! Operator scheduling policies.
//!
//! The paper's experimental system (CAPE) uses round-robin scheduling of
//! operators (Section 7.1); the correctness of the state-slice chain is
//! independent of the scheduling policy (Section 4.1).  The executor is
//! parameterised over a [`Scheduler`] so that this independence can be
//! exercised in tests.

/// A scheduling policy: given the current queue backlogs, fill `order` with
/// the node indexes to visit this round.  `order` arrives empty and is reused
/// across rounds to avoid per-round allocation.
pub trait Scheduler: Send {
    /// Produce the node visit order for the next round.  `backlog[i]` is the
    /// number of items currently queued at node `i`.
    fn next_round(&mut self, backlog: &[usize], order: &mut Vec<usize>);
}

/// Visit every operator once per round, in plan order (CAPE's policy).
#[derive(Debug, Default, Clone)]
pub struct RoundRobinScheduler;

impl Scheduler for RoundRobinScheduler {
    fn next_round(&mut self, backlog: &[usize], order: &mut Vec<usize>) {
        order.extend(0..backlog.len());
    }
}

/// Visit operators in reverse plan order.  Used in tests to demonstrate that
/// results are independent of the scheduling order.
#[derive(Debug, Default, Clone)]
pub struct ReverseScheduler;

impl Scheduler for ReverseScheduler {
    fn next_round(&mut self, backlog: &[usize], order: &mut Vec<usize>) {
        order.extend((0..backlog.len()).rev());
    }
}

/// Visit the most backlogged operators first (a simple load-aware policy in
/// the spirit of the intra-operator scheduling work the paper cites [13]).
#[derive(Debug, Default, Clone)]
pub struct LongestQueueFirstScheduler;

impl Scheduler for LongestQueueFirstScheduler {
    fn next_round(&mut self, backlog: &[usize], order: &mut Vec<usize>) {
        order.extend(0..backlog.len());
        order.sort_by_key(|&i| std::cmp::Reverse(backlog[i]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round<S: Scheduler>(s: &mut S, backlog: &[usize]) -> Vec<usize> {
        let mut order = Vec::new();
        s.next_round(backlog, &mut order);
        order
    }

    #[test]
    fn round_robin_visits_in_plan_order() {
        let mut s = RoundRobinScheduler;
        assert_eq!(round(&mut s, &[0, 3, 1]), vec![0, 1, 2]);
        assert_eq!(round(&mut s, &[]), Vec::<usize>::new());
    }

    #[test]
    fn reverse_visits_backwards() {
        let mut s = ReverseScheduler;
        assert_eq!(round(&mut s, &[0, 0, 0]), vec![2, 1, 0]);
    }

    #[test]
    fn longest_queue_first_prioritises_backlog() {
        let mut s = LongestQueueFirstScheduler;
        assert_eq!(round(&mut s, &[1, 5, 3]), vec![1, 2, 0]);
    }
}
