//! Hash-sharded parallel plan execution on a persistent worker pool.
//!
//! The paper proves (Section 4.1, Lemma 1) that the results of a state-sliced
//! chain are independent of operator scheduling, and its order-preserving
//! union is driven purely by punctuations (Section 4.3).  For an equi-join
//! workload this has a strong consequence: the input streams can be
//! **hash-partitioned by the canonical join key**, and the same plan executed
//! once per partition on its own worker, without changing any query's
//! result multiset — two tuples can only join when their keys are equal, and
//! equal keys land on the same shard.
//!
//! [`ShardedExecutor`] packages that: it owns `N` [`Executor`]s over `N`
//! instances of the same [`Plan`], routes every ingested tuple to the shard
//! owning its key ([`ShardSpec`]), broadcasts punctuations to all shards,
//! and merges the per-shard [`ExecutionReport`]s into one report with the
//! usual schema ([`ExecutionReport::merge`]).
//!
//! ## Persistent worker pool
//!
//! Execution runs on a [`WorkerPool`](crate::pool::WorkerPool) created once
//! at construction: one long-lived worker per shard, fed by a bounded SPSC
//! ring of timestamp-ordered runs.  `run` never spawns threads.  Between
//! runs the executors are **parked** inside this wrapper, so
//! `pause`/`resume`/`swap_plans` and live-reslice plan surgery work on them
//! directly; a `run` call checks all executors out to their workers
//! ([`crate::pool::Job::Adopt`]), streams the buffered input runs, then
//! parks them back and merges reports.  The router buffers up to
//! [`ShardedExecutor::set_router_batch`] items per shard before forwarding a
//! run; a full ring blocks the router and is accounted in
//! [`crate::CostCounters::router_stalls`], with ring high-water marks in
//! [`crate::MemoryStats::peak_ring_runs`].
//!
//! ## Skew-aware hot-key routing
//!
//! Pure hash routing sends every tuple of one key to one shard, so a
//! Zipf-skewed key distribution concentrates the load on the busiest shard.
//! With [`ShardedExecutor::enable_skew`] the router keeps a space-bounded
//! heavy-hitter sketch ([`crate::skew`]) over canonical key hashes; when a
//! key crosses the hot threshold its stored probe-side (stream B) bucket is
//! replicated to every shard through the generic window-state migration
//! hooks ([`crate::Operator::drain_window_states`]), and from then on its B
//! tuples are broadcast to all shards while its A tuples are spread
//! round-robin.  Every result pair is still produced exactly once — an A
//! tuple lives in exactly one shard and meets the replicated B bucket there
//! — so the existing union/sink wiring needs no dedup step.  Hot keys do,
//! however, make the per-shard states overlap, so shard-count rescaling by
//! re-hashing must be refused while hot keys are active
//! ([`ShardedExecutor::has_hot_keys`]).
//!
//! ## Key canonicalisation
//!
//! Routing reuses the [`join_state`](crate::join_state) key equivalence
//! ([`canonical_key_hash`]): `Int(3)` and `Float(3.0)` land on the same
//! shard, `-0.0` travels with `+0.0`, and so on — the same classes the
//! hash-indexed join state buckets by, so a shard's index sees exactly the
//! candidates the unsharded index would.  Two degenerate keys get special
//! treatment:
//!
//! * a **missing key attribute** never satisfies an equi condition, so the
//!   tuple's placement is irrelevant; it goes to shard 0,
//! * a **`NaN` key** equi-joins *every* number under this tree's comparison
//!   semantics, which no partition function can honour; such tuples also go
//!   to shard 0 and the shard-invariance guarantee is void for workloads
//!   that join on `NaN` keys (real deployments reject them at ingest).

use crate::error::{Result, StreamError};
use crate::executor::{ExecutionReport, Executor, ExecutorConfig};
use crate::fault::FaultPlan;
use crate::join_state::{equi_key_fields, memoize_key, tuple_key};
use crate::plan::{NodeId, Plan};
use crate::pool::{Job, WorkerPool, DEFAULT_RING_CAPACITY};
use crate::predicate::JoinCondition;
use crate::queue::StreamItem;
use crate::skew::{HotKeyTracker, SkewConfig};
use crate::stats::StatsSnapshot;
use crate::tuple::{KeyClass, StreamId, Tuple};

/// Default number of items the router buffers per shard before forwarding
/// them to the shard's worker as one run.
pub const DEFAULT_ROUTER_BATCH: usize = 128;

/// Every multi-shard session holds its worker pool for life; a missing pool
/// is an internal invariant breach, reported typed instead of panicking.
fn lost_pool() -> StreamError {
    StreamError::Execution("multi-shard session lost its worker pool".to_string())
}

/// How to extract the partitioning key from an input tuple: one key field
/// per join side (they differ for equi conditions like `A.x = B.y`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    stream_a: StreamId,
    field_a: usize,
    stream_b: StreamId,
    field_b: usize,
}

impl ShardSpec {
    /// Both streams carry the key in the same field (the common
    /// `A.k = B.k` case).
    pub fn symmetric(field: usize) -> ShardSpec {
        ShardSpec {
            stream_a: StreamId::A,
            field_a: field,
            stream_b: StreamId::B,
            field_b: field,
        }
    }

    /// Explicit per-stream key fields.
    pub fn per_stream(
        stream_a: StreamId,
        field_a: usize,
        stream_b: StreamId,
        field_b: usize,
    ) -> ShardSpec {
        ShardSpec {
            stream_a,
            field_a,
            stream_b,
            field_b,
        }
    }

    /// Derive the spec from a join condition's first equi component, or
    /// `None` when the condition has no equi component — cross products and
    /// pure band/theta joins relate arbitrary key values, so no hash
    /// partition preserves their results.
    pub fn from_condition(
        cond: &JoinCondition,
        stream_a: StreamId,
        stream_b: StreamId,
    ) -> Option<ShardSpec> {
        let (field_a, field_b) = equi_key_fields(cond, true)?;
        Some(ShardSpec {
            stream_a,
            field_a,
            stream_b,
            field_b,
        })
    }

    /// The stream whose stored tuples are replicated for hot keys (the
    /// probe / one-way side of the skew mitigation).
    pub fn stream_b(&self) -> StreamId {
        self.stream_b
    }

    /// The key field consulted for tuples of `stream` (tuples of unknown
    /// streams use the A-side field).
    pub fn key_field(&self, stream: StreamId) -> usize {
        if stream == self.stream_b {
            self.field_b
        } else {
            self.field_a
        }
    }

    /// The shard (out of `shards`) owning `tuple`'s join key, reusing the
    /// tuple's memoised canonical key hash when present.
    pub fn shard_of(&self, tuple: &Tuple, shards: usize) -> usize {
        debug_assert!(shards >= 1);
        Self::shard_for_class(tuple_key(tuple, self.key_field(tuple.stream)), shards)
    }

    /// Like [`ShardSpec::shard_of`], but memoises the canonical key hash on
    /// the tuple, so the shard's join states (and every slice of a chain)
    /// reuse the one hash computed at the routing step.
    pub fn route(&self, tuple: &mut Tuple, shards: usize) -> usize {
        debug_assert!(shards >= 1);
        Self::shard_for_class(memoize_key(tuple, self.key_field(tuple.stream)), shards)
    }

    fn shard_for_class(class: KeyClass, shards: usize) -> usize {
        match class {
            KeyClass::Hash(hash) => (hash % shards as u64) as usize,
            // Missing attribute (never joins) or NaN (unpartitionable, see
            // the module docs): a fixed shard keeps routing deterministic.
            KeyClass::Nan | KeyClass::Missing => 0,
        }
    }
}

/// Router-side routing statistics, cumulative over the executor's lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Tuples delivered to each shard, **including** broadcast copies of hot
    /// probe-side tuples (this is the per-shard load the workers actually
    /// see; punctuations are not counted).
    pub routed_tuples: Vec<u64>,
    /// Tuples routed by hash (cold keys, NaN, missing).
    pub hash_routed: u64,
    /// Hot probe-side (stream B) tuples broadcast to all shards, counted
    /// once per source tuple.
    pub hot_broadcast: u64,
    /// Hot build-side (stream A) tuples spread round-robin.
    pub hot_spread: u64,
    /// Keys promoted to the hot set.
    pub promotions: u64,
    /// Keys demoted from the hot set after their share decayed (their
    /// replicated state was migrated back to hash routing).
    pub demotions: u64,
    /// Times the router blocked on a full worker ring.
    pub stalls: u64,
}

impl RouterStats {
    fn new(shards: usize) -> Self {
        RouterStats {
            routed_tuples: vec![0; shards],
            ..RouterStats::default()
        }
    }

    /// The busiest shard's share of all delivered tuples (`1/N` is perfectly
    /// balanced, `1.0` fully concentrated); `0.0` before any tuple routed.
    pub fn busiest_share(&self) -> f64 {
        let total: u64 = self.routed_tuples.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let max = self.routed_tuples.iter().copied().max().unwrap_or(0);
        max as f64 / total as f64
    }
}

/// Runs `N` instances of one plan in parallel over hash-partitioned input.
///
/// Build it from `N` structurally identical plans (e.g. materialised by a
/// plan factory), ingest through the same entry names as a single
/// [`Executor`], then [`run`](ShardedExecutor::run): the persistent workers
/// execute the buffered runs and the merged report is returned.
pub struct ShardedExecutor {
    /// Parked executors in shard order; empty while checked out to workers.
    shards: Vec<Executor>,
    count: usize,
    spec: ShardSpec,
    /// The persistent workers; `None` only for the 1-shard fast path.
    pool: Option<WorkerPool>,
    /// Whether the executors are currently checked out to the workers.
    active: bool,
    /// Per-shard buffered runs: consecutive items for the same entry batch
    /// into one `Job::Run`.
    pending: Vec<Vec<(String, Vec<StreamItem>)>>,
    pending_len: Vec<usize>,
    router_batch: usize,
    entry_names: Vec<String>,
    skew: Option<HotKeyTracker>,
    stats: RouterStats,
}

impl std::fmt::Debug for ShardedExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedExecutor")
            .field("shards", &self.count)
            .field("spec", &self.spec)
            .field("active", &self.active)
            .field("skew", &self.skew.is_some())
            .finish()
    }
}

impl ShardedExecutor {
    /// Wrap one executor per plan with the default configuration.
    pub fn new(plans: Vec<Plan>, spec: ShardSpec) -> Result<Self> {
        ShardedExecutor::with_config(plans, spec, ExecutorConfig::default())
    }

    /// Wrap one executor per plan with an explicit configuration.
    ///
    /// The plans must be instances of the same logical plan (same number of
    /// nodes, same operator names in the same order): report merging sums
    /// per-node statistics position-wise, and differing plans would produce
    /// different results per shard anyway.
    pub fn with_config(plans: Vec<Plan>, spec: ShardSpec, config: ExecutorConfig) -> Result<Self> {
        Self::validate_instances(plans.iter())?;
        let executors = plans
            .into_iter()
            .map(|p| Executor::with_config(p, config.clone()))
            .collect();
        Ok(Self::assemble(executors, spec))
    }

    /// Wrap already-built executors (e.g. a single running [`Executor`] being
    /// promoted into a live-reslicing session).  The executors' plans must be
    /// instances of the same logical plan, like
    /// [`ShardedExecutor::with_config`].
    pub fn from_executors(executors: Vec<Executor>, spec: ShardSpec) -> Result<Self> {
        Self::validate_instances(executors.iter().map(|e| e.plan()))?;
        Ok(Self::assemble(executors, spec))
    }

    fn assemble(executors: Vec<Executor>, spec: ShardSpec) -> Self {
        let count = executors.len();
        let entry_names = executors[0]
            .plan()
            .entry_names()
            .into_iter()
            .map(String::from)
            .collect();
        ShardedExecutor {
            shards: executors,
            count,
            spec,
            // One persistent worker per shard, created exactly once; the
            // 1-shard case runs inline and needs no pool.
            pool: (count > 1).then(|| WorkerPool::new(count, DEFAULT_RING_CAPACITY)),
            active: false,
            pending: vec![Vec::new(); count],
            pending_len: vec![0; count],
            router_batch: DEFAULT_ROUTER_BATCH,
            entry_names,
            skew: None,
            stats: RouterStats::new(count),
        }
    }

    fn validate_instances<'a>(plans: impl Iterator<Item = &'a Plan>) -> Result<()> {
        let mut reference: Option<Vec<&str>> = None;
        for (i, plan) in plans.enumerate() {
            let names: Vec<&str> = plan.nodes().iter().map(|n| n.operator.name()).collect();
            match &reference {
                None => reference = Some(names),
                Some(first) if &names != first => {
                    return Err(StreamError::InvalidConfig(format!(
                        "shard plan {i} is not an instance of shard plan 0 \
                         (operator lists differ)"
                    )));
                }
                Some(_) => {}
            }
        }
        if reference.is_none() {
            return Err(StreamError::InvalidConfig(
                "a sharded executor needs at least one plan instance".to_string(),
            ));
        }
        Ok(())
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.count
    }

    /// The partitioning spec.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Set the number of items the router buffers per shard before
    /// forwarding them to the worker as one run (minimum 1).  Smaller
    /// batches surface backpressure earlier; larger ones amortise ring
    /// synchronisation.
    pub fn set_router_batch(&mut self, items: usize) {
        self.router_batch = items.max(1);
    }

    /// Enable skew-aware hot-key routing (multi-shard only: a single shard
    /// has no imbalance to mitigate).
    pub fn enable_skew(&mut self, config: SkewConfig) -> Result<()> {
        if self.count < 2 {
            return Err(StreamError::InvalidConfig(
                "skew-aware routing needs at least 2 shards".to_string(),
            ));
        }
        self.skew = Some(HotKeyTracker::new(config));
        Ok(())
    }

    /// Router-side routing statistics (cumulative).
    pub fn router_stats(&self) -> &RouterStats {
        &self.stats
    }

    /// `true` once any key has been promoted to replicate-to-all routing.
    /// While hot keys are active the per-shard states overlap, so rehash
    /// based shard-count rescaling would duplicate the replicated buckets
    /// and must be refused.
    pub fn has_hot_keys(&self) -> bool {
        self.skew
            .as_ref()
            .is_some_and(|tracker| !tracker.hot_keys().is_empty())
    }

    /// The promoted hot keys (canonical key hashes), in promotion order.
    pub fn hot_keys(&self) -> Vec<u64> {
        self.skew
            .as_ref()
            .map(|tracker| tracker.hot_keys().to_vec())
            .unwrap_or_default()
    }

    /// Peak occupancy of each worker's input ring (queued runs), by shard.
    pub fn ring_peaks(&self) -> Vec<usize> {
        self.pool
            .as_ref()
            .map(|pool| pool.ring_peaks())
            .unwrap_or_else(|| vec![0; self.count])
    }

    fn expect_parked(&self, what: &str) {
        assert!(
            !self.active,
            "{what}: executors are checked out to the worker pool; call run() first"
        );
    }

    /// The per-shard executors (shard index order).  Panics while a run is
    /// in flight (the executors are owned by the workers then).
    pub fn shards(&self) -> &[Executor] {
        self.expect_parked("shards()");
        &self.shards
    }

    /// Mutable access to the per-shard executors (used by online chain
    /// migration to swap plans and transplant operator state).  Panics while
    /// a run is in flight.
    pub fn shards_mut(&mut self) -> &mut [Executor] {
        self.expect_parked("shards_mut()");
        &mut self.shards
    }

    /// Decompose into the per-shard executors and the partitioning spec
    /// (shard-count rescaling rebuilds the wrapper from scratch).  The
    /// worker pool is torn down — its threads join — when the wrapper is
    /// consumed here.  Panics while a run is in flight.
    pub fn into_parts(self) -> (Vec<Executor>, ShardSpec) {
        self.expect_parked("into_parts()");
        (self.shards, self.spec)
    }

    /// `true` when the executors are parked in this wrapper (no run in
    /// flight).  Crash recovery checks this before attempting plan surgery:
    /// a run that failed *at the park barrier itself* (a worker died without
    /// handing its executor back) leaves the session active and
    /// unrecoverable.
    pub fn is_parked(&self) -> bool {
        !self.active
    }

    /// `true` if every shard's queues are drained and no input is buffered
    /// router-side (safe for plan surgery).
    pub fn is_drained(&self) -> bool {
        !self.active
            && self.pending_len.iter().all(|&n| n == 0)
            && self.shards.iter().all(|s| s.is_drained())
    }

    /// Mark the start of an execution pause on every shard (see
    /// [`Executor::pause`]).
    pub fn pause(&mut self) {
        self.expect_parked("pause()");
        for shard in &mut self.shards {
            shard.pause();
        }
    }

    /// End a pause on every shard (see [`Executor::resume`]).
    pub fn resume(&mut self) {
        self.expect_parked("resume()");
        for shard in &mut self.shards {
            shard.resume();
        }
    }

    /// Replace every shard's plan with a fresh instance, returning the old
    /// plans in shard order for state harvesting.  All shards must be
    /// drained; the instance count must match the shard count (rescaling the
    /// shard count instead redistributes states by re-hashing keys and
    /// rebuilds the wrapper via [`ShardedExecutor::into_parts`]).  Statistics
    /// stay cumulative per shard ([`Executor::swap_plan`]).
    pub fn swap_plans(&mut self, plans: Vec<Plan>) -> Result<Vec<Plan>> {
        if plans.len() != self.count {
            return Err(StreamError::InvalidConfig(format!(
                "got {} plan instances for {} shards",
                plans.len(),
                self.count
            )));
        }
        Self::validate_instances(plans.iter())?;
        if !self.is_drained() {
            return Err(StreamError::Execution(
                "cannot swap plans with items still queued; drain first".to_string(),
            ));
        }
        self.entry_names = plans[0]
            .entry_names()
            .into_iter()
            .map(String::from)
            .collect();
        let mut old = Vec::with_capacity(plans.len());
        for (shard, plan) in self.shards.iter_mut().zip(plans) {
            old.push(shard.swap_plan(plan)?);
        }
        Ok(old)
    }

    /// Arm a deterministic fault on one shard's executor (see
    /// [`crate::fault`]).  Panics while a run is in flight, like the other
    /// parked-state accessors.
    pub fn arm_fault(&mut self, shard: usize, plan: FaultPlan) -> Result<()> {
        self.expect_parked("arm_fault()");
        if shard >= self.count {
            return Err(StreamError::InvalidConfig(format!(
                "cannot arm a fault on shard {shard}: only {} shards",
                self.count
            )));
        }
        self.shards[shard].arm_fault(plan);
        Ok(())
    }

    /// Reset the session after a failed run so a checkpoint can be
    /// restored: drop the router-side buffered runs (they belong to work
    /// the crash lost) and replace every shard's plan with a fresh instance
    /// via [`Executor::recover_plan`] — which, unlike
    /// [`ShardedExecutor::swap_plans`], tolerates the queued items a caught
    /// worker panic leaves behind and drops them too.  Returns the total
    /// number of items dropped (router-side plus in-executor); the recovery
    /// supervisor re-delivers everything since the checkpoint from its
    /// replay ring.
    pub fn recover_reset(&mut self, plans: Vec<Plan>) -> Result<u64> {
        self.expect_parked("recover_reset()");
        if plans.len() != self.count {
            return Err(StreamError::InvalidConfig(format!(
                "got {} plan instances for {} shards",
                plans.len(),
                self.count
            )));
        }
        Self::validate_instances(plans.iter())?;
        let mut dropped: u64 = self.pending_len.iter().map(|&n| n as u64).sum();
        for buf in &mut self.pending {
            buf.clear();
        }
        for n in &mut self.pending_len {
            *n = 0;
        }
        self.entry_names = plans[0]
            .entry_names()
            .into_iter()
            .map(String::from)
            .collect();
        for (shard, plan) in self.shards.iter_mut().zip(plans) {
            dropped += shard.recover_plan(plan) as u64;
        }
        Ok(dropped)
    }

    /// The shard a tuple routes to under plain hash routing (hot keys
    /// excepted: their probe side broadcasts and their build side spreads).
    pub fn shard_of(&self, tuple: &Tuple) -> usize {
        self.spec.shard_of(tuple, self.count)
    }

    /// Ingest one item: tuples go to the shard owning their join key,
    /// punctuations are broadcast to every shard (a progress promise holds
    /// for all partitions of the stream).  The canonical key hash computed
    /// for routing is memoised on the tuple, so the shard's join states
    /// never recompute it.
    pub fn ingest(&mut self, entry: &str, item: impl Into<StreamItem>) -> Result<()> {
        self.ingest_routed(entry, item).map(|_| ())
    }

    /// Like [`ShardedExecutor::ingest`], but reports where the item went:
    /// `Some(shard index)` for a tuple placed on one shard, `None` for a
    /// broadcast item (punctuations, and hot-key probe-side tuples under
    /// skew-aware routing).  Live chain migration uses this to maintain
    /// per-shard progress watermarks without re-deriving the routing.
    pub fn ingest_routed(
        &mut self,
        entry: &str,
        item: impl Into<StreamItem>,
    ) -> Result<Option<usize>> {
        let item = item.into();
        if self.count == 1 {
            // Fast path: no routing, no pool.
            return match item {
                StreamItem::Tuple(mut t) => {
                    self.spec.route(&mut t, 1);
                    self.stats.routed_tuples[0] += 1;
                    self.stats.hash_routed += 1;
                    self.shards[0].ingest(entry, t)?;
                    Ok(Some(0))
                }
                StreamItem::Batch(b) => {
                    // Ingest-side batches are routed row by row (routing may
                    // scatter a batch's rows across shards in general).
                    for t in b.materialize() {
                        self.ingest_routed(entry, t)?;
                    }
                    Ok(None)
                }
                StreamItem::Punctuation(p) => {
                    self.shards[0].ingest(entry, p)?;
                    Ok(None)
                }
            };
        }
        self.check_entry(entry)?;
        match item {
            StreamItem::Tuple(mut t) => {
                let key_field = self.spec.key_field(t.stream);
                let class = memoize_key(&mut t, key_field);
                if let (Some(tracker), KeyClass::Hash(hash)) = (self.skew.as_mut(), class) {
                    if tracker.observe(hash) {
                        // Newly hot: replicate the key's stored probe-side
                        // bucket before routing anything else for it.
                        self.replicate_hot_key(hash)?;
                        self.stats.promotions += 1;
                    }
                    // Keys whose share decayed below the demotion threshold
                    // go back to hash routing before this tuple is placed.
                    let lost_tracker =
                        || StreamError::Execution("skew tracker vanished mid-routing".to_string());
                    let demoted = self
                        .skew
                        .as_mut()
                        .ok_or_else(lost_tracker)?
                        .take_demotions();
                    for cold in demoted {
                        self.demote_hot_key(cold)?;
                        self.stats.demotions += 1;
                    }
                    let tracker = self.skew.as_mut().ok_or_else(lost_tracker)?;
                    if tracker.is_hot(hash) {
                        if t.stream == self.spec.stream_b {
                            // Probe side: broadcast to every shard.
                            self.stats.hot_broadcast += 1;
                            for shard in 0..self.count {
                                self.stats.routed_tuples[shard] += 1;
                                self.push_pending(shard, entry, StreamItem::Tuple(t.clone()))?;
                            }
                            return Ok(None);
                        }
                        // Build side: spread round-robin.
                        let shard = tracker.next_spread(self.count);
                        self.stats.hot_spread += 1;
                        self.stats.routed_tuples[shard] += 1;
                        self.push_pending(shard, entry, StreamItem::Tuple(t))?;
                        return Ok(Some(shard));
                    }
                }
                let shard = ShardSpec::shard_for_class(class, self.count);
                self.stats.hash_routed += 1;
                self.stats.routed_tuples[shard] += 1;
                self.push_pending(shard, entry, StreamItem::Tuple(t))?;
                Ok(Some(shard))
            }
            StreamItem::Batch(b) => {
                // Routing may scatter a batch's rows across shards: route
                // each row individually.
                for t in b.materialize() {
                    self.ingest_routed(entry, t)?;
                }
                Ok(None)
            }
            StreamItem::Punctuation(p) => {
                for shard in 0..self.count {
                    self.push_pending(shard, entry, StreamItem::Punctuation(p))?;
                }
                Ok(None)
            }
        }
    }

    /// Ingest a batch of items (see [`ShardedExecutor::ingest`]).
    pub fn ingest_all<I>(&mut self, entry: &str, items: I) -> Result<()>
    where
        I: IntoIterator,
        I::Item: Into<StreamItem>,
    {
        for item in items {
            self.ingest(entry, item)?;
        }
        Ok(())
    }

    fn check_entry(&self, entry: &str) -> Result<()> {
        if self.entry_names.iter().any(|e| e == entry) {
            Ok(())
        } else {
            Err(StreamError::UnknownEntry(entry.to_string()))
        }
    }

    /// Buffer an item for `shard`, forwarding a run to the worker when the
    /// shard's buffer reaches the router batch size.
    fn push_pending(&mut self, shard: usize, entry: &str, item: StreamItem) -> Result<()> {
        let buf = &mut self.pending[shard];
        match buf.last_mut() {
            Some((e, items)) if e == entry => items.push(item),
            _ => buf.push((entry.to_string(), vec![item])),
        }
        self.pending_len[shard] += 1;
        if self.pending_len[shard] >= self.router_batch {
            self.flush_shard(shard)?;
        }
        Ok(())
    }

    /// Check all executors out to their workers.
    fn ensure_active(&mut self) -> Result<()> {
        if self.active {
            return Ok(());
        }
        let pool = self.pool.as_ref().ok_or_else(lost_pool)?;
        for (shard, exec) in self.shards.drain(..).enumerate() {
            pool.send(shard, Job::Adopt(Box::new(exec)))?;
        }
        self.active = true;
        Ok(())
    }

    /// Forward `shard`'s buffered runs to its worker.
    fn flush_shard(&mut self, shard: usize) -> Result<()> {
        if self.pending_len[shard] == 0 {
            return Ok(());
        }
        self.ensure_active()?;
        let runs = std::mem::take(&mut self.pending[shard]);
        self.pending_len[shard] = 0;
        let pool = self.pool.as_ref().ok_or_else(lost_pool)?;
        for (entry, items) in runs {
            if pool.send(shard, Job::Run { entry, items })? {
                self.stats.stalls += 1;
            }
        }
        Ok(())
    }

    /// Run every shard to quiescence on the persistent workers and merge the
    /// per-shard reports ([`ExecutionReport::merge`]).  No threads are
    /// spawned: the pool was created with the executor and is reused across
    /// every run and live-reslice epoch.
    pub fn run(&mut self) -> Result<ExecutionReport> {
        if self.count == 1 {
            // No parallelism to exploit; skip the pool machinery.
            return self.shards[0].run();
        }
        self.ensure_active()?;
        for shard in 0..self.count {
            self.flush_shard(shard)?;
        }
        let parked = self.pool.as_ref().ok_or_else(lost_pool)?.park_all()?;
        self.active = false;
        let mut first_err: Option<StreamError> = None;
        let mut executors = Vec::with_capacity(self.count);
        for shard in parked {
            match shard.executor {
                Some(exec) => executors.push(*exec),
                None => {
                    return Err(StreamError::Execution(
                        "a shard worker returned no executor".to_string(),
                    ))
                }
            }
            if let Err(err) = shard.outcome {
                first_err.get_or_insert(err);
            }
        }
        self.shards = executors;
        if let Some(err) = first_err {
            return Err(err);
        }
        // The executors are drained, so these run() calls are immediate and
        // only assemble the cumulative per-shard reports.
        let mut reports = Vec::with_capacity(self.count);
        for exec in &mut self.shards {
            reports.push(exec.run()?);
        }
        let mut merged = ExecutionReport::merge(reports);
        merged.totals.router_stalls = self.stats.stalls;
        merged.memory.peak_ring_runs = self.ring_peaks().iter().sum();
        Ok(merged)
    }

    /// Quiesce: process everything in flight and park the executors so plan
    /// state can be inspected or migrated.
    fn quiesce(&mut self) -> Result<()> {
        if self.active || self.pending_len.iter().any(|&n| n > 0) {
            self.run()?;
        }
        Ok(())
    }

    /// Replicate the stored probe-side bucket of a newly hot key to every
    /// shard, via the generic window-state migration hooks
    /// ([`crate::Operator::drain_window_states`]).
    ///
    /// The key's build-side (stream A) tuples stay where hash routing put
    /// them: future broadcast B tuples probe them there, and future spread A
    /// tuples meet the replicated B bucket wherever they land — each result
    /// pair is produced exactly once either way.
    fn replicate_hot_key(&mut self, hash: u64) -> Result<()> {
        self.quiesce()?;
        let spec = self.spec;
        let source = (hash % self.count as u64) as usize;
        let num_nodes = self.shards[source].plan().num_nodes();
        let is_hot_probe_tuple = |t: &Tuple| {
            t.stream == spec.stream_b
                && tuple_key(t, spec.key_field(t.stream)) == KeyClass::Hash(hash)
        };
        for node in 0..num_nodes {
            let node_id = NodeId(node);
            // Drain the source shard's states, copy out the hot bucket, and
            // load the source back unchanged.
            let Some((side_a, side_b)) = self.shards[source]
                .plan_mut()
                .node_mut(node_id)?
                .operator
                .drain_window_states()
            else {
                continue; // stateless / non-migratable operator
            };
            let hot_a: Vec<Tuple> = side_a
                .iter()
                .filter(|t| is_hot_probe_tuple(t))
                .cloned()
                .collect();
            let hot_b: Vec<Tuple> = side_b
                .iter()
                .filter(|t| is_hot_probe_tuple(t))
                .cloned()
                .collect();
            self.shards[source]
                .plan_mut()
                .node_mut(node_id)?
                .operator
                .load_window_states(side_a, side_b);
            if hot_a.is_empty() && hot_b.is_empty() {
                continue;
            }
            for shard in (0..self.count).filter(|&s| s != source) {
                let Some((mut side_a, mut side_b)) = self.shards[shard]
                    .plan_mut()
                    .node_mut(node_id)?
                    .operator
                    .drain_window_states()
                else {
                    continue;
                };
                // Replicas go after existing tuples, then a stable sort by
                // timestamp keeps arrival order within equal timestamps.
                side_a.extend(hot_a.iter().cloned());
                side_b.extend(hot_b.iter().cloned());
                side_a.sort_by_key(|t| t.ts);
                side_b.sort_by_key(|t| t.ts);
                self.shards[shard]
                    .plan_mut()
                    .node_mut(node_id)?
                    .operator
                    .load_window_states(side_a, side_b);
            }
        }
        Ok(())
    }

    /// Undo [`ShardedExecutor::replicate_hot_key`] for a demoted key: drop
    /// the replicated probe-side (stream B) copies from every shard except
    /// the key's hash home (the home kept the originals), and migrate the
    /// key's build-side (stream A) tuples — spread round-robin while the key
    /// was hot — back to the home shard.  After this the hash-routing
    /// invariant holds again for the key: every stored tuple lives on
    /// `hash % count`, every pair is still produced exactly once, and once
    /// no hot keys remain shard-count rescaling is unblocked.
    fn demote_hot_key(&mut self, hash: u64) -> Result<()> {
        self.quiesce()?;
        let spec = self.spec;
        let home = (hash % self.count as u64) as usize;
        let num_nodes = self.shards[home].plan().num_nodes();
        let key_matches =
            |t: &Tuple| tuple_key(t, spec.key_field(t.stream)) == KeyClass::Hash(hash);
        for node in 0..num_nodes {
            let node_id = NodeId(node);
            let mut moved_a: Vec<Tuple> = Vec::new();
            let mut moved_b: Vec<Tuple> = Vec::new();
            for shard in (0..self.count).filter(|&s| s != home) {
                let Some((side_a, side_b)) = self.shards[shard]
                    .plan_mut()
                    .node_mut(node_id)?
                    .operator
                    .drain_window_states()
                else {
                    continue; // stateless / non-migratable operator
                };
                let (take_a, keep_a): (Vec<Tuple>, Vec<Tuple>) =
                    side_a.into_iter().partition(&key_matches);
                let (take_b, keep_b): (Vec<Tuple>, Vec<Tuple>) =
                    side_b.into_iter().partition(&key_matches);
                // Probe-side copies are replicas of the home shard's
                // originals and are simply dropped; build-side tuples are
                // unique per shard and migrate home.
                moved_a.extend(take_a.into_iter().filter(|t| t.stream != spec.stream_b));
                moved_b.extend(take_b.into_iter().filter(|t| t.stream != spec.stream_b));
                self.shards[shard]
                    .plan_mut()
                    .node_mut(node_id)?
                    .operator
                    .load_window_states(keep_a, keep_b);
            }
            if moved_a.is_empty() && moved_b.is_empty() {
                continue;
            }
            let Some((mut side_a, mut side_b)) = self.shards[home]
                .plan_mut()
                .node_mut(node_id)?
                .operator
                .drain_window_states()
            else {
                continue;
            };
            side_a.extend(moved_a);
            side_b.extend(moved_b);
            side_a.sort_by_key(|t| t.ts);
            side_b.sort_by_key(|t| t.ts);
            self.shards[home]
                .plan_mut()
                .node_mut(node_id)?
                .operator
                .load_window_states(side_a, side_b);
        }
        Ok(())
    }

    /// Measured-statistics snapshot of one logical sample, merged across
    /// shards ([`StatsSnapshot::merge`]), with the router's cumulative
    /// counters and the busiest shard's load share attached.  Panics while a
    /// run is in flight — sample between runs, like the per-shard accessors.
    pub fn stats_snapshot(&mut self) -> StatsSnapshot {
        self.expect_parked("stats_snapshot()");
        let snapshots = self
            .shards
            .iter_mut()
            .map(|shard| shard.stats_snapshot())
            .collect();
        let mut merged = StatsSnapshot::merge(snapshots);
        merged.busiest_shard_share = self.stats.busiest_share();
        merged.router = Some(self.stats.clone());
        merged
    }

    /// All tuples the named retaining sink collected, gathered across shards
    /// (shard index order; within a shard, the sink's delivery order).
    /// Panics while a run is in flight.
    pub fn sink_collected(&self, name: &str) -> Vec<Tuple> {
        self.expect_parked("sink_collected()");
        self.shards
            .iter()
            .filter_map(|shard| shard.plan().sink(name))
            .flat_map(|sink| sink.collected().iter().cloned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{SinkOp, WindowJoinOp};
    use crate::predicate::JoinCondition;
    use crate::punctuation::Punctuation;
    use crate::time::Timestamp;
    use crate::tuple::Value;
    use crate::window::WindowSpec;

    fn a(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::A, &[key])
    }

    fn b(secs: u64, key: i64) -> Tuple {
        Tuple::of_ints(Timestamp::from_secs(secs), StreamId::B, &[key])
    }

    fn join_plan(retain: bool) -> Plan {
        let mut builder = Plan::builder();
        let join = builder.add_op(WindowJoinOp::symmetric(
            "join",
            WindowSpec::from_secs(10),
            JoinCondition::equi(0),
        ));
        let sink = builder.add_op(if retain {
            SinkOp::retaining("q1")
        } else {
            SinkOp::new("q1")
        });
        builder.connect(join, 0, sink, 0);
        builder.entry("A", join, 0);
        builder.entry("B", join, 1);
        builder.build().unwrap()
    }

    fn inputs() -> (Vec<Tuple>, Vec<Tuple>) {
        let aa: Vec<Tuple> = (0..60).map(|i| a(i, (i % 7) as i64)).collect();
        let bb: Vec<Tuple> = (0..60).map(|i| b(i, (i % 5) as i64)).collect();
        (aa, bb)
    }

    fn run_with_shards(n: usize) -> (ExecutionReport, Vec<Tuple>) {
        let plans: Vec<Plan> = (0..n).map(|_| join_plan(true)).collect();
        let mut exec = ShardedExecutor::new(plans, ShardSpec::symmetric(0)).unwrap();
        let (aa, bb) = inputs();
        exec.ingest_all("A", aa).unwrap();
        exec.ingest_all("B", bb).unwrap();
        let report = exec.run().unwrap();
        (report, exec.sink_collected("q1"))
    }

    fn result_fingerprints(mut tuples: Vec<Tuple>) -> Vec<(Timestamp, crate::TimeDelta)> {
        let key = |t: &Tuple| (t.ts, t.origin_span);
        tuples.sort_by_key(key);
        tuples.iter().map(key).collect()
    }

    #[test]
    fn sharded_run_matches_single_shard_results() {
        let (single, single_tuples) = run_with_shards(1);
        let (sharded, sharded_tuples) = run_with_shards(4);
        assert_eq!(single.sink_count("q1"), sharded.sink_count("q1"));
        assert_eq!(single.ingested, sharded.ingested);
        assert!(single.sink_count("q1") > 0);
        // Same result multiset, shard-count invisible.
        assert_eq!(
            result_fingerprints(single_tuples),
            result_fingerprints(sharded_tuples)
        );
        // Equi probes touch the same buckets in either layout.
        assert_eq!(
            single.totals.probe_comparisons,
            sharded.totals.probe_comparisons
        );
        assert_eq!(sharded.node_stats.len(), single.node_stats.len());
    }

    #[test]
    fn tuples_route_by_canonical_key_and_punctuations_broadcast() {
        let plans: Vec<Plan> = (0..3).map(|_| join_plan(false)).collect();
        let mut exec = ShardedExecutor::new(plans, ShardSpec::symmetric(0)).unwrap();
        assert_eq!(exec.num_shards(), 3);
        // Same canonical key -> same shard, Int/Float equivalence included.
        let int_key = a(1, 9);
        let float_key = Tuple::new(
            Timestamp::from_secs(2),
            StreamId::A,
            vec![Value::Float(9.0)],
        );
        assert_eq!(exec.shard_of(&int_key), exec.shard_of(&float_key));
        // NaN and missing keys route deterministically to shard 0.
        let nan = Tuple::new(
            Timestamp::from_secs(3),
            StreamId::A,
            vec![Value::Float(f64::NAN)],
        );
        assert_eq!(exec.shard_of(&nan), 0);
        let missing = Tuple::new(Timestamp::from_secs(3), StreamId::A, vec![]);
        assert_eq!(exec.shard_of(&missing), 0);
        // Punctuations reach every shard; tuples exactly one.
        exec.ingest("A", a(1, 4)).unwrap();
        exec.ingest("A", Punctuation::new(Timestamp::from_secs(5)))
            .unwrap();
        let report = exec.run().unwrap();
        assert_eq!(report.ingested, 1);
    }

    #[test]
    fn per_stream_key_fields_follow_the_condition() {
        // A.1 = B.0: A tuples key on field 1, B tuples on field 0.
        let cond = JoinCondition::Equi {
            left_field: 1,
            right_field: 0,
        };
        let spec = ShardSpec::from_condition(&cond, StreamId::A, StreamId::B).unwrap();
        assert_eq!(spec.key_field(StreamId::A), 1);
        assert_eq!(spec.key_field(StreamId::B), 0);
        assert_eq!(spec.stream_b(), StreamId::B);
        let a_tuple = Tuple::of_ints(Timestamp::from_secs(1), StreamId::A, &[99, 5]);
        let b_tuple = Tuple::of_ints(Timestamp::from_secs(2), StreamId::B, &[5, 42]);
        for shards in [2usize, 3, 8] {
            assert_eq!(
                spec.shard_of(&a_tuple, shards),
                spec.shard_of(&b_tuple, shards),
                "joinable tuples must co-locate for {shards} shards"
            );
        }
        // Non-equi conditions cannot be hash-partitioned.
        assert!(
            ShardSpec::from_condition(&JoinCondition::Cross, StreamId::A, StreamId::B).is_none()
        );
    }

    #[test]
    fn mismatched_plan_instances_are_rejected() {
        let mut other = Plan::builder();
        let sink = other.add_op(SinkOp::new("different"));
        other.entry("A", sink, 0);
        let plans = vec![join_plan(false), other.build().unwrap()];
        assert!(ShardedExecutor::new(plans, ShardSpec::symmetric(0)).is_err());
        assert!(ShardedExecutor::new(Vec::new(), ShardSpec::symmetric(0)).is_err());
    }

    #[test]
    fn routed_ingest_reports_the_shard_and_swap_plans_checks_shape() {
        let plans: Vec<Plan> = (0..2).map(|_| join_plan(false)).collect();
        let mut exec = ShardedExecutor::new(plans, ShardSpec::symmetric(0)).unwrap();
        let t = a(1, 4);
        let expected = exec.shard_of(&t);
        assert_eq!(exec.ingest_routed("A", t).unwrap(), Some(expected));
        assert_eq!(
            exec.ingest_routed("A", Punctuation::new(Timestamp::from_secs(2)))
                .unwrap(),
            None
        );
        // Unknown entries are rejected at the router.
        assert!(exec.ingest("nope", a(1, 1)).is_err());
        // Swapping while undrained is refused; after a run it succeeds.
        let fresh: Vec<Plan> = (0..2).map(|_| join_plan(false)).collect();
        assert!(!exec.is_drained());
        assert!(exec.swap_plans(fresh).is_err());
        exec.run().unwrap();
        assert!(exec.is_drained());
        let fresh: Vec<Plan> = (0..2).map(|_| join_plan(false)).collect();
        let old = exec.swap_plans(fresh).unwrap();
        assert_eq!(old.len(), 2);
        // Wrong instance count is rejected up front.
        assert!(exec.swap_plans(vec![join_plan(false)]).is_err());
        // Pause/resume fan out to every shard.
        exec.pause();
        exec.resume();
        // from_executors round-trips through into_parts.
        let (executors, spec) = exec.into_parts();
        let rebuilt = ShardedExecutor::from_executors(executors, spec).unwrap();
        assert_eq!(rebuilt.num_shards(), 2);
        assert!(ShardedExecutor::from_executors(Vec::new(), ShardSpec::symmetric(0)).is_err());
    }

    #[test]
    fn merged_report_sums_counts_and_takes_wall_clock_max() {
        let (sharded, _) = run_with_shards(2);
        let expected: u64 = sharded
            .node_stats
            .iter()
            .map(|n| n.counters.tuples_processed)
            .sum();
        assert_eq!(sharded.totals.tuples_processed, expected);
        assert!(sharded.elapsed_secs > 0.0);
        assert!(sharded.service_rate() > 0.0);
    }

    #[test]
    fn pool_is_reused_across_runs_and_reports_ring_peaks() {
        let plans: Vec<Plan> = (0..2).map(|_| join_plan(true)).collect();
        let mut exec = ShardedExecutor::new(plans, ShardSpec::symmetric(0)).unwrap();
        exec.set_router_batch(4); // small runs: exercise the rings
        let (aa, bb) = inputs();
        exec.ingest_all("A", aa.clone()).unwrap();
        let first = exec.run().unwrap();
        assert!(first.memory.peak_ring_runs > 0, "runs flowed through rings");
        // Second run on the SAME pool: more input, cumulative reports.
        exec.ingest_all("B", bb).unwrap();
        let second = exec.run().unwrap();
        assert!(second.ingested > first.ingested);
        assert!(second.sink_count("q1") > 0);
        // Stall counter is monotone (may be zero on a fast consumer).
        assert!(second.totals.router_stalls >= first.totals.router_stalls);
        assert_eq!(exec.router_stats().stalls, second.totals.router_stalls);
        // And a third, empty run still works.
        let third = exec.run().unwrap();
        assert_eq!(third.ingested, second.ingested);
    }

    #[test]
    fn skew_routing_requires_multiple_shards() {
        let mut exec =
            ShardedExecutor::new(vec![join_plan(false)], ShardSpec::symmetric(0)).unwrap();
        assert!(exec.enable_skew(SkewConfig::default()).is_err());
    }

    /// A skew config that promotes a heavy key quickly and never demotes
    /// (for the promotion-path tests).
    fn eager_skew() -> SkewConfig {
        SkewConfig {
            hot_share: 0.3,
            min_observations: 8,
            sketch_capacity: 16,
            max_hot_keys: 2,
            demote_observations: 0,
        }
    }

    fn skewed_inputs() -> (Vec<Tuple>, Vec<Tuple>) {
        // Key 0 carries ~60% of the load on both streams.
        let heavy = |i: usize| if i % 5 < 3 { 0 } else { (i % 5) as i64 };
        let aa: Vec<Tuple> = (0..80).map(|i| a(i as u64, heavy(i))).collect();
        let bb: Vec<Tuple> = (0..80).map(|i| b(i as u64, heavy(i + 1))).collect();
        (aa, bb)
    }

    fn interleaved(aa: Vec<Tuple>, bb: Vec<Tuple>) -> Vec<Tuple> {
        let mut all: Vec<Tuple> = aa.into_iter().chain(bb).collect();
        all.sort_by_key(|t| t.ts);
        all
    }

    #[test]
    fn hot_key_replication_matches_hash_only_results() {
        let (aa, bb) = skewed_inputs();
        let stream = interleaved(aa, bb);
        // Oracle: 1 shard, no skew handling.
        let mut oracle =
            ShardedExecutor::new(vec![join_plan(true)], ShardSpec::symmetric(0)).unwrap();
        for t in &stream {
            let entry = if t.stream == StreamId::A { "A" } else { "B" };
            oracle.ingest(entry, t.clone()).unwrap();
        }
        let oracle_report = oracle.run().unwrap();
        // Skew-aware: 4 shards, hot key promoted mid-run.
        let plans: Vec<Plan> = (0..4).map(|_| join_plan(true)).collect();
        let mut skewed = ShardedExecutor::new(plans, ShardSpec::symmetric(0)).unwrap();
        skewed.enable_skew(eager_skew()).unwrap();
        skewed.set_router_batch(8);
        for t in &stream {
            let entry = if t.stream == StreamId::A { "A" } else { "B" };
            skewed.ingest(entry, t.clone()).unwrap();
        }
        let report = skewed.run().unwrap();
        assert!(skewed.has_hot_keys(), "the heavy key must get promoted");
        assert_eq!(
            skewed.router_stats().promotions,
            skewed.hot_keys().len() as u64
        );
        assert!(skewed.router_stats().hot_broadcast > 0);
        assert!(skewed.router_stats().hot_spread > 0);
        // Identical results and probe work despite replication.
        assert_eq!(
            result_fingerprints(oracle.sink_collected("q1")),
            result_fingerprints(skewed.sink_collected("q1"))
        );
        assert_eq!(oracle_report.sink_count("q1"), report.sink_count("q1"));
        assert_eq!(
            oracle_report.totals.probe_comparisons,
            report.totals.probe_comparisons
        );
        assert_eq!(oracle_report.totals.items_dropped, 0);
        assert_eq!(report.totals.items_dropped, 0);
    }

    #[test]
    fn sharded_stats_snapshot_merges_shards_and_attaches_router_stats() {
        let plans: Vec<Plan> = (0..2).map(|_| join_plan(false)).collect();
        let mut exec = ShardedExecutor::new(plans, ShardSpec::symmetric(0)).unwrap();
        let (aa, bb) = inputs();
        exec.ingest_all("A", aa).unwrap();
        exec.ingest_all("B", bb).unwrap();
        exec.run().unwrap();
        let snap = exec.stats_snapshot();
        assert_eq!(snap.seq, 1);
        assert_eq!(snap.ingested_delta, 120);
        assert!(snap.rate_a > 0.0 && snap.rate_b > 0.0);
        assert_eq!(snap.operators.len(), 2, "join + sink, merged shard-wise");
        let join = snap.operator("join").unwrap();
        assert_eq!(join.tuples_in, 120, "both shards' inputs sum");
        let router = snap.router.as_ref().expect("sharded snapshot has router");
        assert_eq!(router.routed_tuples.iter().sum::<u64>(), 120);
        assert!(
            snap.busiest_shard_share >= 0.5,
            "two shards: max share >= 1/2"
        );
        // A second sample with no traffic has zero deltas.
        let snap2 = exec.stats_snapshot();
        assert_eq!(snap2.seq, 2);
        assert_eq!(snap2.ingested_delta, 0);
        assert_eq!(snap2.operator("join").unwrap().tuples_in, 0);
    }

    #[test]
    fn demoted_hot_key_matches_hash_only_results_and_unblocks_rescale() {
        // Phase 1 (ts 0..80): key 0 carries ~60% of both streams.  Phase 2
        // (ts 80..480): key 0 cools to 5% but stays present, so arrivals
        // after the demotion still probe the migrated state.
        let mut stream = Vec::new();
        let heavy = |i: usize| if i % 5 < 3 { 0 } else { (i % 5) as i64 };
        for i in 0..80usize {
            stream.push(a(i as u64, heavy(i)));
            stream.push(b(i as u64, heavy(i + 1)));
        }
        let cool = |i: usize| {
            if i.is_multiple_of(20) {
                0
            } else {
                (i % 6 + 1) as i64
            }
        };
        for i in 0..400usize {
            let ts = (80 + i) as u64;
            stream.push(a(ts, cool(i)));
            stream.push(b(ts, cool(i + 3)));
        }
        stream.sort_by_key(|t| t.ts);
        let run = |skew: Option<SkewConfig>, shards: usize| {
            let plans: Vec<Plan> = (0..shards).map(|_| join_plan(true)).collect();
            let mut exec = ShardedExecutor::new(plans, ShardSpec::symmetric(0)).unwrap();
            if let Some(cfg) = skew {
                exec.enable_skew(cfg).unwrap();
                exec.set_router_batch(8);
            }
            for t in &stream {
                let entry = if t.stream == StreamId::A { "A" } else { "B" };
                exec.ingest(entry, t.clone()).unwrap();
            }
            let report = exec.run().unwrap();
            (exec, report)
        };
        let (oracle, oracle_report) = run(None, 1);
        let cfg = SkewConfig {
            demote_observations: 30,
            ..eager_skew()
        };
        let (skewed, report) = run(Some(cfg), 4);
        assert!(skewed.router_stats().promotions > 0, "key 0 promotes");
        assert!(
            skewed.router_stats().demotions > 0,
            "key 0 demotes once its share decays below hot_share/2"
        );
        assert!(
            !skewed.has_hot_keys(),
            "an empty hot set unblocks shard-count rescaling"
        );
        // Un-replication must preserve the exactly-once result multiset.
        assert_eq!(
            result_fingerprints(oracle.sink_collected("q1")),
            result_fingerprints(skewed.sink_collected("q1"))
        );
        assert_eq!(oracle_report.sink_count("q1"), report.sink_count("q1"));
        assert_eq!(report.totals.items_dropped, 0);
    }

    #[test]
    fn hot_key_routing_balances_the_busiest_shard() {
        let (aa, bb) = skewed_inputs();
        let stream = interleaved(aa, bb);
        let route_all = |skew: Option<SkewConfig>| {
            let plans: Vec<Plan> = (0..4).map(|_| join_plan(false)).collect();
            let mut exec = ShardedExecutor::new(plans, ShardSpec::symmetric(0)).unwrap();
            if let Some(cfg) = skew {
                exec.enable_skew(cfg).unwrap();
            }
            for t in &stream {
                let entry = if t.stream == StreamId::A { "A" } else { "B" };
                exec.ingest(entry, t.clone()).unwrap();
            }
            exec.run().unwrap();
            exec.router_stats().clone()
        };
        let hash_only = route_all(None);
        let skew_aware = route_all(Some(eager_skew()));
        assert!(
            hash_only.busiest_share() > 0.5,
            "hash routing concentrates the skewed load (got {})",
            hash_only.busiest_share()
        );
        assert!(
            skew_aware.busiest_share() < hash_only.busiest_share(),
            "replication must reduce the busiest shard's share ({} vs {})",
            skew_aware.busiest_share(),
            hash_only.busiest_share()
        );
        assert_eq!(
            hash_only.hash_routed,
            stream.len() as u64,
            "without skew everything hash-routes"
        );
    }
}
